#!/usr/bin/env bash
# Captures a training-throughput snapshot as BENCH_train.json.
#
# Runs the bench_train_runtime sweep (1/2/4/8 threads, bit-identity gate)
# from an existing build tree and leaves the JSON next to the repo root so
# the perf trajectory accumulates data points across PRs.
#
# Usage: scripts/bench_snapshot.sh [build-dir]
#   build-dir       defaults to ./build (the release preset's binaryDir)
#   OTA_BENCH_JSON  overrides the output path (default BENCH_train.json)
#   OTA_SCALE       tiny|small|paper, as for every bench (default small)
#   OTA_TRAIN_SMOKE=1 for the quick {1,4}-thread smoke sweep
set -euo pipefail

build_dir=${1:-build}
bench="$build_dir/bench/bench_train_runtime"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not built (cmake --build --preset release)" >&2
  exit 2
fi

out=${OTA_BENCH_JSON:-BENCH_train.json}
OTA_BENCH_JSON="$out" "$bench"
echo "snapshot: $out"
