#!/usr/bin/env bash
# Captures the perf-trajectory snapshots: one BENCH_*.json per bench in the
# manifest below (train sweep, AC sweep, campaign server, inference tier,
# fault storm).  Each bench gates its own correctness (bit-identity, token
# agreement, exactly-once accounting, ...) through its exit code; this script
# only orchestrates and collects.
#
# A bench binary that is missing (e.g. a partial build) is skipped with a
# warning instead of aborting the run, so whatever did build still gets
# snapshotted; the final summary lists what was skipped and the script exits
# nonzero only when a bench that RAN failed.
#
# Usage: scripts/bench_snapshot.sh [build-dir]
#   build-dir          defaults to ./build (the release preset's binaryDir)
#   OTA_BENCH_DIR      output directory for the JSON files (default .)
#   OTA_SCALE          tiny|small|paper, as for every bench (default small)
#   OTA_TRAIN_SMOKE=1 / OTA_AC_SMOKE=1 / OTA_CAMPAIGN_SMOKE=1 /
#   OTA_INFER_TIER_SMOKE=1 / OTA_FAULT_SMOKE=1 for the quick smoke sweeps
#   OTA_SNAPSHOT_STATS=1 also captures a STATS_<name>.json telemetry report
#                      per bench (runs each bench with OTA_STATS enabled)
set -uo pipefail

build_dir=${1:-build}
out_dir=${OTA_BENCH_DIR:-.}
mkdir -p "$out_dir"

# The manifest: "binary:snapshot-name" — bench_<binary> writes
# $out_dir/BENCH_<snapshot-name>.json.
manifest=(
  "bench_train_runtime:train"
  "bench_ac_sweep:ac"
  "bench_campaign_server:campaign"
  "bench_infer_tier:infer"
  "bench_fault_storm:fault"
)

written=()
skipped=()
rc=0
for entry in "${manifest[@]}"; do
  bench=${entry%%:*}
  name=${entry##*:}
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "warning: $bin not built — skipping BENCH_${name}.json" >&2
    skipped+=("$name")
    continue
  fi
  json="$out_dir/BENCH_${name}.json"
  if [[ "${OTA_SNAPSHOT_STATS:-0}" != "0" ]]; then
    # OTA_STATS=<path> enables telemetry and dumps the report at exit.
    OTA_BENCH_JSON="$json" OTA_STATS="$out_dir/STATS_${name}.json" "$bin" \
      || { echo "error: $bench failed" >&2; rc=1; }
  else
    OTA_BENCH_JSON="$json" "$bin" \
      || { echo "error: $bench failed" >&2; rc=1; }
  fi
  [[ -f "$json" ]] && written+=("$json")
done

echo "snapshots: ${written[*]:-none}"
if ((${#skipped[@]})); then
  echo "skipped (binary missing): ${skipped[*]}" >&2
fi
exit "$rc"
