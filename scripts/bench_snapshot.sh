#!/usr/bin/env bash
# Captures the perf-trajectory snapshots: BENCH_train.json + BENCH_ac.json +
# BENCH_campaign.json + BENCH_infer.json + BENCH_fault.json.
#
# Runs the bench_train_runtime sweep (1/2/4/8 training threads, bit-identity
# gate), the bench_ac_sweep sweep (naive vs batched AC engine, bit-identity
# + accuracy gates), the bench_campaign_server run (concurrent sizing
# campaigns vs the serial copilot, bit-identity + decode-batch-occupancy +
# overload/admission-control gates), and the bench_infer_tier run (float32
# SIMD decode tier vs the double reference: token agreement + determinism +
# the 1.3x tokens/sec floor in non-smoke runs), and the bench_fault_storm
# run (three-layer fault storm + numerics degradation: exactly-once
# accounting, bounded retry recovery, survivor bit-identity, serial-vs-server
# fault-counter identity) from an existing build tree
# and leaves the JSON files next to the
# repo root so the perf trajectory accumulates data points across PRs.
# CI uploads the same files as workflow artifacts from its smoke runs.
#
# Usage: scripts/bench_snapshot.sh [build-dir]
#   build-dir        defaults to ./build (the release preset's binaryDir)
#   OTA_BENCH_DIR    output directory for the JSON files (default .)
#   OTA_SCALE        tiny|small|paper, as for every bench (default small)
#   OTA_TRAIN_SMOKE=1 / OTA_AC_SMOKE=1 / OTA_CAMPAIGN_SMOKE=1 /
#   OTA_INFER_TIER_SMOKE=1 / OTA_FAULT_SMOKE=1 for the quick smoke sweeps
set -euo pipefail

build_dir=${1:-build}
out_dir=${OTA_BENCH_DIR:-.}
mkdir -p "$out_dir"

for bench in bench_train_runtime bench_ac_sweep bench_campaign_server \
             bench_infer_tier bench_fault_storm; do
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build --preset release)" >&2
    exit 2
  fi
done

OTA_BENCH_JSON="$out_dir/BENCH_train.json" "$build_dir/bench/bench_train_runtime"
OTA_BENCH_JSON="$out_dir/BENCH_ac.json" "$build_dir/bench/bench_ac_sweep"
OTA_BENCH_JSON="$out_dir/BENCH_campaign.json" "$build_dir/bench/bench_campaign_server"
OTA_BENCH_JSON="$out_dir/BENCH_infer.json" "$build_dir/bench/bench_infer_tier"
OTA_BENCH_JSON="$out_dir/BENCH_fault.json" "$build_dir/bench/bench_fault_storm"
echo "snapshots: $out_dir/BENCH_train.json $out_dir/BENCH_ac.json" \
     "$out_dir/BENCH_campaign.json $out_dir/BENCH_infer.json" \
     "$out_dir/BENCH_fault.json"
