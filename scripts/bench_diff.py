#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json snapshots against committed
baselines and exit nonzero when something got worse.

Field policy (what "worse" means):

* Booleans (bit_identical, token_agreement, post_storm_healthy, ...) are
  correctness claims: any flip from the baseline fails, in either direction —
  a baseline that claims false when the fresh run says true means the
  baseline is stale and must be refreshed deliberately.
* Config fields ("scale", "smoke", "bench", and the per-bench STRICT_KEYS
  accounting/shape numbers) must match exactly: a drifted config silently
  invalidates every comparison, so the diff refuses to compare apples to
  pears and tells you to refresh the baselines instead.
* Rate fields (*_per_sec, *speedup*, decode_occupancy) gate throughput:
  fresh >= baseline * (1 - tolerance).  The default tolerance is generous —
  CI smoke runs measure ~1s windows on shared runners where same-config
  draws vary +-25%, so the gate targets step-change regressions (a lost
  SIMD tier, accidentally-enabled telemetry); the nightly non-smoke sweep
  is where tight numbers live.
* Everything else numeric (seconds, latencies, error bounds) is reported
  informationally but never fails the gate — wall-clock on a noisy runner is
  not a contract.
* "runs" arrays are matched per-entry by thread count and the same policy
  applies inside each entry.
* A fresh key missing from the baseline warns (new fields appear when
  benches grow); a baseline key missing from the fresh snapshot fails (a
  bench silently lost coverage).

Usage:
  scripts/bench_diff.py --baseline-dir bench/baselines --current-dir . \
      [--tolerance 0.35] [--report bench_diff_report.txt] [--allow-missing]
  scripts/bench_diff.py --self-test
"""

import argparse
import json
import os
import sys
import tempfile

BENCHES = ["train", "ac", "campaign", "infer", "fault"]

# Numeric fields that must match the baseline exactly: workload shape and
# exactly-once accounting.  A mismatch means config drift or an accounting
# bug, not noise.
STRICT_KEYS = {
    "train_runtime": ["corpus_pairs", "epochs", "batch_size"],
    "ac_sweep": ["points", "system_size"],
    "campaign_server": ["campaigns", "workers", "overload_attempts",
                        "overload_queue_cap"],
    "infer_tier": ["probes", "max_tokens", "decode_steps_per_pass",
                   "repeats"],
    "fault_storm": ["campaigns", "served", "failed", "retried", "recovered",
                    "degrade_campaigns", "degrade_failed"],
}

# String-valued config fields: strict equality.
STRICT_STRINGS = ["bench", "scale", "storm_spec"]
# "smoke" is a boolean but semantically config; booleans are strict anyway.


def is_rate_key(key):
    return (key.endswith("_per_sec") or "speedup" in key
            or key == "decode_occupancy")


class Diff:
    def __init__(self):
        self.failures = []
        self.warnings = []
        self.infos = []

    def fail(self, msg):
        self.failures.append(msg)

    def warn(self, msg):
        self.warnings.append(msg)

    def info(self, msg):
        self.infos.append(msg)


def diff_scalar(diff, bench, key, base, cur, tolerance, strict_nums):
    where = f"{bench}.{key}"
    if isinstance(base, bool) or isinstance(cur, bool):
        if base != cur:
            diff.fail(f"{where}: boolean flipped {base} -> {cur} "
                      f"(correctness claim changed; if intentional, refresh "
                      f"bench/baselines/)")
        return
    if isinstance(base, str) or isinstance(cur, str):
        if key in STRICT_STRINGS and base != cur:
            diff.fail(f"{where}: config drift '{base}' -> '{cur}' "
                      f"(baseline and run disagree on what was measured; "
                      f"refresh bench/baselines/ for the new config)")
        elif base != cur:
            diff.warn(f"{where}: '{base}' -> '{cur}'")
        return
    # Numeric.
    if key in strict_nums:
        if base != cur:
            diff.fail(f"{where}: strict field {base} -> {cur} "
                      f"(workload shape / accounting must match the baseline "
                      f"exactly; refresh bench/baselines/ if intentional)")
        return
    if is_rate_key(key):
        floor = base * (1.0 - tolerance)
        if cur < floor:
            diff.fail(f"{where}: throughput regression {base:g} -> {cur:g} "
                      f"(below floor {floor:g} = baseline * "
                      f"(1 - {tolerance:g}))")
        else:
            diff.info(f"{where}: {base:g} -> {cur:g} (floor {floor:g}, ok)")
        return
    diff.info(f"{where}: {base:g} -> {cur:g} (informational)")


def diff_runs(diff, bench, base_runs, cur_runs, tolerance):
    base_by_threads = {r.get("threads"): r for r in base_runs}
    cur_by_threads = {r.get("threads"): r for r in cur_runs}
    for threads, base_run in base_by_threads.items():
        cur_run = cur_by_threads.get(threads)
        if cur_run is None:
            diff.fail(f"{bench}.runs: baseline has a threads={threads} entry "
                      f"the fresh snapshot lost")
            continue
        for key, base_val in base_run.items():
            if key == "threads":
                continue
            if key not in cur_run:
                diff.fail(f"{bench}.runs[threads={threads}].{key}: missing "
                          f"from fresh snapshot")
                continue
            diff_scalar(diff, f"{bench}.runs[threads={threads}]", key,
                        base_val, cur_run[key], tolerance, strict_nums=())
    for threads in cur_by_threads:
        if threads not in base_by_threads:
            diff.warn(f"{bench}.runs: new threads={threads} entry not in "
                      f"baseline")


def diff_bench(diff, name, baseline, current, tolerance):
    bench_id = baseline.get("bench", name)
    strict_nums = STRICT_KEYS.get(bench_id, [])
    for key, base_val in baseline.items():
        if key not in current:
            diff.fail(f"{name}.{key}: present in baseline, missing from "
                      f"fresh snapshot")
            continue
        cur_val = current[key]
        if key == "runs":
            diff_runs(diff, name, base_val, cur_val, tolerance)
        else:
            diff_scalar(diff, name, key, base_val, cur_val, tolerance,
                        strict_nums)
    for key in current:
        if key not in baseline:
            diff.warn(f"{name}.{key}: new field not in baseline "
                      f"(add it on the next baseline refresh)")


def run_diff(args):
    diff = Diff()
    compared = []
    for name in args.benches:
        base_path = os.path.join(args.baseline_dir, f"BENCH_{name}.json")
        cur_path = os.path.join(args.current_dir, f"BENCH_{name}.json")
        if not os.path.exists(base_path):
            diff.warn(f"{name}: no baseline at {base_path} (gate skipped; "
                      f"commit one via scripts/bench_snapshot.sh)")
            continue
        if not os.path.exists(cur_path):
            msg = (f"{name}: fresh snapshot {cur_path} absent "
                   f"(bench skipped or failed upstream)")
            if args.allow_missing:
                diff.warn(msg)
            else:
                diff.fail(msg)
            continue
        try:
            with open(base_path) as f:
                baseline = json.load(f)
            with open(cur_path) as f:
                current = json.load(f)
        except json.JSONDecodeError as e:
            diff.fail(f"{name}: unparseable snapshot JSON: {e}")
            continue
        compared.append(name)
        diff_bench(diff, name, baseline, current, args.tolerance)

    lines = []
    lines.append(f"bench_diff: compared {len(compared)} snapshot(s) "
                 f"({', '.join(compared) or 'none'}) at tolerance "
                 f"{args.tolerance:g}")
    for f in diff.failures:
        lines.append(f"FAIL: {f}")
    for w in diff.warnings:
        lines.append(f"warn: {w}")
    for i in diff.infos:
        lines.append(f"  ok: {i}")
    verdict = "REGRESSED" if diff.failures else "OK"
    lines.append(f"verdict: {verdict} ({len(diff.failures)} failure(s), "
                 f"{len(diff.warnings)} warning(s))")
    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    return 1 if diff.failures else 0


def self_test():
    """Proves the gate actually gates: a clean pair passes, a regressed rate
    fails, a flipped correctness bool fails, drifted config fails, and a
    missing fresh snapshot fails."""
    baseline = {
        "bench": "train_runtime", "scale": "small", "smoke": True,
        "corpus_pairs": 48, "epochs": 2, "batch_size": 16,
        "bit_identical": True,
        "runs": [
            {"threads": 1, "seconds": 10.0, "examples_per_sec": 100.0,
             "speedup": 1.0},
            {"threads": 4, "seconds": 3.0, "examples_per_sec": 330.0,
             "speedup": 3.3},
        ],
    }

    def run_case(name, mutate, expect_fail, allow_missing=False,
                 write_current=True):
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "base")
            cur_dir = os.path.join(tmp, "cur")
            os.makedirs(base_dir)
            os.makedirs(cur_dir)
            with open(os.path.join(base_dir, "BENCH_train.json"), "w") as f:
                json.dump(baseline, f)
            current = json.loads(json.dumps(baseline))  # deep copy
            mutate(current)
            if write_current:
                with open(os.path.join(cur_dir, "BENCH_train.json"),
                          "w") as f:
                    json.dump(current, f)
            args = argparse.Namespace(
                baseline_dir=base_dir, current_dir=cur_dir,
                tolerance=0.35, report=None, allow_missing=allow_missing,
                benches=["train"])
            rc = run_diff(args)
            failed = rc != 0
            status = "ok" if failed == expect_fail else "SELF-TEST BROKEN"
            print(f"[self-test] {name}: expected "
                  f"{'fail' if expect_fail else 'pass'}, got "
                  f"{'fail' if failed else 'pass'} -> {status}")
            return failed == expect_fail

    ok = True
    ok &= run_case("identical snapshots pass", lambda c: None, False)
    ok &= run_case(
        "small rate wobble within tolerance passes",
        lambda c: c["runs"][1].update(examples_per_sec=300.0, speedup=3.0),
        False)
    ok &= run_case(
        "throughput regression fails",
        lambda c: c["runs"][1].update(examples_per_sec=150.0, speedup=1.5),
        True)
    ok &= run_case(
        "flipped correctness boolean fails",
        lambda c: c.update(bit_identical=False), True)
    ok &= run_case(
        "strict accounting drift fails",
        lambda c: c.update(corpus_pairs=47), True)
    ok &= run_case(
        "config (scale) drift fails",
        lambda c: c.update(scale="paper"), True)
    ok &= run_case(
        "missing fresh snapshot fails",
        lambda c: None, True, write_current=False)
    ok &= run_case(
        "missing fresh snapshot tolerated with --allow-missing",
        lambda c: None, False, allow_missing=True, write_current=False)
    print(f"[self-test] {'ALL OK' if ok else 'FAILURES ABOVE'}")
    return 0 if ok else 1


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--baseline-dir", default="bench/baselines")
    p.add_argument("--current-dir", default=".")
    p.add_argument("--tolerance", type=float, default=0.45,
                   help="allowed fractional throughput drop on rate fields "
                        "(default 0.45: smoke runs measure ~1s windows on "
                        "shared runners, where same-config draws vary +-25%%; "
                        "the gate is for step-change regressions, not drift)")
    p.add_argument("--report", default=None,
                   help="also write the report to this path")
    p.add_argument("--allow-missing", action="store_true",
                   help="warn instead of fail when a fresh snapshot is "
                        "absent")
    p.add_argument("--benches", default=",".join(BENCHES),
                   help=f"comma-separated subset of {BENCHES}")
    p.add_argument("--self-test", action="store_true",
                   help="verify the gate fails on synthetic regressions")
    args = p.parse_args()
    if args.self_test:
        sys.exit(self_test())
    args.benches = [b.strip() for b in args.benches.split(",") if b.strip()]
    sys.exit(run_diff(args))


if __name__ == "__main__":
    main()
