#!/usr/bin/env sh
# Tier-1 verify: exactly what CI runs. Usage: scripts/check.sh [jobs]
set -eu
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
cmake -B build -S .
cmake --build build -j "$JOBS"
cd build && ctest --output-on-failure -j "$JOBS"
