// Mason's gain formula versus MNA AC analysis: the central equivalence that
// makes DP-SFG sequences a faithful circuit description.
#include "sfg/mason.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "circuit/topologies.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"

namespace ota::sfg {
namespace {

class MasonTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  // Builds graph + AC reference for a netlist, returning max relative error
  // of the Mason transfer vs the MNA transfer over a frequency sweep.
  double max_rel_error(const circuit::Netlist& nl, const std::string& out) {
    const auto dc = spice::solve_dc(nl, tech);
    const spice::AcAnalysis ac(nl, tech, dc);
    const auto devices = spice::small_signal_map(nl, tech, dc);
    const DpSfg g = DpSfg::build(nl, devices, out);
    const MasonEvaluator mason(g);
    double worst = 0.0;
    for (double f = 1.0; f <= 1e11; f *= 10.0) {
      const auto h_ref = ac.transfer(f, out);
      const auto h_sfg = mason.transfer(f);
      const double err = std::abs(h_sfg - h_ref) /
                         std::max(std::abs(h_ref), 1e-18);
      worst = std::max(worst, err);
    }
    return worst;
  }
};

TEST_F(MasonTest, RcDividerMatchesMna) {
  circuit::Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "out", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-9);
  EXPECT_LT(max_rel_error(nl, "out"), 1e-9);
}

TEST_F(MasonTest, TwoNodeRcLadderMatchesMna) {
  circuit::Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "a", 1e3);
  nl.add_capacitor("C1", "a", "0", 1e-12);
  nl.add_resistor("R2", "a", "out", 10e3);
  nl.add_capacitor("C2", "out", "0", 2e-12);
  nl.add_capacitor("C3", "in", "out", 0.2e-12);  // feedthrough adds loops
  EXPECT_LT(max_rel_error(nl, "out"), 1e-9);
}

TEST_F(MasonTest, ActiveInductorMatchesMna) {
  // The paper's running example (Fig. 2): transimpedance Vout/Iin.
  const auto ai = circuit::make_active_inductor(tech);
  EXPECT_LT(max_rel_error(ai.netlist, ai.output_node), 1e-9);
}

TEST_F(MasonTest, CommonSourceStageMatchesMna) {
  circuit::Netlist nl;
  nl.add_vsource("VDD", "vdd", "0", 1.2);
  nl.add_vsource("VIN", "g", "0", 0.45, 1.0);
  nl.add_resistor("RL", "vdd", "d", 80e3);
  nl.add_capacitor("CL", "d", "0", 1e-12);
  nl.add_mosfet("M1", device::MosType::Nmos, "d", "g", "0", 1e-6, 180e-9);
  EXPECT_LT(max_rel_error(nl, "d"), 1e-9);
}

TEST_F(MasonTest, FiveTransistorOtaMatchesMna) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  EXPECT_LT(max_rel_error(topo.netlist, topo.output_node), 1e-8);
}

TEST_F(MasonTest, CurrentMirrorOtaMatchesMna) {
  auto topo = circuit::make_cm_ota(tech);
  topo.apply_widths({3e-6, 10e-6, 6e-6, 6e-6, 4e-6});
  EXPECT_LT(max_rel_error(topo.netlist, topo.output_node), 1e-8);
}

TEST_F(MasonTest, TwoStageOtaMatchesMna) {
  auto topo = circuit::make_2s_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6, 10e-6, 3e-6});
  EXPECT_LT(max_rel_error(topo.netlist, topo.output_node), 1e-8);
}

class MasonWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(MasonWidthSweep, FiveTransistorAgreementAcrossSizings) {
  // Property: SFG/MNA equivalence holds across the width range of the paper's
  // data-generation sweep (0.7-50 um).
  const auto tech = device::Technology::default65nm();
  auto topo = circuit::make_5t_ota(tech);
  const double w = GetParam();
  topo.apply_widths({w * 0.4, w, w * 0.5});
  const auto dc = spice::solve_dc(topo.netlist, tech);
  const spice::AcAnalysis ac(topo.netlist, tech, dc);
  const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
  const DpSfg g = DpSfg::build(topo.netlist, devices, topo.output_node);
  const MasonEvaluator mason(g);
  for (double f : {10.0, 1e6, 1e9}) {
    const auto h_ref = ac.transfer(f, topo.output_node);
    const auto h_sfg = mason.transfer(f);
    EXPECT_LT(std::abs(h_sfg - h_ref), std::abs(h_ref) * 1e-8 + 1e-15)
        << "w=" << w << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MasonWidthSweep,
                         ::testing::Values(0.7e-6, 1.5e-6, 3e-6, 7e-6, 15e-6,
                                           30e-6, 50e-6));

TEST_F(MasonTest, TransferFromRequiresExcitationVertex) {
  const auto ai = circuit::make_active_inductor(tech);
  const auto dc = spice::solve_dc(ai.netlist, tech);
  const auto devices = spice::small_signal_map(ai.netlist, tech, dc);
  const DpSfg g = DpSfg::build(ai.netlist, devices, ai.output_node);
  const MasonEvaluator mason(g);
  EXPECT_THROW((void)mason.transfer_from(g.output_vertex(), 1.0),
               ota::InvalidArgument);
}

}  // namespace
}  // namespace ota::sfg
