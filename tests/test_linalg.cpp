// Matrix and LU solver tests, real and complex.
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ota::linalg {
namespace {

TEST(Matrix, BasicAccess) {
  MatrixD m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, MatVec) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  auto y = matvec(a, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecDimensionMismatchThrows) {
  MatrixD a(2, 2);
  EXPECT_THROW(matvec(a, {1.0}), InvalidArgument);
}

TEST(Lu, Solves2x2) {
  MatrixD a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  auto x = solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the first diagonal entry forces a row swap.
  MatrixD a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(solve(a, {1.0, 2.0}), ConvergenceError);
}

TEST(Lu, ZeroMatrixThrows) {
  MatrixD a(3, 3);
  EXPECT_THROW((void)LuDecomposition<double>{a}, ConvergenceError);
}

TEST(Lu, NonSquareThrows) {
  MatrixD a(2, 3);
  EXPECT_THROW((void)LuDecomposition<double>{a}, InvalidArgument);
}

TEST(Lu, ComplexSystem) {
  using C = std::complex<double>;
  MatrixC a(2, 2);
  a(0, 0) = C{1.0, 1.0}; a(0, 1) = C{0.0, -1.0};
  a(1, 0) = C{2.0, 0.0}; a(1, 1) = C{1.0, 0.0};
  const std::vector<C> x_ref{C{1.0, 2.0}, C{-1.0, 0.5}};
  const auto b = matvec(a, x_ref);
  const auto x = solve(a, b);
  EXPECT_NEAR(std::abs(x[0] - x_ref[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - x_ref[1]), 0.0, 1e-12);
}

class LuRandom : public ::testing::TestWithParam<int> {};

TEST_P(LuRandom, ReconstructsRandomSolution) {
  const int n = GetParam();
  Rng rng(42 + static_cast<uint64_t>(n));
  MatrixD a(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(static_cast<size_t>(r), static_cast<size_t>(c)) = rng.normal();
    a(static_cast<size_t>(r), static_cast<size_t>(r)) += n;  // diagonal dominance
  }
  std::vector<double> x_ref(static_cast<size_t>(n));
  for (auto& v : x_ref) v = rng.normal();
  const auto b = matvec(a, x_ref);
  const auto x = solve(a, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<size_t>(i)], x_ref[static_cast<size_t>(i)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandom, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Lu, MultipleRhsAgainstOneFactorization) {
  MatrixD a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 4; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 4;
  LuDecomposition<double> lu(a);
  for (int k = 0; k < 3; ++k) {
    std::vector<double> e(3, 0.0);
    e[static_cast<size_t>(k)] = 1.0;
    const auto x = lu.solve(e);
    const auto back = matvec(a, x);
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(back[static_cast<size_t>(i)], e[static_cast<size_t>(i)], 1e-12);
    }
  }
}

}  // namespace
}  // namespace ota::linalg
