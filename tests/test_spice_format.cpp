// SPICE-deck import/export tests, including round trips of the paper's
// topologies and behavioural equivalence through the simulator.
#include "circuit/spice_format.hpp"

#include <gtest/gtest.h>

#include "circuit/topologies.hpp"
#include "common/error.hpp"
#include "spice/testbench.hpp"

namespace ota::circuit {
namespace {

TEST(SpiceFormat, ParsesBasicDeck) {
  const Netlist nl = parse_spice(
      "* a comment\n"
      "M1 d g 0 nmos W=0.7u L=180n\n"
      "R1 d vdd 10k\n"
      "C1 d 0 500f\n"
      "VDD vdd 0 1.2\n"
      "VIN g 0 0.5 AC 1\n"
      "IB d 0 1u\n"
      ".end\n");
  EXPECT_EQ(nl.mosfets().size(), 1u);
  EXPECT_EQ(nl.resistors().size(), 1u);
  EXPECT_EQ(nl.capacitors().size(), 1u);
  EXPECT_EQ(nl.vsources().size(), 2u);
  EXPECT_EQ(nl.isources().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.mosfet("M1").w, 0.7e-6);
  EXPECT_DOUBLE_EQ(nl.mosfet("M1").l, 180e-9);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].resistance, 10e3);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].capacitance, 500e-15);
  EXPECT_DOUBLE_EQ(nl.vsources()[1].ac, 1.0);
  EXPECT_EQ(nl.vsources()[1].name, "VIN");
}

TEST(SpiceFormat, BulkTerminalAcceptedAndIgnored) {
  const Netlist nl = parse_spice("M1 d g s 0 pmos W=1u L=0.18u\n");
  EXPECT_EQ(nl.mosfets()[0].type, device::MosType::Pmos);
  EXPECT_EQ(nl.node_name(nl.mosfets()[0].source), "s");
}

TEST(SpiceFormat, CaseInsensitiveKeywords) {
  const Netlist nl = parse_spice(
      "m1 d g 0 NMOS w=1u l=180n\n"
      "vin g 0 0.5 ac 0.5\n");
  EXPECT_EQ(nl.mosfets().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.vsources()[0].ac, 0.5);
}

TEST(SpiceFormat, DirectivesAndBlankLinesSkipped) {
  const Netlist nl = parse_spice(
      "\n.option whatever\n* note\nR1 a 0 1k\n.end\nR2 ignored 0 1k\n");
  EXPECT_EQ(nl.resistors().size(), 1u);  // .end stops parsing
}

TEST(SpiceFormat, ErrorsCarryLineNumbers) {
  try {
    parse_spice("R1 a 0 1k\nM2 d g 0 nmos W=zzz L=1u\n");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpiceFormat, RejectsMalformedCards) {
  EXPECT_THROW(parse_spice("Q1 a b c\n"), InvalidArgument);
  EXPECT_THROW(parse_spice("M1 d g 0 bjt W=1u L=1u\n"), InvalidArgument);
  EXPECT_THROW(parse_spice("R1 a 0\n"), InvalidArgument);
  EXPECT_THROW(parse_spice("V1 a 0 1.0 DC 2\n"), InvalidArgument);
  EXPECT_THROW(parse_spice("M1 d g 0 nmos L=1u W=1u\n"), InvalidArgument);
}

class SpiceRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SpiceRoundTrip, TopologyRoundTripsThroughDeck) {
  const auto tech = device::Technology::default65nm();
  Topology topo = make_topology(GetParam(), tech);
  const std::string deck = to_spice(topo.netlist, topo.name);
  const Netlist back = parse_spice(deck);

  ASSERT_EQ(back.mosfets().size(), topo.netlist.mosfets().size());
  ASSERT_EQ(back.vsources().size(), topo.netlist.vsources().size());
  ASSERT_EQ(back.capacitors().size(), topo.netlist.capacitors().size());

  // Behavioural equivalence: identical AC metrics from both netlists.
  const auto dc1 = spice::solve_dc(topo.netlist, tech);
  const auto dc2 = spice::solve_dc(back, tech);
  const spice::AcAnalysis ac1(topo.netlist, tech, dc1);
  const spice::AcAnalysis ac2(back, tech, dc2);
  const auto m1 = spice::measure_ac(ac1, topo.output_node);
  const auto m2 = spice::measure_ac(ac2, topo.output_node);
  EXPECT_NEAR(m1.gain_db, m2.gain_db, 1e-3);
  EXPECT_NEAR(m1.ugf_hz, m2.ugf_hz, m1.ugf_hz * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Topologies, SpiceRoundTrip,
                         ::testing::Values("5T-OTA", "CM-OTA", "2S-OTA"));

TEST(SpiceFormat, DeckRoundTripIsStable) {
  // to_spice(parse_spice(deck)) is a fixed point after one round.
  const auto tech = device::Technology::default65nm();
  const Topology topo = make_5t_ota(tech);
  const std::string once = to_spice(topo.netlist);
  const std::string twice = to_spice(parse_spice(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace ota::circuit
