// Batched AC sweep engine tests.
//
// Three property groups:
//  * AcSweepTest — the batch path is THE path: sweep()/transfer_sweep()
//    agree bit-for-bit with per-point solve()/transfer() loops, and the
//    batched measure_ac is invariant in its thread knob.
//  * DeterminismTest — thread count is a pure performance knob for sweeps
//    (the fixture name opts these tests into the TSan CI gate alongside the
//    dataset/training determinism suites).
//  * LuMultiRhs — the multi-RHS / solve-into-preallocated LU API against the
//    single-RHS reference on remainder-heavy sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <numbers>
#include <vector>

#include "circuit/topologies.hpp"
#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "spice/measure.hpp"

namespace ota::spice {
namespace {

using Cplx = std::complex<double>;

std::vector<double> log_grid(double f_lo, double f_hi, int points) {
  std::vector<double> freqs;
  const double ratio = std::pow(f_hi / f_lo, 1.0 / (points - 1));
  double f = f_lo;
  for (int i = 0; i < points; ++i, f *= ratio) freqs.push_back(f);
  return freqs;
}

// A sized 5T-OTA analysis (widths known to bias correctly from test_ac).
AcAnalysis make_ota_analysis(circuit::Topology& topo,
                             const device::Technology& tech) {
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const DcSolution dc = solve_dc(topo.netlist, tech);
  return AcAnalysis(topo.netlist, tech, dc);
}

void expect_bit_identical(const std::vector<std::vector<Cplx>>& a,
                          const std::vector<std::vector<Cplx>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "point " << i;
    for (size_t n = 0; n < a[i].size(); ++n) {
      EXPECT_EQ(a[i][n].real(), b[i][n].real()) << "point " << i << " node " << n;
      EXPECT_EQ(a[i][n].imag(), b[i][n].imag()) << "point " << i << " node " << n;
    }
  }
}

class AcSweepTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(AcSweepTest, SweepMatchesPerPointSolveBitIdentical) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);
  const auto freqs = log_grid(1.0, 1e10, 40);

  const auto batched = ac.sweep(freqs);
  std::vector<std::vector<Cplx>> looped;
  for (double f : freqs) looped.push_back(ac.solve(f));
  expect_bit_identical(batched, looped);
}

TEST_F(AcSweepTest, TransferSweepMatchesPerPointTransferBitIdentical) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);
  const auto freqs = log_grid(10.0, 1e9, 33);

  const auto batched = ac.transfer_sweep(freqs, "vout");
  ASSERT_EQ(batched.size(), freqs.size());
  for (size_t i = 0; i < freqs.size(); ++i) {
    const Cplx single = ac.transfer(freqs[i], "vout");
    EXPECT_EQ(batched[i].real(), single.real()) << "point " << i;
    EXPECT_EQ(batched[i].imag(), single.imag()) << "point " << i;
  }
}

TEST_F(AcSweepTest, RcSweepMatchesClosedForm) {
  circuit::Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "out", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-9);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);

  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-9);
  const auto freqs = log_grid(1e3, 1e8, 24);
  const auto h = ac.transfer_sweep(freqs, "out");
  for (size_t i = 0; i < freqs.size(); ++i) {
    const Cplx ref = 1.0 / Cplx(1.0, freqs[i] / fc);
    EXPECT_NEAR(std::abs(h[i] - ref), 0.0, 1e-9) << "f=" << freqs[i];
  }
}

TEST_F(AcSweepTest, TransferSweepOfGroundIsZero) {
  circuit::Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "0", 1e3);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  for (const Cplx& v : ac.transfer_sweep({1.0, 1e6}, "0")) {
    EXPECT_EQ(v, Cplx{});
  }
}

TEST_F(AcSweepTest, EmptySweepReturnsEmpty) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);
  EXPECT_TRUE(ac.sweep({}).empty());
  EXPECT_TRUE(ac.transfer_sweep({}, "vout").empty());
}

TEST_F(AcSweepTest, MeasureRejectsDegenerateScanConfig) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);
  MeasureOptions bad_f_low;
  bad_f_low.f_low = 0.0;  // the old lazy scan hung on this; now it throws
  EXPECT_THROW(measure_ac(ac, "vout", bad_f_low), InvalidArgument);
  MeasureOptions bad_density;
  bad_density.points_per_decade = 0;
  EXPECT_THROW(measure_ac(ac, "vout", bad_density), InvalidArgument);
  MeasureOptions bad_f_high;
  bad_f_high.f_high = std::numeric_limits<double>::infinity();
  EXPECT_THROW(measure_ac(ac, "vout", bad_f_high), InvalidArgument);
  MeasureOptions bad_rel_tol;
  bad_rel_tol.rel_tol = 0.0;  // bisection can never terminate below 1 ulp
  EXPECT_THROW(measure_ac(ac, "vout", bad_rel_tol), InvalidArgument);
}

TEST_F(AcSweepTest, MeasureUsesOneSweepAndMatchesLegacyShape) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);
  const AcMetrics m = measure_ac(ac, "vout");
  // Table I neighborhood for the 5T-OTA at this arbitrary sizing.
  EXPECT_GT(m.gain_db, 10.0);
  EXPECT_LT(m.gain_db, 32.0);
  EXPECT_GT(m.ugf_hz, m.bw_3db_hz);
  EXPECT_GT(m.phase_margin_deg, 0.0);
  // The 3 dB point really is the 3 dB point on the batch path.
  const double h_bw = std::abs(ac.transfer(m.bw_3db_hz, "vout"));
  EXPECT_NEAR(h_bw, m.gain_linear / std::numbers::sqrt2,
              m.gain_linear * 1e-3);
}

// ---------------------------------------------------------------------------
// Thread-count bit-identity (the fixture name registers these under the
// DeterminismTest.* umbrella that the TSan preset/CI job selects).

class DeterminismTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(DeterminismTest, AcSweepBitIdenticalAcrossThreadCounts) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);
  const auto freqs = log_grid(1.0, 1e11, 64);

  const auto serial = ac.sweep(freqs, 1);
  expect_bit_identical(serial, ac.sweep(freqs, 8));
  // An odd worker count chunks the grid differently but must agree too.
  expect_bit_identical(serial, ac.sweep(freqs, 3));
}

TEST_F(DeterminismTest, AcTransferSweepBitIdenticalAcrossThreadCounts) {
  auto topo = circuit::make_2s_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6, 12e-6, 3e-6});
  const DcSolution dc = solve_dc(topo.netlist, tech);
  const AcAnalysis ac(topo.netlist, tech, dc);
  const auto freqs = log_grid(1.0, 1e10, 48);

  const auto serial = ac.transfer_sweep(freqs, topo.output_node, 1);
  const auto par8 = ac.transfer_sweep(freqs, topo.output_node, 8);
  ASSERT_EQ(serial.size(), par8.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].real(), par8[i].real()) << "point " << i;
    EXPECT_EQ(serial[i].imag(), par8[i].imag()) << "point " << i;
  }
}

TEST_F(DeterminismTest, MeasureAcBitIdenticalAcrossThreadCounts) {
  auto topo = circuit::make_5t_ota(tech);
  const AcAnalysis ac = make_ota_analysis(topo, tech);

  MeasureOptions serial_opt;
  serial_opt.threads = 1;
  MeasureOptions par_opt;
  par_opt.threads = 8;
  const AcMetrics a = measure_ac(ac, "vout", serial_opt);
  const AcMetrics b = measure_ac(ac, "vout", par_opt);
  EXPECT_EQ(a.gain_db, b.gain_db);
  EXPECT_EQ(a.gain_linear, b.gain_linear);
  EXPECT_EQ(a.bw_3db_hz, b.bw_3db_hz);
  EXPECT_EQ(a.ugf_hz, b.ugf_hz);
  EXPECT_EQ(a.phase_margin_deg, b.phase_margin_deg);
}

}  // namespace
}  // namespace ota::spice

// ---------------------------------------------------------------------------
// Multi-RHS LU against the single-RHS reference.

namespace ota::linalg {
namespace {

using Cplx = std::complex<double>;

template <typename T>
Matrix<T> random_system(int n, uint64_t seed);

template <>
Matrix<double> random_system<double>(int n, uint64_t seed) {
  Rng rng(seed);
  Matrix<double> a(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a(static_cast<size_t>(r), static_cast<size_t>(c)) = rng.normal();
    }
    a(static_cast<size_t>(r), static_cast<size_t>(r)) += n;
  }
  return a;
}

template <>
Matrix<Cplx> random_system<Cplx>(int n, uint64_t seed) {
  Rng rng(seed);
  Matrix<Cplx> a(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a(static_cast<size_t>(r), static_cast<size_t>(c)) =
          Cplx(rng.normal(), rng.normal());
    }
    a(static_cast<size_t>(r), static_cast<size_t>(r)) += Cplx(n, 0.0);
  }
  return a;
}

template <typename T>
void check_multi_rhs(int n, int k, uint64_t seed) {
  const Matrix<T> a = random_system<T>(n, seed);
  Rng rng(seed + 1000);
  Matrix<T> b(static_cast<size_t>(n), static_cast<size_t>(k));
  for (int r = 0; r < n; ++r) {
    for (int j = 0; j < k; ++j) {
      b(static_cast<size_t>(r), static_cast<size_t>(j)) = T(rng.normal());
    }
  }

  const LuDecomposition<T> lu(a);
  const Matrix<T> x = lu.solve(b);
  ASSERT_EQ(x.rows(), static_cast<size_t>(n));
  ASSERT_EQ(x.cols(), static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    std::vector<T> col(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      col[static_cast<size_t>(r)] = b(static_cast<size_t>(r), static_cast<size_t>(j));
    }
    const std::vector<T> ref = lu.solve(col);  // single-RHS reference
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(x(static_cast<size_t>(r), static_cast<size_t>(j)),
                ref[static_cast<size_t>(r)])
          << "n=" << n << " k=" << k << " row=" << r << " col=" << j;
    }
  }
}

TEST(LuMultiRhs, MatchesSingleRhsOnRemainderHeavySizes) {
  // Odd/prime system sizes and RHS counts so no blocking-friendly shape
  // hides an indexing bug.
  for (int n : {1, 2, 3, 5, 7, 13}) {
    for (int k : {1, 2, 3, 5, 9}) {
      check_multi_rhs<double>(n, k, 40 + static_cast<uint64_t>(n * 100 + k));
    }
  }
}

TEST(LuMultiRhs, ComplexMatchesSingleRhs) {
  for (int n : {2, 5, 11}) {
    for (int k : {1, 4, 7}) {
      check_multi_rhs<Cplx>(n, k, 90 + static_cast<uint64_t>(n * 100 + k));
    }
  }
}

TEST(LuMultiRhs, SolveIntoReusesCallerBuffers) {
  const Matrix<double> a = random_system<double>(6, 7);
  const LuDecomposition<double> lu(a);

  std::vector<double> b(6, 1.0), x;
  lu.solve_into(b, x);
  const double* data_before = x.data();
  b[3] = -2.0;
  lu.solve_into(b, x);
  EXPECT_EQ(x.data(), data_before);  // same allocation, refreshed contents
  EXPECT_EQ(x, lu.solve(b));

  Matrix<double> bm(6, 4, 0.5), xm;
  lu.solve_into(bm, xm);
  const double* mdata_before = xm.data().data();
  bm(2, 1) = 3.0;
  lu.solve_into(bm, xm);
  EXPECT_EQ(xm.data().data(), mdata_before);
  const Matrix<double> ref = lu.solve(bm);
  EXPECT_EQ(xm.data(), ref.data());
}

TEST(LuMultiRhs, FactorReusesDecompositionStorage) {
  LuDecomposition<double> lu;
  const Matrix<double> a1 = random_system<double>(5, 11);
  lu.factor(a1);
  EXPECT_EQ(lu.solve(std::vector<double>(5, 1.0)),
            LuDecomposition<double>(a1).solve(std::vector<double>(5, 1.0)));

  // Re-factoring a different same-size system fully replaces the old one.
  const Matrix<double> a2 = random_system<double>(5, 12);
  lu.factor(a2);
  EXPECT_EQ(lu.solve(std::vector<double>(5, 1.0)),
            LuDecomposition<double>(a2).solve(std::vector<double>(5, 1.0)));
}

TEST(LuMultiRhs, FactorSwapMatchesFactorAndRecyclesBuffers) {
  LuDecomposition<double> lu;
  const std::vector<double> b(7, 1.0);
  std::vector<const double*> buffers;
  Matrix<double> scratch;
  for (uint64_t seed : {21u, 22u, 23u}) {
    const Matrix<double> a = random_system<double>(7, seed);
    scratch = a;  // reuses scratch's capacity after the first round trip
    const double* assembled = scratch.data().data();
    lu.factor_swap(scratch);
    buffers.push_back(assembled);
    EXPECT_EQ(lu.solve(b), LuDecomposition<double>(a).solve(b)) << seed;
  }
  // The swap recycles two buffers in steady state: the matrix assembled on
  // round k is the same allocation the decomposition held on round k-1.
  EXPECT_EQ(buffers[0], buffers[2]);
}

TEST(LuMultiRhs, RhsSizeMismatchThrows) {
  const Matrix<double> a = random_system<double>(4, 3);
  const LuDecomposition<double> lu(a);
  Matrix<double> b(3, 2, 1.0);
  Matrix<double> x;
  EXPECT_THROW(lu.solve_into(b, x), InvalidArgument);
  std::vector<double> bv(3, 1.0), xv;
  EXPECT_THROW(lu.solve_into(bv, xv), InvalidArgument);
}

}  // namespace
}  // namespace ota::linalg
