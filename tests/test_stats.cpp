#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ota::linalg {
namespace {

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_THROW(mean({}), InvalidArgument);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSampleReturnsZero) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Pearson, InvariantToAffineTransform) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.normal());
    y.push_back(0.8 * x.back() + 0.3 * rng.normal());
  }
  const double r = pearson(x, y);
  std::vector<double> x2, y2;
  for (size_t i = 0; i < x.size(); ++i) {
    x2.push_back(5.0 * x[i] - 2.0);
    y2.push_back(0.1 * y[i] + 11.0);
  }
  EXPECT_NEAR(pearson(x2, y2), r, 1e-12);
  EXPECT_GT(r, 0.8);  // strongly correlated by construction
}

TEST(Pearson, Validation) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(pearson({1.0}, {1.0}), InvalidArgument);
}

TEST(Rmse, Basics) {
  EXPECT_DOUBLE_EQ(rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
  EXPECT_THROW(rmse({}, {}), InvalidArgument);
}

TEST(Mape, Basics) {
  EXPECT_NEAR(mape({110.0, 90.0}, {100.0, 100.0}), 0.1, 1e-12);
  // Zero references are skipped, not divided by.
  EXPECT_NEAR(mape({1.0, 110.0}, {0.0, 100.0}), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(mape({1.0}, {0.0}), 0.0);
}

}  // namespace
}  // namespace ota::linalg
