#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "par/thread_pool.hpp"

// Sanitizer builds replace the allocator; skip the allocation-counting
// override there and keep the behavioural assertions.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OTA_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define OTA_TEST_SANITIZED 1
#endif
#endif

#ifndef OTA_TEST_SANITIZED
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// Counting global allocator: lets DisabledIsAllocationFree assert the hot
// path performs literally zero heap allocations while stats are off.  The
// default operator new[] forwards here, so scalar overrides cover arrays.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace ota::linalg {
namespace {

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_THROW(mean({}), InvalidArgument);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSampleReturnsZero) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Pearson, InvariantToAffineTransform) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.normal());
    y.push_back(0.8 * x.back() + 0.3 * rng.normal());
  }
  const double r = pearson(x, y);
  std::vector<double> x2, y2;
  for (size_t i = 0; i < x.size(); ++i) {
    x2.push_back(5.0 * x[i] - 2.0);
    y2.push_back(0.1 * y[i] + 11.0);
  }
  EXPECT_NEAR(pearson(x2, y2), r, 1e-12);
  EXPECT_GT(r, 0.8);  // strongly correlated by construction
}

TEST(Pearson, Validation) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(pearson({1.0}, {1.0}), InvalidArgument);
}

TEST(Rmse, Basics) {
  EXPECT_DOUBLE_EQ(rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
  EXPECT_THROW(rmse({}, {}), InvalidArgument);
}

TEST(Mape, Basics) {
  EXPECT_NEAR(mape({110.0, 90.0}, {100.0, 100.0}), 0.1, 1e-12);
  // Zero references are skipped, not divided by.
  EXPECT_NEAR(mape({1.0, 110.0}, {0.0, 100.0}), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(mape({1.0}, {0.0}), 0.0);
}

}  // namespace
}  // namespace ota::linalg

namespace ota::stats {
namespace {

TEST(StatsTest, CounterAndRegionSemantics) {
  ScopedStats scoped;
  for (int i = 0; i < 3; ++i) STAT_COUNTER("test.stats.counter");
  STAT_COUNTER_ADD("test.stats.counter", 5);
  for (int i = 0; i < 4; ++i) {
    STAT_REGION("test.stats.region");
  }
  STAT_SECONDS("test.stats.wait", 0.25);
  STAT_SECONDS("test.stats.wait", 0.5);

  const auto snap = snapshot();
  ASSERT_TRUE(snap.count("test.stats.counter"));
  EXPECT_EQ(snap.at("test.stats.counter").kind, Kind::kCounter);
  EXPECT_EQ(snap.at("test.stats.counter").count, 8u);
  EXPECT_DOUBLE_EQ(snap.at("test.stats.counter").seconds, 0.0);

  ASSERT_TRUE(snap.count("test.stats.region"));
  EXPECT_EQ(snap.at("test.stats.region").kind, Kind::kRegion);
  EXPECT_EQ(snap.at("test.stats.region").count, 4u);
  EXPECT_GE(snap.at("test.stats.region").seconds, 0.0);

  ASSERT_TRUE(snap.count("test.stats.wait"));
  EXPECT_EQ(snap.at("test.stats.wait").kind, Kind::kRegion);
  EXPECT_EQ(snap.at("test.stats.wait").count, 2u);
  EXPECT_NEAR(snap.at("test.stats.wait").seconds, 0.75, 1e-9);
}

TEST(StatsTest, DisabledRecordsNothing) {
  ASSERT_FALSE(enabled());  // tests run with OTA_STATS unset
  STAT_COUNTER("test.stats.never_recorded");
  STAT_REGION("test.stats.never_recorded_region");

  ScopedStats scoped;  // resets, then enables
  const auto snap = snapshot();
  // A disabled pass never even interns the site, let alone counts it.
  EXPECT_FALSE(snap.count("test.stats.never_recorded"));
  EXPECT_FALSE(snap.count("test.stats.never_recorded_region"));
}

TEST(StatsTest, DisabledIsAllocationFree) {
  ASSERT_FALSE(enabled());
  // Warm the call sites' handles once via an enabled pass so the loop below
  // measures the steady disabled state, not first-use interning.
  {
    ScopedStats scoped;
    STAT_COUNTER("test.stats.alloc_probe");
    STAT_REGION("test.stats.alloc_probe_region");
  }
#ifndef OTA_TEST_SANITIZED
  const uint64_t before = g_alloc_count.load();
#endif
  for (int i = 0; i < 10000; ++i) {
    STAT_COUNTER("test.stats.alloc_probe");
    STAT_COUNTER_ADD("test.stats.alloc_probe", 3);
    STAT_REGION("test.stats.alloc_probe_region");
    STAT_SECONDS("test.stats.alloc_probe_region", 0.001);
  }
#ifndef OTA_TEST_SANITIZED
  EXPECT_EQ(g_alloc_count.load(), before);
#endif
  // And nothing was recorded either.
  ScopedStats scoped;
  const auto snap = snapshot();
  ASSERT_TRUE(snap.count("test.stats.alloc_probe"));
  EXPECT_EQ(snap.at("test.stats.alloc_probe").count, 0u);
}

TEST(StatsTest, ResetZeroesButKeepsSites) {
  ScopedStats scoped;
  STAT_COUNTER_ADD("test.stats.reset_me", 7);
  reset();
  const auto snap = snapshot();
  ASSERT_TRUE(snap.count("test.stats.reset_me"));
  EXPECT_EQ(snap.at("test.stats.reset_me").count, 0u);
}

TEST(StatsTest, DisableKeepsDataUntilReset) {
  ScopedStats scoped;
  STAT_COUNTER_ADD("test.stats.sticky", 4);
  disable();
  STAT_COUNTER_ADD("test.stats.sticky", 100);  // not recorded
  EXPECT_EQ(snapshot().at("test.stats.sticky").count, 4u);
  enable();  // ScopedStats teardown expects to restore from enabled
}

// The acceptance gate: on a deterministic workload, the merged report
// (timing excluded) is byte-identical for 1, 3, and 8 threads — per-site
// sums are commutative and the report is name-ordered, so scheduling can
// not leak into the output.
TEST(StatsTest, MergedReportIsThreadCountInvariant) {
  constexpr size_t kItems = 96;
  std::vector<std::string> reports;
  for (int threads : {1, 3, 8}) {
    ScopedStats scoped;
    par::ThreadPool pool(threads);
    pool.parallel_for(kItems, [](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        STAT_REGION("test.det.item");
        STAT_COUNTER("test.det.visits");
        STAT_COUNTER_ADD("test.det.weight", i);
      }
    });
    reports.push_back(report_json(ReportOptions{.include_timing = false}));
    const auto snap = snapshot();
    EXPECT_EQ(snap.at("test.det.visits").count, kItems);
    EXPECT_EQ(snap.at("test.det.weight").count,
              kItems * (kItems - 1) / 2);
    EXPECT_EQ(snap.at("test.det.item").count, kItems);
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(StatsTest, ReportJsonShape) {
  ScopedStats scoped;
  STAT_COUNTER_ADD("test.json.counter", 2);
  { STAT_REGION("test.json.region"); }

  const std::string with_timing = report_json();
  EXPECT_NE(with_timing.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(with_timing.find("{\"site\": \"test.json.counter\", "
                             "\"kind\": \"counter\", \"count\": 2}"),
            std::string::npos);
  EXPECT_NE(with_timing.find("\"site\": \"test.json.region\", "
                             "\"kind\": \"region\", \"count\": 1, "
                             "\"seconds\": "),
            std::string::npos);

  // Counts-only mode drops every timing field.
  const std::string no_timing =
      report_json(ReportOptions{.include_timing = false});
  EXPECT_EQ(no_timing.find("seconds"), std::string::npos);

  // Brace/bracket balance as a cheap well-formedness proxy.
  int braces = 0, brackets = 0;
  for (char c : with_timing) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // write_report() emits exactly the stream report.
  const std::string path = "stats_report_test.json";
  ASSERT_TRUE(write_report(path));
  std::ifstream in(path);
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  EXPECT_EQ(file_contents.str(), report_json());
  std::remove(path.c_str());
}

// TSan target: four writer threads hammer shared sites while the main
// thread reports concurrently; totals must land exactly once each.
TEST(StatsTest, ConcurrentAccumulationAndReport) {
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  ScopedStats scoped;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        STAT_COUNTER("test.conc.counter");
        STAT_REGION("test.conc.region");
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 50; ++i) {
    (void)report_json();  // concurrent reads must be race-free
  }
  for (auto& w : writers) w.join();
  const auto snap = snapshot();
  EXPECT_EQ(snap.at("test.conc.counter").count,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.at("test.conc.region").count,
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace ota::stats
