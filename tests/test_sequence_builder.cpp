// Sequence-builder tests: both representations, round-trip through parse.
#include "core/sequence_builder.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace ota::core {
namespace {

class SequenceBuilderTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
  circuit::Topology topo = circuit::make_5t_ota(tech);

  Design sample_design() {
    auto t = circuit::make_5t_ota(tech);
    const auto r = spice::evaluate(t, tech, {4e-6, 12e-6, 6e-6});
    return Design{{4e-6, 12e-6, 6e-6},
                  Specs{r.metrics.gain_db, r.metrics.bw_3db_hz, r.metrics.ugf_hz},
                  r.devices};
  }
};

TEST_F(SequenceBuilderTest, CompactSlotsCoverGroupsTimesFiveParams) {
  const SequenceBuilder b(topo, tech);
  // 3 match groups x {gm, gds, Cds, Cgs, Id}.
  EXPECT_EQ(b.slots().size(), 15u);
  EXPECT_EQ(b.representatives(), (std::vector<std::string>{"M1", "M3", "M5"}));
  EXPECT_EQ(b.slots()[0].name, "gmM1");
  EXPECT_EQ(b.slots()[4].name, "IdM1");
}

TEST_F(SequenceBuilderTest, EncoderSkeletonIsSpecIndependent) {
  const SequenceBuilder b(topo, tech);
  const std::string a = b.encoder_text(Specs{20.0, 10e6, 100e6});
  const std::string c = b.encoder_text(Specs{22.0, 20e6, 300e6});
  // Identical up to the SPEC block.
  const auto cut = [](const std::string& s) {
    return s.substr(0, s.find(" SPEC "));
  };
  EXPECT_EQ(cut(a), cut(c));
  EXPECT_NE(a, c);
  EXPECT_NE(a.find("SPEC 20dB 10MHz 100MHz"), std::string::npos);
}

TEST_F(SequenceBuilderTest, CompactDecoderRoundTripsThroughParse) {
  const SequenceBuilder b(topo, tech);
  const Design d = sample_design();
  const std::string text = b.decoder_text(d);
  const auto parsed = b.parse_decoder(text);
  ASSERT_EQ(parsed.size(), 15u);
  // Values survive the default 2-significant-digit formatting within ~3%.
  EXPECT_NEAR(parsed.at("gmM3"), d.devices.at("M3").gm,
              d.devices.at("M3").gm * 0.03);
  EXPECT_NEAR(parsed.at("CdsM1"), d.devices.at("M1").cds,
              d.devices.at("M1").cds * 0.03);
  EXPECT_NEAR(parsed.at("IdM5"), d.devices.at("M5").id,
              d.devices.at("M5").id * 0.03);
}

TEST_F(SequenceBuilderTest, ParseToleratesCorruption) {
  const SequenceBuilder b(topo, tech);
  const Design d = sample_design();
  std::string text = b.decoder_text(d);
  // Corrupt one value token into garbage.
  const size_t pos = text.find("gdsM3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(text.find(' ', pos) + 1, 3, "@@@");
  const auto parsed = b.parse_decoder(text);
  EXPECT_EQ(parsed.count("gdsM3"), 0u);  // corrupted slot dropped
  EXPECT_GT(parsed.size(), 10u);         // others still parsed
}

TEST_F(SequenceBuilderTest, ParseIgnoresNegativeAndZeroValues) {
  const SequenceBuilder b(topo, tech);
  const auto parsed = b.parse_decoder("gmM1 -2.5mS gdsM1 0S CgsM1 1fF");
  EXPECT_EQ(parsed.count("gmM1"), 0u);
  EXPECT_EQ(parsed.count("gdsM1"), 0u);
  EXPECT_EQ(parsed.count("CgsM1"), 1u);
}

TEST_F(SequenceBuilderTest, FullPathsEncoderContainsPathsAndSpecs) {
  const SequenceBuilder b(topo, tech, SequenceMode::FullPaths);
  const std::string enc = b.encoder_text(Specs{20.0, 10e6, 100e6});
  EXPECT_NE(enc.find("VIP"), std::string::npos);    // excitation vertex
  EXPECT_NE(enc.find("gmM3"), std::string::npos);   // symbolic parameter
  EXPECT_NE(enc.find(" | "), std::string::npos);    // line separator
  EXPECT_NE(enc.find("SPEC"), std::string::npos);
}

TEST_F(SequenceBuilderTest, FullPathsDecoderSubstitutesValues) {
  const SequenceBuilder b(topo, tech, SequenceMode::FullPaths);
  const Design d = sample_design();
  const std::string dec = b.decoder_text(d);
  // Symbolic parameter names replaced by SI values with device suffixes.
  EXPECT_EQ(dec.find("gmM3+"), std::string::npos);
  EXPECT_NE(dec.find("SM3"), std::string::npos);  // e.g. "505uSM3"
}

TEST_F(SequenceBuilderTest, FullPathsParseRecoversValues) {
  const SequenceBuilder b(topo, tech, SequenceMode::FullPaths);
  const Design d = sample_design();
  const auto parsed = b.parse_decoder(b.decoder_text(d));
  // The differential 5T DP-SFG exposes 18 parameters (tail gm/Cgs absent).
  EXPECT_GE(parsed.size(), 10u);
  ASSERT_EQ(parsed.count("gmM3"), 1u);
  EXPECT_NEAR(parsed.at("gmM3"), d.devices.at("M3").gm,
              d.devices.at("M3").gm * 0.03);
  ASSERT_EQ(parsed.count("CgsM3"), 1u);
  EXPECT_NEAR(parsed.at("CgsM3"), d.devices.at("M3").cgs,
              d.devices.at("M3").cgs * 0.03);
}

TEST_F(SequenceBuilderTest, SpecTextFormatting) {
  const SequenceBuilder b(topo, tech);
  EXPECT_EQ(b.spec_text(Specs{20.13, 11.38e6, 118.78e6}),
            "SPEC 20.1dB 11.4MHz 119MHz");
}

}  // namespace
}  // namespace ota::core
