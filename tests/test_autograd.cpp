// Autograd correctness: every op's analytic gradient against central finite
// differences, plus graph-machinery edge cases.
#include "ml/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"

namespace ota::ml {
namespace {

// Central finite-difference check of d(loss)/d(param) for an arbitrary
// scalar-producing closure.  Rebuilds the graph per evaluation.
void gradcheck(const std::function<Var()>& build, const Var& param,
               double tol = 1e-6, double h = 1e-6) {
  // Earlier gradchecks in the same test may have accumulated into this
  // parameter; start from a clean slate.
  if (param->grad.same_shape(param->value)) param->grad.zero();
  Var loss = build();
  backward(loss);
  const Tensor analytic = param->grad;
  ASSERT_TRUE(analytic.same_shape(param->value));

  for (int64_t i = 0; i < param->value.size(); ++i) {
    const double saved = param->value.at(i);
    param->value.at(i) = saved + h;
    const double up = build()->value.at(0);
    param->value.at(i) = saved - h;
    const double down = build()->value.at(0);
    param->value.at(i) = saved;
    const double fd = (up - down) / (2.0 * h);
    EXPECT_NEAR(analytic.at(i), fd, tol * std::max(1.0, std::fabs(fd)))
        << "component " << i;
  }
  // Clear accumulated grads for any reuse.
  param->grad.zero();
}

Tensor random_tensor(int64_t r, int64_t c, Rng& rng, double s = 1.0) {
  Tensor t(r, c);
  for (auto& v : t.data()) v = rng.normal(0.0, s);
  return t;
}

class AutogradTest : public ::testing::Test {
 protected:
  Rng rng{7};
};

TEST_F(AutogradTest, MatmulGradient) {
  Var a = parameter(random_tensor(3, 4, rng));
  Var b = parameter(random_tensor(4, 2, rng));
  gradcheck([&] { return sum(matmul(a, b)); }, a);
  gradcheck([&] { return sum(matmul(a, b)); }, b);
}

TEST_F(AutogradTest, MatmulNtGradient) {
  Var a = parameter(random_tensor(3, 4, rng));
  Var b = parameter(random_tensor(5, 4, rng));
  gradcheck([&] { return sum(matmul_nt(a, b)); }, a);
  gradcheck([&] { return sum(matmul_nt(a, b)); }, b);
}

TEST_F(AutogradTest, AddSubMulGradients) {
  Var a = parameter(random_tensor(2, 3, rng));
  Var b = parameter(random_tensor(2, 3, rng));
  gradcheck([&] { return sum(mul(add(a, b), sub(a, b))); }, a);
  gradcheck([&] { return sum(mul(add(a, b), sub(a, b))); }, b);
}

TEST_F(AutogradTest, AddBiasGradient) {
  Var a = parameter(random_tensor(4, 3, rng));
  Var bias = parameter(random_tensor(1, 3, rng));
  gradcheck([&] { return sum(mul(add_bias(a, bias), add_bias(a, bias))); }, bias);
  gradcheck([&] { return sum(mul(add_bias(a, bias), add_bias(a, bias))); }, a);
}

TEST_F(AutogradTest, ScaleAndReluGradients) {
  Var a = parameter(random_tensor(3, 3, rng));
  gradcheck([&] { return sum(relu(scale(a, 2.5))); }, a);
}

TEST_F(AutogradTest, TransposeGradient) {
  Var a = parameter(random_tensor(2, 5, rng));
  Var m = parameter(random_tensor(2, 5, rng));
  gradcheck([&] { return sum(mul(transpose(a), transpose(m))); }, a);
}

TEST_F(AutogradTest, SoftmaxGradient) {
  Var a = parameter(random_tensor(3, 4, rng));
  Var w = constant(random_tensor(3, 4, rng));
  gradcheck([&] { return sum(mul(softmax_rows(a), w)); }, a, 1e-5);
}

TEST_F(AutogradTest, CausalMaskGradient) {
  Var a = parameter(random_tensor(4, 4, rng));
  Var w = constant(random_tensor(4, 4, rng));
  gradcheck([&] { return sum(mul(softmax_rows(causal_mask(a)), w)); }, a, 1e-5);
}

TEST_F(AutogradTest, CausalMaskZerosUpperTriangle) {
  Var a = constant(random_tensor(3, 3, rng));
  const Var m = softmax_rows(causal_mask(a));
  EXPECT_NEAR(m->value(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(m->value(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(m->value(1, 2), 0.0, 1e-12);
  EXPECT_NEAR(m->value(0, 0), 1.0, 1e-12);  // row sums to one on the diagonal
}

TEST_F(AutogradTest, LayerNormGradient) {
  Var a = parameter(random_tensor(3, 6, rng));
  Var gamma = parameter(random_tensor(1, 6, rng, 0.5));
  Var beta = parameter(random_tensor(1, 6, rng, 0.5));
  Var w = constant(random_tensor(3, 6, rng));
  auto build = [&] { return sum(mul(layer_norm(a, gamma, beta), w)); };
  gradcheck(build, a, 1e-5);
  gradcheck(build, gamma, 1e-5);
  gradcheck(build, beta, 1e-5);
}

TEST_F(AutogradTest, LayerNormNormalizesRows) {
  Var a = constant(random_tensor(2, 8, rng, 3.0));
  Var gamma = constant(Tensor(1, 8, 1.0));
  Var beta = constant(Tensor(1, 8, 0.0));
  const Var o = layer_norm(a, gamma, beta);
  for (int64_t r = 0; r < 2; ++r) {
    double mu = 0.0;
    for (int64_t c = 0; c < 8; ++c) mu += o->value(r, c);
    EXPECT_NEAR(mu / 8.0, 0.0, 1e-9);
  }
}

TEST_F(AutogradTest, EmbeddingGradientScattersByToken) {
  Var table = parameter(random_tensor(5, 3, rng));
  const std::vector<nlp::TokenId> ids{1, 3, 1};
  Var loss = sum(embedding(table, ids));
  backward(loss);
  // Token 1 used twice -> gradient 2 per column; token 3 once; others zero.
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(table->grad(1, c), 2.0);
    EXPECT_DOUBLE_EQ(table->grad(3, c), 1.0);
    EXPECT_DOUBLE_EQ(table->grad(0, c), 0.0);
  }
}

TEST_F(AutogradTest, ConcatColsGradient) {
  Var a = parameter(random_tensor(3, 2, rng));
  Var b = parameter(random_tensor(3, 4, rng));
  Var w = constant(random_tensor(3, 6, rng));
  gradcheck([&] { return sum(mul(concat_cols({a, b}), w)); }, a);
  gradcheck([&] { return sum(mul(concat_cols({a, b}), w)); }, b);
}

TEST_F(AutogradTest, CrossEntropyGradient) {
  Var logits = parameter(random_tensor(4, 6, rng));
  const std::vector<nlp::TokenId> targets{2, 0, 5, 1};
  const std::vector<double> weights{1.0, 1.2, 1.0, 1.2};
  gradcheck([&] { return cross_entropy(logits, targets, weights); }, logits, 1e-5);
}

TEST_F(AutogradTest, CrossEntropyWeightingShiftsLoss) {
  // Increasing the weight on a poorly predicted position raises the loss.
  Tensor t(2, 3);
  t(0, 0) = 5.0;              // position 0 predicts class 0 well
  t(1, 0) = 5.0;              // position 1 predicts class 0 but target is 2
  Var logits = constant(t);
  const std::vector<nlp::TokenId> targets{0, 2};
  const double base =
      cross_entropy(logits, targets, {1.0, 1.0})->value.at(0);
  const double upweighted =
      cross_entropy(logits, targets, {1.0, 2.0})->value.at(0);
  EXPECT_GT(upweighted, base);
}

TEST_F(AutogradTest, DropoutTrainFalseIsIdentity) {
  Var a = parameter(random_tensor(3, 3, rng));
  const Var out = dropout(a, 0.5, /*training=*/false, rng);
  EXPECT_EQ(out.get(), a.get());
}

TEST_F(AutogradTest, DropoutPreservesExpectation) {
  Rng local(99);
  Var a = constant(Tensor(1, 10000, 1.0));
  const Var out = dropout(a, 0.3, /*training=*/true, local);
  double mean = 0.0;
  for (double v : out->value.data()) mean += v;
  mean /= static_cast<double>(out->value.size());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout keeps E[x]
}

TEST_F(AutogradTest, BackwardRequiresScalarRoot) {
  Var a = parameter(random_tensor(2, 2, rng));
  EXPECT_THROW(backward(add(a, a)), InvalidArgument);
}

TEST_F(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Var a = parameter(Tensor(1, 1, 2.0));
  backward(scale(a, 3.0));
  backward(scale(a, 3.0));
  EXPECT_DOUBLE_EQ(a->grad.at(0), 6.0);  // 3 + 3
}

TEST_F(AutogradTest, DiamondGraphAccumulatesBothBranches) {
  // loss = sum(a*a + a): both paths contribute to a's gradient.
  Var a = parameter(Tensor(1, 1, 3.0));
  Var loss = sum(add(mul(a, a), a));
  backward(loss);
  EXPECT_DOUBLE_EQ(a->grad.at(0), 7.0);  // 2*3 + 1
}

}  // namespace
}  // namespace ota::ml
