#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace ota {
namespace {

TEST(Split, Basic) {
  auto parts = split("a b  c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, CustomDelims) {
  auto parts = split("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyAndAllDelims) {
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   ").empty());
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"x", "y", "z"}, " "), "x y z");
  EXPECT_EQ(join({}, " "), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Join, RoundTripWithSplit) {
  std::vector<std::string> parts{"Iin", "1", "I1", "1/(sC+gds)", "V1"};
  EXPECT_EQ(split(join(parts, " ")), parts);
}

TEST(Trim, Basics) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("gmM1", "gm"));
  EXPECT_FALSE(starts_with("gm", "gmM1"));
  EXPECT_TRUE(ends_with("2.5mS", "mS"));
  EXPECT_FALSE(ends_with("mS", "2.5mS"));
}

}  // namespace
}  // namespace ota
