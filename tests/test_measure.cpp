// Measurement-kit tests: gain / BW / UGF on circuits with closed-form answers.
#include "spice/measure.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "circuit/topologies.hpp"
#include "spice/testbench.hpp"

namespace ota::spice {
namespace {

using circuit::Netlist;
using device::MosType;

class MeasureTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(MeasureTest, SinglePoleAmplifierMetrics) {
  // Ideal single-pole amplifier built from a VCCS-like CS stage: gain A0,
  // pole at 1/(2 pi R C), UGF at A0 * BW (single-pole identity).
  Netlist nl;
  nl.add_vsource("VDD", "vdd", "0", 1.2);
  nl.add_vsource("VIN", "g", "0", 0.45, 1.0);
  nl.add_resistor("RL", "vdd", "d", 80e3);
  nl.add_capacitor("CL", "d", "0", 1e-12);
  nl.add_mosfet("M1", MosType::Nmos, "d", "g", "0", 1e-6, 180e-9);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  const AcMetrics m = measure_ac(ac, "d");

  const auto& ss = ac.devices().at("M1");
  ASSERT_EQ(ss.conduction, device::Conduction::Saturation);
  const double rout = 1.0 / (ss.gds + 1.0 / 80e3);
  const double a0 = ss.gm * rout;
  const double ctot = 1e-12 + ss.cds;
  const double pole = 1.0 / (2.0 * std::numbers::pi * rout * ctot);

  EXPECT_NEAR(m.gain_linear, a0, a0 * 1e-3);
  EXPECT_NEAR(m.bw_3db_hz, pole, pole * 0.02);
  EXPECT_NEAR(m.ugf_hz, a0 * pole, a0 * pole * 0.05);  // gain-bandwidth product
  // Dominantly single-pole: phase margin near 90 degrees (the Cgs
  // feedforward zero shifts it several degrees at this low gain).
  EXPECT_NEAR(m.phase_margin_deg, 90.0, 12.0);
}

TEST_F(MeasureTest, PassiveAttenuatorHasNoUgf) {
  Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "out", 9e3);
  nl.add_resistor("R2", "out", "0", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-12);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  const AcMetrics m = measure_ac(ac, "out");
  EXPECT_NEAR(m.gain_linear, 0.1, 1e-6);
  EXPECT_DOUBLE_EQ(m.ugf_hz, 0.0);  // never crosses unity
  EXPECT_GT(m.bw_3db_hz, 0.0);
}

TEST_F(MeasureTest, FindFallingCrossingBracketsCorrectly) {
  Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "out", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-9);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e-6);
  auto crossing = find_falling_crossing(ac, "out", 1.0 / std::numbers::sqrt2);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_NEAR(*crossing, fc, fc * 1e-3);
  // A target above the DC magnitude has no falling crossing.
  EXPECT_FALSE(find_falling_crossing(ac, "out", 2.0).has_value());
}

TEST_F(MeasureTest, EvaluateFiveTransistorOtaEndToEnd) {
  auto topo = circuit::make_5t_ota(tech);
  const EvalResult r = evaluate(topo, tech, {4e-6, 12e-6, 6e-6});
  EXPECT_GT(r.metrics.gain_db, 10.0);
  EXPECT_LT(r.metrics.gain_db, 30.0);
  EXPECT_GT(r.metrics.bw_3db_hz, 1e6);
  EXPECT_GT(r.metrics.ugf_hz, r.metrics.bw_3db_hz);  // gain > 1 implies this
  EXPECT_EQ(r.devices.size(), 5u);
}

TEST_F(MeasureTest, UgfScalesWithTailCurrent) {
  // Wider tail -> more current -> higher gm -> higher UGF (same CL).
  auto topo = circuit::make_5t_ota(tech);
  const EvalResult small = evaluate(topo, tech, {4e-6, 12e-6, 3e-6});
  const EvalResult large = evaluate(topo, tech, {4e-6, 12e-6, 12e-6});
  EXPECT_GT(large.metrics.ugf_hz, small.metrics.ugf_hz * 1.5);
}

TEST_F(MeasureTest, TwoStageOtaHasHigherGainThanFirstStageAlone) {
  auto topo2 = circuit::make_2s_ota(tech);
  const EvalResult two = evaluate(topo2, tech, {4e-6, 12e-6, 6e-6, 12e-6, 3e-6});
  auto topo1 = circuit::make_5t_ota(tech);
  const EvalResult one = evaluate(topo1, tech, {4e-6, 12e-6, 6e-6});
  EXPECT_GT(two.metrics.gain_db, one.metrics.gain_db + 8.0);
  // The Miller-compensated two-stage has a much lower 3 dB bandwidth.
  EXPECT_LT(two.metrics.bw_3db_hz, one.metrics.bw_3db_hz);
}

}  // namespace
}  // namespace ota::spice
