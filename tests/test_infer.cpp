// InferenceEngine tests: the bit-identity contract between the autograd-free
// KV-cache engine and the Var-based reference path, batch semantics, the
// positional-table guard rails, and the versioned model-file format.
#include "ml/infer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <utility>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/sizing_model.hpp"
#include "ml/adam.hpp"

namespace ota::ml {
namespace {

using nlp::TokenId;
using nlp::Vocabulary;

TransformerConfig tiny_config(uint64_t seed, int64_t max_len = 64) {
  TransformerConfig c;
  c.vocab_size = 10;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_len = max_len;
  c.dropout = 0.0;
  c.seed = seed;
  return c;
}

/// Trains a tiny copy-task model (enough structure for nontrivial decoding).
/// Results are cached per (seed, epochs) so suites sharing a model train it
/// once.
const Transformer& trained_model(uint64_t seed, int epochs) {
  static std::map<std::pair<uint64_t, int>, std::unique_ptr<Transformer>> cache;
  auto& slot = cache[{seed, epochs}];
  if (slot) return *slot;
  auto model = std::make_unique<Transformer>(tiny_config(seed));
  AdamOptions aopt;
  aopt.lr = 3e-3;
  Adam adam(model->parameters(), aopt);
  Rng rng(seed);
  const std::vector<std::vector<TokenId>> seqs{
      {4, 5, 6, 7}, {5, 4, 7, 6}, {6, 7, 4, 5}, {7, 6, 5, 4}};
  const std::vector<double> weights(5, 1.0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& s : seqs) {
      const Var l = model->loss(s, s, weights, rng);
      backward(l);
      adam.step();
    }
  }
  slot = std::move(model);
  return *slot;
}

const std::vector<std::vector<TokenId>>& probe_sources() {
  // Trained patterns, permutations the model never saw, and degenerate
  // lengths: greedy decoding must agree on all of them.
  static const std::vector<std::vector<TokenId>> srcs{
      {4, 5, 6, 7}, {5, 4, 7, 6}, {6, 7, 4, 5}, {7, 6, 5, 4},
      {4, 4, 4, 4}, {7, 5}, {6}, {5, 6, 7, 4, 5, 6, 7, 4}};
  return srcs;
}

TEST(InferenceEngine, GreedyMatchesReferenceOnTrainedModels) {
  // The property the whole refactor rests on: for every trained model the
  // engine sees, greedy output is token-for-token identical to the
  // Var-based reference.  Three differently-seeded/-converged models plus
  // an untrained one exercise sharp and diffuse logit landscapes.
  struct Case {
    uint64_t seed;
    int epochs;
  };
  for (const Case& c : {Case{5, 60}, Case{9, 110}, Case{13, 25}, Case{21, 0}}) {
    const Transformer& model = trained_model(c.seed, c.epochs);
    const InferenceEngine engine(model);
    for (const auto& src : probe_sources()) {
      EXPECT_EQ(engine.greedy_decode(src, 16), model.greedy_decode(src, 16))
          << "seed " << c.seed << " epochs " << c.epochs;
    }
  }
}

TEST(InferenceEngine, IncrementalLogitsMatchFullRecompute) {
  // The KV cache makes each step one-row work; the logits it produces must
  // agree with re-running the full decoder over the whole prefix.
  const Transformer& model = trained_model(5, 60);
  const InferenceEngine engine(model);
  Rng rng(0);
  for (const auto& src : probe_sources()) {
    const Var memory = model.encode(src, /*training=*/false, rng);
    InferenceEngine::Session session(engine, src);
    std::vector<TokenId> prefix{Vocabulary::kBos};
    for (int step = 0; step < 8; ++step) {
      const Tensor& incremental = session.step(prefix.back());
      const Var full = model.decode(memory, prefix, /*training=*/false, rng);
      const int64_t last = full->value.rows() - 1;
      ASSERT_EQ(incremental.cols(), full->value.cols());
      for (int64_t c = 0; c < incremental.cols(); ++c) {
        ASSERT_NEAR(incremental(0, c), full->value(last, c), 1e-9)
            << "step " << step << " column " << c;
      }
      // Continue along the greedy path.
      TokenId best = 0;
      double best_score = -1e300;
      for (int64_t c = 0; c < incremental.cols(); ++c) {
        if (incremental(0, c) > best_score) {
          best_score = incremental(0, c);
          best = static_cast<TokenId>(c);
        }
      }
      prefix.push_back(best);
    }
  }
}

TEST(InferenceEngine, BatchOfOneEqualsSingle) {
  const Transformer& model = trained_model(9, 110);
  const InferenceEngine engine(model);
  for (const auto& src : probe_sources()) {
    const auto batch = engine.greedy_decode_batch({src}, 16);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0], engine.greedy_decode(src, 16));
  }
}

TEST(InferenceEngine, BatchBitIdenticalAcrossThreadCounts) {
  const Transformer& model = trained_model(5, 60);
  const InferenceEngine engine(model);
  const auto& srcs = probe_sources();
  const auto serial = engine.greedy_decode_batch(srcs, 16, /*threads=*/1);
  const auto wide = engine.greedy_decode_batch(srcs, 16, /*threads=*/8);
  ASSERT_EQ(serial.size(), srcs.size());
  EXPECT_EQ(serial, wide);
}

TEST(InferenceEngine, BatchRejectsNonpositiveTokenBudget) {
  // A zero/negative budget on a non-empty batch would silently decode
  // nothing; the engine refuses it with a readable error instead.  An empty
  // batch is a no-op whatever the budget.
  const Transformer& model = trained_model(5, 60);
  const InferenceEngine engine(model);
  EXPECT_THROW((void)engine.greedy_decode_batch({{4, 5}}, 0), InvalidArgument);
  EXPECT_THROW((void)engine.greedy_decode_batch({{4, 5}}, -7, /*threads=*/8),
               InvalidArgument);
  EXPECT_TRUE(engine.greedy_decode_batch({}, 0).empty());
}

TEST(InferenceEngine, EncoderInputLongerThanTableThrows) {
  const Transformer model(tiny_config(7, /*max_len=*/8));
  const InferenceEngine engine(model);
  const std::vector<TokenId> too_long(9, 4);
  EXPECT_THROW((void)model.greedy_decode(too_long, 4), InvalidArgument);
  EXPECT_THROW((void)engine.greedy_decode(too_long, 4), InvalidArgument);
}

TEST(InferenceEngine, DecodeBudgetClampedToTable) {
  // A generous token budget must not index past the positional table: both
  // paths clamp to max_len and stay in agreement.
  const Transformer model(tiny_config(7, /*max_len=*/8));
  const InferenceEngine engine(model);
  const std::vector<TokenId> src{4, 5, 6};
  const auto reference = model.greedy_decode(src, 1000);
  const auto fast = engine.greedy_decode(src, 1000);
  EXPECT_LE(reference.size(), 8u);
  EXPECT_EQ(fast, reference);
}

TEST(InferenceEngine, SessionRefusesStepsPastTable) {
  const Transformer model(tiny_config(7, /*max_len=*/4));
  const InferenceEngine engine(model);
  InferenceEngine::Session session(engine, {4, 5});
  TokenId tok = Vocabulary::kBos;
  for (int i = 0; i < 4; ++i) (void)session.step(tok);
  EXPECT_THROW((void)session.step(tok), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Float32 tier

TEST(InferenceEngine, F32GreedyAgreesWithDoubleOnTrainedModels) {
  // The agreement gate the fast tier ships under: on trained models (sharp
  // logit landscapes) the float32 tier's token streams must be identical to
  // the double reference.  The untrained seed-21 model is deliberately
  // absent — diffuse, near-tied logits are exactly where a narrowed tier may
  // legitimately pick a different argmax, and nothing serves untrained
  // models.
  struct Case {
    uint64_t seed;
    int epochs;
  };
  for (const Case& c : {Case{5, 60}, Case{9, 110}, Case{13, 25}}) {
    const Transformer& model = trained_model(c.seed, c.epochs);
    const InferenceEngine engine(model);
    for (const auto& src : probe_sources()) {
      EXPECT_EQ(engine.greedy_decode(src, 16, Precision::kFloat32),
                engine.greedy_decode(src, 16, Precision::kDouble))
          << "seed " << c.seed << " epochs " << c.epochs;
    }
  }
}

TEST(InferenceEngine, F32LogitsTrackDoubleWithinFloatTolerance) {
  // Kernel-level accuracy bound: along the double tier's greedy path, the
  // f32 session's widened logits must track the double logits to float
  // precision (relative, compounding across 2 layers of norms and attention).
  const Transformer& model = trained_model(5, 60);
  const InferenceEngine engine(model);
  for (const auto& src : probe_sources()) {
    InferenceEngine::Session ref(engine, src, Precision::kDouble);
    InferenceEngine::Session fast(engine, src, Precision::kFloat32);
    EXPECT_EQ(fast.precision(), Precision::kFloat32);
    TokenId prev = Vocabulary::kBos;
    for (int step = 0; step < 8; ++step) {
      const Tensor& want = ref.step(prev);
      const Tensor& got = fast.step(prev);
      ASSERT_EQ(got.cols(), want.cols());
      for (int64_t c = 0; c < want.cols(); ++c) {
        const double scale = std::max(1.0, std::abs(want(0, c)));
        ASSERT_NEAR(got(0, c), want(0, c), 1e-3 * scale)
            << "step " << step << " column " << c;
      }
      prev = argmax_token(want);
    }
  }
}

TEST(InferenceEngine, F32EncodeTracksDoubleEncode) {
  const Transformer& model = trained_model(9, 110);
  const InferenceEngine engine(model);
  for (const auto& src : probe_sources()) {
    const Tensor want = engine.encode(src);
    const TensorF got = engine.encode_f32(src);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (int64_t i = 0; i < want.size(); ++i) {
      const double scale = std::max(1.0, std::abs(want.at(i)));
      ASSERT_NEAR(static_cast<double>(got.at(i)), want.at(i), 1e-3 * scale)
          << "flat index " << i;
    }
  }
}

TEST(InferenceEngine, F32BatchBitIdenticalAcrossThreadCounts) {
  // Same determinism property the double tier holds: the f32 batch result
  // must not depend on pool width (sessions are private, kernels serial).
  const Transformer& model = trained_model(5, 60);
  const InferenceEngine engine(model);
  const auto& srcs = probe_sources();
  const auto serial =
      engine.greedy_decode_batch(srcs, 16, /*threads=*/1, Precision::kFloat32);
  const auto wide =
      engine.greedy_decode_batch(srcs, 16, /*threads=*/8, Precision::kFloat32);
  ASSERT_EQ(serial.size(), srcs.size());
  EXPECT_EQ(serial, wide);
}

TEST(InferenceEngine, ForgedPrecisionIsRefused) {
  // An out-of-range Precision (static_cast from a config knob) must be
  // refused at the door — session construction and the batch entry point —
  // not silently treated as one of the tiers.
  const Transformer& model = trained_model(5, 60);
  const InferenceEngine engine(model);
  const auto forged = static_cast<Precision>(7);
  EXPECT_THROW(InferenceEngine::Session(engine, {4, 5}, forged),
               InvalidArgument);
  EXPECT_THROW((void)engine.greedy_decode_batch({{4, 5}}, 8, 1, forged),
               InvalidArgument);
}

}  // namespace
}  // namespace ota::ml

namespace ota::core {
namespace {

/// A tiny synthetic text-to-text corpus (no SPICE dataset needed): the model
/// only has to be deterministic, not accurate.  Trained once, shared by
/// every test in the suite.
const SizingModel& trained_sizing_model() {
  static const SizingModel shared = [] {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int i = 0; i < 12; ++i) {
      pairs.emplace_back(
          "gain=" + std::to_string(40 + i) + " bw=" + std::to_string(10 + i),
          "gmM1=" + std::to_string(1 + i) + "e-3 gdsM1=" +
              std::to_string(2 + i) + "e-5");
    }
    SizingModel model;
    TrainOptions opt;
    opt.epochs = 2;
    opt.d_model = 16;
    opt.n_heads = 2;
    opt.n_layers = 1;
    opt.d_ff = 32;
    opt.bpe_merges = 32;
    opt.max_len = 256;
    model.train(pairs, opt);
    return model;
  }();
  return shared;
}

TEST(SizingModelInfer, PredictBatchBitIdenticalAcrossThreadCounts) {
  const SizingModel& model = trained_sizing_model();
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) {
    texts.push_back("gain=" + std::to_string(41 + i) + " bw=" + std::to_string(12 + i));
  }
  std::vector<std::string> serial;
  for (const auto& t : texts) serial.push_back(model.predict(t, 64));
  EXPECT_EQ(model.predict_batch(texts, 64, /*threads=*/1), serial);
  EXPECT_EQ(model.predict_batch(texts, 64, /*threads=*/8), serial);
}

TEST(SizingModelInfer, PredictBatchPrecisionOverload) {
  // The 4-arg overload at kDouble IS the 3-arg path (bit-identical); the
  // kFloat32 tier must be deterministic for any thread count.  Token-level
  // agreement between the tiers is asserted on well-trained models (the ml
  // section above, the DeterminismTest serving suite, bench_infer_tier) —
  // this 2-epoch text model only owes tier determinism.
  const SizingModel& model = trained_sizing_model();
  std::vector<std::string> texts;
  for (int i = 0; i < 4; ++i) {
    texts.push_back("gain=" + std::to_string(42 + i) +
                    " bw=" + std::to_string(13 + i));
  }
  EXPECT_EQ(model.predict_batch(texts, 64, 1, ml::Precision::kDouble),
            model.predict_batch(texts, 64, 1));
  const auto f32_serial =
      model.predict_batch(texts, 64, 1, ml::Precision::kFloat32);
  EXPECT_EQ(model.predict_batch(texts, 64, 8, ml::Precision::kFloat32),
            f32_serial);
  EXPECT_THROW((void)model.predict_batch(texts, 64, 1,
                                         static_cast<ml::Precision>(3)),
               InvalidArgument);
}

TEST(SizingModelInfer, PredictBatchEmptyInputReturnsEmpty) {
  // The empty batch needs no engine at all — it must work even on an
  // untrained model (degenerate sweeps, drained campaign queues).
  const SizingModel untrained;
  EXPECT_TRUE(untrained.predict_batch({}, 64).empty());
  EXPECT_TRUE(trained_sizing_model().predict_batch({}, 64, 8).empty());
}

TEST(SizingModelInfer, EnginePredictionMatchesReferenceTransformer) {
  const SizingModel& model = trained_sizing_model();
  const std::string text = "gain=45 bw=17";
  const auto src = model.tokenizer().encode(text);
  EXPECT_EQ(model.engine().greedy_decode(src, 64),
            model.transformer().greedy_decode(src, 64));
}

TEST(SizingModelInfer, SaveLoadRoundTripsV2Format) {
  const SizingModel& model = trained_sizing_model();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ota_infer_v2").string();
  model.save(prefix);
  const std::string expected = model.predict("gain=43 bw=14", 64);

  SizingModel loaded;
  ASSERT_TRUE(loaded.load(prefix));
  EXPECT_EQ(loaded.predict("gain=43 bw=14", 64), expected);
  EXPECT_EQ(loaded.transformer().config().d_model, 16);
  std::remove((prefix + ".bpe").c_str());
  std::remove((prefix + ".model").c_str());
}

TEST(SizingModelInfer, LoadAcceptsLegacyRawStructFormat) {
  // Pre-version model files started with a raw TransformerConfig dump; load
  // must still read them (same-platform best effort).
  const SizingModel& model = trained_sizing_model();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ota_infer_legacy").string();
  {
    std::ofstream bpe(prefix + ".bpe");
    bpe << model.tokenizer().serialize();
  }
  {
    std::ofstream mdl(prefix + ".model", std::ios::binary);
    const auto& cfg = model.transformer().config();
    mdl.write(reinterpret_cast<const char*>(&cfg), sizeof cfg);
    model.transformer().save(mdl);
  }
  SizingModel loaded;
  ASSERT_TRUE(loaded.load(prefix));
  EXPECT_EQ(loaded.predict("gain=43 bw=14", 64),
            model.predict("gain=43 bw=14", 64));
  std::remove((prefix + ".bpe").c_str());
  std::remove((prefix + ".model").c_str());
}

TEST(SizingModelInfer, LoadRejectsCorruptV2Header) {
  // A well-tagged header with insane fields must fail with a clear error,
  // not reach the Transformer constructor (division by zero heads, huge
  // allocations).
  const SizingModel& model = trained_sizing_model();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ota_infer_corrupt").string();
  {
    std::ofstream bpe(prefix + ".bpe");
    bpe << model.tokenizer().serialize();
  }
  {
    std::ofstream mdl(prefix + ".model", std::ios::binary);
    mdl.write("otasmdl2", 8);
    const int64_t vocab = 70, d_model = 16, n_heads = 0, n_layers = 1,
                  d_ff = 32, max_len = 256;
    const double dropout = 0.1;
    const uint64_t seed = 7;
    for (const int64_t* f : {&vocab, &d_model, &n_heads, &n_layers, &d_ff, &max_len}) {
      mdl.write(reinterpret_cast<const char*>(f), sizeof(int64_t));
    }
    mdl.write(reinterpret_cast<const char*>(&dropout), sizeof dropout);
    mdl.write(reinterpret_cast<const char*>(&seed), sizeof seed);
  }
  SizingModel loaded;
  EXPECT_THROW((void)loaded.load(prefix), InvalidArgument);
  std::remove((prefix + ".bpe").c_str());
  std::remove((prefix + ".model").c_str());
}

TEST(SizingModelInfer, LoadRejectsUnrecognizedModelFile) {
  const SizingModel& model = trained_sizing_model();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ota_infer_bad").string();
  {
    std::ofstream bpe(prefix + ".bpe");
    bpe << model.tokenizer().serialize();
  }
  {
    std::ofstream mdl(prefix + ".model", std::ios::binary);
    mdl << "this is not a model file of any known vintage";
  }
  SizingModel loaded;
  EXPECT_THROW((void)loaded.load(prefix), InvalidArgument);
  std::remove((prefix + ".bpe").c_str());
  std::remove((prefix + ".model").c_str());
}

}  // namespace
}  // namespace ota::core
