// Cubic-spline tests: exactness, smoothness, and the LUT interpolation
// accuracy the paper relies on (Section III-D.1).
#include "linalg/spline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace ota::linalg {
namespace {

TEST(CubicSpline1D, InterpolatesKnotsExactly) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 2.0, 0.0, 5.0};
  CubicSpline1D s(x, y);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s(x[i]), y[i], 1e-12);
  }
}

TEST(CubicSpline1D, TwoPointsIsLinear) {
  CubicSpline1D s({0.0, 2.0}, {1.0, 5.0});
  EXPECT_NEAR(s(1.0), 3.0, 1e-12);
  EXPECT_NEAR(s(0.5), 2.0, 1e-12);
  EXPECT_NEAR(s.derivative(1.3), 2.0, 1e-12);
}

TEST(CubicSpline1D, ReproducesLinearFunctionExactly) {
  // Natural splines reproduce degree-1 polynomials exactly.
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(0.1 * i);
    y.push_back(3.0 * x.back() - 0.5);
  }
  CubicSpline1D s(x, y);
  for (double q = 0.0; q <= 1.0; q += 0.013) {
    EXPECT_NEAR(s(q), 3.0 * q - 0.5, 1e-12);
  }
}

TEST(CubicSpline1D, SmoothFunctionAccuracy) {
  // 60 mV-style grid over a smooth exponential-ish curve: mid-segment error
  // should be far below the sample spacing effect (paper's justification for
  // the coarse LUT grid + spline).
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(0.06 * i);
    y.push_back(std::exp(x.back()));
  }
  CubicSpline1D s(x, y);
  double max_rel = 0.0;
  for (double q = 0.0; q <= 1.2; q += 0.007) {
    max_rel = std::max(max_rel, std::fabs(s(q) - std::exp(q)) / std::exp(q));
  }
  // Natural boundary conditions limit edge accuracy; interior error is lower.
  EXPECT_LT(max_rel, 5e-4);
}

TEST(CubicSpline1D, DerivativeMatchesFiniteDifference) {
  std::vector<double> x, y;
  for (int i = 0; i <= 15; ++i) {
    x.push_back(0.1 * i);
    y.push_back(std::sin(x.back()));
  }
  CubicSpline1D s(x, y);
  const double h = 1e-6;
  for (double q = 0.1; q < 1.4; q += 0.11) {
    const double fd = (s(q + h) - s(q - h)) / (2.0 * h);
    EXPECT_NEAR(s.derivative(q), fd, 1e-6);
  }
}

TEST(CubicSpline1D, Validation) {
  EXPECT_THROW(CubicSpline1D({1.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(CubicSpline1D({0.0, 0.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(CubicSpline1D({1.0, 0.5}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(CubicSpline1D({0.0, 1.0}, {1.0}), InvalidArgument);
}

TEST(BicubicSpline, InterpolatesGridExactly) {
  std::vector<double> x{0.0, 1.0, 2.0};
  std::vector<double> y{0.0, 0.5, 1.0, 1.5};
  MatrixD z(3, 4);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j) z(i, j) = static_cast<double>(i * 10 + j);
  BicubicSpline s(x, y, z);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(s(x[i], y[j]), z(i, j), 1e-10);
}

TEST(BicubicSpline, BilinearFunctionReproduced) {
  std::vector<double> x, y;
  for (int i = 0; i <= 8; ++i) x.push_back(0.15 * i);
  for (int j = 0; j <= 6; ++j) y.push_back(0.2 * j);
  MatrixD z(x.size(), y.size());
  auto f = [](double a, double b) { return 2.0 * a - 3.0 * b + 0.5 * a * b; };
  for (size_t i = 0; i < x.size(); ++i)
    for (size_t j = 0; j < y.size(); ++j) z(i, j) = f(x[i], y[j]);
  BicubicSpline s(x, y, z);
  for (double a = 0.0; a <= 1.2; a += 0.07)
    for (double b = 0.0; b <= 1.2; b += 0.09)
      EXPECT_NEAR(s(a, b), f(a, b), 1e-9) << a << "," << b;
}

TEST(BicubicSpline, SmoothSurfaceAccuracy) {
  // Emulates the 21x21 LUT grid of the paper (0..1.2 V, 60 mV step).
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) x.push_back(0.06 * i);
  y = x;
  auto f = [](double vgs, double vds) {
    return std::log1p(std::exp(8.0 * (vgs - 0.35))) * (1.0 + 0.4 * vds);
  };
  MatrixD z(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i)
    for (size_t j = 0; j < y.size(); ++j) z(i, j) = f(x[i], y[j]);
  BicubicSpline s(x, y, z);
  double max_err = 0.0;
  for (double a = 0.0; a <= 1.2; a += 0.017)
    for (double b = 0.0; b <= 1.2; b += 0.019)
      max_err = std::max(max_err, std::fabs(s(a, b) - f(a, b)));
  EXPECT_LT(max_err, 2e-3);
}

TEST(BicubicSpline, ClampsOutsideGrid) {
  std::vector<double> x{0.0, 1.0};
  std::vector<double> y{0.0, 1.0};
  MatrixD z(2, 2);
  z(0, 0) = 0.0; z(0, 1) = 1.0; z(1, 0) = 2.0; z(1, 1) = 3.0;
  BicubicSpline s(x, y, z);
  EXPECT_NEAR(s(-5.0, -5.0), z(0, 0), 1e-12);
  EXPECT_NEAR(s(5.0, 5.0), z(1, 1), 1e-12);
}

TEST(BicubicSpline, GridMismatchThrows) {
  MatrixD z(2, 3);
  EXPECT_THROW(BicubicSpline({0.0, 1.0}, {0.0, 1.0}, z), InvalidArgument);
}

}  // namespace
}  // namespace ota::linalg
