#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ota::circuit {
namespace {

TEST(Netlist, NodeCreationAndLookup) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node("gnd"), kGround);
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(nl.node("a"), a);  // idempotent
  EXPECT_EQ(nl.find_node("b"), b);
  EXPECT_EQ(nl.node_name(a), "a");
  EXPECT_EQ(nl.node_count(), 3);  // ground + a + b
  EXPECT_THROW(nl.find_node("zz"), InvalidArgument);
}

TEST(Netlist, AddComponents) {
  Netlist nl;
  nl.add_resistor("R1", "a", "0", 1e3);
  nl.add_capacitor("C1", "a", "b", 1e-12);
  nl.add_vsource("V1", "b", "0", 1.2);
  nl.add_isource("I1", "a", "0", 1e-6);
  nl.add_mosfet("M1", device::MosType::Nmos, "a", "b", "0", 1e-6, 180e-9);
  EXPECT_EQ(nl.resistors().size(), 1u);
  EXPECT_EQ(nl.capacitors().size(), 1u);
  EXPECT_EQ(nl.vsources().size(), 1u);
  EXPECT_EQ(nl.isources().size(), 1u);
  EXPECT_EQ(nl.mosfets().size(), 1u);
  EXPECT_TRUE(nl.has_component("M1"));
  EXPECT_FALSE(nl.has_component("M2"));
}

TEST(Netlist, DuplicateNamesRejectedAcrossKinds) {
  Netlist nl;
  nl.add_resistor("X", "a", "0", 1e3);
  EXPECT_THROW(nl.add_capacitor("X", "a", "0", 1e-12), InvalidArgument);
  EXPECT_THROW(nl.add_mosfet("X", device::MosType::Nmos, "a", "b", "0", 1e-6, 1e-7),
               InvalidArgument);
}

TEST(Netlist, InvalidComponentValuesRejected) {
  Netlist nl;
  EXPECT_THROW(nl.add_resistor("R", "a", "0", 0.0), InvalidArgument);
  EXPECT_THROW(nl.add_capacitor("C", "a", "0", -1e-12), InvalidArgument);
  EXPECT_THROW(nl.add_mosfet("M", device::MosType::Nmos, "a", "b", "0", 0.0, 1e-7),
               InvalidArgument);
}

TEST(Netlist, SetWidth) {
  Netlist nl;
  nl.add_mosfet("M1", device::MosType::Pmos, "d", "g", "s", 1e-6, 180e-9);
  nl.set_width("M1", 42e-6);
  EXPECT_DOUBLE_EQ(nl.mosfet("M1").w, 42e-6);
  EXPECT_THROW(nl.set_width("M1", -1.0), InvalidArgument);
  EXPECT_THROW(nl.set_width("Mx", 1e-6), InvalidArgument);
}

TEST(Netlist, MutableAccessors) {
  Netlist nl;
  nl.add_vsource("V1", "a", "0", 1.0, 0.5);
  nl.add_capacitor("C1", "a", "0", 1e-12);
  nl.vsource("V1").dc = 0.8;
  nl.capacitor("C1").capacitance = 2e-12;
  EXPECT_DOUBLE_EQ(nl.vsources()[0].dc, 0.8);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].capacitance, 2e-12);
  EXPECT_THROW(nl.vsource("nope"), InvalidArgument);
  EXPECT_THROW(nl.capacitor("nope"), InvalidArgument);
}

}  // namespace
}  // namespace ota::circuit
