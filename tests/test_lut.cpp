// Device-LUT tests (paper Fig. 5): interpolation accuracy against direct
// model evaluation, per-unit-width storage, gm/Id inversion.
#include "lut/device_lut.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace ota::lut {
namespace {

class LutTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
  device::MosModel nmos{tech.nmos};
  device::MosModel pmos{tech.pmos};
  DeviceLut lut{nmos};
  DeviceLut plut{pmos};
};

TEST_F(LutTest, GridShapeMatchesPaper) {
  // 0-1.2 V in 60 mV steps -> 21 points per axis.
  EXPECT_EQ(lut.vgs_axis().size(), 21u);
  EXPECT_EQ(lut.vds_axis().size(), 21u);
  EXPECT_DOUBLE_EQ(lut.options().wref, 700e-9);
  EXPECT_DOUBLE_EQ(lut.options().l, 180e-9);
}

TEST_F(LutTest, GridEntriesMatchModelAtKnots) {
  const auto& vg = lut.vgs_axis();
  const auto& vd = lut.vds_axis();
  for (size_t i = 0; i < vg.size(); i += 5) {
    for (size_t j = 0; j < vd.size(); j += 5) {
      const auto e = lut.grid_entry(i, j);
      const auto ss = nmos.evaluate(vg[i], vd[j], 700e-9, 180e-9);
      EXPECT_NEAR(e.id, ss.id / 700e-9, std::fabs(ss.id / 700e-9) * 1e-12);
      EXPECT_NEAR(e.gm, ss.gm / 700e-9, std::fabs(ss.gm / 700e-9) * 1e-12);
    }
  }
}

TEST_F(LutTest, InterpolationAccuracyOffGrid) {
  // Paper claim: coarse grid + cubic splines gives accurate intermediate
  // values.  Check against the analytic model at off-grid points in the
  // conducting regime.
  double worst = 0.0;
  for (double vgs = 0.33; vgs <= 1.15; vgs += 0.037) {
    for (double vds = 0.21; vds <= 1.15; vds += 0.043) {
      const LutEntry e = lut.lookup(vgs, vds);
      const auto ss = nmos.evaluate(vgs, vds, 700e-9, 180e-9);
      const double ref = ss.gm / 700e-9;
      if (ref > 1e-3) {  // meaningful conduction only
        worst = std::max(worst, std::fabs(e.gm - ref) / ref);
      }
    }
  }
  EXPECT_LT(worst, 0.01);  // < 1% interpolation error
}

TEST_F(LutTest, LookupClampsOutsideWindow) {
  const LutEntry inside = lut.lookup(1.2, 1.2);
  const LutEntry beyond = lut.lookup(2.0, 3.0);
  EXPECT_DOUBLE_EQ(inside.gm, beyond.gm);
}

TEST_F(LutTest, WidthScalingRoundTrip) {
  // For any W, model outputs == W * per-unit-width LUT outputs (within
  // interpolation error): the property that justifies Wref storage.
  for (double w : {0.7e-6, 5e-6, 50e-6}) {
    const auto ss = nmos.evaluate(0.52, 0.63, w, 180e-9);
    const LutEntry e = lut.lookup(0.52, 0.63);
    EXPECT_NEAR(ss.gm, e.gm * w, ss.gm * 0.01);
    EXPECT_NEAR(ss.id, e.id * w, ss.id * 0.01);
    EXPECT_NEAR(ss.cgs, e.cgs * w, ss.cgs * 0.01);
  }
}

TEST_F(LutTest, GmIdRangeIsSane) {
  const auto [lo, hi] = lut.gmid_range(0.6);
  // Weak-inversion ceiling ~ 1/(n*phi_t) ~ 29.7 /V; strong inversion a few /V.
  EXPECT_GT(hi, 20.0);
  EXPECT_LT(hi, 35.0);
  EXPECT_GT(lo, 0.5);
  EXPECT_LT(lo, 8.0);
}

TEST_F(LutTest, FindVgsForGmidInvertsCorrectly) {
  for (double gmid : {5.0, 10.0, 15.0, 20.0, 25.0}) {
    const auto vgs = lut.find_vgs_for_gmid(gmid, 0.6);
    ASSERT_TRUE(vgs.has_value()) << gmid;
    const LutEntry e = lut.lookup(*vgs, 0.6);
    EXPECT_NEAR(e.gm / e.id, gmid, gmid * 1e-3) << "gmid=" << gmid;
  }
}

TEST_F(LutTest, FindVgsRejectsOutOfRange) {
  EXPECT_FALSE(lut.find_vgs_for_gmid(100.0, 0.6).has_value());
  EXPECT_FALSE(lut.find_vgs_for_gmid(0.01, 0.6).has_value());
  EXPECT_FALSE(lut.find_vgs_for_gmid(-5.0, 0.6).has_value());
}

TEST_F(LutTest, PmosLutBehavesLikeNmosLut) {
  const LutEntry e = plut.lookup(0.6, 0.6);
  EXPECT_GT(e.id, 0.0);
  EXPECT_GT(e.gm, 0.0);
  // PMOS mobility is lower: less current per width than NMOS at equal bias.
  const LutEntry n = lut.lookup(0.6, 0.6);
  EXPECT_LT(e.id, n.id);
}

TEST_F(LutTest, BadOptionsThrow) {
  LutOptions bad;
  bad.v_step = 0.0;
  EXPECT_THROW((void)DeviceLut(nmos, bad), ota::InvalidArgument);
  LutOptions inverted;
  inverted.v_min = 1.0;
  inverted.v_max = 0.0;
  EXPECT_THROW((void)DeviceLut(nmos, inverted), ota::InvalidArgument);
}

class LutGmIdSweep : public ::testing::TestWithParam<double> {};

TEST_P(LutGmIdSweep, GmIdWidthIndependenceThroughLut) {
  // The LUT's gm/Id at any bias equals the model's gm/Id at any width.
  const auto tech = device::Technology::default65nm();
  const device::MosModel nmos{tech.nmos};
  const DeviceLut lut{nmos};
  const double vgs = GetParam();
  const LutEntry e = lut.lookup(vgs, 0.6);
  for (double w : {0.7e-6, 7e-6, 49e-6}) {
    const auto ss = nmos.evaluate(vgs, 0.6, w, 180e-9);
    EXPECT_NEAR(ss.gm / ss.id, e.gm / e.id, (e.gm / e.id) * 0.01) << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Biases, LutGmIdSweep,
                         ::testing::Values(0.3, 0.4, 0.5, 0.65, 0.8, 1.0));

}  // namespace
}  // namespace ota::lut
