// DP-SFG construction tests against the paper's Fig. 2 running example, plus
// structural checks on the OTA graphs.
#include "sfg/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/topologies.hpp"
#include "common/error.hpp"
#include "sfg/sequence.hpp"
#include "spice/dc.hpp"

namespace ota::sfg {
namespace {

class SfgTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  DpSfg build_active_inductor() {
    auto ai = circuit::make_active_inductor(tech);
    const auto dc = spice::solve_dc(ai.netlist, tech);
    const auto devices = spice::small_signal_map(ai.netlist, tech, dc);
    netlist = ai.netlist;
    return DpSfg::build(netlist, devices, ai.output_node);
  }

  circuit::Netlist netlist;
};

TEST_F(SfgTest, ActiveInductorVertices) {
  const DpSfg g = build_active_inductor();
  // Excitation Iin, I/V pairs for the two floating nodes, Output: 6 vertices.
  ASSERT_EQ(g.vertices().size(), 6u);
  EXPECT_NO_THROW(g.vertex_index("Iin"));
  EXPECT_NO_THROW(g.vertex_index("In1"));
  EXPECT_NO_THROW(g.vertex_index("Vn1"));
  EXPECT_NO_THROW(g.vertex_index("In2"));
  EXPECT_NO_THROW(g.vertex_index("Vn2"));
  EXPECT_NO_THROW(g.vertex_index("Vout"));
  EXPECT_THROW(g.vertex_index("Vzz"), InvalidArgument);
}

TEST_F(SfgTest, ActiveInductorDrivingPointImpedances) {
  // Paper Fig. 2(b): z1 = 1/(sC + sCds + sCgs + gds), z2 = 1/(sC + sCgs + G).
  const DpSfg g = build_active_inductor();
  const int i1 = g.vertex_index("In1");
  const int v1 = g.vertex_index("Vn1");
  const Edge* z1 = nullptr;
  for (int ei : g.out_edges(i1)) {
    if (g.edges()[static_cast<size_t>(ei)].to == v1) z1 = &g.edges()[static_cast<size_t>(ei)];
  }
  ASSERT_NE(z1, nullptr);
  EXPECT_TRUE(z1->weight.inverted);
  // Terms: C (passive), CdsM, CgsM, gdsM.
  std::vector<std::string> names;
  for (const auto& t : z1->weight.terms) names.push_back(t.param_name());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"C", "CdsM", "CgsM", "gdsM"}));

  const int i2 = g.vertex_index("In2");
  const int v2 = g.vertex_index("Vn2");
  const Edge* z2 = nullptr;
  for (int ei : g.out_edges(i2)) {
    if (g.edges()[static_cast<size_t>(ei)].to == v2) z2 = &g.edges()[static_cast<size_t>(ei)];
  }
  ASSERT_NE(z2, nullptr);
  std::vector<std::string> names2;
  for (const auto& t : z2->weight.terms) names2.push_back(t.param_name());
  std::sort(names2.begin(), names2.end());
  // Our conductance is the resistor component name ("G" in the builder).
  EXPECT_EQ(names2, (std::vector<std::string>{"C", "CgsM", "G"}));
}

TEST_F(SfgTest, ActiveInductorGmEdges) {
  // Fig. 2(b): edge V1 -> I1 carries -gm (the transistor's source self-loop
  // through z1) and edge V2 -> I1 carries sC + sCgs + gm.
  const DpSfg g = build_active_inductor();
  const int i1 = g.vertex_index("In1");
  const int v1 = g.vertex_index("Vn1");
  const int v2 = g.vertex_index("Vn2");

  const Edge* self = nullptr;
  const Edge* coupling = nullptr;
  for (const auto& e : g.edges()) {
    if (e.from == v1 && e.to == i1) self = &e;
    if (e.from == v2 && e.to == i1) coupling = &e;
  }
  ASSERT_NE(self, nullptr);
  ASSERT_EQ(self->weight.terms.size(), 1u);
  EXPECT_EQ(self->weight.terms[0].kind, TermKind::Gm);
  EXPECT_EQ(self->weight.terms[0].sign, -1);
  EXPECT_EQ(self->weight.render_symbolic(), "-gmM");

  ASSERT_NE(coupling, nullptr);
  EXPECT_EQ(coupling->weight.render_symbolic(), "sC+sCgsM+gmM");
}

TEST_F(SfgTest, ActiveInductorForwardPathRendering) {
  const DpSfg g = build_active_inductor();
  const auto paths = enumerate_paths(g, g.vertex_index("Iin"), g.output_vertex());
  ASSERT_EQ(paths.size(), 1u);  // Iin -> In1 -> Vn1 -> Vout
  const std::string text = render_walk(g, paths[0], false, RenderMode::Symbolic);
  EXPECT_EQ(text, "Iin -1 In1 1/(sC+gdsM+sCdsM+sCgsM) Vn1 1 Vout");
}

TEST_F(SfgTest, ActiveInductorCycleCount) {
  // Fig. 2(b) has two loops: the C/Cgs coupling loop through both nodes and
  // the -gm self-loop through z1.
  const DpSfg g = build_active_inductor();
  const auto cycles = enumerate_cycles(g);
  EXPECT_EQ(cycles.size(), 2u);
}

TEST_F(SfgTest, NumericRenderingSubstitutesDeviceValues) {
  const DpSfg g = build_active_inductor();
  const auto paths = enumerate_paths(g, g.vertex_index("Iin"), g.output_vertex());
  const std::string text = render_walk(g, paths[0], false, RenderMode::Numeric);
  // Symbolic device parameters must be gone; passive "sC" stays.
  EXPECT_EQ(text.find("gdsM"), std::string::npos);
  EXPECT_NE(text.find("sC+"), std::string::npos);
  EXPECT_NE(text.find("S"), std::string::npos);  // an SI-suffixed value
}

TEST_F(SfgTest, SubstituteRewritesValues) {
  DpSfg g = build_active_inductor();
  g.substitute({{"gmM", 2.5e-3}});
  bool found = false;
  for (const auto& e : g.edges()) {
    for (const auto& t : e.weight.terms) {
      if (t.param_name() == "gmM") {
        EXPECT_DOUBLE_EQ(t.value, 2.5e-3);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SfgTest, DeviceParametersEnumerated) {
  const DpSfg g = build_active_inductor();
  const auto params = g.device_parameters();
  EXPECT_EQ(params, (std::vector<std::string>{"CdsM", "CgsM", "gdsM", "gmM"}));
}

TEST_F(SfgTest, FiveTransistorOtaGraphStructure) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const auto dc = spice::solve_dc(topo.netlist, tech);
  const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
  const DpSfg g = DpSfg::build(topo.netlist, devices, topo.output_node);

  // Floating nodes: n1, ntail, vout -> 3 I/V pairs; excitations VIP, VIN;
  // plus Vout: 2 + 6 + 1 = 9 vertices.
  EXPECT_EQ(g.vertices().size(), 9u);
  // 4 parameters x 5 devices minus the two that cannot influence the
  // differential small-signal response: the tail's gm and Cgs hang off
  // AC-grounded terminals (gate at the bias source, source at ground).
  EXPECT_EQ(g.device_parameters().size(), 18u);

  const PathSet ps = collect_paths(g);
  EXPECT_GT(ps.forward.size(), 0u);
  EXPECT_GT(ps.cycles.size(), 0u);
}

TEST_F(SfgTest, OutputMustBeFloatingNode) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const auto dc = spice::solve_dc(topo.netlist, tech);
  const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
  EXPECT_THROW(DpSfg::build(topo.netlist, devices, "vdd"), InvalidArgument);
}

TEST_F(SfgTest, MissingDeviceDataThrows) {
  auto topo = circuit::make_5t_ota(tech);
  std::map<std::string, device::SmallSignal> empty;
  EXPECT_THROW(DpSfg::build(topo.netlist, empty, topo.output_node),
               InvalidArgument);
}

}  // namespace
}  // namespace ota::sfg
