// Campaign-server and continuous-batching determinism tests.
//
// The serve layer's contract extends the repo-wide one: concurrency is a
// performance knob, never a semantics knob.  A DecodeScheduler ticket must be
// bit-identical to InferenceEngine::greedy_decode of the same request, and a
// CampaignServer outcome must be bit-identical to the serial
// SizingCopilot::size path — for any worker count, arrival order, or batch
// composition.  The fixtures run under the DeterminismTest umbrella so the
// TSan preset (which selects tests by name regex) races them with
// OTA_THREADS=8.  Queue semantics are covered too: drain serves everything,
// drainless cancellation answers everything, and nothing resolves twice.
//
// The admission-control and cancellation contracts extend that: a full queue
// rejects or blocks per OverflowPolicy (never exceeding max_queue_depth), a
// cancelled or deadline-expired job resolves exactly once as Cancelled
// (immediately when still queued, at the next stage boundary / decode round
// when in flight), and every campaign that survives cancellation must still
// be bit-identical to the serial copilot.  Timing-dependent cases are
// asserted race-tolerantly: a cancel may lose the race with completion, but
// the exactly-once accounting and bit-identity must hold either way.
#include "serve/campaign_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "core/metrics.hpp"
#include "ml/decode_scheduler.hpp"

namespace ota::serve {
namespace {

using nlp::TokenId;

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new device::Technology(device::Technology::default65nm());
    topo_ = new circuit::Topology(circuit::make_5t_ota(*tech_));
    core::DataGenOptions dopt;
    dopt.target_designs = 40;
    dopt.max_attempts = 20000;
    dopt.seed = 31;
    dataset_ = new core::Dataset(core::generate_dataset(
        *topo_, *tech_, core::SpecRange::for_topology("5T-OTA"), dopt));
    builder_ = new core::SequenceBuilder(*topo_, *tech_);
    luts_ = std::make_shared<const core::LutSet>(core::LutSet::build(*tech_));

    // A tiny model trained on real builder text: accuracy is irrelevant,
    // deterministic (and nontrivially structured) decoding is the property
    // under test.
    std::vector<std::pair<std::string, std::string>> pairs;
    for (size_t i = 0; i < 30 && i < dataset_->designs.size(); ++i) {
      const core::Design& d = dataset_->designs[i];
      pairs.emplace_back(builder_->encoder_text(d.specs),
                         builder_->decoder_text(d));
    }
    auto model = std::make_shared<core::SizingModel>();
    core::TrainOptions topt;
    topt.epochs = 2;
    topt.d_model = 16;
    topt.n_heads = 2;
    topt.n_layers = 1;
    topt.d_ff = 32;
    topt.bpe_merges = 48;
    topt.seed = 7;
    model->train(pairs, topt);
    model_ = new std::shared_ptr<const core::SizingModel>(std::move(model));
  }

  static void TearDownTestSuite() {
    delete model_;
    luts_.reset();
    delete builder_;
    delete dataset_;
    delete topo_;
    delete tech_;
  }

  static const core::SizingModel& model() { return **model_; }

  static core::CopilotOptions campaign_options() {
    core::CopilotOptions opt;
    opt.max_iterations = 3;  // keeps the SPICE budget of the matrix small
    opt.max_decode_tokens = 96;
    return opt;
  }

  static std::vector<core::Specs> campaign_targets(int n) {
    return core::targets_from_designs(dataset_->designs, n, 0.06, 17);
  }

  /// The bit-identity reference: the serial copilot, one campaign at a time.
  static std::vector<core::SizingOutcome> serial_outcomes(
      const std::vector<core::Specs>& targets, const core::CopilotOptions& opt) {
    core::SizingCopilot copilot(*topo_, *tech_, *builder_, model(), *luts_);
    std::vector<core::SizingOutcome> out;
    out.reserve(targets.size());
    for (const auto& t : targets) out.push_back(copilot.size(t, opt));
    return out;
  }

  /// Spins until every queued job has been picked up by a worker — the
  /// hand-off that makes "the worker is now busy running something" a fact
  /// rather than a guess in the admission-control tests.
  static void wait_for_pickup(const CampaignServer& server) {
    while (server.stats().queue_depth != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  static device::Technology* tech_;
  static circuit::Topology* topo_;
  static core::Dataset* dataset_;
  static core::SequenceBuilder* builder_;
  static std::shared_ptr<const core::LutSet> luts_;
  static std::shared_ptr<const core::SizingModel>* model_;
};

device::Technology* DeterminismTest::tech_ = nullptr;
circuit::Topology* DeterminismTest::topo_ = nullptr;
core::Dataset* DeterminismTest::dataset_ = nullptr;
core::SequenceBuilder* DeterminismTest::builder_ = nullptr;
std::shared_ptr<const core::LutSet> DeterminismTest::luts_;
std::shared_ptr<const core::SizingModel>* DeterminismTest::model_ = nullptr;

void expect_same_outcome(const core::SizingOutcome& a,
                         const core::SizingOutcome& b) {
  // Everything except the wall-clock `seconds` must agree bit-for-bit.
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.spice_simulations, b.spice_simulations);
  EXPECT_EQ(a.widths, b.widths);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.achieved.gain_db, b.achieved.gain_db);
  EXPECT_EQ(a.achieved.bw_hz, b.achieved.bw_hz);
  EXPECT_EQ(a.achieved.ugf_hz, b.achieved.ugf_hz);
  EXPECT_EQ(a.target.gain_db, b.target.gain_db);
}

// ---------------------------------------------------------------------------
// DecodeScheduler

TEST_F(DeterminismTest, SchedulerBitIdenticalToGreedyDecode) {
  const ml::InferenceEngine& engine = model().engine();
  const auto targets = campaign_targets(8);

  std::vector<std::vector<TokenId>> srcs;
  std::vector<std::vector<TokenId>> reference;
  for (const auto& t : targets) {
    srcs.push_back(model().tokenizer().encode(builder_->encoder_text(t)));
    reference.push_back(engine.greedy_decode(srcs.back(), 96));
  }

  for (int threads : {1, 3, 8}) {
    ml::DecodeScheduler::Options opt;
    opt.max_batch = 4;  // smaller than the request count: forces queueing
    opt.threads = threads;
    ml::DecodeScheduler scheduler(engine, opt);

    // Concurrent submitters in a shuffled order: arrival order and batch
    // composition vary run to run, results must not.
    std::vector<size_t> order(srcs.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::mt19937 shuffle_rng(1000 + static_cast<unsigned>(threads));
    std::shuffle(order.begin(), order.end(), shuffle_rng);

    std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets(srcs.size());
    std::vector<std::thread> submitters;
    for (int s = 0; s < 2; ++s) {
      submitters.emplace_back([&, s] {
        for (size_t i = static_cast<size_t>(s); i < order.size(); i += 2) {
          tickets[order[i]] = scheduler.submit(srcs[order[i]], 96);
        }
      });
    }
    for (auto& t : submitters) t.join();

    for (size_t i = 0; i < srcs.size(); ++i) {
      EXPECT_EQ(tickets[i]->wait(), reference[i])
          << "request " << i << " threads " << threads;
    }
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, srcs.size());
    EXPECT_EQ(stats.served, srcs.size());
    EXPECT_LE(stats.peak_batch, 4u);
  }
}

TEST_F(DeterminismTest, SchedulerRejectsBadSubmissions) {
  ml::DecodeScheduler scheduler(model().engine());
  const auto src = model().tokenizer().encode("SPEC 20dB");
  EXPECT_THROW((void)scheduler.submit(src, 0), InvalidArgument);
  EXPECT_THROW((void)scheduler.submit(src, -3), InvalidArgument);
  scheduler.shutdown();
  EXPECT_THROW((void)scheduler.submit(src, 16), InvalidArgument);
}

TEST_F(DeterminismTest, SchedulerDrainServesEveryRequestExactlyOnce) {
  const ml::InferenceEngine& engine = model().engine();
  const auto src = model().tokenizer().encode(
      builder_->encoder_text(campaign_targets(1)[0]));
  const auto reference = engine.greedy_decode(src, 64);

  ml::DecodeScheduler scheduler(engine);
  std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets;
  for (int i = 0; i < 12; ++i) tickets.push_back(scheduler.submit(src, 64));
  scheduler.shutdown(/*drain=*/true);

  for (const auto& t : tickets) {
    ASSERT_TRUE(t->done());
    EXPECT_EQ(t->wait(), reference);
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.served, 12u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST_F(DeterminismTest, SchedulerDrainlessShutdownAnswersEveryRequest) {
  const ml::InferenceEngine& engine = model().engine();
  const auto src = model().tokenizer().encode(
      builder_->encoder_text(campaign_targets(1)[0]));

  ml::DecodeScheduler scheduler(engine);
  std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets;
  for (int i = 0; i < 12; ++i) tickets.push_back(scheduler.submit(src, 64));
  scheduler.shutdown(/*drain=*/false);

  // Every ticket must resolve exactly once: served before the shutdown won
  // the race, or cancelled by it — never lost, never both.
  uint64_t served = 0, cancelled = 0;
  for (const auto& t : tickets) {
    ASSERT_TRUE(t->done());
    try {
      (void)t->wait();
      ++served;
    } catch (const Cancelled&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(served + cancelled, 12u);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.served, served);
  EXPECT_EQ(stats.cancelled, cancelled);
}

// ---------------------------------------------------------------------------
// Float32 decode tier through the serving stack

TEST_F(DeterminismTest, SchedulerF32TierAgreesAcrossThreadsAndBatches) {
  // The float32 tier under the same determinism matrix as the double tier:
  // for 1/3/8 scheduler threads, shuffled concurrent arrival, and forced
  // queueing (max_batch < requests), every ticket must be bit-identical to
  // the engine's serial f32 greedy_decode — and, on this trained model, the
  // f32 stream must agree token-for-token with the double reference (the
  // tier's shipping gate).  Per-tier counters must attribute every step.
  const ml::InferenceEngine& engine = model().engine();
  const auto targets = campaign_targets(8);

  std::vector<std::vector<TokenId>> srcs;
  std::vector<std::vector<TokenId>> reference;
  for (const auto& t : targets) {
    srcs.push_back(model().tokenizer().encode(builder_->encoder_text(t)));
    reference.push_back(
        engine.greedy_decode(srcs.back(), 96, ml::Precision::kFloat32));
    EXPECT_EQ(reference.back(),
              engine.greedy_decode(srcs.back(), 96, ml::Precision::kDouble))
        << "f32/double token divergence on trained model, request "
        << reference.size() - 1;
  }

  for (int threads : {1, 3, 8}) {
    ml::DecodeScheduler::Options opt;
    opt.max_batch = 4;
    opt.threads = threads;
    opt.precision = ml::Precision::kFloat32;
    ml::DecodeScheduler scheduler(engine, opt);

    std::vector<size_t> order(srcs.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::mt19937 shuffle_rng(3000 + static_cast<unsigned>(threads));
    std::shuffle(order.begin(), order.end(), shuffle_rng);

    std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets(srcs.size());
    std::vector<std::thread> submitters;
    for (int s = 0; s < 2; ++s) {
      submitters.emplace_back([&, s] {
        for (size_t i = static_cast<size_t>(s); i < order.size(); i += 2) {
          tickets[order[i]] = scheduler.submit(srcs[order[i]], 96);
        }
      });
    }
    for (auto& t : submitters) t.join();

    for (size_t i = 0; i < srcs.size(); ++i) {
      EXPECT_EQ(tickets[i]->wait(), reference[i])
          << "request " << i << " threads " << threads;
    }
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.served, srcs.size());
    EXPECT_EQ(stats.tokens_double, 0u);
    EXPECT_GT(stats.tokens_f32, 0u);
    EXPECT_EQ(stats.tokens_f32 + stats.tokens_double, stats.session_steps);
  }
}

TEST_F(DeterminismTest, SchedulerDoubleTierAttributesTokensToDoubleCounter) {
  ml::DecodeScheduler scheduler(model().engine());  // default tier: double
  const auto src = model().tokenizer().encode(
      builder_->encoder_text(campaign_targets(1)[0]));
  (void)scheduler.submit(src, 32)->wait();
  const auto stats = scheduler.stats();
  EXPECT_GT(stats.tokens_double, 0u);
  EXPECT_EQ(stats.tokens_f32, 0u);
  EXPECT_EQ(stats.tokens_double, stats.session_steps);
}

TEST_F(DeterminismTest, CampaignServerF32TopologyMatchesF32SerialCopilot) {
  // A topology registered on the float32 tier must serve campaigns
  // bit-identical to the serial copilot driven by a float32
  // SerialPredictionClient — the same WHAT-not-WHEN contract as the double
  // path, one tier down.  Stats must attribute every decode step to f32.
  const auto targets = campaign_targets(4);
  const auto opt = campaign_options();

  std::vector<core::SizingOutcome> reference;
  {
    core::SizingCopilot copilot(*topo_, *tech_, *builder_, model(), *luts_);
    core::SerialPredictionClient f32_client(model(), ml::Precision::kFloat32);
    for (const auto& t : targets) {
      reference.push_back(copilot.size(t, opt, f32_client));
    }
  }

  CampaignServer::Options sopt;
  sopt.workers = 4;
  sopt.max_decode_batch = 4;
  CampaignServer server(sopt);  // server default stays double...
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_,
                           ml::Precision::kFloat32);  // ...this topology: f32

  std::vector<std::shared_ptr<CampaignServer::Job>> jobs;
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, opt}));
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CampaignResult& res = jobs[i]->wait();
    ASSERT_EQ(res.status, CampaignStatus::Served)
        << "campaign " << i << ": " << res.error;
    expect_same_outcome(res.outcome, reference[i]);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, targets.size());
  EXPECT_EQ(stats.decode.tokens_double, 0u);
  EXPECT_GT(stats.decode.tokens_f32, 0u);
}

TEST_F(DeterminismTest, ForgedPrecisionIsRefusedAtEveryDoor) {
  // An out-of-range Precision forged with a static_cast must be refused at
  // construction/registration, before any thread is spawned — scheduler
  // options, server options, and the per-topology override alike.
  const auto forged = static_cast<ml::Precision>(5);

  ml::DecodeScheduler::Options dopt;
  dopt.precision = forged;
  EXPECT_THROW(ml::DecodeScheduler(model().engine(), dopt), InvalidArgument);

  CampaignServer::Options sopt;
  sopt.decode_precision = forged;
  EXPECT_THROW(CampaignServer{sopt}, InvalidArgument);

  EXPECT_THROW(core::SerialPredictionClient(model(), forged), InvalidArgument);

  CampaignServer server;
  EXPECT_THROW(server.register_topology("5T-OTA", *topo_, *tech_, *model_,
                                        luts_, forged),
               InvalidArgument);
  // The failed registration must release its name reservation: the same
  // name registers cleanly at a valid tier afterwards.
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_,
                           ml::Precision::kFloat32);
}

// ---------------------------------------------------------------------------
// CampaignServer

TEST_F(DeterminismTest, CampaignServerBitIdenticalToSerialCopilot) {
  const auto targets = campaign_targets(6);
  const auto opt = campaign_options();

  // The bit-identity reference: the serial copilot path, one campaign at a
  // time on this thread.
  std::vector<core::SizingOutcome> reference;
  {
    core::SizingCopilot copilot(*topo_, *tech_, *builder_, model(), *luts_);
    for (const auto& t : targets) reference.push_back(copilot.size(t, opt));
  }

  for (int workers : {1, 3, 8}) {
    CampaignServer::Options sopt;
    sopt.workers = workers;
    sopt.max_decode_batch = 4;
    CampaignServer server(sopt);
    server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

    std::vector<size_t> order(targets.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::mt19937 shuffle_rng(2000 + static_cast<unsigned>(workers));
    std::shuffle(order.begin(), order.end(), shuffle_rng);

    std::vector<std::shared_ptr<CampaignServer::Job>> jobs(targets.size());
    for (size_t i : order) {
      jobs[i] = server.submit({"5T-OTA", targets[i], opt});
    }
    for (size_t i = 0; i < targets.size(); ++i) {
      const CampaignResult& res = jobs[i]->wait();
      ASSERT_EQ(res.status, CampaignStatus::Served)
          << "campaign " << i << " workers " << workers << ": " << res.error;
      expect_same_outcome(res.outcome, reference[i]);
      EXPECT_GE(res.total_seconds, res.queue_seconds);
    }

    const auto stats = server.stats();
    EXPECT_EQ(stats.submitted, targets.size());
    EXPECT_EQ(stats.served, targets.size());
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GT(stats.decode.served, 0u);
  }
}

TEST_F(DeterminismTest, CampaignServerRejectsBadSubmissions) {
  CampaignServer::Options sopt;
  sopt.workers = 1;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);
  EXPECT_THROW((void)server.submit({"no-such-topology", {}, {}}),
               InvalidArgument);
  EXPECT_THROW(server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_),
               InvalidArgument);
  server.shutdown();
  EXPECT_THROW((void)server.submit({"5T-OTA", campaign_targets(1)[0], {}}),
               InvalidArgument);
  EXPECT_THROW(server.register_topology("other", *topo_, *tech_, *model_, luts_),
               InvalidArgument);
}

TEST_F(DeterminismTest, CampaignServerDrainlessShutdownAnswersEveryJob) {
  const auto targets = campaign_targets(6);
  const auto opt = campaign_options();

  CampaignServer::Options sopt;
  sopt.workers = 1;  // one worker: most jobs still queued at shutdown
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  std::vector<std::shared_ptr<CampaignServer::Job>> jobs;
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, opt}));
  server.shutdown(/*drain=*/false);

  uint64_t served = 0, cancelled = 0, failed = 0;
  for (const auto& job : jobs) {
    ASSERT_TRUE(job->done());
    const CampaignResult& res = job->wait();
    switch (res.status) {
      case CampaignStatus::Served: ++served; break;
      case CampaignStatus::Failed: ++failed; break;
      case CampaignStatus::Cancelled:
        ++cancelled;
        // A job cancelled by shutdown spent its whole life in queue: the
        // queue time must equal the total time, not read 0.
        EXPECT_GT(res.queue_seconds, 0.0);
        EXPECT_EQ(res.queue_seconds, res.total_seconds);
        break;
    }
  }
  EXPECT_EQ(served + cancelled + failed, jobs.size());
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.served, served);
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(stats.cancelled, cancelled);
}

// ---------------------------------------------------------------------------
// Admission control and cancellation

TEST_F(DeterminismTest, SchedulerRejectsNonPositiveMaxBatch) {
  ml::DecodeScheduler::Options opt;
  opt.max_batch = 0;
  EXPECT_THROW({ ml::DecodeScheduler s(model().engine(), opt); }, InvalidArgument);
  opt.max_batch = -4;
  EXPECT_THROW({ ml::DecodeScheduler s(model().engine(), opt); }, InvalidArgument);
}

TEST_F(DeterminismTest, SchedulerPresetCancelAndPastDeadlineResolveCancelled) {
  // Deterministic cancellation cases: a request submitted with its external
  // flag already set, or its deadline already past, must resolve Cancelled —
  // no timing involved.  A generous deadline must not interfere.
  const ml::InferenceEngine& engine = model().engine();
  const auto src = model().tokenizer().encode(
      builder_->encoder_text(campaign_targets(1)[0]));
  const auto reference = engine.greedy_decode(src, 64);
  ml::DecodeScheduler scheduler(engine);

  auto set_flag = std::make_shared<std::atomic<bool>>(true);
  ml::DecodeScheduler::SubmitOptions cancelled_sub;
  cancelled_sub.cancel = set_flag;
  auto cancelled_ticket = scheduler.submit(src, 64, cancelled_sub);

  ml::DecodeScheduler::SubmitOptions expired_sub;
  expired_sub.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto expired_ticket = scheduler.submit(src, 64, expired_sub);

  ml::DecodeScheduler::SubmitOptions generous_sub;
  generous_sub.cancel = std::make_shared<std::atomic<bool>>(false);
  generous_sub.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  auto generous_ticket = scheduler.submit(src, 64, generous_sub);

  EXPECT_THROW((void)cancelled_ticket->wait(), Cancelled);
  EXPECT_THROW((void)expired_ticket->wait(), Cancelled);
  EXPECT_EQ(generous_ticket->wait(), reference);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DeterminismTest, SchedulerTicketCancelResolvesExactlyOnce) {
  // Racy-by-design: cancel tickets while the batch is live.  Whatever the
  // interleaving, every ticket resolves exactly once — Cancelled, or served
  // with the exact greedy_decode tokens — and the counters agree.
  const ml::InferenceEngine& engine = model().engine();
  const auto targets = campaign_targets(6);
  std::vector<std::vector<TokenId>> srcs;
  std::vector<std::vector<TokenId>> reference;
  for (const auto& t : targets) {
    srcs.push_back(model().tokenizer().encode(builder_->encoder_text(t)));
    reference.push_back(engine.greedy_decode(srcs.back(), 96));
  }

  ml::DecodeScheduler::Options opt;
  opt.max_batch = 2;  // smaller than the request count: some cancel queued
  ml::DecodeScheduler scheduler(engine, opt);

  std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets;
  for (const auto& s : srcs) tickets.push_back(scheduler.submit(s, 96));
  for (size_t i = 1; i < tickets.size(); i += 2) tickets[i]->cancel();

  uint64_t served = 0, cancelled = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    try {
      // A cancelled ticket may still serve if decoding won the race — but
      // then it must be bit-identical; a never-cancelled ticket must serve.
      EXPECT_EQ(tickets[i]->wait(), reference[i]) << "survivor " << i;
      ++served;
    } catch (const Cancelled&) {
      ++cancelled;
      EXPECT_TRUE(tickets[i]->cancel_requested());
      EXPECT_EQ(i % 2, 1u) << "ticket " << i << " cancelled but never asked to";
    }
  }
  EXPECT_EQ(served + cancelled, tickets.size());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, tickets.size());
  EXPECT_EQ(stats.served, served);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DeterminismTest, CampaignServerRejectsBadOptions) {
  CampaignServer::Options bad;
  bad.max_decode_batch = 0;
  EXPECT_THROW({ CampaignServer s(bad); }, InvalidArgument);
  bad = CampaignServer::Options{};
  bad.max_queue_depth = -1;
  EXPECT_THROW({ CampaignServer s(bad); }, InvalidArgument);
}

TEST_F(DeterminismTest, CampaignServerCancelWhileQueuedResolvesImmediately) {
  const auto targets = campaign_targets(4);
  const auto opt = campaign_options();
  const auto reference = serial_outcomes(targets, opt);

  CampaignServer::Options sopt;
  sopt.workers = 1;  // one worker: everything behind the first job queues
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  auto first = server.submit({"5T-OTA", targets[0], opt});
  std::vector<std::shared_ptr<CampaignServer::Job>> rest;
  for (size_t i = 1; i < targets.size(); ++i) {
    rest.push_back(server.submit({"5T-OTA", targets[i], opt}));
  }
  // Cancel everything queued.  With the single worker busy on `first`, the
  // cancels land on unstarted jobs, which resolve synchronously — but the
  // assertions below also tolerate the (theoretical) race where a worker
  // got there first, in which case bit-identity must hold.
  for (auto& job : rest) job->cancel();

  uint64_t cancelled = 0;
  for (size_t i = 0; i < rest.size(); ++i) {
    const CampaignResult& res = rest[i]->wait();
    if (res.status == CampaignStatus::Cancelled) {
      ++cancelled;
      // Never ran: no predictions, no simulations, queue time == total time.
      EXPECT_EQ(res.outcome.spice_simulations, 0);
      EXPECT_EQ(res.outcome.iterations, 0);
      EXPECT_EQ(res.queue_seconds, res.total_seconds);
    } else {
      ASSERT_EQ(res.status, CampaignStatus::Served) << res.error;
      expect_same_outcome(res.outcome, reference[i + 1]);
    }
  }
  EXPECT_GE(cancelled, 1u);

  const CampaignResult& res = first->wait();
  ASSERT_EQ(res.status, CampaignStatus::Served) << res.error;
  expect_same_outcome(res.outcome, reference[0]);

  server.shutdown(/*drain=*/true);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, targets.size());
  EXPECT_EQ(stats.served + stats.cancelled + stats.failed, targets.size());
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DeterminismTest, CampaignServerCancelMidFlightResolvesExactlyOnce) {
  const auto targets = campaign_targets(6);
  const auto opt = campaign_options();
  const auto reference = serial_outcomes(targets, opt);

  CampaignServer::Options sopt;
  sopt.workers = 3;
  sopt.max_decode_batch = 4;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  std::vector<std::shared_ptr<CampaignServer::Job>> jobs;
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, opt}));
  // Let campaigns get in flight, then cancel half mid-run: the copilot
  // observes the flag at a stage boundary or its decode ticket retires from
  // the dynamic batch mid-round.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (size_t i = 0; i < jobs.size(); i += 2) jobs[i]->cancel();

  uint64_t served = 0, cancelled = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CampaignResult& res = jobs[i]->wait();
    if (res.status == CampaignStatus::Served) {
      ++served;
      expect_same_outcome(res.outcome, reference[i]);
    } else {
      ASSERT_EQ(res.status, CampaignStatus::Cancelled) << res.error;
      ++cancelled;
      EXPECT_EQ(i % 2, 0u) << "job " << i << " cancelled but never asked to";
    }
  }
  EXPECT_EQ(served + cancelled, jobs.size());
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.served, served);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DeterminismTest, CampaignServerDeadlineExpiresInQueue) {
  const auto targets = campaign_targets(4);
  const auto opt = campaign_options();

  CampaignServer::Options sopt;
  sopt.workers = 1;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  // The first job (no deadline) occupies the only worker for a whole
  // campaign; the tight-deadline jobs behind it expire long before the
  // worker frees up and must resolve without a single decode or sim.
  auto first = server.submit({"5T-OTA", targets[0], opt});
  std::vector<std::shared_ptr<CampaignServer::Job>> doomed;
  for (size_t i = 1; i < targets.size(); ++i) {
    CampaignRequest req{"5T-OTA", targets[i], opt};
    req.deadline_seconds = 5e-4;
    doomed.push_back(server.submit(std::move(req)));
  }

  EXPECT_EQ(first->wait().status, CampaignStatus::Served) << first->wait().error;
  for (const auto& job : doomed) {
    const CampaignResult& res = job->wait();
    ASSERT_EQ(res.status, CampaignStatus::Cancelled) << res.error;
    EXPECT_NE(res.error.find("deadline"), std::string::npos) << res.error;
    EXPECT_EQ(res.outcome.spice_simulations, 0);
    EXPECT_GT(res.queue_seconds, 0.0);
  }

  // A generous deadline must not interfere with being served.
  CampaignRequest fine{"5T-OTA", targets[1], opt};
  fine.deadline_seconds = 3600.0;
  auto served = server.submit(std::move(fine));
  EXPECT_EQ(served->wait().status, CampaignStatus::Served) << served->wait().error;

  const auto stats = server.stats();
  EXPECT_EQ(stats.expired, doomed.size());
  EXPECT_EQ(stats.cancelled, doomed.size());
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DeterminismTest, CampaignServerRejectPolicyBoundsQueue) {
  const auto targets = campaign_targets(4);
  const auto opt = campaign_options();

  CampaignServer::Options sopt;
  sopt.workers = 1;
  sopt.max_queue_depth = 2;  // overflow defaults to Reject
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  // Occupy the worker, then fill the queue to its cap; the next submission
  // must bounce with ServerOverloaded instead of growing the queue.
  auto first = server.submit({"5T-OTA", targets[0], opt});
  wait_for_pickup(server);
  auto second = server.submit({"5T-OTA", targets[1], opt});
  auto third = server.submit({"5T-OTA", targets[2], opt});
  EXPECT_THROW((void)server.submit({"5T-OTA", targets[3], opt}),
               ServerOverloaded);

  server.shutdown(/*drain=*/true);
  for (const auto& job : {first, second, third}) {
    EXPECT_EQ(job->wait().status, CampaignStatus::Served) << job->wait().error;
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);  // the rejected one was never admitted
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.served, 3u);
  EXPECT_LE(stats.peak_queue_depth, 2u);
}

TEST_F(DeterminismTest, CampaignServerBlockPolicyWaitsForSpace) {
  const auto targets = campaign_targets(3);
  const auto opt = campaign_options();

  CampaignServer::Options sopt;
  sopt.workers = 1;
  sopt.max_queue_depth = 1;
  sopt.overflow = OverflowPolicy::Block;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  auto first = server.submit({"5T-OTA", targets[0], opt});
  wait_for_pickup(server);
  auto second = server.submit({"5T-OTA", targets[1], opt});  // queue now full
  // This submit finds the queue at capacity and blocks until the worker
  // pops `second`; it must eventually be admitted and served, not rejected.
  std::shared_ptr<CampaignServer::Job> third;
  std::thread submitter(
      [&] { third = server.submit({"5T-OTA", targets[2], opt}); });
  submitter.join();
  ASSERT_NE(third, nullptr);

  for (const auto& job : {first, second, third}) {
    EXPECT_EQ(job->wait().status, CampaignStatus::Served) << job->wait().error;
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_LE(stats.peak_queue_depth, 1u);
}

TEST_F(DeterminismTest, CampaignServerBlockTimeoutThrowsServerOverloaded) {
  const auto targets = campaign_targets(3);
  // Slow campaigns: the worker must stay busy well past the tiny timeout.
  core::CopilotOptions slow = campaign_options();
  slow.max_iterations = 6;
  slow.max_decode_tokens = 300;

  CampaignServer::Options sopt;
  sopt.workers = 1;
  sopt.max_queue_depth = 1;
  sopt.overflow = OverflowPolicy::Block;
  sopt.block_timeout_seconds = 2e-3;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  auto first = server.submit({"5T-OTA", targets[0], slow});
  wait_for_pickup(server);
  auto second = server.submit({"5T-OTA", targets[1], slow});
  // Space can only appear when `second` is popped — after the whole first
  // campaign finishes, orders of magnitude later than the 2ms timeout.
  EXPECT_THROW((void)server.submit({"5T-OTA", targets[2], slow}),
               ServerOverloaded);

  server.shutdown(/*drain=*/true);
  EXPECT_EQ(first->wait().status, CampaignStatus::Served) << first->wait().error;
  EXPECT_EQ(second->wait().status, CampaignStatus::Served)
      << second->wait().error;
  const auto stats = server.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.submitted, 2u);
}

TEST_F(DeterminismTest, CampaignServerDrainServesWholeQueue) {
  const auto targets = campaign_targets(4);
  const auto opt = campaign_options();

  CampaignServer::Options sopt;
  sopt.workers = 2;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  std::vector<std::shared_ptr<CampaignServer::Job>> jobs;
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, opt}));
  server.shutdown(/*drain=*/true);

  for (const auto& job : jobs) {
    ASSERT_TRUE(job->done());
    EXPECT_EQ(job->wait().status, CampaignStatus::Served) << job->wait().error;
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, jobs.size());
  EXPECT_EQ(stats.cancelled, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection & recovery.  Faults ride in through ota::fault (per-site
// counted streams, so the firing SET is thread-count independent); the
// properties under test are containment (a poisoned request fails alone),
// survival (the scheduler thread and the workers keep serving afterwards),
// recovery (transient faults retry within budget), and the usual bit-identity
// of everything a fault did not touch.  References are always computed before
// the spec is installed, so they are fault-free by construction.

TEST_F(DeterminismTest, SchedulerSurvivesPoisonedEncode) {
  const ml::InferenceEngine& engine = model().engine();
  const auto targets = campaign_targets(5);
  std::vector<std::vector<TokenId>> srcs;
  std::vector<std::vector<TokenId>> reference;
  for (const auto& t : targets) {
    srcs.push_back(model().tokenizer().encode(builder_->encoder_text(t)));
    reference.push_back(engine.greedy_decode(srcs.back(), 64));
  }

  for (int threads : {1, 3, 8}) {
    // Session construction runs serially on the scheduler thread in FIFO
    // admission order, so hit 1 is deterministically the first submission.
    fault::ScopedFaults faults("ml.session.encode:once=1");
    ml::DecodeScheduler::Options opt;
    opt.threads = threads;
    ml::DecodeScheduler scheduler(engine, opt);

    std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets;
    for (const auto& src : srcs) tickets.push_back(scheduler.submit(src, 64));

    // The poisoned request fails alone, with the site in the error...
    try {
      (void)tickets[0]->wait();
      FAIL() << "poisoned encode should have failed ticket 0";
    } catch (const fault::InjectedFault& e) {
      EXPECT_EQ(e.site(), "ml.session.encode");
    }
    // ...every other request is bit-identical to greedy_decode...
    for (size_t i = 1; i < tickets.size(); ++i) {
      EXPECT_EQ(tickets[i]->wait(), reference[i]) << i << " @" << threads;
    }
    // ...and the scheduler is still alive for post-fault traffic.
    EXPECT_EQ(scheduler.submit(srcs[0], 64)->wait(), reference[0]);

    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, srcs.size() + 1);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.served, srcs.size());
  }
}

TEST_F(DeterminismTest, SchedulerSurvivesPoisonedMidDecodeStep) {
  const ml::InferenceEngine& engine = model().engine();
  const auto targets = campaign_targets(6);
  std::vector<std::vector<TokenId>> srcs;
  std::vector<std::vector<TokenId>> reference;
  for (const auto& t : targets) {
    srcs.push_back(model().tokenizer().encode(builder_->encoder_text(t)));
    reference.push_back(engine.greedy_decode(srcs.back(), 64));
  }

  for (int threads : {1, 3, 8}) {
    // Step hits are claimed by racing pool workers: WHICH session claims the
    // firing hit is timing, but exactly one does — so the assertions are
    // race-tolerant (exactly one ticket fails, survivors are bit-identical).
    fault::ScopedFaults faults("ml.session.step:once=3");
    ml::DecodeScheduler::Options opt;
    opt.threads = threads;
    ml::DecodeScheduler scheduler(engine, opt);

    std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets;
    for (const auto& src : srcs) tickets.push_back(scheduler.submit(src, 64));

    size_t failed = 0;
    for (size_t i = 0; i < tickets.size(); ++i) {
      try {
        EXPECT_EQ(tickets[i]->wait(), reference[i]) << i << " @" << threads;
      } catch (const fault::InjectedFault& e) {
        EXPECT_EQ(e.site(), "ml.session.step");
        ++failed;
      }
    }
    EXPECT_EQ(failed, 1u) << threads << " threads";
    // Post-fault traffic still decodes bit-identically.
    EXPECT_EQ(scheduler.submit(srcs[0], 64)->wait(), reference[0]);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.served, srcs.size());
  }
}

TEST_F(DeterminismTest, SchedulerRoundFaultFailsRoundButThreadSurvives) {
  const ml::InferenceEngine& engine = model().engine();
  const auto src = model().tokenizer().encode(
      builder_->encoder_text(campaign_targets(1)[0]));
  const auto reference = engine.greedy_decode(src, 64);

  fault::ScopedFaults faults("ml.scheduler.round:once=2");
  ml::DecodeScheduler scheduler(engine);
  std::vector<std::shared_ptr<ml::DecodeScheduler::Ticket>> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(scheduler.submit(src, 64));

  // A round-level fault is not attributable to any one request: every ticket
  // that round was carrying fails with the round's error, tickets admitted
  // later decode normally.  How many rounds each ticket saw is timing, so
  // race-tolerantly: every ticket resolves exactly once, as served (round 2
  // happened after it finished — impossible here with a 64-token budget, but
  // the contract is the point) or failed with the round site in the message.
  size_t failed = 0;
  for (auto& t : tickets) {
    try {
      EXPECT_EQ(t->wait(), reference);
    } catch (const fault::InjectedFault& e) {
      EXPECT_EQ(e.site(), "ml.scheduler.round");
      ++failed;
    }
  }
  EXPECT_GE(failed, 1u);

  // The scheduler thread survived the failed round: new traffic serves.
  EXPECT_EQ(scheduler.submit(src, 64)->wait(), reference);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, tickets.size() + 1);
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(stats.served + stats.failed + stats.cancelled, stats.submitted);
}

TEST_F(DeterminismTest, CampaignServerRetriesTransientConvergenceError) {
  const auto targets = campaign_targets(4);
  const auto opt = campaign_options();
  const auto reference = serial_outcomes(targets, opt);

  // Hit 2 of the Stage-II submit site fires once, as a ConvergenceError —
  // the transient class.  WHICH campaign claims it is racy; the retry must
  // recover it regardless, because campaigns are hermetic.
  fault::ScopedFaults faults("core.predict.submit:once=2");
  CampaignServer::Options sopt;
  sopt.workers = 3;
  sopt.max_retries = 2;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  std::vector<std::shared_ptr<CampaignServer::Job>> jobs;
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, opt}));

  int total_retries = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const CampaignResult& res = jobs[i]->wait();
    ASSERT_EQ(res.status, CampaignStatus::Served)
        << "campaign " << i << ": " << res.error;
    expect_same_outcome(res.outcome, reference[i]);
    total_retries += res.retries;
  }
  EXPECT_EQ(total_retries, 1);

  const auto stats = server.stats();
  EXPECT_EQ(stats.served, jobs.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.recovered, 1u);
}

TEST_F(DeterminismTest, CampaignServerTransientFailureExhaustsRetryBudget) {
  const auto targets = campaign_targets(1);
  const auto opt = campaign_options();

  // Every Stage-II submit fails: with max_retries=2 the job runs 3 times
  // (initial + 2 retries) and then resolves Failed with the budget in the
  // error message.  Exactly-once accounting must survive the requeues.
  fault::ScopedFaults faults("core.predict.submit:every=1");
  CampaignServer::Options sopt;
  sopt.workers = 2;
  sopt.max_retries = 2;
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  auto job = server.submit({"5T-OTA", targets[0], opt});
  const CampaignResult& res = job->wait();
  ASSERT_EQ(res.status, CampaignStatus::Failed);
  EXPECT_EQ(res.retries, 2);
  EXPECT_NE(res.error.find("transient"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("2/2 retries"), std::string::npos) << res.error;

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retried, 2u);
  EXPECT_EQ(stats.recovered, 0u);
}

TEST_F(DeterminismTest, CampaignServerFailedJobCarriesSiteDiagnostics) {
  const auto targets = campaign_targets(2);
  const auto opt = campaign_options();
  const auto reference = serial_outcomes(targets, opt);

  // One worker makes pickup order FIFO: hit 1 is deterministically job 0.
  fault::ScopedFaults faults("serve.worker.campaign:once=1");
  CampaignServer::Options sopt;
  sopt.workers = 1;
  sopt.max_retries = 2;  // permanent faults must NOT consume retries
  CampaignServer server(sopt);
  server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

  auto poisoned = server.submit({"5T-OTA", targets[0], opt});
  auto clean = server.submit({"5T-OTA", targets[1], opt});

  const CampaignResult& bad = poisoned->wait();
  ASSERT_EQ(bad.status, CampaignStatus::Failed);
  EXPECT_EQ(bad.retries, 0);
  // The error names the exception type, the site, and the failing layer.
  EXPECT_NE(bad.error.find("InjectedFault"), std::string::npos) << bad.error;
  EXPECT_NE(bad.error.find("serve.worker.campaign"), std::string::npos)
      << bad.error;
  EXPECT_NE(bad.error.find("layer 'serve'"), std::string::npos) << bad.error;

  const CampaignResult& good = clean->wait();
  ASSERT_EQ(good.status, CampaignStatus::Served) << good.error;
  expect_same_outcome(good.outcome, reference[1]);

  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.retried, 0u);
}

TEST_F(DeterminismTest, CampaignServerPoisonedCampaignFailsAloneAcrossWorkerCounts) {
  const auto targets = campaign_targets(5);
  const auto opt = campaign_options();
  const auto reference = serial_outcomes(targets, opt);

  struct Case {
    const char* spec;
    const char* site;
  };
  // The satellite pair: a session poisoned at encode, and one poisoned
  // mid-decode.  Both surface through Ticket::wait into the campaign worker
  // as InjectedFault — a permanent failure carrying its site.
  for (const Case c : {Case{"ml.session.encode:once=1", "ml.session.encode"},
                       Case{"ml.session.step:once=4", "ml.session.step"}}) {
    for (int workers : {1, 3, 8}) {
      fault::ScopedFaults faults(c.spec);
      CampaignServer::Options sopt;
      sopt.workers = workers;
      sopt.max_decode_batch = 4;
      CampaignServer server(sopt);
      server.register_topology("5T-OTA", *topo_, *tech_, *model_, luts_);

      std::vector<std::shared_ptr<CampaignServer::Job>> jobs;
      for (const auto& t : targets) {
        jobs.push_back(server.submit({"5T-OTA", t, opt}));
      }

      // WHICH campaign claims the firing hit is scheduling; the contract is
      // that exactly one fails, carrying the site, and every survivor is
      // bit-identical to the fault-free serial copilot.
      size_t failed = 0;
      for (size_t i = 0; i < jobs.size(); ++i) {
        const CampaignResult& res = jobs[i]->wait();
        if (res.status == CampaignStatus::Failed) {
          EXPECT_NE(res.error.find(c.site), std::string::npos) << res.error;
          ++failed;
        } else {
          ASSERT_EQ(res.status, CampaignStatus::Served)
              << "campaign " << i << " workers " << workers << ": " << res.error;
          expect_same_outcome(res.outcome, reference[i]);
        }
      }
      EXPECT_EQ(failed, 1u) << c.spec << " workers " << workers;

      const auto stats = server.stats();
      EXPECT_EQ(stats.submitted, jobs.size());
      EXPECT_EQ(stats.failed, 1u);
      EXPECT_EQ(stats.served, jobs.size() - 1);
      EXPECT_EQ(stats.cancelled, 0u);
    }
  }
}

}  // namespace
}  // namespace ota::serve
