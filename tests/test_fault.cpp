// ota::fault unit tests: spec grammar, firing semantics, determinism of the
// per-site counted streams, and the solve_dc gmin-ladder diagnostics the
// injection sites make testable.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "circuit/netlist.hpp"
#include "common/error.hpp"
#include "device/technology.hpp"
#include "spice/dc.hpp"

namespace ota::fault {
namespace {

/// Hits `site` n times, returning the 1-based indices should_fire reported.
std::vector<uint64_t> firing_indices(const char* site, int n) {
  std::vector<uint64_t> fired;
  for (int i = 0; i < n; ++i) {
    if (auto hit = should_fire(site)) fired.push_back(*hit);
  }
  return fired;
}

TEST(FaultTest, DisabledByDefaultAndAfterClear) {
  clear();
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(should_fire("some.site").has_value());
  EXPECT_TRUE(stats().empty());

  install_spec("some.site:once=1");
  EXPECT_TRUE(enabled());
  clear();
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(should_fire("some.site").has_value());
}

TEST(FaultTest, OnceFiresExactlyAtTheNthHit) {
  ScopedFaults faults("a.site:once=3");
  EXPECT_EQ(firing_indices("a.site", 10), (std::vector<uint64_t>{3}));
  const auto s = stats();
  EXPECT_EQ(s.at("a.site").hits, 10u);
  EXPECT_EQ(s.at("a.site").fired, 1u);
}

TEST(FaultTest, EveryFiresAtMultiplesOfThePeriod) {
  ScopedFaults faults("a.site:every=4");
  EXPECT_EQ(firing_indices("a.site", 13), (std::vector<uint64_t>{4, 8, 12}));
}

TEST(FaultTest, UnnamedSitesNeverFire) {
  ScopedFaults faults("a.site:every=1");
  EXPECT_FALSE(should_fire("another.site").has_value());
  EXPECT_EQ(stats().count("another.site"), 0u);
}

TEST(FaultTest, ProbFiringSetIsAPureFunctionOfTheHitIndex) {
  install_spec("p.site:prob=0.3@42");
  const auto first = firing_indices("p.site", 500);
  // Roughly 30% of 500 hits should fire; the exact set is what matters.
  EXPECT_GT(first.size(), 100u);
  EXPECT_LT(first.size(), 200u);
  // Reinstalling the same spec resets the counters and replays the exact
  // same firing set: the decision depends only on (seed, hit index).
  install_spec("p.site:prob=0.3@42");
  EXPECT_EQ(firing_indices("p.site", 500), first);
  // A different seed decorrelates the stream.
  install_spec("p.site:prob=0.3@43");
  EXPECT_NE(firing_indices("p.site", 500), first);
  clear();
}

TEST(FaultTest, ProbDefaultSeedComesFromTheSiteName) {
  // Two sites with the same rule draw from different streams.
  install_spec("p.one:prob=0.5;p.two:prob=0.5");
  const auto one = firing_indices("p.one", 200);
  const auto two = firing_indices("p.two", 200);
  EXPECT_NE(one, two);
  clear();
}

TEST(FaultTest, FiringCountIsThreadCountIndependent) {
  // The SET of firing hit-indices is fixed by the spec; threads only race
  // for which hit index each of them claims.  So for a fixed total number
  // of hits, a concurrent run must fire exactly as often as a serial one.
  constexpr int kPerThread = 300;
  for (int threads : {1, 3, 8}) {
    const int total = threads * kPerThread;
    // Serial reference for this total.
    install_spec("t.site:every=7;u.site:prob=0.2@7");
    const size_t ref_every = firing_indices("t.site", total).size();
    const size_t ref_prob = firing_indices("u.site", total).size();
    EXPECT_GT(ref_every, 0u);
    EXPECT_GT(ref_prob, 0u);
    // Concurrent replay: same spec (counters reset), same total hits.
    install_spec("t.site:every=7;u.site:prob=0.2@7");
    std::atomic<uint64_t> fired_every{0}, fired_prob{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          if (should_fire("t.site")) fired_every.fetch_add(1);
          if (should_fire("u.site")) fired_prob.fetch_add(1);
        }
      });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(fired_every.load(), ref_every) << threads << " threads";
    EXPECT_EQ(fired_prob.load(), ref_prob) << threads << " threads";
    const auto s = stats();
    EXPECT_EQ(s.at("t.site").hits, static_cast<uint64_t>(total));
    EXPECT_EQ(s.at("t.site").fired, ref_every);
  }
  clear();
}

TEST(FaultTest, MacroThrowsInjectedFaultCarryingSiteAndHit) {
  ScopedFaults faults("macro.site:once=2");
  EXPECT_NO_THROW(FAULT_SITE("macro.site"));
  try {
    FAULT_SITE("macro.site");
    FAIL() << "second hit should have fired";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "macro.site");
    EXPECT_NE(std::string(e.what()).find("macro.site"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("hit 2"), std::string::npos);
  }
  EXPECT_NO_THROW(FAULT_SITE("macro.site"));
}

TEST(FaultTest, MacroAsThrowsTheRequestedType) {
  ScopedFaults faults("typed.site:once=1");
  EXPECT_THROW(FAULT_SITE_AS("typed.site", ConvergenceError), ConvergenceError);
}

TEST(FaultTest, MalformedSpecsThrowAndLeaveTheActiveSpecUnchanged) {
  install_spec("good.site:once=1");
  for (const char* bad :
       {"nosite", ":once=1", "s:once=0", "s:every=0", "s:once=x", "s:prob=1.5",
        "s:prob=-0.1", "s:prob=", "s:mode=1", "s:once=1;s:once=2"}) {
    EXPECT_THROW(install_spec(bad), InvalidArgument) << bad;
  }
  // The good spec survived every failed install.
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(should_fire("good.site").has_value());
  clear();
}

TEST(FaultTest, SpecGrammarToleratesWhitespaceAndEmptyEntries) {
  ScopedFaults faults(" a.site : once=1 ; ; b.site:every=2 ");
  EXPECT_TRUE(should_fire("a.site").has_value());
  EXPECT_FALSE(should_fire("b.site").has_value());
  EXPECT_TRUE(should_fire("b.site").has_value());
}

// ---------------------------------------------------------------------------
// The solve_dc gmin-ladder diagnostics, driven through the injection sites.

class FaultDcTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
  circuit::Netlist divider() {
    circuit::Netlist nl;
    nl.add_vsource("V1", "in", "0", 1.2);
    nl.add_resistor("R1", "in", "mid", 1e3);
    nl.add_resistor("R2", "mid", "0", 1e3);
    return nl;
  }
};

TEST_F(FaultDcTest, CleanSolveReportsNoRetries) {
  const auto sol = spice::solve_dc(divider(), tech);
  EXPECT_EQ(sol.gmin_retries, 0);
  EXPECT_EQ(sol.lu_failures, 0);
}

TEST_F(FaultDcTest, LadderAbsorbsAnInjectedLuSingularityAndCountsIt) {
  ScopedFaults faults("linalg.lu.factor:once=1");
  const auto nl = divider();
  const auto sol = spice::solve_dc(nl, tech);
  // The first rung's first factorization failed; the ladder retried at the
  // next rung and still converged to the exact answer.
  EXPECT_EQ(sol.lu_failures, 1);
  EXPECT_GE(sol.gmin_retries, 1);
  EXPECT_NEAR(sol.voltage(nl, "mid"), 0.6, 1e-9);
}

TEST_F(FaultDcTest, LadderAbsorbsAnInjectedNewtonFaultAndCountsIt) {
  ScopedFaults faults("spice.dc.newton:once=1");
  const auto nl = divider();
  const auto sol = spice::solve_dc(nl, tech);
  EXPECT_EQ(sol.gmin_retries, 1);
  EXPECT_EQ(sol.lu_failures, 0);
  EXPECT_NEAR(sol.voltage(nl, "mid"), 0.6, 1e-9);
}

TEST_F(FaultDcTest, ExhaustedLadderSurfacesRetryCountsInTheError) {
  ScopedFaults faults("spice.dc.newton:every=1");  // every rung fails
  try {
    spice::solve_dc(divider(), tech);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gmin ladder exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("gmin retries"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ota::fault
