// Golden tests for the tiled GEMM kernels in ml/tensor.cpp.
//
// Every mode (NN, NT, TN), both the overwrite and accumulate variants, is
// compared against a naive triple loop over a grid of shapes chosen to hit
// the register-tile remainders (rows % 4, cols % 4, odd k) and the k-panel
// boundary.  Tolerances are relative: the tiled kernels may sum in a
// different order than the reference, but each result must stay within a few
// ulps of it — and repeated runs must be bit-identical (the data-parallel
// trainer's determinism rests on that).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/tensor.hpp"

namespace ota::ml {
namespace {

Tensor random_tensor(int64_t rows, int64_t cols, Rng& rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data()) v = rng.uniform(-1.0, 1.0);
  return t;
}

Tensor ref_nn(const Tensor& a, const Tensor& b, const Tensor& c0) {
  Tensor c = c0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (int64_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) += s;
    }
  }
  return c;
}

Tensor ref_nt(const Tensor& a, const Tensor& b, const Tensor& c0) {
  Tensor c = c0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (int64_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(j, p);
      c(i, j) += s;
    }
  }
  return c;
}

Tensor ref_tn(const Tensor& a, const Tensor& b, const Tensor& c0) {
  Tensor c = c0;
  for (int64_t i = 0; i < a.cols(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (int64_t p = 0; p < a.rows(); ++p) s += a(p, i) * b(p, j);
      c(i, j) += s;
    }
  }
  return c;
}

void expect_close(const Tensor& got, const Tensor& want, const char* what,
                  int64_t k) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  // Reassociation error bound: a few ulps per accumulated term.
  const double tol = 1e-14 * static_cast<double>(k + 1);
  for (int64_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, std::abs(want.at(i)));
    EXPECT_NEAR(got.at(i), want.at(i), tol * scale)
        << what << " at flat index " << i;
  }
}

struct Shape {
  int64_t m, k, n;
};

// Remainder-heavy shapes plus one past the 256-wide k panel.
const Shape kShapes[] = {
    {1, 1, 1},   {2, 3, 4},   {5, 7, 3},    {4, 4, 4},   {17, 1, 9},
    {1, 16, 1},  {3, 300, 5}, {33, 29, 31}, {8, 64, 48}, {20, 48, 130},
};

TEST(TensorTest, MatmulIntoMatchesNaive) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    const Tensor a = random_tensor(s.m, s.k, rng);
    const Tensor b = random_tensor(s.k, s.n, rng);
    Tensor c;
    matmul_into(a, b, c);
    expect_close(c, ref_nn(a, b, Tensor(s.m, s.n)), "NN", s.k);
  }
}

TEST(TensorTest, MatmulNtIntoMatchesNaive) {
  Rng rng(102);
  for (const Shape& s : kShapes) {
    const Tensor a = random_tensor(s.m, s.k, rng);
    const Tensor b = random_tensor(s.n, s.k, rng);
    Tensor c;
    matmul_nt_into(a, b, c);
    expect_close(c, ref_nt(a, b, Tensor(s.m, s.n)), "NT", s.k);
  }
}

TEST(TensorTest, MatmulTnIntoMatchesNaive) {
  Rng rng(103);
  for (const Shape& s : kShapes) {
    const Tensor a = random_tensor(s.k, s.m, rng);
    const Tensor b = random_tensor(s.k, s.n, rng);
    Tensor c;
    matmul_tn_into(a, b, c);
    expect_close(c, ref_tn(a, b, Tensor(s.m, s.n)), "TN", s.k);
  }
}

TEST(TensorTest, AccumulateVariantsAddOntoExistingOutput) {
  Rng rng(104);
  for (const Shape& s : kShapes) {
    const Tensor nn_a = random_tensor(s.m, s.k, rng);
    const Tensor nn_b = random_tensor(s.k, s.n, rng);
    const Tensor nt_b = random_tensor(s.n, s.k, rng);
    const Tensor tn_a = random_tensor(s.k, s.m, rng);
    const Tensor seed = random_tensor(s.m, s.n, rng);

    Tensor c = seed;
    matmul_acc(nn_a, nn_b, c);
    expect_close(c, ref_nn(nn_a, nn_b, seed), "NN acc", s.k);

    c = seed;
    matmul_nt_acc(nn_a, nt_b, c);
    expect_close(c, ref_nt(nn_a, nt_b, seed), "NT acc", s.k);

    c = seed;
    matmul_tn_acc(tn_a, nn_b, c);
    expect_close(c, ref_tn(tn_a, nn_b, seed), "TN acc", s.k);
  }
}

TEST(TensorTest, KernelsAreRunToRunBitIdentical) {
  Rng rng(105);
  const Tensor a = random_tensor(21, 35, rng);
  const Tensor b = random_tensor(35, 19, rng);
  const Tensor bt = random_tensor(19, 35, rng);
  const Tensor at = random_tensor(35, 21, rng);
  Tensor c1, c2;
  matmul_into(a, b, c1);
  matmul_into(a, b, c2);
  EXPECT_EQ(c1.data(), c2.data());
  matmul_nt_into(a, bt, c1);
  matmul_nt_into(a, bt, c2);
  EXPECT_EQ(c1.data(), c2.data());
  matmul_tn_into(at, b, c1);
  matmul_tn_into(at, b, c2);
  EXPECT_EQ(c1.data(), c2.data());
}

TEST(TensorTest, ShapeMismatchesThrow) {
  const Tensor a(2, 3), b(4, 5);
  Tensor c;
  EXPECT_THROW(matmul_into(a, b, c), InvalidArgument);
  Tensor bad(7, 7);
  const Tensor ok_b(3, 5);
  EXPECT_THROW(matmul_acc(a, ok_b, bad), InvalidArgument);
}

// Regression: the shape check must run BEFORE the storage is sized.  A
// negative dimension used to reach std::vector's fill constructor as a huge
// size_t (rows * cols wraps), so the constructor died in the allocator
// instead of throwing InvalidArgument.
TEST(TensorTest, NegativeDimensionsThrowBeforeAllocating) {
  EXPECT_THROW(Tensor(-1, 4), InvalidArgument);
  EXPECT_THROW(Tensor(4, -1), InvalidArgument);
  EXPECT_THROW(Tensor(-3, -7), InvalidArgument);
  EXPECT_THROW(Tensor(0, 5), InvalidArgument);
  EXPECT_THROW(TensorF(-1, 4), InvalidArgument);
  EXPECT_THROW(TensorF(4, -1), InvalidArgument);
  EXPECT_THROW(TensorF(0, 0), InvalidArgument);
}

TEST(TensorFTest, FromNarrowsEveryElementRoundToNearest) {
  Rng rng(109);
  const Tensor t = random_tensor(7, 13, rng);
  const TensorF f = TensorF::from(t);
  ASSERT_EQ(f.rows(), t.rows());
  ASSERT_EQ(f.cols(), t.cols());
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(f.at(i), static_cast<float>(t.at(i))) << "flat index " << i;
  }
}

// The float32 NN GEMM runs the same cache-blocked kernel as the double path;
// it only owes float-scale accuracy (vs a double reference computed on the
// narrowed inputs) and run-to-run bit identity.
TEST(TensorFTest, MatmulMatchesDoubleReferenceAtFloatScale) {
  Rng rng(113);
  for (const Shape& s : kShapes) {
    const Tensor a64 = random_tensor(s.m, s.k, rng);
    const Tensor b64 = random_tensor(s.k, s.n, rng);
    const TensorF a = TensorF::from(a64);
    const TensorF b = TensorF::from(b64);
    // Reference: double accumulation over the SAME float32 inputs, so the
    // tolerance covers only the f32 kernel's accumulation error, not the
    // narrowing of the operands.
    Tensor want(s.m, s.n);
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (int64_t p = 0; p < s.k; ++p) {
          acc += static_cast<double>(a(i, p)) * static_cast<double>(b(p, j));
        }
        want(i, j) = acc;
      }
    }
    TensorF c;
    matmul_into(a, b, c);
    ASSERT_EQ(c.rows(), s.m);
    ASSERT_EQ(c.cols(), s.n);
    const double tol = 1e-6 * static_cast<double>(s.k + 1);
    for (int64_t i = 0; i < c.size(); ++i) {
      const double scale = std::max(1.0, std::abs(want.at(i)));
      EXPECT_NEAR(static_cast<double>(c.at(i)), want.at(i), tol * scale)
          << "f32 NN at flat index " << i << " (m=" << s.m << " k=" << s.k
          << " n=" << s.n << ")";
    }

    TensorF c2;
    matmul_into(a, b, c2);
    EXPECT_EQ(c.data(), c2.data()) << "f32 NN not run-to-run bit-identical";
  }
}

}  // namespace
}  // namespace ota::ml
