// Admittance expression language tests: evaluation, rendering, substitution.
#include "sfg/admittance.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/error.hpp"

namespace ota::sfg {
namespace {

Term gm(const std::string& dev, double v, int sign = +1) {
  return Term{TermKind::Gm, dev, v, sign};
}
Term cap(const std::string& name, double v) {
  return Term{TermKind::Capacitance, name, v, +1};
}

TEST(Term, ParamNamesAndSymbols) {
  EXPECT_EQ(gm("M1", 1e-3).param_name(), "gmM1");
  EXPECT_EQ(gm("M1", 1e-3).symbol(), "gmM1");
  EXPECT_EQ((Term{TermKind::Gds, "P1", 1e-4, +1}).param_name(), "gdsP1");
  EXPECT_EQ((Term{TermKind::Cgs, "M0", 1e-15, +1}).symbol(), "sCgsM0");
  EXPECT_EQ((Term{TermKind::Cds, "M0", 1e-15, +1}).symbol(), "sCdsM0");
  EXPECT_EQ(cap("C", 1e-12).symbol(), "sC");
  EXPECT_EQ((Term{TermKind::Conductance, "G", 1e-3, +1}).symbol(), "G");
  EXPECT_EQ((Term{}).symbol(), "1");
}

TEST(Term, NumericRenderingMatchesPaperStyle) {
  // Paper Fig. 4 / Section III-C literals: "2.5mSP1", "s541aFP1".
  EXPECT_EQ(gm("P1", 2.5e-3).numeric(3), "2.5mSP1");
  EXPECT_EQ((Term{TermKind::Cgs, "P1", 541e-18, +1}).numeric(3), "s541aFP1");
  EXPECT_EQ((Term{TermKind::Gds, "M0", 567e-6, +1}).numeric(3), "567uSM0");
  // Passives stay symbolic in numeric mode.
  EXPECT_EQ(cap("C", 1e-12).numeric(3), "sC");
}

TEST(Admittance, UnityAndSingle) {
  EXPECT_TRUE(Admittance::one().is_unity());
  EXPECT_EQ(Admittance::one().render_symbolic(), "1");
  const auto a = Admittance::single(gm("M1", 1e-3, -1));
  EXPECT_FALSE(a.is_unity());
  EXPECT_EQ(a.render_symbolic(), "-gmM1");
}

TEST(Admittance, SumRendering) {
  Admittance a;
  a.add(cap("C", 1e-12));
  a.add(Term{TermKind::Cgs, "M", 0.5e-12, +1});
  a.add(gm("M", 1e-3));
  EXPECT_EQ(a.render_symbolic(), "sC+sCgsM+gmM");
}

TEST(Admittance, InverseRendering) {
  auto z = Admittance::inverse({cap("C", 1e-12), gm("M", 1e-3)});
  EXPECT_EQ(z.render_symbolic(), "1/(sC+gmM)");
}

TEST(Admittance, EvaluateSum) {
  Admittance a;
  a.add(Term{TermKind::Conductance, "G", 2e-3, +1});
  a.add(cap("C", 1e-9));
  const double f = 1e6;
  const std::complex<double> s{0.0, 2.0 * std::numbers::pi * f};
  const auto v = a.evaluate(s);
  EXPECT_DOUBLE_EQ(v.real(), 2e-3);
  EXPECT_NEAR(v.imag(), 2.0 * std::numbers::pi * f * 1e-9, 1e-15);
}

TEST(Admittance, EvaluateInverse) {
  auto z = Admittance::inverse({Term{TermKind::Conductance, "G", 1e-3, +1}});
  const auto v = z.evaluate({0.0, 0.0});
  EXPECT_DOUBLE_EQ(v.real(), 1e3);
}

TEST(Admittance, EvaluateNegativeTerm) {
  const auto a = Admittance::single(gm("M", 1e-3, -1));
  EXPECT_DOUBLE_EQ(a.evaluate({0.0, 0.0}).real(), -1e-3);
}

TEST(Admittance, InvertingZeroThrows) {
  auto z = Admittance::inverse({cap("C", 1e-12)});
  EXPECT_THROW(z.evaluate({0.0, 0.0}), ota::InternalError);  // s = 0 -> sum 0
}

TEST(Admittance, AddMergesSameParameter) {
  Admittance a;
  a.add(gm("M", 1e-3, +1));
  a.add(gm("M", 4e-4, +1));
  ASSERT_EQ(a.terms.size(), 1u);
  EXPECT_DOUBLE_EQ(a.terms[0].value, 1.4e-3);
  // Opposite signs cancel algebraically.
  a.add(gm("M", 2e-3, -1));
  ASSERT_EQ(a.terms.size(), 1u);
  EXPECT_EQ(a.terms[0].sign, -1);
  EXPECT_NEAR(a.terms[0].value, 0.6e-3, 1e-12);
}

TEST(Admittance, SubstituteOnlyTouchesDeviceParams) {
  Admittance a;
  a.add(cap("C", 1e-12));
  a.add(gm("M1", 1e-3));
  a.substitute({{"gmM1", 5e-3}, {"C", 9e-12}});
  EXPECT_DOUBLE_EQ(a.terms[0].value, 1e-12);  // passive untouched
  EXPECT_DOUBLE_EQ(a.terms[1].value, 5e-3);
  // Unknown names are ignored.
  a.substitute({{"gmM9", 1.0}});
  EXPECT_DOUBLE_EQ(a.terms[1].value, 5e-3);
}

TEST(Admittance, KindPredicates) {
  EXPECT_TRUE(is_capacitive(TermKind::Capacitance));
  EXPECT_TRUE(is_capacitive(TermKind::Cgs));
  EXPECT_TRUE(is_capacitive(TermKind::Cds));
  EXPECT_FALSE(is_capacitive(TermKind::Gm));
  EXPECT_TRUE(is_device_param(TermKind::Gm));
  EXPECT_TRUE(is_device_param(TermKind::Gds));
  EXPECT_FALSE(is_device_param(TermKind::Conductance));
  EXPECT_FALSE(is_device_param(TermKind::Unity));
}

}  // namespace
}  // namespace ota::sfg
