// AC analysis tests: RC references with closed-form answers, then transistor
// stages checked against hand small-signal analysis.
#include "spice/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/topologies.hpp"

namespace ota::spice {
namespace {

using circuit::Netlist;
using device::MosType;

class AcTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(AcTest, RcLowPassMatchesClosedForm) {
  Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "out", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-9);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);

  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-9);  // 159 kHz
  for (double f : {1e3, fc, 1e7}) {
    const auto h = ac.transfer(f, "out");
    const std::complex<double> ref =
        1.0 / std::complex<double>(1.0, f / fc);
    EXPECT_NEAR(std::abs(h - ref), 0.0, 1e-9) << "f=" << f;
  }
}

TEST_F(AcTest, RcHighPass) {
  Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_capacitor("C1", "in", "out", 1e-9);
  nl.add_resistor("R1", "out", "0", 1e3);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-9);
  EXPECT_NEAR(std::abs(ac.transfer(fc, "out")), 1.0 / std::numbers::sqrt2, 1e-6);
  EXPECT_LT(std::abs(ac.transfer(fc / 100.0, "out")), 0.02);
  EXPECT_GT(std::abs(ac.transfer(fc * 100.0, "out")), 0.999);
}

TEST_F(AcTest, CurrentSourceExcitationTransimpedance) {
  // 1 A AC into a 1 kOhm resistor reads 1 kV of transimpedance.
  Netlist nl;
  nl.add_isource("I1", "0", "n", 0.0, 1.0);
  nl.add_resistor("R1", "n", "0", 1e3);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  EXPECT_NEAR(std::abs(ac.transfer(1.0, "n")), 1e3, 1e-6);
}

TEST_F(AcTest, CommonSourceGainMatchesGmOverGds) {
  // CS stage with ideal current-source load (large R): |H(DC)| ~ gm * Rout
  // where Rout = R || (1/gds).
  Netlist nl;
  nl.add_vsource("VDD", "vdd", "0", 1.2);
  nl.add_vsource("VIN", "g", "0", 0.55, 1.0);
  nl.add_resistor("RL", "vdd", "d", 50e3);
  nl.add_mosfet("M1", MosType::Nmos, "d", "g", "0", 3e-6, 180e-9);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  const auto& ss = ac.devices().at("M1");
  const double rout = 1.0 / (ss.gds + 1.0 / 50e3);
  const double expected = ss.gm * rout;
  EXPECT_NEAR(std::abs(ac.transfer(1.0, "d")), expected, expected * 1e-6);
  // And the stage inverts: phase ~ 180 deg at low frequency.
  EXPECT_LT(ac.transfer(1.0, "d").real(), 0.0);
}

TEST_F(AcTest, SourceFollowerGainJustBelowUnity) {
  Netlist nl;
  nl.add_vsource("VDD", "vdd", "0", 1.2);
  nl.add_vsource("VIN", "g", "0", 0.9, 1.0);
  nl.add_mosfet("M1", MosType::Nmos, "vdd", "g", "s", 5e-6, 180e-9);
  nl.add_resistor("RS", "s", "0", 20e3);
  const DcSolution dc = solve_dc(nl, tech);
  const AcAnalysis ac(nl, tech, dc);
  const double h = std::abs(ac.transfer(1.0, "s"));
  EXPECT_GT(h, 0.7);
  EXPECT_LT(h, 1.0);
}

TEST_F(AcTest, FiveTransistorOtaHasDifferentialGain) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const DcSolution dc = solve_dc(topo.netlist, tech);
  const AcAnalysis ac(topo.netlist, tech, dc);
  const double h0 = std::abs(ac.transfer(1.0, "vout"));
  // Table I range for the 5T-OTA: 18-23 dB, i.e. 8-14x; allow slack since
  // this sizing is arbitrary.
  EXPECT_GT(h0, 3.0);
  EXPECT_LT(h0, 40.0);
  // Gain must roll off at high frequency (500 fF load).
  EXPECT_LT(std::abs(ac.transfer(10e9, "vout")), h0 * 0.2);
}

TEST_F(AcTest, HandAnalysisFiveTransistorGain) {
  // |H(DC)| for the 5T-OTA is gm_dp / (gds2 + gds4) with matched halves.
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const DcSolution dc = solve_dc(topo.netlist, tech);
  const AcAnalysis ac(topo.netlist, tech, dc);
  const auto& m4 = ac.devices().at("M4");
  const auto& m2 = ac.devices().at("M2");
  const double expected = m4.gm / (m2.gds + m4.gds);
  const double measured = std::abs(ac.transfer(1.0, "vout"));
  EXPECT_NEAR(measured, expected, expected * 0.10);
}

}  // namespace
}  // namespace ota::spice
