// Data-generation tests (paper Section IV-A procedure).
#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace ota::core {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  Dataset small_dataset(const std::string& name, int n = 40) {
    auto topo = circuit::make_topology(name, tech);
    DataGenOptions opt;
    opt.target_designs = n;
    opt.max_attempts = 20000;
    opt.seed = 7;
    return generate_dataset(topo, tech, SpecRange::for_topology(name), opt);
  }
};

TEST_F(DatasetTest, GeneratesRequestedCount) {
  const Dataset ds = small_dataset("5T-OTA");
  EXPECT_EQ(ds.designs.size(), 40u);
  EXPECT_GT(ds.attempts, 40);  // rejection sampling costs attempts
}

TEST_F(DatasetTest, AllDesignsMeetSpecWindow) {
  const Dataset ds = small_dataset("5T-OTA");
  const SpecRange range = SpecRange::for_topology("5T-OTA");
  for (const auto& d : ds.designs) {
    EXPECT_TRUE(range.contains(d.specs));
  }
}

TEST_F(DatasetTest, WidthsWithinSweepBounds) {
  const Dataset ds = small_dataset("CM-OTA", 25);
  for (const auto& d : ds.designs) {
    ASSERT_EQ(d.widths.size(), 5u);
    for (double w : d.widths) {
      EXPECT_GE(w, 0.7e-6 * 0.999);
      EXPECT_LE(w, 50e-6 * 1.001);
    }
  }
}

TEST_F(DatasetTest, DeviceParametersCaptured) {
  const Dataset ds = small_dataset("5T-OTA", 10);
  for (const auto& d : ds.designs) {
    EXPECT_EQ(d.devices.size(), 5u);  // all five transistors
    for (const auto& [name, ss] : d.devices) {
      EXPECT_GT(ss.gm, 0.0) << name;
      EXPECT_GT(ss.id, 0.0) << name;
    }
  }
}

TEST_F(DatasetTest, RegionFiltersAreActive) {
  // With region enforcement the DP must sit at low IC and the mirrors high.
  const Dataset ds = small_dataset("5T-OTA", 15);
  for (const auto& d : ds.designs) {
    EXPECT_LE(d.devices.at("M3").ic, 1.0 + 1e-9);   // DP toward weak inversion
    EXPECT_GE(d.devices.at("M1").ic, 3.0 - 1e-9);   // mirror toward strong
  }
}

TEST_F(DatasetTest, DeterministicForFixedSeed) {
  const Dataset a = small_dataset("5T-OTA", 10);
  const Dataset b = small_dataset("5T-OTA", 10);
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].widths, b.designs[i].widths);
  }
}

TEST_F(DatasetTest, DifferentSeedsDiffer) {
  auto topo = circuit::make_5t_ota(tech);
  DataGenOptions a, b;
  a.target_designs = b.target_designs = 5;
  a.seed = 1;
  b.seed = 2;
  const auto da = generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), a);
  const auto db = generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), b);
  ASSERT_FALSE(da.designs.empty());
  ASSERT_FALSE(db.designs.empty());
  EXPECT_NE(da.designs[0].widths, db.designs[0].widths);
}

TEST_F(DatasetTest, SpecRangeForUnknownTopologyThrows) {
  EXPECT_THROW(SpecRange::for_topology("9T-OTA"), InvalidArgument);
}

TEST_F(DatasetTest, TrainValSplitProportions) {
  const Dataset ds = small_dataset("5T-OTA", 40);
  const auto [train, val] = train_val_split(ds.designs, 0.2, 11);
  EXPECT_EQ(val.size(), 8u);
  EXPECT_EQ(train.size(), 32u);
  EXPECT_THROW(train_val_split(ds.designs, 1.5, 1), InvalidArgument);
}

TEST_F(DatasetTest, TrainValSplitIsAPartition) {
  const Dataset ds = small_dataset("5T-OTA", 30);
  const auto [train, val] = train_val_split(ds.designs, 0.3, 5);
  // Widths triples identify designs uniquely with overwhelming probability.
  std::set<std::vector<double>> seen;
  for (const auto& d : train) seen.insert(d.widths);
  for (const auto& d : val) {
    EXPECT_EQ(seen.count(d.widths), 0u);
  }
  EXPECT_EQ(train.size() + val.size(), ds.designs.size());
}

TEST_F(DatasetTest, TwoStageDatasetIsGeneratable) {
  const Dataset ds = small_dataset("2S-OTA", 15);
  EXPECT_EQ(ds.designs.size(), 15u);
  const SpecRange range = SpecRange::for_topology("2S-OTA");
  for (const auto& d : ds.designs) {
    EXPECT_TRUE(range.contains(d.specs));
    EXPECT_GE(d.specs.gain_db, 26.0);  // two-stage gain exceeds single-stage
  }
}

}  // namespace
}  // namespace ota::core
