// EKV compact-model tests: the properties the sizing flow depends on.
#include "device/mos_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace ota::device {
namespace {

class MosModelTest : public ::testing::Test {
 protected:
  Technology tech = Technology::default65nm();
  MosModel nmos{tech.nmos};
  MosModel pmos{tech.pmos};
  static constexpr double kL = 180e-9;
  static constexpr double kW = 5e-6;
};

TEST_F(MosModelTest, CurrentIncreasesWithVgs) {
  double prev = nmos.evaluate(0.2, 0.6, kW, kL).id;
  for (double vgs = 0.3; vgs <= 1.2; vgs += 0.1) {
    const double id = nmos.evaluate(vgs, 0.6, kW, kL).id;
    EXPECT_GT(id, prev) << "vgs=" << vgs;
    prev = id;
  }
}

TEST_F(MosModelTest, WeakInversionIsExponential) {
  // In weak inversion Id should grow ~exp(Vgs / (n phi_t)): check the slope.
  const double v1 = 0.15, v2 = 0.20;
  const double i1 = nmos.evaluate(v1, 0.6, kW, kL).id;
  const double i2 = nmos.evaluate(v2, 0.6, kW, kL).id;
  const double slope = std::log(i2 / i1) / (v2 - v1);
  const double expected = 1.0 / (tech.nmos.n * tech.nmos.phi_t);
  EXPECT_NEAR(slope, expected, expected * 0.05);
}

TEST_F(MosModelTest, StrongInversionIsRoughlyQuadratic) {
  // Far above threshold, Id ~ (Vgs - VT)^2 (before CLM): compare at two
  // overdrives with a generous tolerance for the EKV interpolation.
  const double vt = tech.nmos.vt0;
  const double i1 = nmos.evaluate(vt + 0.3, 1.2, kW, kL).id;
  const double i2 = nmos.evaluate(vt + 0.6, 1.2, kW, kL).id;
  EXPECT_NEAR(i2 / i1, 4.0, 0.8);
}

TEST_F(MosModelTest, AllFiveOutputsScaleLinearlyWithWidth) {
  // This is the exact property (Section III-D.1) that lets the paper store
  // per-unit-width LUT entries.
  const SmallSignal a = nmos.evaluate(0.6, 0.6, 1e-6, kL);
  const SmallSignal b = nmos.evaluate(0.6, 0.6, 7e-6, kL);
  EXPECT_NEAR(b.id / a.id, 7.0, 1e-9);
  EXPECT_NEAR(b.gm / a.gm, 7.0, 1e-9);
  EXPECT_NEAR(b.gds / a.gds, 7.0, 1e-9);
  EXPECT_NEAR(b.cgs / a.cgs, 7.0, 1e-9);
  EXPECT_NEAR(b.cds / a.cds, 7.0, 1e-9);
}

TEST_F(MosModelTest, GmOverIdIsWidthIndependent) {
  // Cornerstone of the gm/Id methodology (Section III-D.1).
  for (double vgs : {0.3, 0.45, 0.6, 0.9}) {
    const SmallSignal a = nmos.evaluate(vgs, 0.6, 0.7e-6, kL);
    const SmallSignal b = nmos.evaluate(vgs, 0.6, 50e-6, kL);
    EXPECT_NEAR(a.gm / a.id, b.gm / b.id, 1e-9 * a.gm / a.id);
  }
}

TEST_F(MosModelTest, GmOverIdDecreasesWithVgs) {
  // gm/Id is highest in weak inversion and falls toward strong inversion.
  double prev = 1e9;
  for (double vgs = 0.2; vgs <= 1.1; vgs += 0.15) {
    const SmallSignal ss = nmos.evaluate(vgs, 0.6, kW, kL);
    const double gmid = ss.gm / ss.id;
    EXPECT_LT(gmid, prev);
    prev = gmid;
  }
  // Weak-inversion asymptote: gm/Id -> 1/(n phi_t) ~ 29.7 /V.
  const SmallSignal wi = nmos.evaluate(0.1, 0.6, kW, kL);
  EXPECT_NEAR(wi.gm / wi.id, 1.0 / (tech.nmos.n * tech.nmos.phi_t), 2.0);
}

TEST_F(MosModelTest, DcDerivativesMatchFiniteDifferences) {
  const double h = 1e-7;
  for (const MosModel* model : {&nmos, &pmos}) {
    for (double vg : {0.3, 0.6, 0.9}) {
      for (double vd : {0.2, 0.6, 1.1}) {
        const double vs = model == &pmos ? 1.2 : 0.0;
        const DcEval e = model->dc(vg, vd, vs, kW, kL);
        const double fd_g =
            (model->dc(vg + h, vd, vs, kW, kL).id - model->dc(vg - h, vd, vs, kW, kL).id) / (2 * h);
        const double fd_d =
            (model->dc(vg, vd + h, vs, kW, kL).id - model->dc(vg, vd - h, vs, kW, kL).id) / (2 * h);
        const double fd_s =
            (model->dc(vg, vd, vs + h, kW, kL).id - model->dc(vg, vd, vs - h, kW, kL).id) / (2 * h);
        const double scale = std::max(1e-6, std::fabs(e.id));
        EXPECT_NEAR(e.di_dvg, fd_g, scale * 1e-3) << "vg=" << vg << " vd=" << vd;
        EXPECT_NEAR(e.di_dvd, fd_d, scale * 1e-3);
        EXPECT_NEAR(e.di_dvs, fd_s, scale * 1e-3);
      }
    }
  }
}

TEST_F(MosModelTest, PmosMirrorsNmosBehaviour) {
  // A PMOS with source at VDD conducts when the gate drops below VDD - VT.
  const DcEval off = pmos.dc(/*vg=*/1.2, /*vd=*/0.6, /*vs=*/1.2, kW, kL);
  const DcEval on = pmos.dc(/*vg=*/0.5, /*vd=*/0.6, /*vs=*/1.2, kW, kL);
  EXPECT_LT(std::fabs(off.id), 1e-7);
  // PMOS current flows source -> drain: negative in the into-drain convention.
  EXPECT_LT(on.id, -1e-6);
}

TEST_F(MosModelTest, RegionClassification) {
  EXPECT_EQ(nmos.evaluate(0.05, 0.6, kW, kL).region, Region::Off);
  EXPECT_EQ(nmos.evaluate(0.25, 0.6, kW, kL).region, Region::WeakInversion);
  EXPECT_EQ(nmos.evaluate(0.50, 0.6, kW, kL).region, Region::ModerateInversion);
  EXPECT_EQ(nmos.evaluate(1.10, 0.6, kW, kL).region, Region::StrongInversion);
}

TEST_F(MosModelTest, ConductionClassification) {
  EXPECT_EQ(nmos.evaluate(0.6, 1.0, kW, kL).conduction, Conduction::Saturation);
  EXPECT_EQ(nmos.evaluate(1.0, 0.05, kW, kL).conduction, Conduction::Triode);
  EXPECT_EQ(nmos.evaluate(0.05, 0.6, kW, kL).conduction, Conduction::Cutoff);
}

TEST_F(MosModelTest, GdsPositiveAndFallsFromTriodeToSaturation) {
  const SmallSignal triode = nmos.evaluate(0.9, 0.05, kW, kL);
  const SmallSignal sat = nmos.evaluate(0.9, 1.0, kW, kL);
  EXPECT_GT(triode.gds, 0.0);
  EXPECT_GT(sat.gds, 0.0);
  EXPECT_GT(triode.gds, sat.gds);
}

TEST_F(MosModelTest, CapacitancesBehave) {
  // Cgs grows with inversion level; Cds shrinks with reverse bias.
  const SmallSignal off = nmos.evaluate(0.1, 0.6, kW, kL);
  const SmallSignal on = nmos.evaluate(1.0, 0.6, kW, kL);
  EXPECT_GT(on.cgs, off.cgs);
  const SmallSignal lo = nmos.evaluate(0.8, 0.1, kW, kL);
  const SmallSignal hi = nmos.evaluate(0.8, 1.1, kW, kL);
  EXPECT_GT(lo.cds, hi.cds);
  // Magnitudes: fF-scale for um-scale devices (65 nm-like plausibility).
  EXPECT_GT(on.cgs, 1e-16);
  EXPECT_LT(on.cgs, 1e-13);
}

TEST_F(MosModelTest, InvalidGeometryThrows) {
  EXPECT_THROW(nmos.evaluate(0.6, 0.6, 0.0, kL), ota::InvalidArgument);
  EXPECT_THROW(nmos.evaluate(0.6, 0.6, kW, -1.0), ota::InvalidArgument);
}

TEST_F(MosModelTest, IntrinsicGainIsRealisticForShortChannel) {
  // gm/gds at L = 180 nm should be around 10-20 (the paper's 5T-OTA gains of
  // 18-23 dB demand a low intrinsic gain).
  const SmallSignal ss = nmos.evaluate(0.45, 0.6, kW, kL);
  const double av = ss.gm / ss.gds;
  EXPECT_GT(av, 4.0);
  EXPECT_LT(av, 60.0);
}

}  // namespace
}  // namespace ota::device
