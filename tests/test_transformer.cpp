// Transformer tests: shape discipline, gradient flow, save/load, and a toy
// copy-task to prove the encoder-decoder can actually learn a mapping.
#include "ml/transformer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/adam.hpp"

namespace ota::ml {
namespace {

using nlp::TokenId;
using nlp::Vocabulary;

TransformerConfig tiny_config(int64_t vocab) {
  TransformerConfig c;
  c.vocab_size = vocab;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 1;
  c.d_ff = 32;
  c.max_len = 64;
  c.dropout = 0.0;
  c.seed = 42;
  return c;
}

TEST(Transformer, ShapesAreConsistent) {
  const Transformer model(tiny_config(11));
  Rng rng(1);
  const std::vector<TokenId> src{4, 5, 6, 7};
  const Var memory = model.encode(src, false, rng);
  EXPECT_EQ(memory->value.rows(), 4);
  EXPECT_EQ(memory->value.cols(), 16);
  const Var logits = model.decode(memory, {Vocabulary::kBos, 4, 5}, false, rng);
  EXPECT_EQ(logits->value.rows(), 3);
  EXPECT_EQ(logits->value.cols(), 11);
}

TEST(Transformer, ParameterCountMatchesArchitecture) {
  const Transformer model(tiny_config(11));
  // Two embeddings (11*16 each) + output head (16*11 + 11) plus layer params:
  // exact accounting is brittle; assert the count is substantial and stable.
  EXPECT_GT(model.parameter_count(), 3000);
  const Transformer again(tiny_config(11));
  EXPECT_EQ(model.parameter_count(), again.parameter_count());
}

TEST(Transformer, LossDecreasesOnCopyTask) {
  // Learn to copy a 4-token sequence.  A 1-layer model should fit a handful
  // of patterns quickly; this is the "does training work at all" test.
  TransformerConfig cfg = tiny_config(10);
  Transformer model(cfg);
  AdamOptions aopt;
  aopt.lr = 3e-3;
  Adam adam(model.parameters(), aopt);
  Rng rng(5);

  const std::vector<std::vector<TokenId>> seqs{
      {4, 5, 6, 7}, {5, 4, 7, 6}, {6, 7, 4, 5}, {7, 6, 5, 4}};
  const std::vector<double> weights(5, 1.0);  // 4 tokens + <eos>

  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    double total = 0.0;
    for (const auto& s : seqs) {
      const Var l = model.loss(s, s, weights, rng);
      total += l->value.at(0);
      backward(l);
      adam.step();
    }
    if (epoch == 0) first_loss = total;
    last_loss = total;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
}

TEST(Transformer, GreedyDecodeReproducesLearnedCopy) {
  TransformerConfig cfg = tiny_config(10);
  Transformer model(cfg);
  AdamOptions aopt;
  aopt.lr = 3e-3;
  Adam adam(model.parameters(), aopt);
  Rng rng(5);
  const std::vector<std::vector<TokenId>> seqs{
      {4, 5, 6, 7}, {5, 4, 7, 6}, {6, 7, 4, 5}, {7, 6, 5, 4}};
  const std::vector<double> weights(5, 1.0);
  for (int epoch = 0; epoch < 150; ++epoch) {
    for (const auto& s : seqs) {
      const Var l = model.loss(s, s, weights, rng);
      backward(l);
      adam.step();
    }
  }
  int correct = 0;
  for (const auto& s : seqs) {
    if (model.greedy_decode(s, 10) == s) ++correct;
  }
  EXPECT_GE(correct, 3) << "copy task should be essentially solved";
}

TEST(Transformer, SaveLoadRoundTrip) {
  const Transformer model(tiny_config(11));
  std::stringstream buf;
  model.save(buf);

  TransformerConfig cfg = tiny_config(11);
  cfg.seed = 999;  // different init; load must overwrite it
  Transformer other(cfg);
  other.load(buf);

  Rng rng(3);
  const std::vector<TokenId> src{4, 5, 6};
  const Var a = model.encode(src, false, rng);
  const Var b = other.encode(src, false, rng);
  for (int64_t i = 0; i < a->value.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->value.at(i), b->value.at(i));
  }
}

TEST(Transformer, LoadRejectsGarbage) {
  Transformer model(tiny_config(11));
  std::stringstream buf("definitely not a model file");
  EXPECT_THROW(model.load(buf), InvalidArgument);
}

TEST(Transformer, LoadRejectsMismatchedArchitecture) {
  const Transformer small(tiny_config(11));
  std::stringstream buf;
  small.save(buf);
  TransformerConfig big = tiny_config(11);
  big.d_model = 32;
  big.d_ff = 64;
  Transformer other(big);
  EXPECT_THROW(other.load(buf), InvalidArgument);
}

TEST(Transformer, LossRequiresAlignedWeights) {
  const Transformer model(tiny_config(11));
  Rng rng(1);
  EXPECT_THROW((void)model.loss({4, 5}, {4, 5}, {1.0}, rng), InvalidArgument);
}

TEST(Transformer, EmptyInputsRejected) {
  const Transformer model(tiny_config(11));
  Rng rng(1);
  EXPECT_THROW((void)model.encode({}, false, rng), InvalidArgument);
}

TEST(Transformer, VocabSizeRequired) {
  TransformerConfig cfg;
  EXPECT_THROW((void)Transformer(cfg), InvalidArgument);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||x - c||^2 for a fixed target c.
  Rng rng(11);
  Var x = parameter(Tensor(1, 4, 0.0));
  Tensor target(1, 4);
  for (int64_t i = 0; i < 4; ++i) target.at(i) = 1.0 + i;
  AdamOptions opt;
  opt.lr = 0.05;
  opt.grad_clip = 0.0;
  Adam adam({x}, opt);
  for (int it = 0; it < 500; ++it) {
    Var diff = sub(x, constant(target));
    Var loss = sum(mul(diff, diff));
    backward(loss);
    adam.step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->value.at(i), target.at(i), 1e-2);
  }
}

TEST(Adam, PlateauDecayReducesLearningRate) {
  Var x = parameter(Tensor(1, 1, 0.0));
  AdamOptions opt;
  opt.lr = 1e-3;
  opt.patience = 2;
  Adam adam({x}, opt);
  adam.observe_loss(1.0);
  adam.observe_loss(1.0);
  adam.observe_loss(1.0);
  EXPECT_NEAR(adam.learning_rate(), 5e-4, 1e-12);
}

TEST(Adam, GradClipBoundsUpdate) {
  Var x = parameter(Tensor(1, 1, 0.0));
  AdamOptions opt;
  opt.lr = 1.0;
  opt.grad_clip = 1e-3;
  Adam adam({x}, opt);
  x->ensure_grad().at(0) = 1e6;  // enormous gradient
  adam.step();
  // First Adam step magnitude is ~lr regardless, but must be finite and the
  // moments must reflect the clipped gradient.
  EXPECT_TRUE(std::isfinite(x->value.at(0)));
  EXPECT_LT(std::fabs(x->value.at(0)), 1.5);
}

}  // namespace
}  // namespace ota::ml
