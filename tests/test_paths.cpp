// Cycle/path enumeration tests: Johnson's algorithm against hand-countable
// graphs built from small circuits, plus Table I count reporting.
#include "sfg/paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "circuit/topologies.hpp"
#include "sfg/sequence.hpp"
#include "spice/dc.hpp"

namespace ota::sfg {
namespace {

class PathsTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  DpSfg build(circuit::Netlist& nl, const std::string& out) {
    const auto dc = spice::solve_dc(nl, tech);
    const auto devices = spice::small_signal_map(nl, tech, dc);
    return DpSfg::build(nl, devices, out);
  }
};

TEST_F(PathsTest, RcLadderHasNoCycles) {
  // Pure series RC ladder: coupling edges only run along the ladder, but
  // each adjacent floating-node pair forms a V->I->V->I loop; with a single
  // grounded-source drive and one intermediate node there is exactly one
  // bidirectional coupling loop.
  circuit::Netlist nl;
  nl.add_vsource("V1", "in", "0", 0.0, 1.0);
  nl.add_resistor("R1", "in", "a", 1e3);
  nl.add_resistor("R2", "a", "out", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-12);
  const DpSfg g = build(nl, "out");
  // Vertices: V1, Ia, Va, Iout, Vout(node), Output.
  // Cycle: Va -> Iout -> Vout -> Ia -> Va (R2 coupling both ways).
  const auto cycles = enumerate_cycles(g);
  EXPECT_EQ(cycles.size(), 1u);
}

TEST_F(PathsTest, CyclesAreElementaryAndUnique) {
  auto topo = circuit::make_cm_ota(tech);
  topo.apply_widths({3e-6, 10e-6, 6e-6, 6e-6, 4e-6});
  const auto dc = spice::solve_dc(topo.netlist, tech);
  const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
  const DpSfg g = DpSfg::build(topo.netlist, devices, topo.output_node);

  const auto cycles = enumerate_cycles(g);
  std::set<std::vector<int>> canonical;
  for (auto c : cycles) {
    // No repeated vertices within an elementary cycle.
    std::set<int> verts(c.begin(), c.end());
    EXPECT_EQ(verts.size(), c.size());
    // Canonical start = minimal vertex (Johnson invariant).
    EXPECT_EQ(*std::min_element(c.begin(), c.end()), c.front());
    EXPECT_TRUE(canonical.insert(c).second) << "duplicate cycle";
  }
}

TEST_F(PathsTest, ForwardPathsAreSimpleAndReachOutput) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const auto dc = spice::solve_dc(topo.netlist, tech);
  const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
  const DpSfg g = DpSfg::build(topo.netlist, devices, topo.output_node);

  const auto paths = forward_paths(g);
  ASSERT_GT(paths.size(), 0u);
  for (const auto& p : paths) {
    std::set<int> verts(p.begin(), p.end());
    EXPECT_EQ(verts.size(), p.size()) << "path revisits a vertex";
    EXPECT_EQ(p.back(), g.output_vertex());
    EXPECT_EQ(g.vertices()[static_cast<size_t>(p.front())].kind,
              VertexKind::Excitation);
  }
}

TEST_F(PathsTest, TableOneStyleCounts) {
  // The paper's Table I reports 9/26/2 forward paths and 4/5/11 cycles for
  // 5T/CM/2S.  Our netlists and small-signal model (no Cgd) yield our own
  // counts; assert they are stable and ordered the same way: the CM-OTA has
  // the most forward paths, the 2S-OTA the most cycles relative to paths.
  auto count = [&](const std::string& name,
                   std::vector<double> widths) -> std::pair<size_t, size_t> {
    auto topo = circuit::make_topology(name, tech);
    topo.apply_widths(widths);
    const auto dc = spice::solve_dc(topo.netlist, tech);
    const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
    const DpSfg g = DpSfg::build(topo.netlist, devices, topo.output_node);
    const PathSet ps = collect_paths(g);
    return {ps.forward.size(), ps.cycles.size()};
  };

  const auto [fwd5t, cyc5t] = count("5T-OTA", {4e-6, 12e-6, 6e-6});
  const auto [fwdcm, cyccm] = count("CM-OTA", {3e-6, 10e-6, 6e-6, 6e-6, 4e-6});
  const auto [fwd2s, cyc2s] = count("2S-OTA", {4e-6, 12e-6, 6e-6, 10e-6, 3e-6});

  EXPECT_GT(fwd5t, 0u);
  EXPECT_GT(cyc5t, 0u);
  // CM-OTA has the largest path count of the three (matches Table I order).
  EXPECT_GT(fwdcm, fwd5t);
  EXPECT_GT(fwdcm, fwd2s);
  // The 2S-OTA's Miller loop gives it the highest cycle count (Table I: 11).
  EXPECT_GE(cyc2s, cyc5t);
}

TEST_F(PathsTest, VertexMaskBits) {
  EXPECT_EQ(vertex_mask({0, 1, 3}), 0b1011u);
  EXPECT_EQ(vertex_mask({}), 0u);
  EXPECT_THROW(vertex_mask({64}), ota::InvalidArgument);
}

TEST_F(PathsTest, EnumeratePathsNoRoute) {
  // Paths from the output vertex (no out-edges) to an excitation: none.
  auto ai = circuit::make_active_inductor(tech);
  const auto dc = spice::solve_dc(ai.netlist, tech);
  const auto devices = spice::small_signal_map(ai.netlist, tech, dc);
  const DpSfg g = DpSfg::build(ai.netlist, devices, ai.output_node);
  const auto none =
      enumerate_paths(g, g.output_vertex(), g.vertex_index("Iin"));
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace ota::sfg
