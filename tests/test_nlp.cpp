// Tokenizer tests: vocabulary, CLT, restricted BPE (Section III-C).
#include "nlp/bpe.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace ota::nlp {
namespace {

TEST(Vocabulary, SpecialTokensReserved) {
  Vocabulary v;
  EXPECT_EQ(v.piece(Vocabulary::kPad), "<pad>");
  EXPECT_EQ(v.piece(Vocabulary::kBos), "<bos>");
  EXPECT_EQ(v.piece(Vocabulary::kEos), "<eos>");
  EXPECT_EQ(v.piece(Vocabulary::kUnk), "<unk>");
  EXPECT_EQ(v.size(), 4u);
}

TEST(Vocabulary, AddIsIdempotent) {
  Vocabulary v;
  const TokenId a = v.add("gm");
  EXPECT_EQ(v.add("gm"), a);
  EXPECT_EQ(v.id("gm"), a);
  EXPECT_EQ(v.id("nope"), Vocabulary::kUnk);
  EXPECT_TRUE(v.contains("gm"));
  EXPECT_FALSE(v.contains("nope"));
  EXPECT_THROW(v.piece(9999), ota::InvalidArgument);
}

TEST(NumericToken, Classification) {
  EXPECT_TRUE(is_numeric_token("2"));
  EXPECT_TRUE(is_numeric_token("2.5"));
  EXPECT_TRUE(is_numeric_token("."));  // part of a number being spelled out
  EXPECT_FALSE(is_numeric_token(""));
  EXPECT_FALSE(is_numeric_token("mS"));
  EXPECT_FALSE(is_numeric_token("P1"));   // identifier, not a number
  EXPECT_FALSE(is_numeric_token("2a"));
}

TEST(CharTokens, OnePerCharacter) {
  const auto toks = char_tokens("gm 2.5");
  EXPECT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0], "g");
  EXPECT_EQ(toks[2], " ");
  EXPECT_EQ(toks[3], "2");
}

class BpeTest : public ::testing::Test {
 protected:
  // A miniature sequence corpus in the paper's notation.
  std::vector<std::string> corpus{
      "Iin 1 In1 1/(sC+gdsM0+sCdsM0+sCgsM0) Vn1 1 Vout",
      "In1 1/(sC+gdsM0+sCdsM0+sCgsM0) Vn1 sC+sCgsM0 In2",
      "32 2.5mSP1 -16 1/(567uSM0+s0.7aFM0+s541aFP1+2.5mSP1)",
      "gmP1 gdsM0 CdsM0 CgsM0 gmP1 gdsM0",
      "12 3.77 900aF 2.5mS 101uS gmP1 gmP1 gmP1",
  };
};

TEST_F(BpeTest, LearnsFrequentMerges) {
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 200});
  EXPECT_GT(tok.merges().size(), 10u);
  // Frequent multi-char fragments become single pieces.
  const auto pieces = tok.encode_pieces("gmP1");
  EXPECT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "gmP1");
}

TEST_F(BpeTest, NumericStringsStayCharacterLevel) {
  // Paper: "all purely numeric strings are left uncombined".
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 400});
  for (const std::string number : {"2.5", "567", "3.77", "101"}) {
    const auto pieces = tok.encode_pieces(number);
    EXPECT_EQ(pieces.size(), number.size()) << number;
    for (const auto& p : pieces) {
      EXPECT_EQ(p.size(), 1u) << number;
    }
  }
}

TEST_F(BpeTest, UnitsMergeButValuesDoNot) {
  // "2.5mS" -> '2' '.' '5' 'mS...' : the unit fragment merges, digits do not.
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 400});
  const auto pieces = tok.encode_pieces("2.5mS");
  ASSERT_GE(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "2");
  EXPECT_EQ(pieces[1], ".");
  EXPECT_EQ(pieces[2], "5");
  // Whatever follows the digits contains no digits of the value.
  for (size_t i = 3; i < pieces.size(); ++i) {
    EXPECT_FALSE(is_numeric_token(pieces[i]));
  }
}

TEST_F(BpeTest, VanillaBpeWouldMergeNumbers) {
  // With protection off, frequent numeric pairs do merge — demonstrating the
  // restriction is doing something.
  const BpeTokenizer vanilla =
      BpeTokenizer::train(corpus, {.num_merges = 400, .protect_numeric = false});
  const BpeTokenizer restricted =
      BpeTokenizer::train(corpus, {.num_merges = 400, .protect_numeric = true});
  const auto vp = vanilla.encode_pieces("2.5mSP1");
  const auto rp = restricted.encode_pieces("2.5mSP1");
  // Unrestricted merging swallows the value digits into larger pieces.
  EXPECT_LT(vp.size(), rp.size());
  bool digit_inside_multichar = false;
  for (const auto& p : vp) {
    if (p.size() > 1 && p.find_first_of("0123456789") != std::string::npos &&
        p.find_first_of(".") != std::string::npos) {
      digit_inside_multichar = true;
    }
  }
  EXPECT_TRUE(digit_inside_multichar);
}

TEST_F(BpeTest, EncodeDecodeRoundTrip) {
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 300});
  for (const auto& line : corpus) {
    const auto ids = tok.encode(line, /*add_bos_eos=*/true);
    EXPECT_EQ(ids.front(), Vocabulary::kBos);
    EXPECT_EQ(ids.back(), Vocabulary::kEos);
    EXPECT_EQ(tok.decode(ids), line);
  }
}

TEST_F(BpeTest, CompressionBeatsClt) {
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 400});
  const double ratio = tok.compression_vs_clt(corpus);
  // The paper reports 3.77x on its OTA corpus; on this miniature corpus we
  // only require material compression.
  EXPECT_GT(ratio, 1.5);
}

TEST_F(BpeTest, MergesNeverCrossWordBoundaries) {
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 400});
  const auto pieces = tok.encode_pieces("gmP1 gmP1");
  // Expect exactly: "gmP1", " ", "gmP1".
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], " ");
}

TEST_F(BpeTest, SerializationRoundTrip) {
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 300});
  const BpeTokenizer back = BpeTokenizer::deserialize(tok.serialize());
  EXPECT_EQ(back.merges(), tok.merges());
  for (const auto& line : corpus) {
    EXPECT_EQ(back.encode_pieces(line), tok.encode_pieces(line)) << line;
  }
}

TEST_F(BpeTest, DeserializeRejectsGarbage) {
  EXPECT_THROW(BpeTokenizer::deserialize("not-a-tokenizer"), ota::InvalidArgument);
}

TEST_F(BpeTest, UnknownCharactersEncodeToUnk) {
  const BpeTokenizer tok = BpeTokenizer::train(corpus, {.num_merges = 100});
  const auto ids = tok.encode("@@@");
  for (TokenId id : ids) EXPECT_EQ(id, Vocabulary::kUnk);
}

TEST_F(BpeTest, MinPairCountStopsEarly) {
  const BpeTokenizer tok =
      BpeTokenizer::train(corpus, {.num_merges = 10000, .min_pair_count = 5});
  const BpeTokenizer full =
      BpeTokenizer::train(corpus, {.num_merges = 10000, .min_pair_count = 2});
  EXPECT_LT(tok.merges().size(), full.merges().size());
}

}  // namespace
}  // namespace ota::nlp
