// Stage II-IV integration tests.
//
// The transformer itself is exercised with a deliberately tiny training run
// (mechanics, persistence); copilot behaviour is tested with the
// deterministic nearest-neighbor predictor so the tests stay fast and the
// assertions sharp — on a dense dataset, NN prediction + LUT width estimation
// must reproduce nearby designs and the copilot must converge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/nearest_predictor.hpp"
#include "core/sizing_model.hpp"

namespace ota::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new device::Technology(device::Technology::default65nm());
    topo_ = new circuit::Topology(circuit::make_5t_ota(*tech_));
    DataGenOptions opt;
    opt.target_designs = 120;
    opt.max_attempts = 30000;
    opt.seed = 31;
    dataset_ = new Dataset(generate_dataset(
        *topo_, *tech_, SpecRange::for_topology("5T-OTA"), opt));
    builder_ = new SequenceBuilder(*topo_, *tech_);
    luts_ = new LutSet(LutSet::build(*tech_));
  }
  static void TearDownTestSuite() {
    delete luts_;
    delete builder_;
    delete dataset_;
    delete topo_;
    delete tech_;
  }

  static device::Technology* tech_;
  static circuit::Topology* topo_;
  static Dataset* dataset_;
  static SequenceBuilder* builder_;
  static LutSet* luts_;
};

device::Technology* PipelineTest::tech_ = nullptr;
circuit::Topology* PipelineTest::topo_ = nullptr;
Dataset* PipelineTest::dataset_ = nullptr;
SequenceBuilder* PipelineTest::builder_ = nullptr;
LutSet* PipelineTest::luts_ = nullptr;

TEST_F(PipelineTest, EncoderSpecsRoundTrip) {
  const Specs s{21.4, 13.2e6, 151e6};
  const Specs back = parse_encoder_specs(builder_->encoder_text(s));
  EXPECT_NEAR(back.gain_db, s.gain_db, 0.05);
  EXPECT_NEAR(back.bw_hz, s.bw_hz, s.bw_hz * 0.01);
  EXPECT_NEAR(back.ugf_hz, s.ugf_hz, s.ugf_hz * 0.01);
  EXPECT_THROW(parse_encoder_specs("no spec block here"), InvalidArgument);
}

TEST_F(PipelineTest, NearestNeighborFindsExactMatch) {
  const NearestNeighborPredictor nn(*builder_, dataset_->designs);
  const Design& d = dataset_->designs[5];
  const Design& found = nn.nearest(d.specs);
  EXPECT_EQ(found.widths, d.widths);
}

TEST_F(PipelineTest, WidthsFromParamsRecoversDatasetWidths) {
  // Stage III on *exact* parameters must reproduce the design's widths.
  const Design& d = dataset_->designs[0];
  std::map<std::string, double> params;
  for (const auto& slot : builder_->slots()) {
    const auto& ss = d.devices.at(slot.device);
    double v = 0.0;
    if (slot.name.rfind("gm", 0) == 0) v = ss.gm;
    else if (slot.name.rfind("gds", 0) == 0) v = ss.gds;
    else if (slot.name.rfind("Cds", 0) == 0) v = ss.cds;
    else if (slot.name.rfind("Cgs", 0) == 0) v = ss.cgs;
    else v = ss.id;
    params[slot.name] = v;
  }
  const auto widths = widths_from_params(*topo_, *tech_, *luts_, params,
                                         std::vector<double>(3, 5e-6));
  ASSERT_EQ(widths.size(), 3u);
  for (size_t g = 0; g < 3; ++g) {
    EXPECT_NEAR(widths[g], d.widths[g], d.widths[g] * 0.06) << "group " << g;
  }
}

TEST_F(PipelineTest, WidthsFromParamsUsesFallbackWhenStarved) {
  const std::vector<double> fallback{1e-6, 2e-6, 3e-6};
  const auto widths = widths_from_params(*topo_, *tech_, *luts_, {}, fallback);
  EXPECT_EQ(widths, fallback);
}

TEST_F(PipelineTest, CopilotWithNearestNeighborMeetsTargets) {
  const NearestNeighborPredictor nn(*builder_, dataset_->designs);
  SizingCopilot copilot(*topo_, *tech_, *builder_, nn, *luts_);
  const auto targets = targets_from_designs(dataset_->designs, 10, 0.08, 3);
  int successes = 0;
  int total_sims = 0;
  for (const auto& t : targets) {
    const SizingOutcome o = copilot.size(t);
    successes += o.success ? 1 : 0;
    total_sims += o.spice_simulations;
    EXPECT_LE(o.spice_simulations, 6);
  }
  EXPECT_GE(successes, 8);  // dense dataset: NN + LUT should almost always hit
  EXPECT_LE(total_sims, 10 * 6);
}

TEST_F(PipelineTest, CopilotReportsHonestOutcome) {
  const NearestNeighborPredictor nn(*builder_, dataset_->designs);
  SizingCopilot copilot(*topo_, *tech_, *builder_, nn, *luts_);
  // Infeasible request: single-stage 5T cannot give 60 dB.
  const SizingOutcome o = copilot.size(Specs{60.0, 50e6, 5e9});
  EXPECT_FALSE(o.success);
  EXPECT_EQ(o.iterations, CopilotOptions{}.max_iterations);
  EXPECT_GT(o.spice_simulations, 0);
}

TEST_F(PipelineTest, CorrelationTableWithOracleIsNearPerfect) {
  // Predicting a design's own parameters via NN lookup on a dataset that
  // contains that design yields r ~ 1 by construction: validates the metric
  // plumbing end to end.
  const NearestNeighborPredictor nn(*builder_, dataset_->designs);
  const auto rows = correlation_table(*topo_, *builder_, nn,
                                      dataset_->designs, 25);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_GT(row.r_gm, 0.99) << row.devices;
    EXPECT_GT(row.r_gds, 0.99) << row.devices;
    EXPECT_GT(row.r_cds, 0.99) << row.devices;
    EXPECT_GT(row.r_cgs, 0.99) << row.devices;
    EXPECT_GE(row.samples, 25);
  }
}

TEST_F(PipelineTest, ScatterSeriesAlignsPairs) {
  const NearestNeighborPredictor nn(*builder_, dataset_->designs);
  const auto s = scatter_series(*builder_, nn, dataset_->designs, "M3", "gm", 15);
  EXPECT_EQ(s.measured.size(), s.predicted.size());
  EXPECT_GE(s.measured.size(), 10u);
}

TEST_F(PipelineTest, SizingModelTrainsAndPersists) {
  // Tiny run: mechanics only (loss finite and decreasing-ish, save/load).
  std::vector<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < 30; ++i) {
    const Design& d = dataset_->designs[i];
    pairs.emplace_back(builder_->encoder_text(d.specs), builder_->decoder_text(d));
  }
  SizingModel model;
  TrainOptions opt;
  opt.epochs = 2;
  opt.d_model = 16;
  opt.n_heads = 2;
  opt.d_ff = 32;
  opt.bpe_merges = 64;
  const TrainHistory hist = model.train(pairs, opt);
  ASSERT_EQ(hist.train_loss.size(), 2u);
  EXPECT_LT(hist.train_loss[1], hist.train_loss[0]);
  EXPECT_TRUE(model.trained());

  const std::string out = model.predict(pairs[0].first, 200);
  EXPECT_FALSE(out.empty());

  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ota_test_model").string();
  model.save(prefix);
  SizingModel loaded;
  ASSERT_TRUE(loaded.load(prefix));
  EXPECT_EQ(loaded.predict(pairs[0].first, 200), out);
  std::remove((prefix + ".bpe").c_str());
  std::remove((prefix + ".model").c_str());
}

TEST_F(PipelineTest, SizingModelLoadMissingReturnsFalse) {
  SizingModel m;
  EXPECT_FALSE(m.load("/nonexistent/prefix"));
}

// Wraps the NN predictor but (a) records every encoder request the copilot
// issues and (b) answers the first call with a fixed (deliberately poor)
// design, forcing the miss-then-tighten refinement path.
class FirstReplyPredictor : public Predictor {
 public:
  FirstReplyPredictor(const NearestNeighborPredictor& nn,
                      std::string first_reply)
      : nn_(nn), first_reply_(std::move(first_reply)) {}

  std::string predict(const std::string& encoder_text,
                      int max_tokens) const override {
    requests_.push_back(encoder_text);
    if (requests_.size() == 1) return first_reply_;
    return nn_.predict(encoder_text, max_tokens);
  }

  const std::vector<std::string>& requests() const { return requests_; }

 private:
  const NearestNeighborPredictor& nn_;
  std::string first_reply_;
  mutable std::vector<std::string> requests_;
};

// Always answers with the same design, regardless of the request.
class ConstantPredictor : public Predictor {
 public:
  explicit ConstantPredictor(std::string reply) : reply_(std::move(reply)) {}
  std::string predict(const std::string&, int) const override {
    return reply_;
  }

 private:
  std::string reply_;
};

TEST_F(PipelineTest, CopilotMissTightensRequestThenRecovers) {
  // Target the strongest design's specs (slightly relaxed) but make the
  // first prediction return the weakest design: iteration 1 must miss, the
  // re-request must be tightened beyond the raw target (margin boost), and
  // the NN answer to the tightened request must then close the loop.
  const auto by_ugf = [](const Design& a, const Design& b) {
    return a.specs.ugf_hz < b.specs.ugf_hz;
  };
  const Design& weakest = *std::min_element(dataset_->designs.begin(),
                                            dataset_->designs.end(), by_ugf);
  const Design& strongest = *std::max_element(dataset_->designs.begin(),
                                              dataset_->designs.end(), by_ugf);
  ASSERT_LT(weakest.specs.ugf_hz, 0.7 * strongest.specs.ugf_hz)
      << "dataset spread too small for a guaranteed first-iteration miss";

  Specs target = strongest.specs;
  target.gain_db -= 0.3;
  target.bw_hz *= 0.95;
  target.ugf_hz *= 0.95;

  const NearestNeighborPredictor nn(*builder_, dataset_->designs);
  const FirstReplyPredictor pred(nn, builder_->decoder_text(weakest));
  SizingCopilot copilot(*topo_, *tech_, *builder_, pred, *luts_);
  const SizingOutcome o = copilot.size(target);

  EXPECT_TRUE(o.success);
  EXPECT_GE(o.iterations, 2);
  ASSERT_GE(pred.requests().size(), 2u);

  // Request 1 is the raw target; request 2 must be tightened (margin
  // allocation): no spec loosened, the missed UGF strictly raised.
  const Specs r1 = parse_encoder_specs(pred.requests()[0]);
  const Specs r2 = parse_encoder_specs(pred.requests()[1]);
  EXPECT_NEAR(r1.ugf_hz, target.ugf_hz, target.ugf_hz * 0.01);
  EXPECT_GE(r2.gain_db, r1.gain_db - 0.05);
  EXPECT_GE(r2.bw_hz, r1.bw_hz * 0.99);
  EXPECT_GT(r2.ugf_hz, r1.ugf_hz * 1.02);
}

TEST_F(PipelineTest, CopilotFallsBackToConstantDensityScaling) {
  // A predictor stuck on one design exhausts prediction_iterations; the
  // remaining rounds must refine by constant-density width scaling: all
  // widths multiplied by one common factor, which lifts UGF/BW to a target
  // the predictions alone can never reach.
  // Pick the design with the most scaling headroom so the common factor
  // never hits the 50 um clamp (which would break factor uniformity).
  const Design& base = *std::min_element(
      dataset_->designs.begin(), dataset_->designs.end(),
      [](const Design& a, const Design& b) {
        return *std::max_element(a.widths.begin(), a.widths.end()) <
               *std::max_element(b.widths.begin(), b.widths.end());
      });
  Specs target = base.specs;
  target.bw_hz *= 1.25;
  target.ugf_hz *= 1.25;
  target.gain_db -= 0.3;  // density scaling holds the gain constant

  const ConstantPredictor pred(builder_->decoder_text(base));
  SizingCopilot copilot(*topo_, *tech_, *builder_, pred, *luts_);
  CopilotOptions opt;
  opt.prediction_iterations = 1;
  const SizingOutcome o = copilot.size(target, opt);

  EXPECT_TRUE(o.success);
  EXPECT_GE(o.iterations, 2);

  // The final widths must be a uniform scale-up of the iteration-1 widths
  // (the best — and only — verified prediction candidate).
  std::map<std::string, double> params;
  for (const auto& slot : builder_->slots()) {
    params[slot.name] =
        builder_->parse_decoder(builder_->decoder_text(base)).at(slot.name);
  }
  const auto w1 = widths_from_params(*topo_, *tech_, *luts_, params,
                                     std::vector<double>(3, 5e-6));
  ASSERT_EQ(o.widths.size(), w1.size());
  const double factor = o.widths[0] / w1[0];
  EXPECT_GT(factor, 1.05);
  for (size_t g = 1; g < w1.size(); ++g) {
    EXPECT_NEAR(o.widths[g] / w1[g], factor, factor * 1e-9) << "group " << g;
  }
}

TEST_F(PipelineTest, TargetsFromDesignsAreFeasibleRelaxations) {
  const auto targets = targets_from_designs(dataset_->designs, 15, 0.05, 9);
  ASSERT_EQ(targets.size(), 15u);
  for (const auto& t : targets) {
    bool dominated = false;
    for (const auto& d : dataset_->designs) {
      if (d.specs.gain_db >= t.gain_db && d.specs.bw_hz >= t.bw_hz &&
          d.specs.ugf_hz >= t.ugf_hz) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated) << "target must be achievable by some known design";
  }
}

}  // namespace
}  // namespace ota::core
