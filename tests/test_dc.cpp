// Newton DC solver tests: linear sanity, nonlinear devices, full OTAs.
#include "spice/dc.hpp"

#include <gtest/gtest.h>

#include "circuit/topologies.hpp"
#include "common/error.hpp"

namespace ota::spice {
namespace {

using circuit::Netlist;
using device::MosType;

class DcTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(DcTest, ResistorDivider) {
  Netlist nl;
  nl.add_vsource("V1", "in", "0", 1.2);
  nl.add_resistor("R1", "in", "mid", 1e3);
  nl.add_resistor("R2", "mid", "0", 1e3);
  const DcSolution sol = solve_dc(nl, tech);
  EXPECT_NEAR(sol.voltage(nl, "mid"), 0.6, 1e-9);
  EXPECT_NEAR(sol.voltage(nl, "in"), 1.2, 1e-12);
  // Branch current through V1: 1.2 V over 2 kOhm leaves the positive node.
  EXPECT_NEAR(sol.vsource_current.at("V1"), -0.6e-3, 1e-9);
}

TEST_F(DcTest, CurrentSourceIntoResistor) {
  Netlist nl;
  nl.add_isource("I1", "0", "n", 1e-3);  // pushes 1 mA into n
  nl.add_resistor("R1", "n", "0", 2e3);
  const DcSolution sol = solve_dc(nl, tech);
  EXPECT_NEAR(sol.voltage(nl, "n"), 2.0, 1e-9);
}

TEST_F(DcTest, CapacitorIsOpenAtDc) {
  Netlist nl;
  nl.add_vsource("V1", "in", "0", 1.0);
  nl.add_resistor("R1", "in", "out", 1e3);
  nl.add_capacitor("C1", "out", "0", 1e-12);
  // With the cap open, no current flows: out follows in.  The solver needs
  // gmin to keep the matrix nonsingular mid-iteration; final answer is exact.
  const DcSolution sol = solve_dc(nl, tech);
  EXPECT_NEAR(sol.voltage(nl, "out"), 1.0, 1e-6);
}

TEST_F(DcTest, DiodeConnectedNmos) {
  // VDD -> R -> diode-connected NMOS: the gate-drain node settles where
  // I_R == I_D; check KCL holds at the solution.
  Netlist nl;
  nl.add_vsource("VDD", "vdd", "0", 1.2);
  nl.add_resistor("R1", "vdd", "d", 10e3);
  nl.add_mosfet("M1", MosType::Nmos, "d", "d", "0", 5e-6, 180e-9);
  const DcSolution sol = solve_dc(nl, tech);
  const double vd = sol.voltage(nl, "d");
  EXPECT_GT(vd, 0.2);
  EXPECT_LT(vd, 0.9);
  const double i_r = (1.2 - vd) / 10e3;
  const device::MosModel m(tech.nmos);
  const double i_d = m.dc(vd, vd, 0.0, 5e-6, 180e-9).id;
  EXPECT_NEAR(i_r, i_d, 1e-9);
}

TEST_F(DcTest, NmosInverterTransfersCorrectly)  {
  // Common-source stage with resistive load; output should sit well below
  // VDD when the input is high, near VDD when low.
  Netlist nl;
  nl.add_vsource("VDD", "vdd", "0", 1.2);
  nl.add_vsource("VIN", "g", "0", 1.0);
  nl.add_resistor("RL", "vdd", "d", 20e3);
  nl.add_mosfet("M1", MosType::Nmos, "d", "g", "0", 2e-6, 180e-9);
  DcSolution sol = solve_dc(nl, tech);
  EXPECT_LT(sol.voltage(nl, "d"), 0.4);

  Netlist nl2;
  nl2.add_vsource("VDD", "vdd", "0", 1.2);
  nl2.add_vsource("VIN", "g", "0", 0.1);
  nl2.add_resistor("RL", "vdd", "d", 20e3);
  nl2.add_mosfet("M1", MosType::Nmos, "d", "g", "0", 2e-6, 180e-9);
  sol = solve_dc(nl2, tech);
  EXPECT_GT(sol.voltage(nl2, "d"), 1.1);
}

TEST_F(DcTest, FiveTransistorOtaBiasesSensibly) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const DcSolution sol = solve_dc(topo.netlist, tech);
  const double vtail = sol.voltage(topo.netlist, "ntail");
  const double vout = sol.voltage(topo.netlist, "vout");
  const double vn1 = sol.voltage(topo.netlist, "n1");
  // Tail node below the input common mode; mirror node one PMOS Vgs below VDD.
  EXPECT_GT(vtail, 0.05);
  EXPECT_LT(vtail, 0.7);
  EXPECT_GT(vn1, 0.5);
  EXPECT_LT(vn1, 1.15);
  // With matched halves the output matches the mirror node voltage closely.
  EXPECT_NEAR(vout, vn1, 0.15);
}

TEST_F(DcTest, CurrentMirrorOtaBiases) {
  auto topo = circuit::make_cm_ota(tech);
  topo.apply_widths({3e-6, 10e-6, 6e-6, 6e-6, 4e-6});
  const DcSolution sol = solve_dc(topo.netlist, tech);
  // Diode nodes sit a PMOS Vgs below VDD; the mirror output node is a diode
  // NMOS Vgs above ground.
  EXPECT_LT(sol.voltage(topo.netlist, "na"), 1.1);
  EXPECT_GT(sol.voltage(topo.netlist, "na"), 0.4);
  EXPECT_GT(sol.voltage(topo.netlist, "nc"), 0.2);
  EXPECT_LT(sol.voltage(topo.netlist, "nc"), 0.9);
}

TEST_F(DcTest, TwoStageOtaBiases) {
  auto topo = circuit::make_2s_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6, 10e-6, 3e-6});
  const DcSolution sol = solve_dc(topo.netlist, tech);
  const double vout = sol.voltage(topo.netlist, "vout");
  EXPECT_GT(vout, 0.05);
  EXPECT_LT(vout, 1.15);
}

TEST_F(DcTest, SmallSignalMapCoversAllDevices) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const DcSolution sol = solve_dc(topo.netlist, tech);
  const auto ss = small_signal_map(topo.netlist, tech, sol);
  EXPECT_EQ(ss.size(), 5u);
  for (const auto& [name, p] : ss) {
    EXPECT_GT(p.gm, 0.0) << name;
    EXPECT_GT(p.gds, 0.0) << name;
    EXPECT_GT(p.cgs, 0.0) << name;
    EXPECT_GT(p.cds, 0.0) << name;
  }
  // Matched pairs see identical bias -> identical parameters.
  EXPECT_NEAR(ss.at("M3").gm, ss.at("M4").gm, ss.at("M3").gm * 0.05);
}

TEST_F(DcTest, EmptyNetlistThrows) {
  Netlist nl;
  EXPECT_THROW(solve_dc(nl, tech), InvalidArgument);
}

}  // namespace
}  // namespace ota::spice
