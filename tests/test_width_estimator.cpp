// Algorithm 1 tests: exact recovery on self-consistent parameters, noise
// robustness, and the scan fallback for partially observed devices.
#include "lut/width_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ota::lut {
namespace {

class WidthEstimatorTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
  device::MosModel nmos{tech.nmos};
  DeviceLut lut{nmos};

  PredictedParams params_at(double vgs, double vds, double w) const {
    const auto ss = nmos.evaluate(vgs, vds, w, 180e-9);
    PredictedParams p;
    p.gm = ss.gm;
    p.gds = ss.gds;
    p.cds = ss.cds;
    p.cgs = ss.cgs;
    p.id = ss.id;
    return p;
  }
};

TEST_F(WidthEstimatorTest, RecoversWidthFromConsistentParameters) {
  for (double w : {0.7e-6, 2e-6, 8e-6, 25e-6, 50e-6}) {
    for (double vgs : {0.42, 0.55, 0.75}) {
      const auto est = estimate_width(lut, params_at(vgs, 0.61, w), tech.vdd);
      ASSERT_TRUE(est.has_value()) << "w=" << w << " vgs=" << vgs;
      EXPECT_NEAR(est->width, w, w * 0.02) << "w=" << w << " vgs=" << vgs;
      EXPECT_NEAR(est->vgs, vgs, 0.02);
    }
  }
}

TEST_F(WidthEstimatorTest, RecoversOperatingVds) {
  const double w = 5e-6, vgs = 0.55, vds = 0.84;
  const auto est = estimate_width(lut, params_at(vgs, vds, w), tech.vdd);
  ASSERT_TRUE(est.has_value());
  // The candidate widths only agree at the true Vds (Cds depends on it).
  EXPECT_NEAR(est->vds, vds, 0.05);
  EXPECT_LT(est->cost, w * 0.1);
}

TEST_F(WidthEstimatorTest, ToleratesNoisyPredictions) {
  // The transformer's predictions carry a few percent error; the consensus
  // across five ratios should keep the width within ~10%.
  Rng rng(123);
  const double w = 10e-6;
  for (int trial = 0; trial < 20; ++trial) {
    PredictedParams p = params_at(0.5, 0.6, w);
    auto jitter = [&rng](std::optional<double>& v) {
      *v *= 1.0 + rng.normal(0.0, 0.03);
    };
    jitter(p.gm);
    jitter(p.gds);
    jitter(p.cds);
    jitter(p.cgs);
    jitter(p.id);
    const auto est = estimate_width(lut, p, tech.vdd);
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->width, w, w * 0.15) << "trial " << trial;
  }
}

TEST_F(WidthEstimatorTest, RequiresGmAndId) {
  PredictedParams p = params_at(0.5, 0.6, 5e-6);
  p.id.reset();
  EXPECT_THROW((void)estimate_width(lut, p, tech.vdd), ota::InvalidArgument);
  PredictedParams q = params_at(0.5, 0.6, 5e-6);
  q.gm.reset();
  EXPECT_THROW((void)estimate_width(lut, q, tech.vdd), ota::InvalidArgument);
}

TEST_F(WidthEstimatorTest, RejectsUnachievableGmId) {
  PredictedParams p = params_at(0.5, 0.6, 5e-6);
  // gm/Id of 60 /V is beyond the weak-inversion ceiling (~30 /V).
  p.gm = *p.id * 60.0;
  EXPECT_FALSE(estimate_width(lut, p, tech.vdd).has_value());
}

TEST_F(WidthEstimatorTest, ScanFallbackRecoversWidthWithoutId) {
  // A tail device's gm/Cgs do not appear in the differential DP-SFG; the
  // scan variant recovers W from {gds, Cds} (+gm here for stability).
  for (double w : {1e-6, 6e-6, 20e-6}) {
    PredictedParams p = params_at(0.5, 0.45, w);
    p.id.reset();
    const auto est = estimate_width_scan(lut, p);
    ASSERT_TRUE(est.has_value()) << w;
    EXPECT_NEAR(est->width, w, w * 0.05) << w;
  }
}

TEST_F(WidthEstimatorTest, ScanFallbackWithTwoParameters) {
  const double w = 8e-6;
  PredictedParams full = params_at(0.48, 0.52, w);
  PredictedParams p;
  p.gds = full.gds;
  p.cds = full.cds;
  const auto est = estimate_width_scan(lut, p);
  ASSERT_TRUE(est.has_value());
  // Two ratios constrain W more loosely; accept 25%.
  EXPECT_NEAR(est->width, w, w * 0.25);
}

TEST_F(WidthEstimatorTest, ScanNeedsAtLeastTwoParameters) {
  PredictedParams p;
  p.gm = 1e-3;
  EXPECT_THROW((void)estimate_width_scan(lut, p), ota::InvalidArgument);
}

TEST_F(WidthEstimatorTest, NonPositiveInputsThrow) {
  PredictedParams p = params_at(0.5, 0.6, 5e-6);
  p.gm = -1e-3;
  EXPECT_THROW((void)estimate_width(lut, p, tech.vdd), ota::InvalidArgument);
}

class WidthRoundTrip : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WidthRoundTrip, AcrossBiasAndWidth) {
  const auto tech = device::Technology::default65nm();
  const device::MosModel nmos{tech.nmos};
  const DeviceLut lut{nmos};
  const auto [vgs, w] = GetParam();
  const auto ss = nmos.evaluate(vgs, 0.66, w, 180e-9);
  PredictedParams p;
  p.gm = ss.gm;
  p.gds = ss.gds;
  p.cds = ss.cds;
  p.cgs = ss.cgs;
  p.id = ss.id;
  const auto est = estimate_width(lut, p, tech.vdd);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->width, w, w * 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WidthRoundTrip,
    ::testing::Combine(::testing::Values(0.40, 0.50, 0.62, 0.80),
                       ::testing::Values(0.7e-6, 3e-6, 12e-6, 50e-6)));

}  // namespace
}  // namespace ota::lut
