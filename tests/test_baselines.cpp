// Baseline optimizer tests (Table IX): each method must reach easy targets
// and must honestly account for its simulator consumption.
#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

namespace ota::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  // An easy 5T target well inside the feasible region.
  SizingProblem easy_problem(uint64_t /*seed*/ = 0) {
    return SizingProblem(circuit::make_5t_ota(tech), tech,
                         core::Specs{18.0, 4e6, 50e6});
  }
};

TEST_F(BaselinesTest, ProblemEvaluateCountsSimulations) {
  SizingProblem p = easy_problem();
  EXPECT_EQ(p.simulations(), 0);
  const std::vector<double> x(p.dims(), 0.5);
  (void)p.evaluate(x);
  (void)p.evaluate(x);
  EXPECT_EQ(p.simulations(), 2);
}

TEST_F(BaselinesTest, ToWidthsMapsUnitCubeToSweepRange) {
  SizingProblem p = easy_problem();
  const auto lo = p.to_widths(std::vector<double>(p.dims(), 0.0));
  const auto hi = p.to_widths(std::vector<double>(p.dims(), 1.0));
  for (double w : lo) EXPECT_NEAR(w, 0.7e-6, 1e-12);
  for (double w : hi) EXPECT_NEAR(w, 50e-6, 1e-10);
  const auto mid = p.to_widths(std::vector<double>(p.dims(), 0.5));
  for (double w : mid) EXPECT_NEAR(w, std::sqrt(0.7e-6 * 50e-6), 1e-9);
}

TEST_F(BaselinesTest, CostIsZeroOnlyWhenAllSpecsMet) {
  SizingProblem p = easy_problem();
  // A sizing known to exceed the easy target (from the testbench tests).
  std::vector<double> good(p.dims());
  const double lmin = std::log(0.7e-6), lmax = std::log(50e-6);
  const std::vector<double> widths{4e-6, 12e-6, 6e-6};
  for (size_t i = 0; i < widths.size(); ++i) {
    good[i] = (std::log(widths[i]) - lmin) / (lmax - lmin);
  }
  EXPECT_DOUBLE_EQ(p.evaluate(good), 0.0);

  // Tiny devices: the 3 uA tail cannot reach a 50 MHz UGF.
  const double c = p.evaluate(std::vector<double>(p.dims(), 0.0));
  EXPECT_GT(c, 0.0);
}

TEST_F(BaselinesTest, SimulatedAnnealingSolvesEasyTarget) {
  SizingProblem p = easy_problem();
  SaOptions opt;
  opt.max_simulations = 800;
  const OptResult r = simulated_annealing(p, opt);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.simulations, 800);
  EXPECT_GT(r.simulations, 1);
  EXPECT_EQ(r.simulations, p.simulations());
}

TEST_F(BaselinesTest, ParticleSwarmSolvesEasyTarget) {
  SizingProblem p = easy_problem();
  PsoOptions opt;
  opt.max_simulations = 800;
  const OptResult r = particle_swarm(p, opt);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.simulations, 800);
}

TEST_F(BaselinesTest, DifferentialEvolutionSolvesEasyTarget) {
  SizingProblem p = easy_problem();
  DeOptions opt;
  opt.max_simulations = 800;
  const OptResult r = differential_evolution(p, opt);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.simulations, 800);
}

TEST_F(BaselinesTest, BayesianOptimizationSolvesEasyTarget) {
  SizingProblem p = easy_problem();
  BoOptions opt;
  opt.max_simulations = 80;
  const OptResult r = bayesian_optimization(p, opt);
  EXPECT_TRUE(r.success);
  // BO's selling point: far fewer simulations than the evolutionary methods.
  EXPECT_LE(r.simulations, 80);
}

TEST_F(BaselinesTest, BudgetIsRespectedOnImpossibleTarget) {
  // A target no 5T-OTA in range can reach (gain of 60 dB single-stage).
  SizingProblem p(circuit::make_5t_ota(tech), tech,
                  core::Specs{60.0, 50e6, 5e9});
  SaOptions opt;
  opt.max_simulations = 60;
  const OptResult r = simulated_annealing(p, opt);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.simulations, 61);  // one initial + budget loop
  EXPECT_GT(r.best_cost, 0.0);
}

TEST_F(BaselinesTest, SolversAreDeterministicPerSeed) {
  SizingProblem p1 = easy_problem();
  SizingProblem p2 = easy_problem();
  SaOptions opt;
  opt.max_simulations = 200;
  opt.seed = 77;
  const OptResult a = simulated_annealing(p1, opt);
  const OptResult b = simulated_annealing(p2, opt);
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_x, b.best_x);
}

}  // namespace
}  // namespace ota::baselines
