// Thread-pool unit tests: task completion, exception propagation out of
// parallel_for, nested-submission safety, and the zero-item / single-thread
// edge cases the par layer's determinism contract leans on.
#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ota::par {
namespace {

TEST(ParTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParTest, SubmitFutureCarriesException) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10007;
  std::vector<int> hits(n, 0);  // chunks are disjoint: plain ints suffice
  pool.parallel_for(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ParTest, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParTest, InlinePoolRunsOnCallingThread) {
  // threads <= 1 spawns no workers; everything runs inline.
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0);
  std::thread::id seen;
  pool.parallel_for(64, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 64u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, std::this_thread::get_id());
  pool.submit([&seen] { seen = std::this_thread::get_id(); }).get();
  EXPECT_EQ(seen, std::this_thread::get_id());
}

TEST(ParTest, ParallelForPropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](size_t begin, size_t end) {
                          for (size_t i = begin; i < end; ++i) {
                            if (i == 57) throw std::runtime_error("chunk 57");
                          }
                        }),
      std::runtime_error);

  // The pool must stay fully usable after a failed parallel_for.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](size_t begin, size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // A nested call from a worker degrades to a single inline chunk
      // instead of deadlocking on the shared queue.
      pool.parallel_for(10, [&](size_t b, size_t e) {
        inner_total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ParTest, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> in(1000);
  std::iota(in.begin(), in.end(), 0);
  const std::vector<int> out =
      pool.parallel_map<int>(in, [](int v, size_t) { return 3 * v + 1; });
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(out[i], 3 * static_cast<int>(i) + 1);
  }
}

TEST(ParTest, EnvThreadsParsesOtaThreads) {
  const char* saved = std::getenv("OTA_THREADS");
  const std::string restore = saved ? saved : "";

  ::setenv("OTA_THREADS", "6", 1);
  EXPECT_EQ(env_threads(), 6);
  EXPECT_EQ(resolve_threads(), 6);
  EXPECT_EQ(resolve_threads(3), 3);  // explicit request wins over env

  ::setenv("OTA_THREADS", "not-a-number", 1);
  EXPECT_EQ(env_threads(), 0);
  ::setenv("OTA_THREADS", "0", 1);
  EXPECT_EQ(env_threads(), 0);

  ::unsetenv("OTA_THREADS");
  EXPECT_EQ(env_threads(), 0);
  EXPECT_GE(resolve_threads(), 1);  // falls back to hardware concurrency

  if (saved) ::setenv("OTA_THREADS", restore.c_str(), 1);
}

TEST(ParTest, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

}  // namespace
}  // namespace ota::par
