// SI-unit formatting/parsing: the textual backbone of the sequence language.
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace ota {
namespace {

TEST(FormatSi, PaperExamples) {
  // Literals straight out of the paper's Fig. 4 and Section III-C.
  EXPECT_EQ(format_si(2.5e-3, "S"), "2.5mS");
  EXPECT_EQ(format_si(567e-6, "S"), "567uS");
  EXPECT_EQ(format_si(541e-18, "F"), "541aF");
  EXPECT_EQ(format_si(0.7e-18, "F"), "0.7aF");
  EXPECT_EQ(format_si(101e-6, "S"), "101uS");
  EXPECT_EQ(format_si(1.1e-15, "F"), "1.1fF");
  // The paper prints 900aF as "0.9fF"; we use the standard engineering
  // mantissa range [1, 1000) so the same value renders as "900aF".
  EXPECT_EQ(format_si(0.9e-15, "F"), "900aF");
}

TEST(FormatSi, Zero) {
  EXPECT_EQ(format_si(0.0, "F"), "0F");
  EXPECT_EQ(format_si(0.0, ""), "0");
}

TEST(FormatSi, Negative) {
  EXPECT_EQ(format_si(-1.5e-3, "S"), "-1.5mS");
}

TEST(FormatSi, NoPrefixRange) {
  EXPECT_EQ(format_si(1.0, "V"), "1V");
  EXPECT_EQ(format_si(999.0, "V"), "999V");
  EXPECT_EQ(format_si(1.2, "V"), "1.2V");
}

TEST(FormatSi, RoundingCarriesToNextPrefix) {
  // 999.96e-6 rounds to 1000uS at 3 significant digits -> must become 1mS.
  EXPECT_EQ(format_si(999.96e-6, "S"), "1mS");
}

TEST(FormatSi, SignificantDigits) {
  EXPECT_EQ(format_si(1.23456e-3, "S", 5), "1.2346mS");
  EXPECT_EQ(format_si(1.23456e-3, "S", 2), "1.2mS");
  EXPECT_EQ(format_si(123.456e-6, "S", 3), "123uS");
}

TEST(ParseSi, RoundTripBasic) {
  EXPECT_DOUBLE_EQ(*parse_si("2.5mS", "S"), 2.5e-3);
  EXPECT_DOUBLE_EQ(*parse_si("541aF", "F"), 541e-18);
  EXPECT_DOUBLE_EQ(*parse_si("-1.5mS", "S"), -1.5e-3);
  EXPECT_DOUBLE_EQ(*parse_si("0.7um", "m"), 0.7e-6);
  EXPECT_DOUBLE_EQ(*parse_si("50um", "m"), 50e-6);
  EXPECT_DOUBLE_EQ(*parse_si("1.2V", "V"), 1.2);
  EXPECT_DOUBLE_EQ(*parse_si("500fF", "F"), 500e-15);
}

TEST(ParseSi, NoUnit) {
  EXPECT_DOUBLE_EQ(*parse_si("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_si("-42"), -42.0);
}

TEST(ParseSi, Rejections) {
  EXPECT_FALSE(parse_si("", "S").has_value());
  EXPECT_FALSE(parse_si("abc", "S").has_value());
  EXPECT_FALSE(parse_si("2.5mS", "F").has_value());  // wrong unit
  EXPECT_FALSE(parse_si("2.5qS", "S").has_value());  // unknown prefix
  EXPECT_FALSE(parse_si("mS", "S").has_value());     // no digits
}

TEST(ParseSi, ScientificNotationAccepted) {
  EXPECT_DOUBLE_EQ(*parse_si("1e-3S", "S"), 1e-3);
  EXPECT_DOUBLE_EQ(*parse_si("2.5e6V", "V"), 2.5e6);
}

class SiRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(SiRoundTrip, FormatThenParseIsClose) {
  const double value = GetParam();
  const std::string text = format_si(value, "S", 6);
  auto parsed = parse_si(text, "S");
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_NEAR(*parsed, value, std::fabs(value) * 1e-4) << text;
}

INSTANTIATE_TEST_SUITE_P(
    AcrossPrefixes, SiRoundTrip,
    ::testing::Values(1e-18, 4.2e-16, 3.3e-13, 1e-12, 2.5e-9, 8.8e-7, 1e-6,
                      3.14e-3, 0.5, 1.0, 42.0, 999.0, 1.5e3, 2.7e6, 9.9e9,
                      -2.5e-3, -541e-18, 7.7e13));

TEST(SiPrefix, KnownValues) {
  EXPECT_DOUBLE_EQ(*si_prefix_value('a'), 1e-18);
  EXPECT_DOUBLE_EQ(*si_prefix_value('f'), 1e-15);
  EXPECT_DOUBLE_EQ(*si_prefix_value('p'), 1e-12);
  EXPECT_DOUBLE_EQ(*si_prefix_value('n'), 1e-9);
  EXPECT_DOUBLE_EQ(*si_prefix_value('u'), 1e-6);
  EXPECT_DOUBLE_EQ(*si_prefix_value('m'), 1e-3);
  EXPECT_DOUBLE_EQ(*si_prefix_value('k'), 1e3);
  EXPECT_DOUBLE_EQ(*si_prefix_value('M'), 1e6);
  EXPECT_DOUBLE_EQ(*si_prefix_value('G'), 1e9);
  EXPECT_FALSE(si_prefix_value('q').has_value());
  EXPECT_FALSE(si_prefix_value('0').has_value());
}

TEST(FormatPlain, Basics) {
  EXPECT_EQ(format_plain(20.13), "20.13");
  EXPECT_EQ(format_plain(20.13, 3), "20.1");
  EXPECT_EQ(format_plain(-3.5), "-3.5");
}

}  // namespace
}  // namespace ota
