// Physics property tests on minispice: invariants any correct linear(ized)
// circuit solver must satisfy, checked on the paper's actual topologies.
#include <gtest/gtest.h>

#include <complex>

#include "circuit/topologies.hpp"
#include "spice/testbench.hpp"

namespace ota::spice {
namespace {

class SpicePropertyTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(SpicePropertyTest, AcSuperpositionOfDifferentialDrive) {
  // H(differential) == H(+input alone) - H(-input alone) for the linearized
  // circuit: superposition over the two excitation sources.
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const auto dc = solve_dc(topo.netlist, tech);

  auto with_ac = [&](double ac_p, double ac_n) {
    circuit::Netlist nl = topo.netlist;
    nl.vsource("VIP").ac = ac_p;
    nl.vsource("VIN").ac = ac_n;
    const AcAnalysis ac(nl, tech, dc);
    return ac.transfer(1e6, "vout");
  };

  const auto both = with_ac(0.5, -0.5);
  const auto pos_only = with_ac(0.5, 0.0);
  const auto neg_only = with_ac(0.0, -0.5);
  EXPECT_LT(std::abs(both - (pos_only + neg_only)), std::abs(both) * 1e-9);
}

TEST_F(SpicePropertyTest, AcScalesLinearlyWithDriveAmplitude) {
  auto topo = circuit::make_5t_ota(tech);
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const auto dc = solve_dc(topo.netlist, tech);
  // AcAnalysis references the netlist, so evaluate before mutating it.
  circuit::Netlist nl = topo.netlist;
  const AcAnalysis ac1(nl, tech, dc);
  const auto h1 = ac1.transfer(1e7, "vout");
  nl.vsource("VIP").ac *= 3.0;
  nl.vsource("VIN").ac *= 3.0;
  const AcAnalysis ac3(nl, tech, dc);
  const auto h3 = ac3.transfer(1e7, "vout");
  EXPECT_LT(std::abs(h3 - 3.0 * h1), std::abs(h3) * 1e-9);
}

TEST_F(SpicePropertyTest, KclHoldsAtDcSolution) {
  // Sum of all voltage-source branch currents and current-source currents
  // into ground must vanish (global charge conservation).
  auto topo = circuit::make_cm_ota(tech);
  topo.apply_widths({3e-6, 10e-6, 6e-6, 6e-6, 4e-6});
  const auto dc = solve_dc(topo.netlist, tech);
  // VDD supplies all current; every sourced electron returns via ground:
  // total current out of VDD equals total into the ground-referenced sinks.
  // With only VDD carrying static current (inputs drive gates), its branch
  // current must equal the sum of all device currents into ground, which KCL
  // guarantees iff the residuals are tiny -- resolve and check |f| directly
  // via a re-assembled evaluation at the solution: voltages reproduce.
  const auto again = solve_dc(topo.netlist, tech);
  for (size_t i = 0; i < dc.v.size(); ++i) {
    EXPECT_NEAR(dc.v[i], again.v[i], 1e-9);
  }
  // Gate inputs draw no DC current.
  EXPECT_NEAR(dc.vsource_current.at("VIP"), 0.0, 1e-12);
  EXPECT_NEAR(dc.vsource_current.at("VIN"), 0.0, 1e-12);
}

TEST_F(SpicePropertyTest, ConstantDensityScalingLeavesBiasInvariant) {
  // The copilot's refinement transform: scaling every width by a common
  // factor preserves all node voltages exactly and scales UGF linearly
  // (with a fixed load capacitor) while leaving the gain nearly unchanged.
  auto topo = circuit::make_5t_ota(tech);
  const auto base = evaluate(topo, tech, {4e-6, 12e-6, 6e-6});
  const auto scaled = evaluate(topo, tech, {8e-6, 24e-6, 12e-6});
  // Bias voltages identical.
  for (size_t i = 0; i < base.dc.v.size(); ++i) {
    EXPECT_NEAR(base.dc.v[i], scaled.dc.v[i], 1e-6);
  }
  // Gain invariant; UGF doubles up to the device-capacitance correction.
  EXPECT_NEAR(scaled.metrics.gain_db, base.metrics.gain_db, 0.1);
  EXPECT_NEAR(scaled.metrics.ugf_hz, 2.0 * base.metrics.ugf_hz,
              base.metrics.ugf_hz * 0.25);
}

TEST_F(SpicePropertyTest, MatchedPairsStayMatchedAcrossSweep) {
  auto topo = circuit::make_cm_ota(tech);
  for (double w : {1e-6, 5e-6, 20e-6}) {
    const auto r = evaluate(topo, tech, {w, w * 2, w, w, w});
    EXPECT_NEAR(r.devices.at("M3").gm, r.devices.at("M4").gm,
                r.devices.at("M3").gm * 1e-6);
    EXPECT_NEAR(r.devices.at("M8").id, r.devices.at("M9").id,
                r.devices.at("M8").id * 0.05);
  }
}

}  // namespace
}  // namespace ota::spice
