// Parallel-determinism property tests.
//
// The par layer's contract is that thread count is a pure performance knob:
// dataset generation and campaign evaluation must produce bit-identical
// results for OTA_THREADS=1 and OTA_THREADS=8 at the same seed (counted
// SplitMix64 RNG streams + per-worker state isolation), while distinct seeds
// must still produce distinct outputs.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"
#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/nearest_predictor.hpp"
#include "core/sizing_model.hpp"

namespace ota::core {
namespace {

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.dc_failures, b.dc_failures);
  EXPECT_EQ(a.region_rejects, b.region_rejects);
  EXPECT_EQ(a.spec_rejects, b.spec_rejects);
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (size_t i = 0; i < a.designs.size(); ++i) {
    const Design& da = a.designs[i];
    const Design& db = b.designs[i];
    EXPECT_EQ(da.widths, db.widths) << "design " << i;
    EXPECT_EQ(da.specs.gain_db, db.specs.gain_db) << "design " << i;
    EXPECT_EQ(da.specs.bw_hz, db.specs.bw_hz) << "design " << i;
    EXPECT_EQ(da.specs.ugf_hz, db.specs.ugf_hz) << "design " << i;
    ASSERT_EQ(da.devices.size(), db.devices.size()) << "design " << i;
    for (const auto& [name, ss] : da.devices) {
      const auto it = db.devices.find(name);
      ASSERT_NE(it, db.devices.end()) << name;
      EXPECT_EQ(ss.id, it->second.id) << name;
      EXPECT_EQ(ss.gm, it->second.gm) << name;
      EXPECT_EQ(ss.gds, it->second.gds) << name;
      EXPECT_EQ(ss.cgs, it->second.cgs) << name;
      EXPECT_EQ(ss.cds, it->second.cds) << name;
      EXPECT_EQ(ss.ic, it->second.ic) << name;
    }
  }
}

class DeterminismTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  Dataset generate(const std::string& name, int threads, uint64_t seed = 7,
                   int n = 25) {
    auto topo = circuit::make_topology(name, tech);
    DataGenOptions opt;
    opt.target_designs = n;
    opt.max_attempts = 20000;
    opt.seed = seed;
    opt.threads = threads;
    return generate_dataset(topo, tech, SpecRange::for_topology(name), opt);
  }
};

TEST_F(DeterminismTest, SplitMix64StreamsAreDistinctAndStable) {
  // Same (seed, stream) -> same value; different stream or seed -> different.
  EXPECT_EQ(stream_seed(42, 0), stream_seed(42, 0));
  for (uint64_t s = 0; s < 16; ++s) {
    EXPECT_NE(stream_seed(42, s), stream_seed(42, s + 1)) << s;
    EXPECT_NE(stream_seed(42, s), stream_seed(43, s)) << s;
  }
  // Counted Rng streams inherit the separation.
  Rng a(42, 3), b(42, 4), a2(42, 3);
  const double va = a.uniform(), vb = b.uniform();
  EXPECT_NE(va, vb);
  EXPECT_EQ(va, a2.uniform());
}

TEST_F(DeterminismTest, DatasetBitIdenticalAcrossThreadCounts) {
  const Dataset serial = generate("5T-OTA", 1);
  const Dataset par8 = generate("5T-OTA", 8);
  ASSERT_EQ(serial.designs.size(), 25u);
  expect_bit_identical(serial, par8);

  // An odd worker count shards differently but must agree too.
  const Dataset par3 = generate("5T-OTA", 3);
  expect_bit_identical(serial, par3);
}

TEST_F(DeterminismTest, TwoStageDatasetBitIdenticalAcrossThreadCounts) {
  // The 2S-OTA exercises the current-balance jitter draw (a second RNG shape
  // on the same per-attempt stream).
  const Dataset serial = generate("2S-OTA", 1, 11, 10);
  const Dataset par8 = generate("2S-OTA", 8, 11, 10);
  ASSERT_EQ(serial.designs.size(), 10u);
  expect_bit_identical(serial, par8);
}

TEST_F(DeterminismTest, DatasetSeedsDiffer) {
  const Dataset a = generate("5T-OTA", 8, 1, 5);
  const Dataset b = generate("5T-OTA", 8, 2, 5);
  ASSERT_FALSE(a.designs.empty());
  ASSERT_FALSE(b.designs.empty());
  EXPECT_NE(a.designs[0].widths, b.designs[0].widths);
}

TEST_F(DeterminismTest, RuntimeStatsCountsIdenticalAcrossThreadCounts) {
  auto topo = circuit::make_5t_ota(tech);
  DataGenOptions opt;
  opt.target_designs = 60;
  opt.max_attempts = 20000;
  opt.seed = 31;
  const Dataset ds =
      generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), opt);
  const SequenceBuilder builder(topo, tech);
  const NearestNeighborPredictor nn(builder, ds.designs);
  const LutSet luts = LutSet::build(tech);
  const SizingCopilot copilot(topo, tech, builder, nn, luts);
  const auto targets = targets_from_designs(ds.designs, 8, 0.06, 17);

  const RuntimeStats serial = runtime_stats(copilot, targets, {}, 1);
  const RuntimeStats par8 = runtime_stats(copilot, targets, {}, 8);

  // Every counting field must agree bit-for-bit; only the wall-clock
  // averages are allowed to differ between runs.
  EXPECT_EQ(serial.total, par8.total);
  EXPECT_EQ(serial.single_iteration, par8.single_iteration);
  EXPECT_EQ(serial.multi_iteration, par8.multi_iteration);
  EXPECT_EQ(serial.failures, par8.failures);
  EXPECT_EQ(serial.avg_multi_iterations, par8.avg_multi_iterations);
  EXPECT_EQ(serial.avg_sims_per_design, par8.avg_sims_per_design);
  EXPECT_EQ(serial.total, 8);
}

TEST_F(DeterminismTest, TargetSeedsDiffer) {
  auto topo = circuit::make_5t_ota(tech);
  DataGenOptions opt;
  opt.target_designs = 20;
  opt.max_attempts = 20000;
  opt.seed = 31;
  const Dataset ds =
      generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), opt);
  const auto ta = targets_from_designs(ds.designs, 4, 0.05, 1);
  const auto tb = targets_from_designs(ds.designs, 4, 0.05, 2);
  EXPECT_NE(ta[0].ugf_hz, tb[0].ugf_hz);
}

// ---------------------------------------------------------------------------
// Data-parallel training (ml::DataParallelTrainer via SizingModel::train).
//
// Synthetic text pairs keep these independent of (slow) dataset generation:
// the property under test is purely that the thread count is a performance
// knob — the per-epoch loss trajectory, the final weights, and the greedy
// predictions must be bit-identical for OTA_THREADS-style worker counts of
// 1, 3, and 8 at a fixed seed.

std::vector<std::pair<std::string, std::string>> synthetic_pairs(int n) {
  std::vector<std::pair<std::string, std::string>> pairs;
  Rng rng(99);
  for (int i = 0; i < n; ++i) {
    char enc[96], dec[96];
    std::snprintf(enc, sizeof enc, "gain %.2f bw %.2f ugf %.2f",
                  rng.uniform(20.0, 60.0), rng.uniform(1.0, 9.0),
                  rng.uniform(10.0, 90.0));
    std::snprintf(dec, sizeof dec, "M1 w=%.2fu M2 w=%.2fu M3 w=%.2fu",
                  rng.uniform(0.5, 20.0), rng.uniform(0.5, 20.0),
                  rng.uniform(0.5, 20.0));
    pairs.emplace_back(enc, dec);
  }
  return pairs;
}

TrainOptions tiny_train_options(int threads, uint64_t seed = 7) {
  TrainOptions opt;
  opt.epochs = 2;
  opt.batch_size = 5;  // deliberately not a multiple of the example count
  opt.threads = threads;
  opt.bpe_merges = 48;
  opt.d_model = 16;
  opt.n_heads = 2;
  opt.d_ff = 32;
  opt.dropout = 0.1;  // nonzero: the counted dropout streams are on trial
  opt.seed = seed;
  return opt;
}

void expect_same_weights(const SizingModel& a, const SizingModel& b) {
  const auto& pa = a.transformer().parameters();
  const auto& pb = b.transformer().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->value.data(), pb[i]->value.data())
        << "parameter " << a.transformer().parameter_names()[i];
  }
}

TEST_F(DeterminismTest, TrainingBitIdenticalAcrossThreadCounts) {
  const auto pairs = synthetic_pairs(23);

  SizingModel serial;
  const TrainHistory h1 = serial.train(pairs, tiny_train_options(1));
  ASSERT_EQ(h1.train_loss.size(), 2u);
  EXPECT_EQ(h1.threads, 1);

  SizingModel par8;
  const TrainHistory h8 = par8.train(pairs, tiny_train_options(8));
  // Worker count is capped at the batch size (5): more workers than
  // examples per batch could never be occupied.
  EXPECT_EQ(h8.threads, 5);

  // Loss trajectory: exact, not approximate, equality per epoch.
  EXPECT_EQ(h1.train_loss, h8.train_loss);
  EXPECT_EQ(h1.val_loss, h8.val_loss);
  expect_same_weights(serial, par8);
  EXPECT_EQ(serial.predict(pairs[0].first, 40), par8.predict(pairs[0].first, 40));

  // An odd worker count shards batches differently but must agree too.
  SizingModel par3;
  const TrainHistory h3 = par3.train(pairs, tiny_train_options(3));
  EXPECT_EQ(h1.train_loss, h3.train_loss);
  EXPECT_EQ(h1.val_loss, h3.val_loss);
  expect_same_weights(serial, par3);
}

TEST_F(DeterminismTest, TrainingSeedsDiffer) {
  const auto pairs = synthetic_pairs(12);
  SizingModel a, b;
  const TrainHistory ha = a.train(pairs, tiny_train_options(4, 7));
  const TrainHistory hb = b.train(pairs, tiny_train_options(4, 8));
  ASSERT_FALSE(ha.train_loss.empty());
  ASSERT_FALSE(hb.train_loss.empty());
  EXPECT_NE(ha.train_loss[0], hb.train_loss[0]);
}

}  // namespace
}  // namespace ota::core
