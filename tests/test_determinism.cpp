// Parallel-determinism property tests.
//
// The par layer's contract is that thread count is a pure performance knob:
// dataset generation and campaign evaluation must produce bit-identical
// results for OTA_THREADS=1 and OTA_THREADS=8 at the same seed (counted
// SplitMix64 RNG streams + per-worker state isolation), while distinct seeds
// must still produce distinct outputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/nearest_predictor.hpp"

namespace ota::core {
namespace {

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.dc_failures, b.dc_failures);
  EXPECT_EQ(a.region_rejects, b.region_rejects);
  EXPECT_EQ(a.spec_rejects, b.spec_rejects);
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (size_t i = 0; i < a.designs.size(); ++i) {
    const Design& da = a.designs[i];
    const Design& db = b.designs[i];
    EXPECT_EQ(da.widths, db.widths) << "design " << i;
    EXPECT_EQ(da.specs.gain_db, db.specs.gain_db) << "design " << i;
    EXPECT_EQ(da.specs.bw_hz, db.specs.bw_hz) << "design " << i;
    EXPECT_EQ(da.specs.ugf_hz, db.specs.ugf_hz) << "design " << i;
    ASSERT_EQ(da.devices.size(), db.devices.size()) << "design " << i;
    for (const auto& [name, ss] : da.devices) {
      const auto it = db.devices.find(name);
      ASSERT_NE(it, db.devices.end()) << name;
      EXPECT_EQ(ss.id, it->second.id) << name;
      EXPECT_EQ(ss.gm, it->second.gm) << name;
      EXPECT_EQ(ss.gds, it->second.gds) << name;
      EXPECT_EQ(ss.cgs, it->second.cgs) << name;
      EXPECT_EQ(ss.cds, it->second.cds) << name;
      EXPECT_EQ(ss.ic, it->second.ic) << name;
    }
  }
}

class DeterminismTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();

  Dataset generate(const std::string& name, int threads, uint64_t seed = 7,
                   int n = 25) {
    auto topo = circuit::make_topology(name, tech);
    DataGenOptions opt;
    opt.target_designs = n;
    opt.max_attempts = 20000;
    opt.seed = seed;
    opt.threads = threads;
    return generate_dataset(topo, tech, SpecRange::for_topology(name), opt);
  }
};

TEST_F(DeterminismTest, SplitMix64StreamsAreDistinctAndStable) {
  // Same (seed, stream) -> same value; different stream or seed -> different.
  EXPECT_EQ(stream_seed(42, 0), stream_seed(42, 0));
  for (uint64_t s = 0; s < 16; ++s) {
    EXPECT_NE(stream_seed(42, s), stream_seed(42, s + 1)) << s;
    EXPECT_NE(stream_seed(42, s), stream_seed(43, s)) << s;
  }
  // Counted Rng streams inherit the separation.
  Rng a(42, 3), b(42, 4), a2(42, 3);
  const double va = a.uniform(), vb = b.uniform();
  EXPECT_NE(va, vb);
  EXPECT_EQ(va, a2.uniform());
}

TEST_F(DeterminismTest, DatasetBitIdenticalAcrossThreadCounts) {
  const Dataset serial = generate("5T-OTA", 1);
  const Dataset par8 = generate("5T-OTA", 8);
  ASSERT_EQ(serial.designs.size(), 25u);
  expect_bit_identical(serial, par8);

  // An odd worker count shards differently but must agree too.
  const Dataset par3 = generate("5T-OTA", 3);
  expect_bit_identical(serial, par3);
}

TEST_F(DeterminismTest, TwoStageDatasetBitIdenticalAcrossThreadCounts) {
  // The 2S-OTA exercises the current-balance jitter draw (a second RNG shape
  // on the same per-attempt stream).
  const Dataset serial = generate("2S-OTA", 1, 11, 10);
  const Dataset par8 = generate("2S-OTA", 8, 11, 10);
  ASSERT_EQ(serial.designs.size(), 10u);
  expect_bit_identical(serial, par8);
}

TEST_F(DeterminismTest, DatasetSeedsDiffer) {
  const Dataset a = generate("5T-OTA", 8, 1, 5);
  const Dataset b = generate("5T-OTA", 8, 2, 5);
  ASSERT_FALSE(a.designs.empty());
  ASSERT_FALSE(b.designs.empty());
  EXPECT_NE(a.designs[0].widths, b.designs[0].widths);
}

TEST_F(DeterminismTest, RuntimeStatsCountsIdenticalAcrossThreadCounts) {
  auto topo = circuit::make_5t_ota(tech);
  DataGenOptions opt;
  opt.target_designs = 60;
  opt.max_attempts = 20000;
  opt.seed = 31;
  const Dataset ds =
      generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), opt);
  const SequenceBuilder builder(topo, tech);
  const NearestNeighborPredictor nn(builder, ds.designs);
  const LutSet luts = LutSet::build(tech);
  const SizingCopilot copilot(topo, tech, builder, nn, luts);
  const auto targets = targets_from_designs(ds.designs, 8, 0.06, 17);

  const RuntimeStats serial = runtime_stats(copilot, targets, {}, 1);
  const RuntimeStats par8 = runtime_stats(copilot, targets, {}, 8);

  // Every counting field must agree bit-for-bit; only the wall-clock
  // averages are allowed to differ between runs.
  EXPECT_EQ(serial.total, par8.total);
  EXPECT_EQ(serial.single_iteration, par8.single_iteration);
  EXPECT_EQ(serial.multi_iteration, par8.multi_iteration);
  EXPECT_EQ(serial.failures, par8.failures);
  EXPECT_EQ(serial.avg_multi_iterations, par8.avg_multi_iterations);
  EXPECT_EQ(serial.avg_sims_per_design, par8.avg_sims_per_design);
  EXPECT_EQ(serial.total, 8);
}

TEST_F(DeterminismTest, TargetSeedsDiffer) {
  auto topo = circuit::make_5t_ota(tech);
  DataGenOptions opt;
  opt.target_designs = 20;
  opt.max_attempts = 20000;
  opt.seed = 31;
  const Dataset ds =
      generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), opt);
  const auto ta = targets_from_designs(ds.designs, 4, 0.05, 1);
  const auto tb = targets_from_designs(ds.designs, 4, 0.05, 2);
  EXPECT_NE(ta[0].ugf_hz, tb[0].ugf_hz);
}

}  // namespace
}  // namespace ota::core
