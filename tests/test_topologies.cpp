// Topology-builder tests: structure, matching constraints, and bias health of
// the paper's three OTAs (Fig. 6) and the active inductor (Fig. 2).
#include "circuit/topologies.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "spice/testbench.hpp"

namespace ota::circuit {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  device::Technology tech = device::Technology::default65nm();
};

TEST_F(TopologyTest, FiveTransistorStructure) {
  const Topology t = make_5t_ota(tech);
  EXPECT_EQ(t.name, "5T-OTA");
  EXPECT_EQ(t.netlist.mosfets().size(), 5u);
  EXPECT_EQ(t.match_groups.size(), 3u);  // load, dp, tail
  EXPECT_EQ(t.device_roles.at("M3"), "DP");
  EXPECT_EQ(t.device_roles.at("M5"), "Tail MOS");
  EXPECT_EQ(t.output_node, "vout");
}

TEST_F(TopologyTest, CurrentMirrorStructure) {
  const Topology t = make_cm_ota(tech);
  EXPECT_EQ(t.netlist.mosfets().size(), 9u);  // paper: nine devices
  EXPECT_EQ(t.match_groups.size(), 5u);
}

TEST_F(TopologyTest, TwoStageStructure) {
  const Topology t = make_2s_ota(tech);
  EXPECT_EQ(t.netlist.mosfets().size(), 7u);  // paper: seven devices
  EXPECT_EQ(t.match_groups.size(), 5u);
  EXPECT_TRUE(t.netlist.has_component("CC"));  // Miller compensation
  EXPECT_EQ(t.device_roles.at("M7"), "2nd stage CS");
}

TEST_F(TopologyTest, ApplyAndReadWidths) {
  Topology t = make_5t_ota(tech);
  t.apply_widths({1e-6, 2e-6, 3e-6});
  const auto ws = t.widths();
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_DOUBLE_EQ(ws[0], 1e-6);
  EXPECT_DOUBLE_EQ(ws[1], 2e-6);
  EXPECT_DOUBLE_EQ(ws[2], 3e-6);
  // Matched devices share the width.
  EXPECT_DOUBLE_EQ(t.netlist.mosfet("M1").w, t.netlist.mosfet("M2").w);
  EXPECT_DOUBLE_EQ(t.netlist.mosfet("M3").w, t.netlist.mosfet("M4").w);
  EXPECT_THROW(t.apply_widths({1e-6}), InvalidArgument);
}

TEST_F(TopologyTest, MosfetNamesCoverAllDevices) {
  const Topology t = make_cm_ota(tech);
  const auto names = t.mosfet_names();
  EXPECT_EQ(names.size(), 9u);
}

TEST_F(TopologyTest, MakeTopologyByName) {
  EXPECT_EQ(make_topology("5T-OTA", tech).name, "5T-OTA");
  EXPECT_EQ(make_topology("CM-OTA", tech).name, "CM-OTA");
  EXPECT_EQ(make_topology("2S-OTA", tech).name, "2S-OTA");
  EXPECT_THROW(make_topology("7T-OTA", tech), InvalidArgument);
}

TEST_F(TopologyTest, DifferentialDriveIsAntisymmetric) {
  const Topology t = make_5t_ota(tech);
  double ac_sum = 0.0;
  for (const auto& src : t.input_sources) {
    for (const auto& v : t.netlist.vsources()) {
      if (v.name == src) ac_sum += v.ac;
    }
  }
  EXPECT_DOUBLE_EQ(ac_sum, 0.0);  // +0.5 / -0.5
}

TEST_F(TopologyTest, ActiveInductorBiasesAndFollows) {
  const ActiveInductor ai = make_active_inductor(tech);
  Netlist nl = ai.netlist;  // copy: solve mutates nothing but keep it local
  const auto sol = spice::solve_dc(nl, tech);
  // The follower output sits a Vgs below the (resistor-loaded) gate node.
  const double vg = sol.voltage(nl, "n2");
  const double vs = sol.voltage(nl, "n1");
  EXPECT_GT(vg, vs);
  EXPECT_GT(vs, 0.1);
  EXPECT_LT(vg - vs, 0.8);
}

TEST_F(TopologyTest, InputCommonModeRangeIsNonTrivial) {
  Topology t = make_5t_ota(tech);
  t.apply_widths({4e-6, 12e-6, 6e-6});
  const auto icmr = spice::input_common_mode_range(t, tech, 0.1);
  ASSERT_TRUE(icmr.has_value());
  EXPECT_LT(icmr->first, icmr->second);
  // The default VCM used by the builders must fall inside the ICMR.
  EXPECT_LE(icmr->first, 0.75);
  EXPECT_GE(icmr->second, 0.75);
}

}  // namespace
}  // namespace ota::circuit
