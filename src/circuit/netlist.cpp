#include "circuit/netlist.hpp"

#include <algorithm>

namespace ota::circuit {

NodeId Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_ids_.emplace(name, id);
  node_names_.push_back(name);
  return id;
}

NodeId Netlist::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw InvalidArgument("Netlist: unknown node '" + name + "'");
  }
  return it->second;
}

const std::string& Netlist::node_name(NodeId id) const {
  if (id < 0 || id >= node_count()) {
    throw InvalidArgument("Netlist: node id out of range");
  }
  return node_names_[static_cast<size_t>(id)];
}

void Netlist::check_fresh_name(const std::string& name) const {
  if (has_component(name)) {
    throw InvalidArgument("Netlist: duplicate component name '" + name + "'");
  }
}

bool Netlist::has_component(const std::string& name) const {
  auto by_name = [&name](const auto& c) { return c.name == name; };
  return std::any_of(mosfets_.begin(), mosfets_.end(), by_name) ||
         std::any_of(resistors_.begin(), resistors_.end(), by_name) ||
         std::any_of(capacitors_.begin(), capacitors_.end(), by_name) ||
         std::any_of(vsources_.begin(), vsources_.end(), by_name) ||
         std::any_of(isources_.begin(), isources_.end(), by_name);
}

void Netlist::add_mosfet(const std::string& name, device::MosType type,
                         const std::string& d, const std::string& g,
                         const std::string& s, double w, double l) {
  check_fresh_name(name);
  if (w <= 0 || l <= 0) throw InvalidArgument("Netlist: MOSFET W/L must be positive");
  mosfets_.push_back(Mosfet{name, type, node(d), node(g), node(s), w, l});
}

void Netlist::add_resistor(const std::string& name, const std::string& a,
                           const std::string& b, double r) {
  check_fresh_name(name);
  if (r <= 0) throw InvalidArgument("Netlist: resistance must be positive");
  resistors_.push_back(Resistor{name, node(a), node(b), r});
}

void Netlist::add_capacitor(const std::string& name, const std::string& a,
                            const std::string& b, double c) {
  check_fresh_name(name);
  if (c <= 0) throw InvalidArgument("Netlist: capacitance must be positive");
  capacitors_.push_back(Capacitor{name, node(a), node(b), c});
}

void Netlist::add_vsource(const std::string& name, const std::string& pos,
                          const std::string& neg, double dc, double ac) {
  check_fresh_name(name);
  vsources_.push_back(VoltageSource{name, node(pos), node(neg), dc, ac});
}

void Netlist::add_isource(const std::string& name, const std::string& pos,
                          const std::string& neg, double dc, double ac) {
  check_fresh_name(name);
  isources_.push_back(CurrentSource{name, node(pos), node(neg), dc, ac});
}

Mosfet& Netlist::mosfet(const std::string& name) {
  for (auto& m : mosfets_) {
    if (m.name == name) return m;
  }
  throw InvalidArgument("Netlist: unknown MOSFET '" + name + "'");
}

const Mosfet& Netlist::mosfet(const std::string& name) const {
  for (const auto& m : mosfets_) {
    if (m.name == name) return m;
  }
  throw InvalidArgument("Netlist: unknown MOSFET '" + name + "'");
}

VoltageSource& Netlist::vsource(const std::string& name) {
  for (auto& v : vsources_) {
    if (v.name == name) return v;
  }
  throw InvalidArgument("Netlist: unknown voltage source '" + name + "'");
}

Capacitor& Netlist::capacitor(const std::string& name) {
  for (auto& c : capacitors_) {
    if (c.name == name) return c;
  }
  throw InvalidArgument("Netlist: unknown capacitor '" + name + "'");
}

void Netlist::set_width(const std::string& mosfet_name, double w) {
  if (w <= 0) throw InvalidArgument("Netlist: width must be positive");
  mosfet(mosfet_name).w = w;
}

}  // namespace ota::circuit
