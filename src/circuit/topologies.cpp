#include "circuit/topologies.hpp"

#include <algorithm>

namespace ota::circuit {

using device::MosType;

void Topology::apply_widths(const std::vector<double>& widths) {
  if (widths.size() != match_groups.size()) {
    throw InvalidArgument("Topology: expected " +
                          std::to_string(match_groups.size()) + " widths, got " +
                          std::to_string(widths.size()));
  }
  for (size_t g = 0; g < match_groups.size(); ++g) {
    for (const auto& dev : match_groups[g].devices) {
      netlist.set_width(dev, widths[g]);
    }
  }
}

std::vector<double> Topology::widths() const {
  std::vector<double> ws;
  ws.reserve(match_groups.size());
  for (const auto& g : match_groups) {
    ws.push_back(netlist.mosfet(g.devices.front()).w);
  }
  return ws;
}

std::vector<std::string> Topology::mosfet_names() const {
  std::vector<std::string> names;
  for (const auto& g : match_groups) {
    for (const auto& d : g.devices) names.push_back(d);
  }
  return names;
}

Topology make_5t_ota(const device::Technology& tech, const OtaOptions& opt) {
  Topology t;
  t.name = "5T-OTA";
  Netlist& nl = t.netlist;

  nl.add_vsource("VDD", "vdd", "0", tech.vdd);
  // Differential drive: +0.5 / -0.5 so Vout corresponds to unit Vin_diff.
  nl.add_vsource("VIP", "vinp", "0", opt.vcm, +0.5);
  nl.add_vsource("VIN", "vinn", "0", opt.vcm, -0.5);
  nl.add_vsource("VB", "vb", "0", opt.vbias_n);

  // PMOS mirror load: M1 diode-connected, M2 mirrors into the output.
  nl.add_mosfet("M1", MosType::Pmos, "n1", "n1", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M2", MosType::Pmos, "vout", "n1", "vdd", opt.w_init, opt.l);
  // NMOS differential pair.  The mirror-side gate is the non-inverting input.
  nl.add_mosfet("M3", MosType::Nmos, "n1", "vinp", "ntail", opt.w_init, opt.l);
  nl.add_mosfet("M4", MosType::Nmos, "vout", "vinn", "ntail", opt.w_init, opt.l);
  // NMOS tail current source.
  nl.add_mosfet("M5", MosType::Nmos, "ntail", "vb", "0", opt.w_init, opt.l);

  nl.add_capacitor("CL", "vout", "0", opt.cl);

  t.match_groups = {
      MatchGroup{"load", {"M1", "M2"}, /*min_ic=*/3.0, /*max_ic=*/1e30},
      MatchGroup{"dp", {"M3", "M4"}, /*min_ic=*/0.0, /*max_ic=*/1.0},
      MatchGroup{"tail", {"M5"}, 0.0, 1e30},
  };
  t.output_node = "vout";
  t.input_sources = {"VIP", "VIN"};
  t.device_roles = {{"M1", "Active load"}, {"M2", "Active load"},
                    {"M3", "DP"},          {"M4", "DP"},
                    {"M5", "Tail MOS"}};
  return t;
}

Topology make_cm_ota(const device::Technology& tech, const OtaOptions& opt) {
  Topology t;
  t.name = "CM-OTA";
  Netlist& nl = t.netlist;

  nl.add_vsource("VDD", "vdd", "0", tech.vdd);
  nl.add_vsource("VIP", "vinp", "0", opt.vcm, +0.5);
  nl.add_vsource("VIN", "vinn", "0", opt.vcm, -0.5);
  nl.add_vsource("VB", "vb", "0", opt.vbias_n);

  // Input stage: NMOS differential pair M3/M4 with tail M5; each branch loads
  // into a diode-connected PMOS (M1 left, M2 right).
  nl.add_mosfet("M1", MosType::Pmos, "na", "na", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M2", MosType::Pmos, "nb", "nb", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M3", MosType::Nmos, "na", "vinp", "ntail", opt.w_init, opt.l);
  nl.add_mosfet("M4", MosType::Nmos, "nb", "vinn", "ntail", opt.w_init, opt.l);
  nl.add_mosfet("M5", MosType::Nmos, "ntail", "vb", "0", opt.w_init, opt.l);
  // Output stage: M6 mirrors the left branch into the NMOS mirror M8/M9 which
  // pulls the output; M7 mirrors the right branch and pushes the output.
  nl.add_mosfet("M6", MosType::Pmos, "nc", "na", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M7", MosType::Pmos, "vout", "nb", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M8", MosType::Nmos, "nc", "nc", "0", opt.w_init, opt.l);
  nl.add_mosfet("M9", MosType::Nmos, "vout", "nc", "0", opt.w_init, opt.l);

  nl.add_capacitor("CL", "vout", "0", opt.cl);

  t.match_groups = {
      MatchGroup{"diode_load", {"M1", "M2"}, /*min_ic=*/3.0, /*max_ic=*/1e30},
      MatchGroup{"dp", {"M3", "M4"}, /*min_ic=*/0.0, /*max_ic=*/1.0},
      MatchGroup{"tail", {"M5"}, 0.0, 1e30},
      MatchGroup{"mirror_out", {"M6", "M7"}, /*min_ic=*/3.0, /*max_ic=*/1e30},
      MatchGroup{"nmirror", {"M8", "M9"}, /*min_ic=*/3.0, /*max_ic=*/1e30},
  };
  t.output_node = "vout";
  t.input_sources = {"VIP", "VIN"};
  t.device_roles = {{"M1", "Matched CM load"}, {"M2", "Matched CM load"},
                    {"M3", "DP"},              {"M4", "DP"},
                    {"M5", "Tail MOS"},        {"M6", "Matched CM load"},
                    {"M7", "Matched CM load"}, {"M8", "Matched CM load"},
                    {"M9", "Matched CM load"}};
  return t;
}

Topology make_2s_ota(const device::Technology& tech, const OtaOptions& opt) {
  Topology t;
  t.name = "2S-OTA";
  Netlist& nl = t.netlist;

  nl.add_vsource("VDD", "vdd", "0", tech.vdd);
  nl.add_vsource("VIP", "vinp", "0", opt.vcm, +0.5);
  nl.add_vsource("VIN", "vinn", "0", opt.vcm, -0.5);
  nl.add_vsource("VB", "vb", "0", opt.vbias_n);
  nl.add_vsource("VBP", "vbp", "0", tech.vdd - opt.vbias_p_delta);

  // First stage: the 5T-OTA, output at node o1.
  nl.add_mosfet("M1", MosType::Pmos, "n1", "n1", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M2", MosType::Pmos, "o1", "n1", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M3", MosType::Nmos, "n1", "vinp", "ntail", opt.w_init, opt.l);
  nl.add_mosfet("M4", MosType::Nmos, "o1", "vinn", "ntail", opt.w_init, opt.l);
  nl.add_mosfet("M5", MosType::Nmos, "ntail", "vb", "0", opt.w_init, opt.l);
  // Second stage: NMOS common-source M7 loaded by PMOS current source M6.
  nl.add_mosfet("M6", MosType::Pmos, "vout", "vbp", "vdd", opt.w_init, opt.l);
  nl.add_mosfet("M7", MosType::Nmos, "vout", "o1", "0", opt.w_init, opt.l);

  // Miller compensation across the second stage plus the external load.
  nl.add_capacitor("CC", "o1", "vout", opt.cc);
  nl.add_capacitor("CL", "vout", "0", opt.cl);

  t.match_groups = {
      MatchGroup{"load1", {"M1", "M2"}, /*min_ic=*/3.0, /*max_ic=*/1e30},
      MatchGroup{"dp", {"M3", "M4"}, /*min_ic=*/0.0, /*max_ic=*/1.0},
      MatchGroup{"tail1", {"M5"}, 0.0, 1e30},
      MatchGroup{"tail2", {"M6"}, 0.0, 1e30},
      MatchGroup{"cs", {"M7"}, 0.0, 1e30},
  };
  t.output_node = "vout";
  t.input_sources = {"VIP", "VIN"};
  t.device_roles = {{"M1", "1st stage active load"}, {"M2", "1st stage active load"},
                    {"M3", "1st stage DP"},          {"M4", "1st stage DP"},
                    {"M5", "1st stage tail MOS"},    {"M6", "2nd stage tail MOS"},
                    {"M7", "2nd stage CS"}};
  return t;
}

ActiveInductor make_active_inductor(const device::Technology& tech, double c,
                                    double g, double w, double l) {
  ActiveInductor ai;
  Netlist& nl = ai.netlist;
  nl.add_vsource("VDD", "vdd", "0", tech.vdd);
  // Source follower: drain at the (AC-grounded) supply, source is the output
  // node n1, gate at internal node n2.
  nl.add_mosfet("M", MosType::Nmos, "vdd", "n2", "n1", w, l);
  nl.add_capacitor("C", "n1", "n2", c);
  nl.add_resistor("G", "n2", "vdd", 1.0 / g);
  // Bias/test current pulled out of the source-follower output node (the DC
  // term biases the follower at Id = 10 uA; the AC term is the excitation).
  nl.add_isource("Iin", "n1", "0", 10e-6, 1.0);
  ai.output_node = "n1";
  ai.input_source = "Iin";
  return ai;
}

Topology make_topology(const std::string& name, const device::Technology& tech,
                       const OtaOptions& opt) {
  if (name == "5T-OTA") return make_5t_ota(tech, opt);
  if (name == "CM-OTA") return make_cm_ota(tech, opt);
  if (name == "2S-OTA") return make_2s_ota(tech, opt);
  throw InvalidArgument("make_topology: unknown topology '" + name + "'");
}

}  // namespace ota::circuit
