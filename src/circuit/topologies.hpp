// The circuits evaluated in the paper.
//
// Fig. 2: the active-inductor running example used to explain the DP-SFG.
// Fig. 6: the three OTA topologies of the evaluation — 5T-OTA, CM-OTA, and
// 2S-OTA — with the matching constraints of Section IV-A (current mirrors and
// differential pairs share a width) and the device roles of Tables II/IV/VI.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "device/mos_model.hpp"
#include "device/technology.hpp"

namespace ota::circuit {

/// A group of devices constrained to share one width (e.g. the two halves of
/// a differential pair).  Each group is one free sizing variable.
///
/// The inversion-coefficient window implements the paper's region filter
/// (differential pairs toward weak inversion, current mirrors toward strong
/// inversion) as IC bounds, the EKV-native formulation of those regions.
struct MatchGroup {
  std::string name;                  ///< e.g. "dp", "load", "tail"
  std::vector<std::string> devices;  ///< MOSFET names in the group
  double min_ic = 0.0;               ///< data-generation filter: IC lower bound
  double max_ic = 1e30;              ///< data-generation filter: IC upper bound
};

/// A sizable circuit: netlist + sizing variables + AC measurement hookup.
struct Topology {
  std::string name;                     ///< "5T-OTA", "CM-OTA", "2S-OTA"
  Netlist netlist;
  std::vector<MatchGroup> match_groups; ///< one entry per free width
  std::string output_node;              ///< where gain/BW/UGF are measured
  /// Names of the AC-driven input voltage sources (already set to +/-0.5 for a
  /// differential drive so the measured transfer is Vout/Vin_diff).
  std::vector<std::string> input_sources;
  std::map<std::string, std::string> device_roles;  ///< name -> Table II/IV/VI role

  /// Applies one width per match group, in match_groups order.
  void apply_widths(const std::vector<double>& widths);

  /// Current width of each match group (taken from its first device).
  std::vector<double> widths() const;

  /// Names of all MOSFETs in match-group order (deterministic iteration).
  std::vector<std::string> mosfet_names() const;
};

/// Options shared by the OTA builders.
struct OtaOptions {
  double l = 180e-9;        ///< channel length for every device (paper: 180 nm)
  double cl = 500e-15;      ///< load capacitance (paper: 500 fF)
  double w_init = 5e-6;     ///< initial width before sizing
  double vcm = 0.75;        ///< input common-mode voltage
  double vbias_n = 0.50;    ///< NMOS tail gate bias
  double vbias_p_delta = 0.60;  ///< PMOS bias below VDD (Vdd - delta)
  double cc = 2e-12;        ///< Miller compensation capacitor (2S-OTA only)
};

/// Five-transistor OTA (Fig. 6a): PMOS mirror load M1/M2, NMOS differential
/// pair M3/M4, NMOS tail M5.  3 sizing variables.
Topology make_5t_ota(const device::Technology& tech, const OtaOptions& opt = {});

/// Current-mirror OTA (Fig. 6b): NMOS DP M3/M4 and tail M5, PMOS diode loads
/// M1/M2, PMOS mirror outputs M6/M7, NMOS folding mirror M8/M9.  5 variables.
Topology make_cm_ota(const device::Technology& tech, const OtaOptions& opt = {});

/// Two-stage OTA (Fig. 6c): 5T first stage (M1..M5), PMOS current-source load
/// M6 and NMOS common-source M7 second stage, Miller cap Cc.  5 variables.
Topology make_2s_ota(const device::Technology& tech, const OtaOptions& opt = {});

/// Active-inductor circuit of Fig. 2a: source follower M with gate network
/// C (gate-source coupling) and conductance G to ground, driven by a current
/// source at the output node.  Used by the DP-SFG demonstrations and tests.
struct ActiveInductor {
  Netlist netlist;
  std::string output_node;
  std::string input_source;  ///< the current-source excitation "Iin"
};
ActiveInductor make_active_inductor(const device::Technology& tech,
                                    double c = 100e-15, double g = 50e-6,
                                    double w = 2e-6, double l = 180e-9);

/// Builds a topology by name ("5T-OTA" | "CM-OTA" | "2S-OTA").
Topology make_topology(const std::string& name, const device::Technology& tech,
                       const OtaOptions& opt = {});

}  // namespace ota::circuit
