#include "circuit/spice_format.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/strings.hpp"
#include "common/units.hpp"

namespace ota::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw InvalidArgument("parse_spice: line " + std::to_string(line_no) + ": " + what);
}

double value_or_fail(const std::string& text, int line_no, const char* what) {
  if (auto v = parse_si(text)) return *v;
  fail(line_no, std::string("bad ") + what + " value '" + text + "'");
}

// Parses "W=0.7u" / "l=180n" style assignments.
double assignment(const std::string& word, const char* key, int line_no) {
  const auto eq = word.find('=');
  if (eq == std::string::npos || lower(word.substr(0, eq)) != key) {
    fail(line_no, std::string("expected ") + key + "=<value>, got '" + word + "'");
  }
  return value_or_fail(word.substr(eq + 1), line_no, key);
}

}  // namespace

Netlist parse_spice(const std::string& text) {
  std::istringstream is(text);
  return parse_spice_stream(is);
}

Netlist parse_spice_stream(std::istream& is) {
  Netlist nl;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '*') continue;
    const auto words = split(trimmed, " \t");
    const std::string card = lower(words[0]);
    if (card == ".end") break;
    if (card[0] == '.') continue;  // other directives ignored

    const char kind = card[0];
    const std::string name = words[0];
    switch (kind) {
      case 'm': case 'M': {
        // M<name> d g s [b] nmos|pmos W=... L=...
        if (words.size() < 7) fail(line_no, "MOSFET card needs 7+ fields");
        size_t i = 4;  // candidate model-name position without bulk
        std::string model = lower(words[i]);
        if (model != "nmos" && model != "pmos") {
          if (words.size() < 8) fail(line_no, "MOSFET card missing model");
          model = lower(words[++i]);  // bulk terminal present
          if (model != "nmos" && model != "pmos") {
            fail(line_no, "unknown MOSFET model '" + words[i] + "'");
          }
        }
        if (words.size() != i + 3) fail(line_no, "MOSFET card needs W= and L=");
        const double w = assignment(words[i + 1], "w", line_no);
        const double l = assignment(words[i + 2], "l", line_no);
        nl.add_mosfet(name,
                      model == "nmos" ? device::MosType::Nmos : device::MosType::Pmos,
                      words[1], words[2], words[3], w, l);
        break;
      }
      case 'r': case 'R': {
        if (words.size() != 4) fail(line_no, "resistor card needs 4 fields");
        nl.add_resistor(name, words[1], words[2],
                        value_or_fail(words[3], line_no, "resistance"));
        break;
      }
      case 'c': case 'C': {
        if (words.size() != 4) fail(line_no, "capacitor card needs 4 fields");
        nl.add_capacitor(name, words[1], words[2],
                         value_or_fail(words[3], line_no, "capacitance"));
        break;
      }
      case 'v': case 'V': case 'i': case 'I': {
        if (words.size() != 4 && words.size() != 6) {
          fail(line_no, "source card needs 4 or 6 fields");
        }
        const double dc = value_or_fail(words[3], line_no, "dc");
        double ac = 0.0;
        if (words.size() == 6) {
          if (lower(words[4]) != "ac") fail(line_no, "expected AC keyword");
          ac = value_or_fail(words[5], line_no, "ac");
        }
        if (kind == 'v' || kind == 'V') {
          nl.add_vsource(name, words[1], words[2], dc, ac);
        } else {
          nl.add_isource(name, words[1], words[2], dc, ac);
        }
        break;
      }
      default:
        fail(line_no, "unknown card '" + words[0] + "'");
    }
  }
  return nl;
}

std::string to_spice(const Netlist& nl, const std::string& title) {
  std::ostringstream os;
  os << "* " << (title.empty() ? "otasizer netlist" : title) << "\n";
  for (const auto& m : nl.mosfets()) {
    os << m.name << " " << nl.node_name(m.drain) << " " << nl.node_name(m.gate)
       << " " << nl.node_name(m.source) << " "
       << (m.type == device::MosType::Nmos ? "nmos" : "pmos")
       << " W=" << format_si(m.w, "", 6) << " L=" << format_si(m.l, "", 6) << "\n";
  }
  for (const auto& r : nl.resistors()) {
    os << r.name << " " << nl.node_name(r.a) << " " << nl.node_name(r.b) << " "
       << format_si(r.resistance, "", 6) << "\n";
  }
  for (const auto& c : nl.capacitors()) {
    os << c.name << " " << nl.node_name(c.a) << " " << nl.node_name(c.b) << " "
       << format_si(c.capacitance, "", 6) << "\n";
  }
  for (const auto& v : nl.vsources()) {
    os << v.name << " " << nl.node_name(v.pos) << " " << nl.node_name(v.neg)
       << " " << format_si(v.dc, "", 6);
    if (v.ac != 0.0) os << " AC " << format_si(v.ac, "", 6);
    os << "\n";
  }
  for (const auto& i : nl.isources()) {
    os << i.name << " " << nl.node_name(i.pos) << " " << nl.node_name(i.neg)
       << " " << format_si(i.dc, "", 6);
    if (i.ac != 0.0) os << " AC " << format_si(i.ac, "", 6);
    os << "\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace ota::circuit
