// SPICE-format netlist import/export.
//
// A pragmatic subset of the classic SPICE deck syntax, enough to move the
// repository's circuits in and out of external tools:
//
//   * comment        — lines starting with '*' (and blank lines)
//   M<name> d g s [b] <nmos|pmos> W=<val> L=<val>
//   R<name> a b <value>
//   C<name> a b <value>
//   V<name> p n <dc> [AC <mag>]
//   I<name> p n <dc> [AC <mag>]
//   .end             — optional terminator
//
// Values accept SI-literal notation ("0.7u", "500f", "1.2") via parse_si.
// The optional bulk terminal of M cards is accepted and ignored (the compact
// model ties bulk to source).  Parsing is case-insensitive on keywords.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace ota::circuit {

/// Parses a SPICE deck into a netlist; throws InvalidArgument with a line
/// number on malformed input.
Netlist parse_spice(const std::string& text);
Netlist parse_spice_stream(std::istream& is);

/// Writes a netlist as a SPICE deck (the inverse of parse_spice for the
/// supported subset; round-trips are tested).
std::string to_spice(const Netlist& netlist, const std::string& title = "");

}  // namespace ota::circuit
