// Flat transistor-level netlist.
//
// The netlist is the input to all three consumers of the flow: the MNA
// simulator (Stage IV verification / data generation), the DP-SFG builder
// (Stage I sequence construction), and the width-update step of Stage III.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "device/technology.hpp"

namespace ota::circuit {

/// Node identifier; kGround (0) is the reference node.
using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Mosfet {
  std::string name;
  device::MosType type;
  NodeId drain;
  NodeId gate;
  NodeId source;
  double w;  ///< width [m]
  double l;  ///< length [m]
};

struct Resistor {
  std::string name;
  NodeId a;
  NodeId b;
  double resistance;  ///< [ohm]
};

struct Capacitor {
  std::string name;
  NodeId a;
  NodeId b;
  double capacitance;  ///< [F]
};

struct VoltageSource {
  std::string name;
  NodeId pos;
  NodeId neg;
  double dc;  ///< DC value [V]
  double ac;  ///< AC magnitude used in small-signal sweeps [V]
};

struct CurrentSource {
  std::string name;
  NodeId pos;  ///< current flows out of `pos` through the source into `neg`
  NodeId neg;
  double dc;  ///< DC value [A]
  double ac;  ///< AC magnitude [A]
};

/// A mutable flat netlist.  Components are identified by unique names;
/// nodes are created on first reference by name.
class Netlist {
 public:
  /// Returns the id for `name`, creating the node if needed.  The name "0"
  /// (and "gnd") maps to the ground node.
  NodeId node(const std::string& name);

  /// Looks up an existing node id; throws InvalidArgument when unknown.
  NodeId find_node(const std::string& name) const;

  /// Name of a node id (inverse of node()).
  const std::string& node_name(NodeId id) const;

  /// Number of nodes including ground.
  int node_count() const { return static_cast<int>(node_names_.size()); }

  void add_mosfet(const std::string& name, device::MosType type,
                  const std::string& d, const std::string& g,
                  const std::string& s, double w, double l);
  void add_resistor(const std::string& name, const std::string& a,
                    const std::string& b, double r);
  void add_capacitor(const std::string& name, const std::string& a,
                     const std::string& b, double c);
  void add_vsource(const std::string& name, const std::string& pos,
                   const std::string& neg, double dc, double ac = 0.0);
  void add_isource(const std::string& name, const std::string& pos,
                   const std::string& neg, double dc, double ac = 0.0);

  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<CurrentSource>& isources() const { return isources_; }

  /// Mutable access for width updates and parasitic annotation.
  Mosfet& mosfet(const std::string& name);
  const Mosfet& mosfet(const std::string& name) const;
  VoltageSource& vsource(const std::string& name);
  Capacitor& capacitor(const std::string& name);

  /// Sets the width of one device.
  void set_width(const std::string& mosfet_name, double w);

  /// True when a component with this name exists (any kind).
  bool has_component(const std::string& name) const;

 private:
  void check_fresh_name(const std::string& name) const;

  std::map<std::string, NodeId> node_ids_;
  std::vector<std::string> node_names_{"0"};
  std::vector<Mosfet> mosfets_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
};

}  // namespace ota::circuit
