#include "spice/ac.hpp"

#include <numbers>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace ota::spice {

using circuit::kGround;
using std::complex;
using Cplx = complex<double>;

AcAnalysis::AcAnalysis(const circuit::Netlist& netlist,
                       const device::Technology& tech, const DcSolution& dc)
    : netlist_(netlist), devices_(small_signal_map(netlist, tech, dc)) {}

std::vector<Cplx> AcAnalysis::solve(double f_hz) const {
  const int n_nodes = netlist_.node_count();
  const int n_vsrc = static_cast<int>(netlist_.vsources().size());
  const int size = n_nodes - 1 + n_vsrc;
  if (size == 0) throw InvalidArgument("AcAnalysis: empty netlist");

  const double omega = 2.0 * std::numbers::pi * f_hz;
  const Cplx jw{0.0, omega};

  linalg::MatrixC y(static_cast<size_t>(size), static_cast<size_t>(size));
  std::vector<Cplx> rhs(static_cast<size_t>(size), Cplx{});

  auto vi = [&](circuit::NodeId id) { return static_cast<size_t>(id - 1); };
  // Admittance between two nodes (either may be ground).
  auto stamp_y = [&](circuit::NodeId a, circuit::NodeId b, Cplx g) {
    if (a != kGround) y(vi(a), vi(a)) += g;
    if (b != kGround) y(vi(b), vi(b)) += g;
    if (a != kGround && b != kGround) {
      y(vi(a), vi(b)) -= g;
      y(vi(b), vi(a)) -= g;
    }
  };
  // VCCS: current `g * v(cp, cn)` flowing from node `out_from` to `out_to`.
  auto stamp_vccs = [&](circuit::NodeId out_from, circuit::NodeId out_to,
                        circuit::NodeId cp, circuit::NodeId cn, double g) {
    if (out_from != kGround && cp != kGround) y(vi(out_from), vi(cp)) += g;
    if (out_from != kGround && cn != kGround) y(vi(out_from), vi(cn)) -= g;
    if (out_to != kGround && cp != kGround) y(vi(out_to), vi(cp)) -= g;
    if (out_to != kGround && cn != kGround) y(vi(out_to), vi(cn)) += g;
  };

  for (const auto& r : netlist_.resistors()) {
    stamp_y(r.a, r.b, Cplx{1.0 / r.resistance, 0.0});
  }
  for (const auto& c : netlist_.capacitors()) {
    stamp_y(c.a, c.b, jw * c.capacitance);
  }
  for (const auto& m : netlist_.mosfets()) {
    const auto& ss = devices_.at(m.name);
    // Uniform small-signal convention (both polarities): the drain-source
    // channel current is gm*v(g,s) + gds*v(d,s), flowing drain -> source.
    stamp_vccs(m.drain, m.source, m.gate, m.source, ss.gm);
    stamp_y(m.drain, m.source, Cplx{ss.gds, 0.0});
    stamp_y(m.gate, m.source, jw * ss.cgs);
    stamp_y(m.drain, m.source, jw * ss.cds);
  }
  for (const auto& s : netlist_.isources()) {
    // AC current s.ac flows pos -> neg through the source: it leaves `pos`.
    if (s.pos != kGround) rhs[vi(s.pos)] -= s.ac;
    if (s.neg != kGround) rhs[vi(s.neg)] += s.ac;
  }
  const auto& vsrcs = netlist_.vsources();
  for (int k = 0; k < n_vsrc; ++k) {
    const auto& s = vsrcs[static_cast<size_t>(k)];
    const size_t row = static_cast<size_t>(n_nodes - 1 + k);
    if (s.pos != kGround) {
      y(vi(s.pos), row) += 1.0;
      y(row, vi(s.pos)) += 1.0;
    }
    if (s.neg != kGround) {
      y(vi(s.neg), row) -= 1.0;
      y(row, vi(s.neg)) -= 1.0;
    }
    rhs[row] = s.ac;
  }

  const std::vector<Cplx> x = linalg::LuDecomposition<Cplx>(std::move(y)).solve(rhs);

  std::vector<Cplx> v(static_cast<size_t>(n_nodes), Cplx{});
  for (int id = 1; id < n_nodes; ++id) {
    v[static_cast<size_t>(id)] = x[vi(id)];
  }
  return v;
}

Cplx AcAnalysis::transfer(double f_hz, const std::string& node) const {
  const auto v = solve(f_hz);
  return v[static_cast<size_t>(netlist_.find_node(node))];
}

}  // namespace ota::spice
