#include "spice/ac.hpp"

#include <algorithm>
#include <numbers>

#include "common/error.hpp"
#include "par/thread_pool.hpp"

namespace ota::spice {

using circuit::kGround;
using std::complex;
using Cplx = complex<double>;

AcAnalysis::AcAnalysis(const circuit::Netlist& netlist,
                       const device::Technology& tech, const DcSolution& dc)
    : netlist_(netlist), devices_(small_signal_map(netlist, tech, dc)) {
  const int n_nodes = netlist_.node_count();
  const int n_vsrc = static_cast<int>(netlist_.vsources().size());
  size_ = n_nodes - 1 + n_vsrc;
  if (size_ == 0) throw InvalidArgument("AcAnalysis: empty netlist");

  const size_t n = static_cast<size_t>(size_);
  g_.reset(n, n);
  c_.reset(n, n);
  rhs_.assign(n, Cplx{});

  auto vi = [&](circuit::NodeId id) { return static_cast<size_t>(id - 1); };
  // Admittance between two nodes (either may be ground) into matrix `m`.
  auto stamp_y = [&](linalg::MatrixD& m, circuit::NodeId a, circuit::NodeId b,
                     double g) {
    if (a != kGround) m(vi(a), vi(a)) += g;
    if (b != kGround) m(vi(b), vi(b)) += g;
    if (a != kGround && b != kGround) {
      m(vi(a), vi(b)) -= g;
      m(vi(b), vi(a)) -= g;
    }
  };
  // VCCS: current `g * v(cp, cn)` flowing from node `out_from` to `out_to`.
  auto stamp_vccs = [&](circuit::NodeId out_from, circuit::NodeId out_to,
                        circuit::NodeId cp, circuit::NodeId cn, double g) {
    if (out_from != kGround && cp != kGround) g_(vi(out_from), vi(cp)) += g;
    if (out_from != kGround && cn != kGround) g_(vi(out_from), vi(cn)) -= g;
    if (out_to != kGround && cp != kGround) g_(vi(out_to), vi(cp)) -= g;
    if (out_to != kGround && cn != kGround) g_(vi(out_to), vi(cn)) += g;
  };

  for (const auto& r : netlist_.resistors()) {
    stamp_y(g_, r.a, r.b, 1.0 / r.resistance);
  }
  for (const auto& c : netlist_.capacitors()) {
    stamp_y(c_, c.a, c.b, c.capacitance);
  }
  for (const auto& m : netlist_.mosfets()) {
    const auto& ss = devices_.at(m.name);
    // Uniform small-signal convention (both polarities): the drain-source
    // channel current is gm*v(g,s) + gds*v(d,s), flowing drain -> source.
    stamp_vccs(m.drain, m.source, m.gate, m.source, ss.gm);
    stamp_y(g_, m.drain, m.source, ss.gds);
    stamp_y(c_, m.gate, m.source, ss.cgs);
    stamp_y(c_, m.drain, m.source, ss.cds);
  }
  for (const auto& s : netlist_.isources()) {
    // AC current s.ac flows pos -> neg through the source: it leaves `pos`.
    if (s.pos != kGround) rhs_[vi(s.pos)] -= s.ac;
    if (s.neg != kGround) rhs_[vi(s.neg)] += s.ac;
  }
  const auto& vsrcs = netlist_.vsources();
  for (int k = 0; k < n_vsrc; ++k) {
    const auto& s = vsrcs[static_cast<size_t>(k)];
    const size_t row = static_cast<size_t>(n_nodes - 1 + k);
    if (s.pos != kGround) {
      g_(vi(s.pos), row) += 1.0;
      g_(row, vi(s.pos)) += 1.0;
    }
    if (s.neg != kGround) {
      g_(vi(s.neg), row) -= 1.0;
      g_(row, vi(s.neg)) -= 1.0;
    }
    rhs_[row] = s.ac;
  }
}

void AcAnalysis::solve_point(double f_hz, Workspace& ws) const {
  const size_t n = static_cast<size_t>(size_);
  const double omega = 2.0 * std::numbers::pi * f_hz;
  if (ws.y.rows() != n || ws.y.cols() != n) ws.y.reset(n, n);
  const std::vector<double>& g = g_.data();
  const std::vector<double>& c = c_.data();
  std::vector<Cplx>& y = ws.y.data();
  for (size_t i = 0; i < y.size(); ++i) y[i] = Cplx{g[i], omega * c[i]};
  // Swap, don't copy: the next point reassembles every entry of ws.y anyway,
  // so the decomposition's previous buffer serves as its scratch.
  ws.lu.factor_swap(ws.y);
  ws.lu.solve_into(rhs_, ws.x);
}

void AcAnalysis::for_each_point(
    const std::vector<double>& freqs, int threads,
    const std::function<void(size_t, const Workspace&)>& sink) const {
  auto run = [&](par::ThreadPool& pool) {
    pool.parallel_for(freqs.size(), [&](size_t begin, size_t end) {
      Workspace ws;
      for (size_t i = begin; i < end; ++i) {
        solve_point(freqs[i], ws);
        sink(i, ws);
      }
    });
  };
  if (threads <= 0) {
    // Auto: the persistent process-wide pool — sweeps issued back to back
    // (measure_ac's refinements, campaign verification under a server) reuse
    // one set of workers instead of spawning a pool per sweep.  Nested calls
    // from inside that pool degrade to inline runs, same results.
    run(par::global_pool());
    return;
  }
  // Explicit worker count (determinism sweeps in tests/benches): a dedicated
  // pool, never wider than the point count.
  par::ThreadPool pool(std::min<int>(
      threads, static_cast<int>(std::max<size_t>(freqs.size(), 1))));
  run(pool);
}

std::vector<Cplx> AcAnalysis::node_voltages(const Workspace& ws) const {
  const int n_nodes = netlist_.node_count();
  std::vector<Cplx> v(static_cast<size_t>(n_nodes), Cplx{});
  for (int id = 1; id < n_nodes; ++id) {
    v[static_cast<size_t>(id)] = ws.x[static_cast<size_t>(id - 1)];
  }
  return v;
}

// Single-point calls run the same numeric phase as sweeps, against
// per-thread scratch: bisection refinements in spice::measure hit this path
// dozens of times per measurement, so it must be as allocation-free as a
// sweep chunk.  Different-size systems interleaving on one thread just
// trigger the size check in solve_point.
std::vector<Cplx> AcAnalysis::solve(double f_hz) const {
  thread_local Workspace ws;
  solve_point(f_hz, ws);
  return node_voltages(ws);
}

Cplx AcAnalysis::transfer(double f_hz, const std::string& node) const {
  const circuit::NodeId id = netlist_.find_node(node);
  if (id == kGround) return Cplx{};  // the reference node is identically zero
  thread_local Workspace ws;
  solve_point(f_hz, ws);
  return ws.x[static_cast<size_t>(id - 1)];
}

std::vector<std::vector<Cplx>> AcAnalysis::sweep(
    const std::vector<double>& freqs, int threads) const {
  std::vector<std::vector<Cplx>> out(freqs.size());
  for_each_point(freqs, threads, [&](size_t i, const Workspace& ws) {
    out[i] = node_voltages(ws);
  });
  return out;
}

std::vector<Cplx> AcAnalysis::transfer_sweep(const std::vector<double>& freqs,
                                             const std::string& node,
                                             int threads) const {
  const circuit::NodeId id = netlist_.find_node(node);
  std::vector<Cplx> out(freqs.size());
  if (id == kGround) return out;  // the reference node is identically zero
  for_each_point(freqs, threads, [&](size_t i, const Workspace& ws) {
    out[i] = ws.x[static_cast<size_t>(id - 1)];
  });
  return out;
}

}  // namespace ota::spice
