// Small-signal AC analysis.
//
// Linearizes every MOSFET at a DC operating point into {gm, gds, Cgs, Cds}
// (exactly the four device parameters the paper's transformer predicts) and
// solves the complex MNA system at each requested frequency.  Voltage and
// current sources contribute their `ac` values as excitations.
//
// The analysis is split into a one-time structural phase and a cheap
// per-frequency numeric phase.  Construction stamps the frequency-independent
// conductance pattern G (resistors, gm/gds, voltage-source rows), the
// capacitance pattern C (capacitors, Cgs, Cds), and the source excitation
// vector once; each frequency point then only assembles Y(w) = G + jwC into
// reusable scratch, factors, and solves — no netlist walk, no name lookups,
// no per-point allocation.  sweep()/transfer_sweep() fan frequency points
// across an ota::par pool with results written to caller-indexed slots, so
// sweep output is bit-identical for any thread count (the repository-wide
// determinism contract).
#pragma once

#include <complex>
#include <functional>
#include <vector>

#include "circuit/netlist.hpp"
#include "device/technology.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "spice/dc.hpp"

namespace ota::spice {

/// Reusable AC analysis for one netlist + operating point.  Construction
/// extracts the small-signal model and the MNA stamp pattern once; every
/// solve path (single point or batched sweep) runs the cached numeric phase.
class AcAnalysis {
 public:
  /// Throws InvalidArgument when the netlist has no MNA unknowns.
  AcAnalysis(const circuit::Netlist& netlist, const device::Technology& tech,
             const DcSolution& dc);

  /// Complex node voltages at frequency `f_hz`, indexed by NodeId.  A thin
  /// wrapper over the batch path's numeric phase, run against per-thread
  /// scratch so repeated single-point calls stay allocation-free too.
  std::vector<std::complex<double>> solve(double f_hz) const;

  /// Transfer value at the named node (the excitation amplitudes are encoded
  /// in the sources' ac values, e.g. a +/-0.5 differential pair of sources).
  std::complex<double> transfer(double f_hz, const std::string& node) const;

  /// Batched sweep: node-voltage vectors (as solve()) for every frequency,
  /// in input order.  `threads` follows the repository convention — an
  /// explicit worker count (a dedicated pool, for determinism sweeps), or 0
  /// for the persistent process-wide pool (par::global_pool()) — but
  /// defaults to 1 because AC sweeps commonly run inside an outer parallel
  /// region (dataset generation, campaign evaluation).  Results are
  /// bit-identical for every thread count.
  std::vector<std::vector<std::complex<double>>> sweep(
      const std::vector<double>& freqs, int threads = 1) const;

  /// Batched transfer(): the named node's value at every frequency.
  std::vector<std::complex<double>> transfer_sweep(
      const std::vector<double>& freqs, const std::string& node,
      int threads = 1) const;

  /// Small-signal device parameters used by this analysis.
  const std::map<std::string, device::SmallSignal>& devices() const {
    return devices_;
  }

  /// Number of MNA unknowns (node voltages + source branch currents).
  int system_size() const { return size_; }

 private:
  /// Per-worker scratch for the numeric phase; one per sweep chunk.
  struct Workspace {
    linalg::MatrixC y;
    linalg::LuDecomposition<std::complex<double>> lu;
    std::vector<std::complex<double>> x;
  };

  /// Numeric phase for one point: assemble Y(w) = G + jwC, factor, solve.
  /// Leaves the MNA solution in ws.x.
  void solve_point(double f_hz, Workspace& ws) const;

  /// The shared sweep scaffold: solves every frequency across the pool
  /// (per-chunk workspaces, caller-indexed order) and hands each solved
  /// point to `sink(index, ws)` for output extraction.
  void for_each_point(const std::vector<double>& freqs, int threads,
                      const std::function<void(size_t, const Workspace&)>&
                          sink) const;

  /// Repacks an MNA solution into NodeId-indexed node voltages.
  std::vector<std::complex<double>> node_voltages(const Workspace& ws) const;

  const circuit::Netlist& netlist_;
  std::map<std::string, device::SmallSignal> devices_;
  int size_ = 0;               ///< MNA system size
  linalg::MatrixD g_;          ///< frequency-independent (conductance) stamps
  linalg::MatrixD c_;          ///< capacitance stamps, scaled by w per point
  std::vector<std::complex<double>> rhs_;  ///< cached source excitation
};

}  // namespace ota::spice
