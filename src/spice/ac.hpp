// Small-signal AC analysis.
//
// Linearizes every MOSFET at a DC operating point into {gm, gds, Cgs, Cds}
// (exactly the four device parameters the paper's transformer predicts) and
// solves the complex MNA system at each requested frequency.  Voltage and
// current sources contribute their `ac` values as excitations.
#pragma once

#include <complex>
#include <vector>

#include "circuit/netlist.hpp"
#include "device/technology.hpp"
#include "spice/dc.hpp"

namespace ota::spice {

/// Reusable AC analysis for one netlist + operating point.  Construction
/// extracts the small-signal model once; each solve() builds and factors the
/// complex MNA matrix at one frequency.
class AcAnalysis {
 public:
  AcAnalysis(const circuit::Netlist& netlist, const device::Technology& tech,
             const DcSolution& dc);

  /// Complex node voltages at frequency `f_hz`, indexed by NodeId.
  std::vector<std::complex<double>> solve(double f_hz) const;

  /// Transfer value at the named node (the excitation amplitudes are encoded
  /// in the sources' ac values, e.g. a +/-0.5 differential pair of sources).
  std::complex<double> transfer(double f_hz, const std::string& node) const;

  /// Small-signal device parameters used by this analysis.
  const std::map<std::string, device::SmallSignal>& devices() const {
    return devices_;
  }

 private:
  const circuit::Netlist& netlist_;
  std::map<std::string, device::SmallSignal> devices_;
};

}  // namespace ota::spice
