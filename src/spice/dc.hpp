// Newton-Raphson DC operating-point solver over modified nodal analysis.
//
// This is the core of `minispice`, the in-repo stand-in for the paper's
// Spectre simulations (see DESIGN.md).  The circuits are small (tens of
// unknowns) so a dense Jacobian with LU solves is the right tool.  Robustness
// comes from update damping plus gmin stepping, which is sufficient for the
// stacked-transistor OTA topologies in this repository.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "device/mos_model.hpp"
#include "device/technology.hpp"

namespace ota::spice {

struct DcOptions {
  int max_iterations = 200;
  double v_tol = 1e-9;         ///< max node-voltage update for convergence [V]
  double residual_tol = 1e-9;  ///< max KCL residual for convergence [A]
  double damping = 0.3;        ///< max node-voltage step per iteration [V]
  double v_init = 0.6;         ///< initial guess for floating node voltages [V]
  /// gmin homotopy schedule; each entry adds a conductance from every node to
  /// ground, warm-starting the next (smaller) step.  Last entry should be 0.
  std::vector<double> gmin_steps{1e-3, 1e-5, 1e-7, 1e-9, 1e-12, 0.0};
};

/// Converged DC solution.
struct DcSolution {
  std::vector<double> v;  ///< node voltages indexed by NodeId (v[0] == 0)
  std::map<std::string, double> vsource_current;  ///< branch current per V source
  int iterations = 0;     ///< total Newton iterations across gmin steps
  /// Ladder rungs that failed (singular Jacobian, injected fault, or an
  /// exhausted iteration budget at a nonzero gmin) and were retried at the
  /// next rung.  0 in a healthy solve; nonzero flags a marginal bias point.
  int gmin_retries = 0;
  /// Singular-Jacobian LU factorizations absorbed by the ladder (a subset of
  /// the work behind gmin_retries, kept separate for diagnosis).
  int lu_failures = 0;

  double voltage(const circuit::Netlist& nl, const std::string& node) const {
    return v[static_cast<size_t>(nl.find_node(node))];
  }
};

/// Solves the DC operating point; throws ConvergenceError on failure.
DcSolution solve_dc(const circuit::Netlist& netlist,
                    const device::Technology& tech, const DcOptions& opt = {});

/// Small-signal parameters of every MOSFET at a DC solution, keyed by device
/// name.  This is what the data-generation stage records per design.
std::map<std::string, device::SmallSignal> small_signal_map(
    const circuit::Netlist& netlist, const device::Technology& tech,
    const DcSolution& dc);

}  // namespace ota::spice
