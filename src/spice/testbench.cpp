#include "spice/testbench.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ota::spice {

namespace {

// Region and saturation checks against the topology's match-group
// requirements.  The tail devices have no region requirement but must still
// be saturated to act as current sources.
void check_regions(const circuit::Topology& topo, EvalResult& r) {
  r.regions_ok = true;
  r.saturation_ok = true;
  for (const auto& group : topo.match_groups) {
    for (const auto& dev : group.devices) {
      const auto& ss = r.devices.at(dev);
      if (ss.conduction != device::Conduction::Saturation) {
        r.saturation_ok = false;
      }
      if (ss.ic < group.min_ic || ss.ic > group.max_ic) {
        r.regions_ok = false;
      }
    }
  }
}

}  // namespace

EvalResult evaluate(circuit::Topology& topo, const device::Technology& tech,
                    const std::vector<double>& widths,
                    const MeasureOptions& opt) {
  topo.apply_widths(widths);
  return evaluate_current(topo, tech, opt);
}

EvalResult evaluate_current(circuit::Topology& topo,
                            const device::Technology& tech,
                            const MeasureOptions& opt) {
  EvalResult r;
  r.dc = solve_dc(topo.netlist, tech);
  AcAnalysis ac(topo.netlist, tech, r.dc);
  r.metrics = measure_ac(ac, topo.output_node, opt);
  r.devices = ac.devices();
  check_regions(topo, r);
  return r;
}

std::optional<std::pair<double, double>> input_common_mode_range(
    circuit::Topology& topo, const device::Technology& tech, double v_step) {
  // Save the common-mode values to restore afterwards.
  std::vector<double> saved;
  for (const auto& src : topo.input_sources) {
    saved.push_back(topo.netlist.vsource(src).dc);
  }

  double lo = tech.vdd, hi = 0.0;
  bool any = false;
  for (double vcm = 0.0; vcm <= tech.vdd + 1e-12; vcm += v_step) {
    for (const auto& src : topo.input_sources) {
      topo.netlist.vsource(src).dc = vcm;
    }
    bool ok = false;
    try {
      EvalResult r = evaluate_current(topo, tech);
      ok = r.saturation_ok;
    } catch (const ConvergenceError&) {
      ok = false;
    }
    if (ok) {
      lo = std::min(lo, vcm);
      hi = std::max(hi, vcm);
      any = true;
    }
  }

  for (size_t i = 0; i < topo.input_sources.size(); ++i) {
    topo.netlist.vsource(topo.input_sources[i]).dc = saved[i];
  }
  if (!any) return std::nullopt;
  return std::make_pair(lo, hi);
}

}  // namespace ota::spice
