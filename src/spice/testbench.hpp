// OTA testbench: one-call evaluation of a sized topology.
//
// Wraps DC solve + AC measurement + region classification — the exact loop
// the paper's data-generation stage (OCEAN scripts) and Stage IV verification
// run per candidate sizing.  The AC measurement rides the batched sweep
// engine (one coarse transfer_sweep per evaluation, see spice/measure.hpp);
// MeasureOptions::threads controls how far that sweep fans out across the
// ota::par pool.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/topologies.hpp"
#include "spice/measure.hpp"

namespace ota::spice {

/// Everything minispice knows about one sized design.
struct EvalResult {
  AcMetrics metrics;
  std::map<std::string, device::SmallSignal> devices;  ///< per-MOSFET params
  DcSolution dc;
  bool regions_ok = false;  ///< all match-group region requirements satisfied
  bool saturation_ok = false;  ///< all required devices in saturation
};

/// Evaluates a topology with the given widths (one per match group).
/// Throws ConvergenceError when the DC solve fails.
EvalResult evaluate(circuit::Topology& topology, const device::Technology& tech,
                    const std::vector<double>& widths,
                    const MeasureOptions& opt = {});

/// Evaluates the topology at its current widths.
EvalResult evaluate_current(circuit::Topology& topology,
                            const device::Technology& tech,
                            const MeasureOptions& opt = {});

/// Input common-mode range: sweeps the input common mode and returns the
/// [lo, hi] window over which every required device stays in saturation
/// (the paper's ICMR sweep of Section IV-A), or nullopt when empty.
std::optional<std::pair<double, double>> input_common_mode_range(
    circuit::Topology& topology, const device::Technology& tech,
    double v_step = 0.05);

}  // namespace ota::spice
