#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace ota::spice {

using circuit::kGround;
using circuit::Netlist;
using linalg::MatrixD;

namespace {

// MNA unknown layout: node voltages for ids 1..N-1 at [id-1], then one branch
// current per voltage source at [N-1 + k].
struct Layout {
  int n_nodes;     // including ground
  int n_vsources;
  int size() const { return n_nodes - 1 + n_vsources; }
  int v_index(circuit::NodeId id) const { return id - 1; }  // id != 0
  int i_index(int vsrc) const { return n_nodes - 1 + vsrc; }
};

// Accumulates the residual f(x) and Jacobian J(x) of the MNA system.
// Node equations are KCL with "current leaving the node" positive.
class Assembler {
 public:
  Assembler(const Layout& lay) : lay_(lay), jac_(lay.size(), lay.size()), f_(lay.size(), 0.0) {}

  void add_residual(circuit::NodeId node, double current_leaving) {
    if (node != kGround) f_[lay_.v_index(node)] += current_leaving;
  }
  void add_jacobian(circuit::NodeId node, circuit::NodeId wrt, double dg) {
    if (node != kGround && wrt != kGround) {
      jac_(lay_.v_index(node), lay_.v_index(wrt)) += dg;
    }
  }
  void add_jacobian_current(circuit::NodeId node, int vsrc, double d) {
    if (node != kGround) jac_(lay_.v_index(node), lay_.i_index(vsrc)) += d;
  }
  double& row(int idx) { return f_[idx]; }
  MatrixD& jacobian() { return jac_; }
  std::vector<double>& residual() { return f_; }

 private:
  const Layout& lay_;
  MatrixD jac_;
  std::vector<double> f_;
};

double node_v(const std::vector<double>& x, const Layout& lay, circuit::NodeId id) {
  return id == kGround ? 0.0 : x[static_cast<size_t>(lay.v_index(id))];
}

// Builds f(x) and J(x) for the current iterate.
void assemble(const Netlist& nl, const device::Technology& tech,
              const Layout& lay, const std::vector<double>& x, double gmin,
              Assembler& as) {
  // gmin from every non-ground node to ground stabilizes early iterations.
  if (gmin > 0.0) {
    for (int id = 1; id < lay.n_nodes; ++id) {
      as.add_residual(id, gmin * node_v(x, lay, id));
      as.add_jacobian(id, id, gmin);
    }
  }

  for (const auto& r : nl.resistors()) {
    const double g = 1.0 / r.resistance;
    const double i = g * (node_v(x, lay, r.a) - node_v(x, lay, r.b));
    as.add_residual(r.a, i);
    as.add_residual(r.b, -i);
    as.add_jacobian(r.a, r.a, g);
    as.add_jacobian(r.a, r.b, -g);
    as.add_jacobian(r.b, r.a, -g);
    as.add_jacobian(r.b, r.b, g);
  }

  // Capacitors are open at DC: no stamp.

  for (const auto& s : nl.isources()) {
    // Current s.dc flows pos -> neg through the source, leaving node pos.
    as.add_residual(s.pos, s.dc);
    as.add_residual(s.neg, -s.dc);
  }

  const device::MosModel nmos(tech.nmos);
  const device::MosModel pmos(tech.pmos);
  for (const auto& m : nl.mosfets()) {
    const device::MosModel& model = m.type == device::MosType::Nmos ? nmos : pmos;
    const double vg = node_v(x, lay, m.gate);
    const double vd = node_v(x, lay, m.drain);
    const double vs = node_v(x, lay, m.source);
    const device::DcEval e = model.dc(vg, vd, vs, m.w, m.l);
    // e.id flows drain -> source inside the device: leaves the drain node,
    // enters the source node.
    as.add_residual(m.drain, e.id);
    as.add_residual(m.source, -e.id);
    as.add_jacobian(m.drain, m.gate, e.di_dvg);
    as.add_jacobian(m.drain, m.drain, e.di_dvd);
    as.add_jacobian(m.drain, m.source, e.di_dvs);
    as.add_jacobian(m.source, m.gate, -e.di_dvg);
    as.add_jacobian(m.source, m.drain, -e.di_dvd);
    as.add_jacobian(m.source, m.source, -e.di_dvs);
  }

  const auto& vsrcs = nl.vsources();
  for (int k = 0; k < static_cast<int>(vsrcs.size()); ++k) {
    const auto& s = vsrcs[static_cast<size_t>(k)];
    const double i_branch = x[static_cast<size_t>(lay.i_index(k))];
    // Branch current leaves the positive node into the source.
    as.add_residual(s.pos, i_branch);
    as.add_residual(s.neg, -i_branch);
    as.add_jacobian_current(s.pos, k, 1.0);
    as.add_jacobian_current(s.neg, k, -1.0);
    // Constraint row: v(pos) - v(neg) - V = 0.
    const int row = lay.i_index(k);
    as.row(row) += node_v(x, lay, s.pos) - node_v(x, lay, s.neg) - s.dc;
    if (s.pos != kGround) as.jacobian()(row, lay.v_index(s.pos)) += 1.0;
    if (s.neg != kGround) as.jacobian()(row, lay.v_index(s.neg)) -= 1.0;
  }
}

}  // namespace

DcSolution solve_dc(const Netlist& nl, const device::Technology& tech,
                    const DcOptions& opt) {
  Layout lay{nl.node_count(), static_cast<int>(nl.vsources().size())};
  if (lay.size() == 0) throw InvalidArgument("solve_dc: empty netlist");

  std::vector<double> x(static_cast<size_t>(lay.size()), 0.0);
  for (int id = 1; id < lay.n_nodes; ++id) {
    x[static_cast<size_t>(lay.v_index(id))] = opt.v_init;
  }
  // Seed voltage-source-driven nodes at their source value (when grounded on
  // the other side) so the first iterations start near the final bias.
  for (const auto& s : nl.vsources()) {
    if (s.neg == kGround && s.pos != kGround) {
      x[static_cast<size_t>(lay.v_index(s.pos))] = s.dc;
    } else if (s.pos == kGround && s.neg != kGround) {
      x[static_cast<size_t>(lay.v_index(s.neg))] = -s.dc;
    }
  }

  STAT_REGION("spice.dc.solve");
  int total_iterations = 0;
  int gmin_retries = 0;
  int lu_failures = 0;
  // Recorded from a destructor so a throwing solve (ladder exhausted,
  // injected fault) still accounts for the Newton work it burned.
  struct RecordCounters {
    const int& iterations;
    const int& retries;
    ~RecordCounters() {
      STAT_COUNTER_ADD("spice.dc.newton_iterations", iterations);
      STAT_COUNTER_ADD("spice.dc.gmin_retries", retries);
    }
  } record{total_iterations, gmin_retries};
  std::vector<double> gmins = opt.gmin_steps;
  if (gmins.empty() || gmins.back() != 0.0) gmins.push_back(0.0);

  for (double gmin : gmins) {
    bool converged = false;
    try {
      // Injectable Newton failure at this gmin step: exercises exactly the
      // recovery below (retry at the next ladder rung) plus, at gmin == 0,
      // the caller-facing ConvergenceError path.
      FAULT_SITE_AS("spice.dc.newton", ConvergenceError);
      for (int it = 0; it < opt.max_iterations; ++it) {
        ++total_iterations;
        Assembler as(lay);
        assemble(nl, tech, lay, x, gmin, as);

        double max_resid = 0.0;
        for (int r = 0; r < lay.n_nodes - 1; ++r) {
          max_resid = std::max(max_resid, std::fabs(as.residual()[static_cast<size_t>(r)]));
        }

        std::vector<double> dx;
        try {
          dx = linalg::LuDecomposition<double>(as.jacobian()).solve(as.residual());
        } catch (const ConvergenceError&) {
          ++lu_failures;  // singular at this gmin; the handler below retries
          throw;
        }

        double max_dv = 0.0;
        for (int r = 0; r < lay.n_nodes - 1; ++r) {
          double step = -dx[static_cast<size_t>(r)];
          step = std::clamp(step, -opt.damping, opt.damping);
          x[static_cast<size_t>(r)] += step;
          max_dv = std::max(max_dv, std::fabs(step));
        }
        for (int r = lay.n_nodes - 1; r < lay.size(); ++r) {
          x[static_cast<size_t>(r)] -= dx[static_cast<size_t>(r)];
        }

        if (max_dv < opt.v_tol && max_resid < opt.residual_tol) {
          converged = true;
          break;
        }
      }
    } catch (const ConvergenceError& e) {
      // A singular Jacobian (or injected Newton fault) at a nonzero gmin is
      // recoverable: the next (smaller) ladder rung retries from the current
      // iterate.  Count it instead of silently breaking, so callers can see
      // how hard the ladder worked; at gmin == 0 there is no rung left.
      if (gmin == 0.0) {
        throw ConvergenceError(
            "solve_dc: gmin ladder exhausted (" + std::string(e.what()) +
            "; " + std::to_string(gmin_retries) + " gmin retries, " +
            std::to_string(lu_failures) + " LU failures)");
      }
      ++gmin_retries;
      continue;
    }
    if (!converged) {
      if (gmin == 0.0) {
        throw ConvergenceError(
            "solve_dc: Newton failed to converge after " +
            std::to_string(total_iterations) + " iterations (" +
            std::to_string(gmin_retries) + " gmin retries, " +
            std::to_string(lu_failures) + " LU failures)");
      }
      // Iteration budget exhausted at a nonzero rung: homotopy continues,
      // but the rung did not do its job — surface it as a retry too.
      ++gmin_retries;
    }
  }

  DcSolution sol;
  sol.v.assign(static_cast<size_t>(lay.n_nodes), 0.0);
  for (int id = 1; id < lay.n_nodes; ++id) {
    sol.v[static_cast<size_t>(id)] = x[static_cast<size_t>(lay.v_index(id))];
  }
  const auto& vsrcs = nl.vsources();
  for (int k = 0; k < static_cast<int>(vsrcs.size()); ++k) {
    sol.vsource_current[vsrcs[static_cast<size_t>(k)].name] =
        x[static_cast<size_t>(lay.i_index(k))];
  }
  sol.iterations = total_iterations;
  sol.gmin_retries = gmin_retries;
  sol.lu_failures = lu_failures;
  return sol;
}

std::map<std::string, device::SmallSignal> small_signal_map(
    const Netlist& nl, const device::Technology& tech, const DcSolution& dc) {
  const device::MosModel nmos(tech.nmos);
  const device::MosModel pmos(tech.pmos);
  std::map<std::string, device::SmallSignal> out;
  for (const auto& m : nl.mosfets()) {
    const device::MosModel& model = m.type == device::MosType::Nmos ? nmos : pmos;
    out[m.name] = model.small_signal(dc.v[static_cast<size_t>(m.gate)],
                                     dc.v[static_cast<size_t>(m.drain)],
                                     dc.v[static_cast<size_t>(m.source)], m.w, m.l);
  }
  return out;
}

}  // namespace ota::spice
