#include "spice/measure.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"

namespace ota::spice {

namespace {

// The coarse log-spaced scan grid: f_low, then successive multiplications by
// 10^(1/points_per_decade) up to f_high (with the historical epsilon slack).
// Built by repeated multiplication so the grid values match the lazy scan
// the pre-batched implementation performed point by point.
std::vector<double> scan_grid(const MeasureOptions& opt) {
  if (!(opt.f_low > 0.0) || !std::isfinite(opt.f_low) ||
      !std::isfinite(opt.f_high) || opt.points_per_decade < 1 ||
      !(opt.rel_tol > 0.0)) {
    throw InvalidArgument(
        "measure: f_low/f_high must be finite, f_low > 0, "
        "points_per_decade >= 1, and rel_tol > 0");
  }
  const double step = std::pow(10.0, 1.0 / opt.points_per_decade);
  std::vector<double> grid;
  for (double f = opt.f_low;; f *= step) {
    grid.push_back(f);
    if (!(f * step <= opt.f_high * (1.0 + 1e-12))) break;
  }
  return grid;
}

// Locates the falling crossing of `target` on a precomputed coarse scan and
// refines it by bisection in log-frequency space (the only per-point solves
// in the measurement path).
std::optional<double> crossing_from_scan(const AcAnalysis& ac,
                                         const std::string& node,
                                         double target,
                                         const std::vector<double>& grid,
                                         const std::vector<double>& mags,
                                         const MeasureOptions& opt) {
  if (mags.empty() || mags.front() <= target) {
    return std::nullopt;  // already below at the start
  }
  for (size_t i = 1; i < grid.size(); ++i) {
    if (mags[i] > target) continue;
    double lo = grid[i - 1], hi = grid[i];
    while (hi / lo - 1.0 > opt.rel_tol) {
      const double mid = std::sqrt(lo * hi);
      if (std::abs(ac.transfer(mid, node)) > target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return std::sqrt(lo * hi);
  }
  return std::nullopt;
}

std::vector<double> magnitudes(const std::vector<std::complex<double>>& h) {
  std::vector<double> m(h.size());
  for (size_t i = 0; i < h.size(); ++i) m[i] = std::abs(h[i]);
  return m;
}

}  // namespace

std::optional<double> find_falling_crossing(const AcAnalysis& ac,
                                            const std::string& node,
                                            double target,
                                            const MeasureOptions& opt) {
  const std::vector<double> grid = scan_grid(opt);
  const std::vector<double> mags =
      magnitudes(ac.transfer_sweep(grid, node, opt.threads));
  return crossing_from_scan(ac, node, target, grid, mags, opt);
}

AcMetrics measure_ac(const AcAnalysis& ac, const std::string& node,
                     const MeasureOptions& opt) {
  AcMetrics m;
  // One batched coarse sweep serves the DC-gain readout and both crossing
  // searches (the pre-batched path re-scanned the grid once per crossing).
  const std::vector<double> grid = scan_grid(opt);
  const std::vector<std::complex<double>> h =
      ac.transfer_sweep(grid, node, opt.threads);
  const std::vector<double> mags = magnitudes(h);

  const std::complex<double> h0 = h.front();
  m.gain_linear = mags.front();
  m.gain_db = 20.0 * std::log10(std::max(m.gain_linear, 1e-30));

  if (auto bw = crossing_from_scan(ac, node, m.gain_linear / std::numbers::sqrt2,
                                   grid, mags, opt)) {
    m.bw_3db_hz = *bw;
  }
  if (m.gain_linear > 1.0) {
    if (auto ugf = crossing_from_scan(ac, node, 1.0, grid, mags, opt)) {
      m.ugf_hz = *ugf;
      const std::complex<double> h_ugf = ac.transfer(*ugf, node);
      // Phase margin relative to the low-frequency phase (the loop inversion
      // is external to the measured open-loop transfer).
      double phase = std::arg(h_ugf / h0) * 180.0 / std::numbers::pi;
      m.phase_margin_deg = 180.0 + phase;
    }
  }
  return m;
}

}  // namespace ota::spice
