#include "spice/measure.hpp"

#include <cmath>
#include <numbers>

namespace ota::spice {

std::optional<double> find_falling_crossing(const AcAnalysis& ac,
                                            const std::string& node,
                                            double target,
                                            const MeasureOptions& opt) {
  // Coarse log sweep to bracket the crossing.
  const double step = std::pow(10.0, 1.0 / opt.points_per_decade);
  double f_prev = opt.f_low;
  double m_prev = std::abs(ac.transfer(f_prev, node));
  if (m_prev <= target) return std::nullopt;  // already below at the start

  for (double f = f_prev * step; f <= opt.f_high * (1.0 + 1e-12); f *= step) {
    const double m = std::abs(ac.transfer(f, node));
    if (m <= target) {
      // Bisect in log-frequency space.
      double lo = f_prev, hi = f;
      while (hi / lo - 1.0 > opt.rel_tol) {
        const double mid = std::sqrt(lo * hi);
        if (std::abs(ac.transfer(mid, node)) > target) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return std::sqrt(lo * hi);
    }
    f_prev = f;
    m_prev = m;
  }
  return std::nullopt;
}

AcMetrics measure_ac(const AcAnalysis& ac, const std::string& node,
                     const MeasureOptions& opt) {
  AcMetrics m;
  const std::complex<double> h0 = ac.transfer(opt.f_low, node);
  m.gain_linear = std::abs(h0);
  m.gain_db = 20.0 * std::log10(std::max(m.gain_linear, 1e-30));

  if (auto bw = find_falling_crossing(ac, node, m.gain_linear / std::numbers::sqrt2, opt)) {
    m.bw_3db_hz = *bw;
  }
  if (m.gain_linear > 1.0) {
    if (auto ugf = find_falling_crossing(ac, node, 1.0, opt)) {
      m.ugf_hz = *ugf;
      const std::complex<double> h_ugf = ac.transfer(*ugf, node);
      // Phase margin relative to the low-frequency phase (the loop inversion
      // is external to the measured open-loop transfer).
      double phase = std::arg(h_ugf / h0) * 180.0 / std::numbers::pi;
      m.phase_margin_deg = 180.0 + phase;
    }
  }
  return m;
}

}  // namespace ota::spice
