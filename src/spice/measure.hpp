// Frequency-response measurements: the three performance metrics of the paper
// (DC gain, 3 dB bandwidth, unity-gain frequency) plus phase margin.
#pragma once

#include <optional>
#include <string>

#include "spice/ac.hpp"

namespace ota::spice {

/// The specification triple of the paper (Section IV-A): gain, 3 dB
/// bandwidth, and unity-gain frequency.
struct AcMetrics {
  double gain_db = 0.0;        ///< low-frequency gain [dB]
  double gain_linear = 0.0;    ///< low-frequency gain magnitude [V/V]
  double bw_3db_hz = 0.0;      ///< -3 dB bandwidth [Hz]
  double ugf_hz = 0.0;         ///< unity-gain frequency [Hz]; 0 if gain < 1
  double phase_margin_deg = 0.0;  ///< 180 + phase at the UGF [deg]; 0 if no UGF
};

struct MeasureOptions {
  double f_low = 1.0;       ///< frequency standing in for DC [Hz]
  double f_high = 1e12;     ///< upper limit of crossover searches [Hz]
  int points_per_decade = 8;  ///< coarse-scan density before bisection
  double rel_tol = 1e-6;    ///< bisection relative frequency tolerance
};

/// Measures gain / BW / UGF / PM at the named output node.
AcMetrics measure_ac(const AcAnalysis& ac, const std::string& output_node,
                     const MeasureOptions& opt = {});

/// Finds the frequency at which |H| crosses `target` (falling), between
/// f_low and f_high, or nullopt when no crossing exists.
std::optional<double> find_falling_crossing(const AcAnalysis& ac,
                                            const std::string& output_node,
                                            double target,
                                            const MeasureOptions& opt = {});

}  // namespace ota::spice
