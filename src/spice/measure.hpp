// Frequency-response measurements: the three performance metrics of the paper
// (DC gain, 3 dB bandwidth, unity-gain frequency) plus phase margin.
//
// All measurements ride the batched AC path: one coarse log-spaced
// transfer_sweep() covers the whole [f_low, f_high] scan (shared by the gain
// readout and both crossing searches), and only the final bisection
// refinements solve individual points.  The coarse sweep fans across the
// ota::par pool when MeasureOptions::threads allows; results are
// bit-identical for every thread count.
#pragma once

#include <optional>
#include <string>

#include "spice/ac.hpp"

namespace ota::spice {

/// The specification triple of the paper (Section IV-A): gain, 3 dB
/// bandwidth, and unity-gain frequency.
struct AcMetrics {
  double gain_db = 0.0;        ///< low-frequency gain [dB]
  double gain_linear = 0.0;    ///< low-frequency gain magnitude [V/V]
  double bw_3db_hz = 0.0;      ///< -3 dB bandwidth [Hz]
  double ugf_hz = 0.0;         ///< unity-gain frequency [Hz]; 0 if gain < 1
  double phase_margin_deg = 0.0;  ///< 180 + phase at the UGF [deg]; 0 if no UGF
};

struct MeasureOptions {
  double f_low = 1.0;       ///< frequency standing in for DC [Hz]
  double f_high = 1e12;     ///< upper limit of crossover searches [Hz]
  int points_per_decade = 8;  ///< coarse-scan density before bisection
  double rel_tol = 1e-6;    ///< bisection relative frequency tolerance
  /// Worker threads for the coarse sweep (see AcAnalysis::sweep): explicit
  /// count, or 0 for auto (OTA_THREADS env, else hardware concurrency).
  /// Defaults to 1 because measurements commonly run inside an outer
  /// parallel region (dataset generation, campaign evaluation).  A value
  /// > 1 spawns one pool per measurement for the ~100-point coarse sweep —
  /// worthwhile for interactive top-level calls, not inside tight loops
  /// (parallelize across candidates there instead).
  int threads = 1;
};

/// Measures gain / BW / UGF / PM at the named output node over one coarse
/// sweep call plus bisection refinements.
AcMetrics measure_ac(const AcAnalysis& ac, const std::string& output_node,
                     const MeasureOptions& opt = {});

/// Finds the frequency at which |H| crosses `target` (falling), between
/// f_low and f_high, or nullopt when no crossing exists.
std::optional<double> find_falling_crossing(const AcAnalysis& ac,
                                            const std::string& output_node,
                                            double target,
                                            const MeasureOptions& opt = {});

}  // namespace ota::spice
