#include "serve/campaign_server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"
#include "par/thread_pool.hpp"

namespace ota::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::chrono::steady_clock::time_point deadline_after(
    std::chrono::steady_clock::time_point t0, double seconds) {
  return t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
}

/// The job's effective absolute deadline: the earlier of the caller's
/// CopilotOptions::deadline and submit-relative deadline_seconds.
std::chrono::steady_clock::time_point effective_deadline(
    const CampaignRequest& request,
    std::chrono::steady_clock::time_point submitted_at) {
  auto deadline = request.options.deadline;
  if (request.deadline_seconds > 0.0) {
    deadline =
        std::min(deadline, deadline_after(submitted_at, request.deadline_seconds));
  }
  return deadline;
}

/// The layer a fault site name belongs to: the segment before the first dot
/// ("spice.dc.newton" -> "spice").
std::string layer_of(const std::string& site) {
  return site.substr(0, site.find('.'));
}

}  // namespace

// ---------------------------------------------------------------------------
// ScheduledPredictionClient

std::unique_ptr<core::PredictionClient::Handle> ScheduledPredictionClient::submit(
    const std::string& encoder_text, int max_tokens,
    const core::CancelSignal& cancel) {
  class TicketHandle : public Handle {
   public:
    TicketHandle(const core::SizingModel& model,
                 std::shared_ptr<ml::DecodeScheduler::Ticket> ticket)
        : model_(model), ticket_(std::move(ticket)) {}

    std::string wait() override {
      // Ticket::wait rethrows the request's error (ota::Cancelled when the
      // campaign was cancelled, its deadline passed, or the scheduler shut
      // down drainless); the campaign worker surfaces it as Cancelled.
      return model_.tokenizer().decode(ticket_->wait());
    }

   private:
    const core::SizingModel& model_;
    std::shared_ptr<ml::DecodeScheduler::Ticket> ticket_;
  };

  // The campaign's cancel flag and deadline ride into the scheduler, so a
  // cancelled campaign's live decode retires from the dynamic batch at the
  // next round instead of decoding to completion.
  ml::DecodeScheduler::SubmitOptions sub;
  sub.cancel = cancel.flag;
  sub.deadline = cancel.deadline;
  // Same tokenizer both ways as the serial path's predict_batch, so the
  // round-tripped text is bit-identical to the reference client's.
  return std::make_unique<TicketHandle>(
      model_, scheduler_.submit(model_.tokenizer().encode(encoder_text),
                                static_cast<int64_t>(max_tokens),
                                std::move(sub)));
}

// ---------------------------------------------------------------------------
// CampaignServer::Job

const CampaignResult& CampaignServer::Job::wait() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return finished; });
  return result;
}

bool CampaignServer::Job::done() const {
  std::lock_guard<std::mutex> lk(mu);
  return finished;
}

void CampaignServer::Job::cancel() {
  // Set the cooperative flag first: an in-flight campaign observes it at
  // its next stage boundary and its live decode ticket at the next
  // scheduler round.
  cancel_flag->store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(mu);
  if (finished || started) return;  // resolved, or a worker owns it now
  // Still queued: resolve right here so waiters wake immediately.  The
  // worker that eventually pops the job sees `finished` and only accounts
  // it — the resolves-exactly-once contract is the job mutex hand-off.
  result.status = CampaignStatus::Cancelled;
  result.error = "campaign cancelled by caller";
  result.queue_seconds = seconds_since(submitted_at);
  result.total_seconds = result.queue_seconds;
  finished = true;
  cv.notify_all();
}

void CampaignServer::publish(const std::shared_ptr<Job>& job) {
  // job->result was written by the resolving thread before this call; the
  // mutex hand-off makes it visible to every waiter that observes finished.
  {
    std::lock_guard<std::mutex> lk(job->mu);
    job->finished = true;
  }
  job->cv.notify_all();
}

// ---------------------------------------------------------------------------
// CampaignServer

CampaignServer::CampaignServer() : CampaignServer(Options()) {}

CampaignServer::CampaignServer(Options opt) : opt_(opt) {
  // Door policy, same as the scheduler's: options that could only ever hang
  // or corrupt accounting are refused before any thread is spawned.
  if (opt_.max_decode_batch < 1) {
    throw InvalidArgument(
        "CampaignServer: max_decode_batch must be positive, got " +
        std::to_string(opt_.max_decode_batch) +
        " (requests could never join a decode batch and would hang)");
  }
  if (opt_.max_queue_depth < 0) {
    throw InvalidArgument(
        "CampaignServer: max_queue_depth must be >= 0 (0 = unbounded), got " +
        std::to_string(opt_.max_queue_depth));
  }
  if (opt_.max_retries < 0) {
    throw InvalidArgument(
        "CampaignServer: max_retries must be >= 0 (0 = no retry), got " +
        std::to_string(opt_.max_retries));
  }
  ml::validated_precision(opt_.decode_precision, "CampaignServer");
  const int n = par::resolve_threads(opt_.workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CampaignServer::~CampaignServer() { shutdown(true); }

void CampaignServer::register_topology(
    const std::string& name, circuit::Topology topology,
    const device::Technology& tech,
    std::shared_ptr<const core::SizingModel> model,
    std::shared_ptr<const core::LutSet> luts,
    std::optional<ml::Precision> precision) {
  if (!model || !luts) {
    throw InvalidArgument("CampaignServer::register_topology: null model/luts");
  }
  // Resolve and validate the tier before reserving the name: a forged
  // precision override must not leave a dangling reservation behind.
  const ml::Precision tier = ml::validated_precision(
      precision.value_or(opt_.decode_precision),
      "CampaignServer::register_topology");
  // engine() doubles as the trained-model check (throws InvalidArgument
  // otherwise) and is what the decode scheduler batches on.
  const ml::InferenceEngine& engine = model->engine();

  // Door policy before construction: reserve the name under the lock so a
  // duplicate-name or post-shutdown registration throws without ever paying
  // the scheduler thread spawn+join — and two racing registrations of the
  // same name cannot both construct.
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      throw InvalidArgument(
          "CampaignServer::register_topology: server is shut down");
    }
    if (!topologies_.emplace(name, nullptr).second) {
      throw InvalidArgument("CampaignServer::register_topology: duplicate '" +
                            name + "'");
    }
  }

  auto entry = std::make_unique<TopologyEntry>();
  try {
    entry->topology = std::move(topology);
    entry->tech = tech;
    entry->model = std::move(model);
    entry->luts = std::move(luts);
    // The builder references the entry's own copies; the entry is heap-owned
    // and never removed from the map, so the references stay valid for the
    // server's lifetime.
    entry->builder =
        std::make_unique<core::SequenceBuilder>(entry->topology, entry->tech);
    ml::DecodeScheduler::Options sopt;
    sopt.max_batch = opt_.max_decode_batch;
    sopt.threads = opt_.scheduler_threads;
    sopt.precision = tier;
    entry->scheduler = std::make_unique<ml::DecodeScheduler>(engine, sopt);
    entry->client = std::make_unique<ScheduledPredictionClient>(
        *entry->model, *entry->scheduler);
  } catch (...) {
    // Release the reservation: the name was never visible as a valid
    // topology (submit treats the nullptr slot as unknown).
    std::lock_guard<std::mutex> lk(mu_);
    topologies_.erase(name);
    throw;
  }

  std::lock_guard<std::mutex> lk(mu_);
  topologies_.find(name)->second = std::move(entry);
}

std::shared_ptr<CampaignServer::Job> CampaignServer::submit(
    CampaignRequest request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->submitted_at = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) {
      throw InvalidArgument("CampaignServer::submit: server is shut down");
    }
    const auto topo_it = topologies_.find(job->request.topology);
    if (topo_it == topologies_.end() || !topo_it->second) {
      throw InvalidArgument("CampaignServer::submit: unknown topology '" +
                            job->request.topology + "'");
    }
    // Admission control: at capacity either refuse the submission outright
    // or wait for a worker to make room.
    if (opt_.max_queue_depth > 0 &&
        queue_.size() >= static_cast<size_t>(opt_.max_queue_depth)) {
      if (opt_.overflow == OverflowPolicy::Reject) {
        ++rejected_;
        throw ServerOverloaded(
            "CampaignServer::submit: queue full (" +
            std::to_string(queue_.size()) + "/" +
            std::to_string(opt_.max_queue_depth) +
            " jobs) and the overflow policy is Reject");
      }
      const auto has_space = [&] {
        return stop_ ||
               queue_.size() < static_cast<size_t>(opt_.max_queue_depth);
      };
      if (opt_.block_timeout_seconds > 0.0) {
        const auto give_up = deadline_after(std::chrono::steady_clock::now(),
                                            opt_.block_timeout_seconds);
        if (!space_cv_.wait_until(lk, give_up, has_space)) {
          ++timed_out_;
          throw ServerOverloaded(
              "CampaignServer::submit: queue still full after blocking " +
              std::to_string(opt_.block_timeout_seconds) +
              "s for space (Block policy timeout)");
        }
      } else {
        space_cv_.wait(lk, has_space);
      }
      if (stop_) {
        throw InvalidArgument("CampaignServer::submit: server is shut down");
      }
    }
    queue_.push_back(job);
    ++submitted_;
    peak_queue_depth_ =
        std::max<uint64_t>(peak_queue_depth_, queue_.size());
  }
  cv_.notify_one();
  return job;
}

void CampaignServer::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    TopologyEntry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && !drain_) {
        // Drainless shutdown: answer everything unstarted, exactly once.
        while (!queue_.empty()) {
          auto cancelled = queue_.front();
          queue_.pop_front();
          ++cancelled_;
          const double waited = seconds_since(cancelled->submitted_at);
          std::lock_guard<std::mutex> jk(cancelled->mu);
          if (cancelled->finished) continue;  // Job::cancel() got there first
          cancelled->result.status = CampaignStatus::Cancelled;
          cancelled->result.error = "campaign cancelled by shutdown";
          // The job's whole life was spent in queue, so the queue time IS
          // the total time.
          cancelled->result.queue_seconds = waited;
          cancelled->result.total_seconds = waited;
          cancelled->finished = true;
          cancelled->cv.notify_all();
        }
        space_cv_.notify_all();
        return;
      }
      if (queue_.empty()) return;  // stop_ && drain_: queue fully served
      job = queue_.front();
      queue_.pop_front();
      // submit() validated the name, and filled entries are never removed,
      // so the lookup cannot fail; the bare pointer stays valid outside the
      // lock.
      entry = topologies_.find(job->request.topology)->second.get();
      // The pop made room: wake one blocked Block-policy submitter.
      space_cv_.notify_all();
    }

    const double queued = seconds_since(job->submitted_at);
    STAT_SECONDS("serve.campaign.queue_wait", queued);
    // Claim the job.  If Job::cancel() resolved it while queued, only the
    // accounting is left to do.
    bool already_resolved = false;
    int prior_retries = 0;
    {
      std::lock_guard<std::mutex> jk(job->mu);
      if (job->finished) {
        already_resolved = true;
      } else {
        job->started = true;
        prior_retries = job->retries;
      }
    }
    if (already_resolved) {
      std::lock_guard<std::mutex> lk(mu_);
      ++cancelled_;
      continue;
    }

    // Deadline check before running: a job that expired waiting in queue
    // resolves without a single decode or simulation.
    const auto deadline = effective_deadline(job->request, job->submitted_at);
    if (std::chrono::steady_clock::now() >= deadline) {
      CampaignResult res;
      res.status = CampaignStatus::Cancelled;
      res.error = "campaign deadline exceeded after " +
                  std::to_string(queued) + "s in queue";
      res.queue_seconds = queued;
      res.total_seconds = seconds_since(job->submitted_at);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++cancelled_;
        ++expired_;
      }
      job->result = std::move(res);
      publish(job);
      continue;
    }

    CampaignResult res;
    res.queue_seconds = queued;
    // The job's cancel flag and effective deadline ride through the copilot
    // options into the prediction client and decode scheduler.
    core::CopilotOptions run_opt = job->request.options;
    run_opt.cancel = job->cancel_flag;
    run_opt.deadline = deadline;
    try {
      STAT_REGION("serve.campaign.run");
      // Injectable worker-side failure, before the copilot even constructs:
      // the serve layer's own permanent fault.
      FAULT_SITE("serve.worker.campaign");
      // A fresh copilot per campaign: the copilot itself is cheap (the
      // expensive state — model, engine, LUTs, builder — is shared through
      // the entry), and private mutable state is what makes the result
      // independent of which worker runs it.
      core::SizingCopilot copilot(entry->topology, entry->tech, *entry->builder,
                                  *entry->model, *entry->luts);
      res.outcome = copilot.size(job->request.target, run_opt, *entry->client);
      res.status = CampaignStatus::Served;
    } catch (const Cancelled& e) {
      res.status = CampaignStatus::Cancelled;
      res.error = e.what();
    } catch (const ConvergenceError& e) {
      // Transient failure.  Campaigns are hermetic (a fresh copilot starting
      // from nominal widths), so a re-run computes exactly what a first run
      // would — requeue at the back of the FIFO up to the retry budget.  A
      // requeued job is the same job: not re-admitted, not re-counted.
      if (prior_retries < opt_.max_retries) {
        {
          std::lock_guard<std::mutex> jk(job->mu);
          job->retries = prior_retries + 1;
          // Back in the queue, Job::cancel() may resolve it directly again.
          job->started = false;
        }
        {
          std::lock_guard<std::mutex> lk(mu_);
          ++retried_;
          // Deliberately past admission control: a retry is continuation of
          // an admitted job, and dropping it would break exactly-once.
          queue_.push_back(job);
          peak_queue_depth_ =
              std::max<uint64_t>(peak_queue_depth_, queue_.size());
        }
        STAT_COUNTER("serve.campaign.retries");
        cv_.notify_one();
        continue;
      }
      res.status = CampaignStatus::Failed;
      res.error = "ConvergenceError (transient, " +
                  std::to_string(prior_retries) + "/" +
                  std::to_string(opt_.max_retries) +
                  " retries used): " + e.what();
    } catch (const fault::InjectedFault& e) {
      res.status = CampaignStatus::Failed;
      res.error = "InjectedFault (site '" + e.site() + "', layer '" +
                  layer_of(e.site()) + "'): " + e.what();
    } catch (const Error& e) {
      res.status = CampaignStatus::Failed;
      res.error = std::string("ota::Error: ") + e.what();
    } catch (const std::exception& e) {
      res.status = CampaignStatus::Failed;
      res.error = std::string("std::exception: ") + e.what();
    } catch (...) {
      // Even a non-standard exception is recorded, never swallowed silently.
      res.status = CampaignStatus::Failed;
      res.error = "campaign failed with a non-standard exception";
    }
    res.retries = prior_retries;
    res.total_seconds = seconds_since(job->submitted_at);

    {
      std::lock_guard<std::mutex> lk(mu_);
      switch (res.status) {
        case CampaignStatus::Served:
          ++served_;
          if (prior_retries > 0) ++recovered_;
          break;
        case CampaignStatus::Failed: ++failed_; break;
        case CampaignStatus::Cancelled: ++cancelled_; break;
      }
    }
    job->result = std::move(res);
    publish(job);
  }
}

void CampaignServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stop_) {
      stop_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
  // Blocked Block-policy submitters abort with "server is shut down"
  // instead of waiting on space that may never come.
  space_cv_.notify_all();
  std::lock_guard<std::mutex> jk(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

CampaignServer::Stats CampaignServer::stats() const {
  Stats s;
  std::lock_guard<std::mutex> lk(mu_);
  s.submitted = submitted_;
  s.served = served_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.rejected = rejected_;
  s.timed_out = timed_out_;
  s.expired = expired_;
  s.retried = retried_;
  s.recovered = recovered_;
  s.queue_depth = queue_.size();
  s.peak_queue_depth = peak_queue_depth_;
  for (const auto& [name, entry] : topologies_) {
    if (!entry) continue;  // a registration reserving the name right now
    const auto d = entry->scheduler->stats();
    s.decode.submitted += d.submitted;
    s.decode.served += d.served;
    s.decode.failed += d.failed;
    s.decode.cancelled += d.cancelled;
    s.decode.rounds += d.rounds;
    s.decode.session_steps += d.session_steps;
    s.decode.tokens_double += d.tokens_double;
    s.decode.tokens_f32 += d.tokens_f32;
    s.decode.peak_batch = std::max(s.decode.peak_batch, d.peak_batch);
  }
  return s;
}

}  // namespace ota::serve
