#include "serve/campaign_server.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "par/thread_pool.hpp"

namespace ota::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// ScheduledPredictionClient

std::unique_ptr<core::PredictionClient::Handle> ScheduledPredictionClient::submit(
    const std::string& encoder_text, int max_tokens) {
  class TicketHandle : public Handle {
   public:
    TicketHandle(const core::SizingModel& model,
                 std::shared_ptr<ml::DecodeScheduler::Ticket> ticket)
        : model_(model), ticket_(std::move(ticket)) {}

    std::string wait() override {
      // Ticket::wait rethrows the request's error (e.g. Cancelled on a
      // drainless shutdown); the campaign worker surfaces it as Failed.
      return model_.tokenizer().decode(ticket_->wait());
    }

   private:
    const core::SizingModel& model_;
    std::shared_ptr<ml::DecodeScheduler::Ticket> ticket_;
  };

  // Same tokenizer both ways as the serial path's predict_batch, so the
  // round-tripped text is bit-identical to the reference client's.
  return std::make_unique<TicketHandle>(
      model_, scheduler_.submit(model_.tokenizer().encode(encoder_text),
                                static_cast<int64_t>(max_tokens)));
}

// ---------------------------------------------------------------------------
// CampaignServer::Job

const CampaignResult& CampaignServer::Job::wait() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return finished; });
  return result;
}

bool CampaignServer::Job::done() const {
  std::lock_guard<std::mutex> lk(mu);
  return finished;
}

void CampaignServer::publish(const std::shared_ptr<Job>& job) {
  // job->result was written by the resolving thread before this call; the
  // mutex hand-off makes it visible to every waiter that observes finished.
  {
    std::lock_guard<std::mutex> lk(job->mu);
    job->finished = true;
  }
  job->cv.notify_all();
}

// ---------------------------------------------------------------------------
// CampaignServer

CampaignServer::CampaignServer() : CampaignServer(Options()) {}

CampaignServer::CampaignServer(Options opt) : opt_(opt) {
  const int n = par::resolve_threads(opt_.workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CampaignServer::~CampaignServer() { shutdown(true); }

void CampaignServer::register_topology(
    const std::string& name, circuit::Topology topology,
    const device::Technology& tech,
    std::shared_ptr<const core::SizingModel> model,
    std::shared_ptr<const core::LutSet> luts) {
  if (!model || !luts) {
    throw InvalidArgument("CampaignServer::register_topology: null model/luts");
  }
  // engine() doubles as the trained-model check (throws InvalidArgument
  // otherwise) and is what the decode scheduler batches on.
  const ml::InferenceEngine& engine = model->engine();

  auto entry = std::make_unique<TopologyEntry>();
  entry->topology = std::move(topology);
  entry->tech = tech;
  entry->model = std::move(model);
  entry->luts = std::move(luts);
  // The builder references the entry's own copies; the entry is heap-owned
  // and never removed from the map, so the references stay valid for the
  // server's lifetime.
  entry->builder =
      std::make_unique<core::SequenceBuilder>(entry->topology, entry->tech);
  ml::DecodeScheduler::Options sopt;
  sopt.max_batch = opt_.max_decode_batch;
  sopt.threads = opt_.scheduler_threads;
  entry->scheduler = std::make_unique<ml::DecodeScheduler>(engine, sopt);
  entry->client =
      std::make_unique<ScheduledPredictionClient>(*entry->model, *entry->scheduler);

  std::lock_guard<std::mutex> lk(mu_);
  if (stop_) {
    throw InvalidArgument(
        "CampaignServer::register_topology: server is shut down");
  }
  if (!topologies_.emplace(name, std::move(entry)).second) {
    throw InvalidArgument("CampaignServer::register_topology: duplicate '" +
                          name + "'");
  }
}

std::shared_ptr<CampaignServer::Job> CampaignServer::submit(
    CampaignRequest request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->submitted_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      throw InvalidArgument("CampaignServer::submit: server is shut down");
    }
    if (topologies_.find(job->request.topology) == topologies_.end()) {
      throw InvalidArgument("CampaignServer::submit: unknown topology '" +
                            job->request.topology + "'");
    }
    queue_.push_back(job);
    ++submitted_;
  }
  cv_.notify_one();
  return job;
}

void CampaignServer::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    TopologyEntry* entry = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && !drain_) {
        // Drainless shutdown: answer everything unstarted, exactly once.
        while (!queue_.empty()) {
          auto cancelled = queue_.front();
          queue_.pop_front();
          ++cancelled_;
          cancelled->result.status = CampaignStatus::Cancelled;
          cancelled->result.error = "campaign cancelled by shutdown";
          cancelled->result.total_seconds = seconds_since(cancelled->submitted_at);
          publish(cancelled);
        }
        return;
      }
      if (queue_.empty()) return;  // stop_ && drain_: queue fully served
      job = queue_.front();
      queue_.pop_front();
      // submit() validated the name, and entries are never removed, so the
      // lookup cannot fail; the bare pointer stays valid outside the lock.
      entry = topologies_.find(job->request.topology)->second.get();
    }

    CampaignResult res;
    res.queue_seconds = seconds_since(job->submitted_at);
    try {
      // A fresh copilot per campaign: the copilot itself is cheap (the
      // expensive state — model, engine, LUTs, builder — is shared through
      // the entry), and private mutable state is what makes the result
      // independent of which worker runs it.
      core::SizingCopilot copilot(entry->topology, entry->tech, *entry->builder,
                                  *entry->model, *entry->luts);
      res.outcome =
          copilot.size(job->request.target, job->request.options, *entry->client);
      res.status = CampaignStatus::Served;
    } catch (const std::exception& e) {
      res.status = CampaignStatus::Failed;
      res.error = e.what();
    }
    res.total_seconds = seconds_since(job->submitted_at);

    {
      std::lock_guard<std::mutex> lk(mu_);
      if (res.status == CampaignStatus::Served) {
        ++served_;
      } else {
        ++failed_;
      }
    }
    job->result = std::move(res);
    publish(job);
  }
}

void CampaignServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stop_) {
      stop_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> jk(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

CampaignServer::Stats CampaignServer::stats() const {
  Stats s;
  std::lock_guard<std::mutex> lk(mu_);
  s.submitted = submitted_;
  s.served = served_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  for (const auto& [name, entry] : topologies_) {
    const auto d = entry->scheduler->stats();
    s.decode.submitted += d.submitted;
    s.decode.served += d.served;
    s.decode.failed += d.failed;
    s.decode.cancelled += d.cancelled;
    s.decode.rounds += d.rounds;
    s.decode.session_steps += d.session_steps;
    s.decode.peak_batch = std::max(s.decode.peak_batch, d.peak_batch);
  }
  return s;
}

}  // namespace ota::serve
