// Sizing-as-a-service: a long-running campaign server.
//
// The paper's copilot runs one sizing campaign at a time; this subsystem
// turns it into a system that serves sustained concurrent load.  A
// CampaignServer owns, per registered topology, one trained SizingModel
// (with its compiled ml::InferenceEngine) and one continuous-batching
// ml::DecodeScheduler over that engine.  Clients submit() campaign requests
// from any thread and block on a Job handle; a fixed set of worker threads
// drains the FIFO job queue, running each campaign's Stage I-IV refinement
// loop on a fresh copilot.  The Stage-II predictions of every live campaign
// flow through the topology's shared scheduler, where they coalesce into
// dynamic decode batches on the one engine — the LLM-serving architecture,
// with SPICE verification taking the place of the client's "think time".
//
// Determinism contract: a campaign's SizingOutcome (everything except the
// wall-clock `seconds`) is bit-identical to running the serial
// SizingCopilot::size on the same request — for any worker count, arrival
// order, or decode batch composition.  Each campaign runs on its own copilot
// copy and its decodes run in private scheduler sessions, so concurrency
// changes only WHEN work happens, never WHAT is computed.
//
// Queue contract: every submitted job resolves exactly once.  shutdown(true)
// serves everything outstanding first; shutdown(false) answers unstarted
// jobs with CampaignStatus::Cancelled.  Nothing is lost, nothing runs twice.
// A campaign that throws a transient ConvergenceError requeues (same job, no
// new submission) up to Options::max_retries times before counting as
// Failed, so exactly-once accounting is unchanged by the retry policy.
//
// Overload contract: the job queue is bounded by Options::max_queue_depth
// (0 = unbounded).  At capacity, submit() either throws ota::ServerOverloaded
// (Reject) or waits for a worker to make room (Block, with an optional
// timeout that also throws ServerOverloaded) — a burst of submissions can
// never grow memory or tail latency without bound.  Job::cancel() and
// CampaignRequest::deadline_seconds resolve jobs that nobody wants served:
// queued jobs resolve as Cancelled without running, in-flight campaigns stop
// at the next copilot stage boundary, and their live decode tickets retire
// from the dynamic batch mid-round.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/copilot.hpp"
#include "core/sizing_model.hpp"
#include "ml/decode_scheduler.hpp"

namespace ota::serve {

/// Stage-II client backed by a topology's shared DecodeScheduler: submit
/// tokenizes and enqueues; wait blocks on the scheduler ticket and
/// detokenizes.  Many campaigns share one instance concurrently.
class ScheduledPredictionClient : public core::PredictionClient {
 public:
  /// Both references must outlive the client; `scheduler` must run over
  /// `model.engine()`.
  ScheduledPredictionClient(const core::SizingModel& model,
                            ml::DecodeScheduler& scheduler)
      : model_(model), scheduler_(scheduler) {}

  using core::PredictionClient::submit;
  std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                 int max_tokens,
                                 const core::CancelSignal& cancel) override;

 private:
  const core::SizingModel& model_;
  ml::DecodeScheduler& scheduler_;
};

/// One sizing campaign: which registered topology, what target, which knobs.
struct CampaignRequest {
  std::string topology;
  core::Specs target;
  /// Copilot knobs.  `options.cancel` is owned by the server (use
  /// Job::cancel()); `options.deadline` is honored and combined (earliest
  /// wins) with `deadline_seconds` below.
  core::CopilotOptions options{};
  /// Per-request deadline, in seconds after submit().  A job whose deadline
  /// passes while still queued resolves as Cancelled without running; one
  /// that expires in flight stops through the cancel path (copilot stage
  /// boundaries + mid-round decode retirement).  <= 0 = no deadline.
  double deadline_seconds = 0.0;
};

enum class CampaignStatus {
  Served,     ///< the copilot ran; `outcome` is valid (inspect its .success)
  Failed,     ///< the campaign threw; `error` carries the message
  Cancelled,  ///< cancelled by Job::cancel(), shutdown(false), or a deadline
};

/// What submit() does when the job queue is at Options::max_queue_depth.
enum class OverflowPolicy {
  Reject,  ///< throw ota::ServerOverloaded immediately
  Block,   ///< wait for space (bounded by Options::block_timeout_seconds)
};

struct CampaignResult {
  CampaignStatus status = CampaignStatus::Failed;
  /// Failed: the original exception's what(), prefixed with its type and —
  /// for injected faults — the fault site, so the failing layer is
  /// diagnosable from the result alone.
  std::string error;
  core::SizingOutcome outcome;
  /// Times the campaign was requeued by the transient-retry policy before
  /// resolving (0 = first run resolved it).
  int retries = 0;
  double queue_seconds = 0.0;  ///< submit -> worker pickup
  double total_seconds = 0.0;  ///< submit -> resolution (p50/p99 latency basis)
};

class CampaignServer {
 public:
  struct Options {
    /// Campaign worker threads draining the job queue.  0 = auto
    /// (OTA_THREADS env, else hardware concurrency).  Workers are dedicated
    /// threads, not pool lanes: a campaign blocks on decode tickets and
    /// SPICE runs, and a blocked pool lane would stall unrelated work.
    int workers = 0;
    /// Per-topology cap on concurrently-decoding sessions.
    int max_decode_batch = 64;
    /// Worker count for each scheduler's intra-round fan-out: 0 = the
    /// persistent process-wide pool, > 0 = a dedicated pool per topology.
    int scheduler_threads = 0;
    /// Admission control: maximum campaigns waiting in the queue (jobs a
    /// worker has picked up no longer count).  0 = unbounded, the
    /// pre-admission-control behaviour.  Negative throws InvalidArgument.
    int max_queue_depth = 0;
    /// What submit() does when the queue is at max_queue_depth.
    OverflowPolicy overflow = OverflowPolicy::Reject;
    /// Block policy only: longest submit() waits for queue space before
    /// throwing ota::ServerOverloaded.  <= 0 = wait indefinitely.
    double block_timeout_seconds = 0.0;
    /// Default numeric tier every topology's decode scheduler runs at
    /// (ml::Precision::kDouble = the bit-identity reference, kFloat32 = the
    /// agreement-gated SIMD serving tier).  register_topology can override
    /// it per topology.  Validated at construction.
    ml::Precision decode_precision = ml::Precision::kDouble;
    /// Bounded retry for transient failures: a campaign that throws
    /// ConvergenceError re-enters the back of the job queue (deterministic
    /// requeue: FIFO order, the same campaign state — campaigns are
    /// hermetic, so a re-run computes exactly what a first run would) up to
    /// this many times before resolving as Failed.  Permanent failures
    /// (anything else) never retry.  0 (default) = fail on first throw;
    /// negative throws InvalidArgument.
    int max_retries = 0;
  };

  CampaignServer();
  /// Throws InvalidArgument for max_decode_batch < 1 (requests could never
  /// join a decode batch and would hang) or max_queue_depth < 0 — before
  /// any worker thread is spawned.
  explicit CampaignServer(Options opt);
  /// shutdown(true): outstanding campaigns finish before teardown.
  ~CampaignServer();
  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Registers `model` (trained) under `name` and stands up its decode
  /// scheduler.  The server keeps its own Topology/Technology copies, so
  /// the caller's may go out of scope; `model` and `luts` are shared.
  /// Throws InvalidArgument for an untrained model, a duplicate name, an
  /// invalid precision override, or a shut-down server.  Safe to call while
  /// campaigns are in flight (new submissions see the topology immediately).
  /// `precision` overrides Options::decode_precision for this topology's
  /// scheduler (nullopt = the server-wide default), so a fleet can serve
  /// float32 traffic while keeping one topology on the double reference
  /// tier.
  void register_topology(const std::string& name, circuit::Topology topology,
                         const device::Technology& tech,
                         std::shared_ptr<const core::SizingModel> model,
                         std::shared_ptr<const core::LutSet> luts,
                         std::optional<ml::Precision> precision = std::nullopt);

  /// One submitted campaign.  Resolves exactly once.
  class Job {
   public:
    /// Blocks until the campaign resolves; repeated calls return the same
    /// result.
    const CampaignResult& wait();
    bool done() const;

    /// Requests cancellation from any thread.  A job still in the queue
    /// resolves as Cancelled right here — waiters wake immediately and a
    /// worker never runs it.  A job already running keeps its worker, but
    /// the copilot observes the flag at its next stage boundary and any
    /// in-flight decode retires from the dynamic batch mid-round, so the
    /// job resolves as Cancelled shortly after (or as Served if completion
    /// won the race).  Idempotent; the resolves-exactly-once contract holds
    /// either way.
    void cancel();

   private:
    friend class CampaignServer;
    mutable std::mutex mu;
    std::condition_variable cv;
    bool finished = false;
    bool started = false;  ///< picked up by a worker; cancel() can no
                           ///< longer resolve it directly
    CampaignResult result;
    CampaignRequest request;
    std::chrono::steady_clock::time_point submitted_at;
    /// Times the transient-retry policy has requeued this job (guarded by
    /// mu, like started).
    int retries = 0;
    /// Cooperative cancel flag threaded through CopilotOptions into the
    /// prediction client and decode scheduler.
    std::shared_ptr<std::atomic<bool>> cancel_flag =
        std::make_shared<std::atomic<bool>>(false);
  };

  /// Enqueues one campaign; returns immediately unless the queue is full
  /// under the Block policy.  Throws InvalidArgument for an unregistered
  /// topology or after shutdown(), and ota::ServerOverloaded when the queue
  /// is at max_queue_depth under the Reject policy (or the Block policy's
  /// timeout elapses waiting for space).
  std::shared_ptr<Job> submit(CampaignRequest request);

  /// Stops accepting submissions and joins the workers.  drain=true serves
  /// the whole queue first; drain=false cancels unstarted jobs (in-flight
  /// campaigns still finish — a campaign is never torn down mid-loop).
  /// Idempotent; the first call's drain mode wins.
  void shutdown(bool drain = true);

  struct Stats {
    /// Jobs admitted to the queue.  Refused submissions (rejected /
    /// timed_out) are NOT counted here, so once everything resolves
    /// submitted == served + failed + cancelled.
    uint64_t submitted = 0;
    uint64_t served = 0;
    uint64_t failed = 0;
    /// Jobs resolved as Cancelled: Job::cancel(), drainless shutdown, or a
    /// deadline (in queue or in flight).
    uint64_t cancelled = 0;
    /// Admission control: submissions refused by the Reject policy.
    uint64_t rejected = 0;
    /// Admission control: Block-policy submissions that hit the timeout.
    uint64_t timed_out = 0;
    /// Jobs whose deadline passed before a worker ran them (a subset of
    /// `cancelled`; in-flight expiry counts only in `cancelled`).
    uint64_t expired = 0;
    /// Transient-retry policy: requeues performed (one job retried twice
    /// counts twice).  A retried job is still in flight — it is NOT yet in
    /// served/failed/cancelled, so exactly-once accounting is untouched.
    uint64_t retried = 0;
    /// Jobs that resolved Served after at least one retry — the figure of
    /// merit for the recovery path.
    uint64_t recovered = 0;
    uint64_t queue_depth = 0;       ///< jobs waiting right now
    uint64_t peak_queue_depth = 0;  ///< deepest the queue has ever been
    /// Decode-scheduler counters summed over every registered topology;
    /// decode.mean_batch_occupancy() > 1 proves cross-campaign coalescing.
    ml::DecodeScheduler::Stats decode;
  };
  Stats stats() const;

  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  /// Everything the server owns for one registered topology.  Entries are
  /// never removed, so workers may hold bare pointers across a campaign.
  struct TopologyEntry {
    circuit::Topology topology;
    device::Technology tech;
    std::shared_ptr<const core::SizingModel> model;
    std::shared_ptr<const core::LutSet> luts;
    std::unique_ptr<core::SequenceBuilder> builder;
    std::unique_ptr<ml::DecodeScheduler> scheduler;
    std::unique_ptr<ScheduledPredictionClient> client;
  };

  void worker_loop();
  static void publish(const std::shared_ptr<Job>& job);

  Options opt_;

  mutable std::mutex mu_;  ///< guards queue_, topologies_, stop_/drain_, stats
  std::condition_variable cv_;        ///< wakes workers (new job / shutdown)
  std::condition_variable space_cv_;  ///< wakes Block-policy submitters
  std::deque<std::shared_ptr<Job>> queue_;
  /// A nullptr value is a name reservation: register_topology claims the
  /// name under mu_ before paying the entry construction (scheduler thread
  /// spawn), then fills the slot.  submit() treats a reservation as an
  /// unknown topology; filled entries are never removed or replaced.
  std::map<std::string, std::unique_ptr<TopologyEntry>> topologies_;
  bool stop_ = false;
  bool drain_ = true;
  uint64_t submitted_ = 0, served_ = 0, failed_ = 0, cancelled_ = 0;
  uint64_t rejected_ = 0, timed_out_ = 0, expired_ = 0, peak_queue_depth_ = 0;
  uint64_t retried_ = 0, recovered_ = 0;

  std::mutex join_mu_;  ///< serializes shutdown()'s join
  std::vector<std::thread> workers_;
};

}  // namespace ota::serve
