// Sizing-as-a-service: a long-running campaign server.
//
// The paper's copilot runs one sizing campaign at a time; this subsystem
// turns it into a system that serves sustained concurrent load.  A
// CampaignServer owns, per registered topology, one trained SizingModel
// (with its compiled ml::InferenceEngine) and one continuous-batching
// ml::DecodeScheduler over that engine.  Clients submit() campaign requests
// from any thread and block on a Job handle; a fixed set of worker threads
// drains the FIFO job queue, running each campaign's Stage I-IV refinement
// loop on a fresh copilot.  The Stage-II predictions of every live campaign
// flow through the topology's shared scheduler, where they coalesce into
// dynamic decode batches on the one engine — the LLM-serving architecture,
// with SPICE verification taking the place of the client's "think time".
//
// Determinism contract: a campaign's SizingOutcome (everything except the
// wall-clock `seconds`) is bit-identical to running the serial
// SizingCopilot::size on the same request — for any worker count, arrival
// order, or decode batch composition.  Each campaign runs on its own copilot
// copy and its decodes run in private scheduler sessions, so concurrency
// changes only WHEN work happens, never WHAT is computed.
//
// Queue contract: every submitted job resolves exactly once.  shutdown(true)
// serves everything outstanding first; shutdown(false) answers unstarted
// jobs with CampaignStatus::Cancelled.  Nothing is lost, nothing runs twice.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/copilot.hpp"
#include "core/sizing_model.hpp"
#include "ml/decode_scheduler.hpp"

namespace ota::serve {

/// Stage-II client backed by a topology's shared DecodeScheduler: submit
/// tokenizes and enqueues; wait blocks on the scheduler ticket and
/// detokenizes.  Many campaigns share one instance concurrently.
class ScheduledPredictionClient : public core::PredictionClient {
 public:
  /// Both references must outlive the client; `scheduler` must run over
  /// `model.engine()`.
  ScheduledPredictionClient(const core::SizingModel& model,
                            ml::DecodeScheduler& scheduler)
      : model_(model), scheduler_(scheduler) {}

  std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                 int max_tokens) override;

 private:
  const core::SizingModel& model_;
  ml::DecodeScheduler& scheduler_;
};

/// One sizing campaign: which registered topology, what target, which knobs.
struct CampaignRequest {
  std::string topology;
  core::Specs target;
  core::CopilotOptions options{};
};

enum class CampaignStatus {
  Served,     ///< the copilot ran; `outcome` is valid (inspect its .success)
  Failed,     ///< the campaign threw; `error` carries the message
  Cancelled,  ///< discarded unstarted by shutdown(false)
};

struct CampaignResult {
  CampaignStatus status = CampaignStatus::Failed;
  std::string error;
  core::SizingOutcome outcome;
  double queue_seconds = 0.0;  ///< submit -> worker pickup
  double total_seconds = 0.0;  ///< submit -> resolution (p50/p99 latency basis)
};

class CampaignServer {
 public:
  struct Options {
    /// Campaign worker threads draining the job queue.  0 = auto
    /// (OTA_THREADS env, else hardware concurrency).  Workers are dedicated
    /// threads, not pool lanes: a campaign blocks on decode tickets and
    /// SPICE runs, and a blocked pool lane would stall unrelated work.
    int workers = 0;
    /// Per-topology cap on concurrently-decoding sessions.
    int max_decode_batch = 64;
    /// Worker count for each scheduler's intra-round fan-out: 0 = the
    /// persistent process-wide pool, > 0 = a dedicated pool per topology.
    int scheduler_threads = 0;
  };

  CampaignServer();
  explicit CampaignServer(Options opt);
  /// shutdown(true): outstanding campaigns finish before teardown.
  ~CampaignServer();
  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Registers `model` (trained) under `name` and stands up its decode
  /// scheduler.  The server keeps its own Topology/Technology copies, so
  /// the caller's may go out of scope; `model` and `luts` are shared.
  /// Throws InvalidArgument for an untrained model, a duplicate name, or a
  /// shut-down server.  Safe to call while campaigns are in flight (new
  /// submissions see the topology immediately).
  void register_topology(const std::string& name, circuit::Topology topology,
                         const device::Technology& tech,
                         std::shared_ptr<const core::SizingModel> model,
                         std::shared_ptr<const core::LutSet> luts);

  /// One submitted campaign.  Resolves exactly once.
  class Job {
   public:
    /// Blocks until the campaign resolves; repeated calls return the same
    /// result.
    const CampaignResult& wait();
    bool done() const;

   private:
    friend class CampaignServer;
    mutable std::mutex mu;
    std::condition_variable cv;
    bool finished = false;
    CampaignResult result;
    CampaignRequest request;
    std::chrono::steady_clock::time_point submitted_at;
  };

  /// Enqueues one campaign; returns immediately.  Throws InvalidArgument
  /// for an unregistered topology or after shutdown().
  std::shared_ptr<Job> submit(CampaignRequest request);

  /// Stops accepting submissions and joins the workers.  drain=true serves
  /// the whole queue first; drain=false cancels unstarted jobs (in-flight
  /// campaigns still finish — a campaign is never torn down mid-loop).
  /// Idempotent; the first call's drain mode wins.
  void shutdown(bool drain = true);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t served = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    /// Decode-scheduler counters summed over every registered topology;
    /// decode.mean_batch_occupancy() > 1 proves cross-campaign coalescing.
    ml::DecodeScheduler::Stats decode;
  };
  Stats stats() const;

  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  /// Everything the server owns for one registered topology.  Entries are
  /// never removed, so workers may hold bare pointers across a campaign.
  struct TopologyEntry {
    circuit::Topology topology;
    device::Technology tech;
    std::shared_ptr<const core::SizingModel> model;
    std::shared_ptr<const core::LutSet> luts;
    std::unique_ptr<core::SequenceBuilder> builder;
    std::unique_ptr<ml::DecodeScheduler> scheduler;
    std::unique_ptr<ScheduledPredictionClient> client;
  };

  void worker_loop();
  static void publish(const std::shared_ptr<Job>& job);

  Options opt_;

  mutable std::mutex mu_;  ///< guards queue_, topologies_, stop_/drain_, stats
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::unique_ptr<TopologyEntry>> topologies_;
  bool stop_ = false;
  bool drain_ = true;
  uint64_t submitted_ = 0, served_ = 0, failed_ = 0, cancelled_ = 0;

  std::mutex join_mu_;  ///< serializes shutdown()'s join
  std::vector<std::thread> workers_;
};

}  // namespace ota::serve
