#include "sfg/paths.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ota::sfg {

namespace {

// Johnson's elementary-cycle enumeration.  For each start vertex s (in
// increasing order) it searches the subgraph induced by vertices >= s, using
// the blocked-set/unblock machinery to avoid re-exploring dead ends.
class JohnsonCycles {
 public:
  explicit JohnsonCycles(const DpSfg& g) : g_(g), n_(static_cast<int>(g.vertices().size())) {
    blocked_.assign(static_cast<size_t>(n_), false);
    block_map_.assign(static_cast<size_t>(n_), {});
  }

  std::vector<VertexPath> run() {
    for (start_ = 0; start_ < n_; ++start_) {
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& bm : block_map_) bm.clear();
      stack_.clear();
      circuit(start_);
    }
    return std::move(cycles_);
  }

 private:
  bool circuit(int v) {
    bool found = false;
    stack_.push_back(v);
    blocked_[static_cast<size_t>(v)] = true;
    for (int ei : g_.out_edges(v)) {
      const int w = g_.edges()[static_cast<size_t>(ei)].to;
      if (w < start_) continue;  // only the subgraph of vertices >= start
      if (w == start_) {
        cycles_.push_back(stack_);
        found = true;
      } else if (!blocked_[static_cast<size_t>(w)]) {
        if (circuit(w)) found = true;
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (int ei : g_.out_edges(v)) {
        const int w = g_.edges()[static_cast<size_t>(ei)].to;
        if (w < start_) continue;
        auto& bm = block_map_[static_cast<size_t>(w)];
        if (std::find(bm.begin(), bm.end(), v) == bm.end()) bm.push_back(v);
      }
    }
    stack_.pop_back();
    return found;
  }

  void unblock(int v) {
    blocked_[static_cast<size_t>(v)] = false;
    auto pending = std::move(block_map_[static_cast<size_t>(v)]);
    block_map_[static_cast<size_t>(v)].clear();
    for (int w : pending) {
      if (blocked_[static_cast<size_t>(w)]) unblock(w);
    }
  }

  const DpSfg& g_;
  int n_;
  int start_ = 0;
  std::vector<bool> blocked_;
  std::vector<std::vector<int>> block_map_;
  VertexPath stack_;
  std::vector<VertexPath> cycles_;
};

void dfs_paths(const DpSfg& g, int v, int to, std::vector<bool>& on_path,
               VertexPath& stack, std::vector<VertexPath>& out) {
  stack.push_back(v);
  on_path[static_cast<size_t>(v)] = true;
  if (v == to) {
    out.push_back(stack);
  } else {
    for (int ei : g.out_edges(v)) {
      const int w = g.edges()[static_cast<size_t>(ei)].to;
      if (!on_path[static_cast<size_t>(w)]) dfs_paths(g, w, to, on_path, stack, out);
    }
  }
  on_path[static_cast<size_t>(v)] = false;
  stack.pop_back();
}

}  // namespace

std::vector<VertexPath> enumerate_cycles(const DpSfg& g) {
  return JohnsonCycles(g).run();
}

std::vector<VertexPath> enumerate_paths(const DpSfg& g, int from, int to) {
  std::vector<VertexPath> out;
  std::vector<bool> on_path(g.vertices().size(), false);
  VertexPath stack;
  dfs_paths(g, from, to, on_path, stack, out);
  return out;
}

std::vector<VertexPath> forward_paths(const DpSfg& g) {
  std::vector<VertexPath> all;
  for (const auto& [src, amplitude] : g.excitations()) {
    (void)amplitude;
    auto ps = enumerate_paths(g, src, g.output_vertex());
    all.insert(all.end(), ps.begin(), ps.end());
  }
  return all;
}

uint64_t vertex_mask(const VertexPath& p) {
  uint64_t mask = 0;
  for (int v : p) {
    if (v < 0 || v >= 64) {
      throw InvalidArgument("vertex_mask: graph too large for 64-bit masks");
    }
    mask |= uint64_t{1} << v;
  }
  return mask;
}

}  // namespace ota::sfg
