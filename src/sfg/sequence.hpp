// Rendering DP-SFG paths as sequence text (paper Fig. 4).
//
// A walk is rendered as vertex names interleaved with edge weights:
//   "Iin -1 In1 1/(sC+sCdsM+sCgsM+gdsM) Vn1 1 Vout"
// Cycles repeat their starting vertex at the end.  In symbolic mode device
// parameters appear by name ("gmM1"); in numeric mode they carry their values
// ("2.5mSM1"), which is the decoder-side representation the transformer is
// trained to produce.
#pragma once

#include <string>
#include <vector>

#include "sfg/mason.hpp"
#include "sfg/paths.hpp"

namespace ota::sfg {

/// Whether device parameters render as names or as SI-formatted values.
enum class RenderMode { Symbolic, Numeric };

/// Renders one open path or closed cycle.
std::string render_walk(const DpSfg& g, const VertexPath& p, bool closed,
                        RenderMode mode, int sig_digits = 3);

/// The path corpus of one circuit: all forward paths, then all cycles —
/// the "DP-SFG paths" block of the paper's Fig. 4.
struct PathSet {
  std::vector<VertexPath> forward;
  std::vector<VertexPath> cycles;
};

PathSet collect_paths(const DpSfg& g);

/// Renders the corpus as one line per path (forward paths first).
std::vector<std::string> render_lines(const DpSfg& g, const PathSet& ps,
                                      RenderMode mode, int sig_digits = 3);

}  // namespace ota::sfg
