#include "sfg/sequence.hpp"

#include "common/error.hpp"

namespace ota::sfg {

std::string render_walk(const DpSfg& g, const VertexPath& p, bool closed,
                        RenderMode mode, int sig_digits) {
  if (p.empty()) throw InvalidArgument("render_walk: empty path");
  std::string out = g.vertices()[static_cast<size_t>(p[0])].name;
  const size_t n = p.size();
  const size_t steps = closed ? n : n - 1;
  for (size_t i = 0; i < steps; ++i) {
    const int from = p[i];
    const int to = p[(i + 1) % n];
    const Edge* edge = nullptr;
    for (int ei : g.out_edges(from)) {
      const Edge& e = g.edges()[static_cast<size_t>(ei)];
      if (e.to == to) {
        edge = &e;
        break;
      }
    }
    if (edge == nullptr) throw InternalError("render_walk: missing edge");
    out += " ";
    out += mode == RenderMode::Symbolic ? edge->weight.render_symbolic()
                                        : edge->weight.render_numeric(sig_digits);
    out += " ";
    out += g.vertices()[static_cast<size_t>(to)].name;
  }
  return out;
}

PathSet collect_paths(const DpSfg& g) {
  PathSet ps;
  ps.forward = forward_paths(g);
  ps.cycles = enumerate_cycles(g);
  return ps;
}

std::vector<std::string> render_lines(const DpSfg& g, const PathSet& ps,
                                      RenderMode mode, int sig_digits) {
  std::vector<std::string> lines;
  lines.reserve(ps.forward.size() + ps.cycles.size());
  for (const auto& p : ps.forward) {
    lines.push_back(render_walk(g, p, /*closed=*/false, mode, sig_digits));
  }
  for (const auto& c : ps.cycles) {
    lines.push_back(render_walk(g, c, /*closed=*/true, mode, sig_digits));
  }
  return lines;
}

}  // namespace ota::sfg
