// Mason's gain formula on the DP-SFG.
//
// Mason (1953):  H = sum_k P_k * Delta_k / Delta, with
//   Delta   = 1 - sum(L_i) + sum(L_i L_j, non-touching) - ...
//   Delta_k = Delta restricted to loops not touching forward path k.
//
// This is the ground truth linking the DP-SFG representation back to circuit
// behaviour: evaluated at s = j*2*pi*f it must agree with the MNA AC solve,
// which is exactly what the integration tests assert.  It is also how the
// repository validates that the sequence text given to the transformer is a
// faithful description of the circuit.
#pragma once

#include <complex>
#include <vector>

#include "sfg/graph.hpp"
#include "sfg/paths.hpp"

namespace ota::sfg {

/// Precomputed path/cycle structure for repeated evaluations of one graph.
class MasonEvaluator {
 public:
  explicit MasonEvaluator(const DpSfg& g);

  /// Transfer from one excitation vertex to the output at frequency f [Hz]
  /// (unit drive; amplitudes are not applied).
  std::complex<double> transfer_from(int excitation_vertex, double f_hz) const;

  /// Full output at frequency f: sum over excitations of amplitude * H_e.
  /// Matches AcAnalysis::transfer at the output node.
  std::complex<double> transfer(double f_hz) const;

  const std::vector<VertexPath>& cycles() const { return cycles_; }
  /// Forward paths per excitation, index-aligned with g.excitations().
  const std::vector<std::vector<VertexPath>>& paths_per_excitation() const {
    return paths_;
  }

 private:
  // Edge gain product along consecutive path vertices at complex s.
  std::complex<double> walk_gain(const VertexPath& p, bool closed,
                                 std::complex<double> s) const;
  // Delta over the loop subset not touching `excluded` (0 for the full Delta).
  std::complex<double> delta(uint64_t excluded,
                             const std::vector<std::complex<double>>& loop_gain) const;

  const DpSfg& g_;
  std::vector<VertexPath> cycles_;
  std::vector<uint64_t> cycle_masks_;
  std::vector<std::vector<VertexPath>> paths_;
};

}  // namespace ota::sfg
