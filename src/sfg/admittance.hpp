// Symbolic admittance expressions for DP-SFG edge weights.
//
// Every edge weight in a driving-point SFG is either a sum of admittance
// terms (conductances and s-multiplied capacitances, possibly negated, e.g.
// "sC+sCgsM1+gmM1" or "-gmM1"), the *inverse* of such a sum (the driving-point
// impedances z_k = 1/(sum of attached admittances)), or the constant 1.
// This module provides that small expression language: numeric evaluation at
// complex frequency and rendering in the paper's sequence notation, both
// symbolic ("gmM1") and with numeric values substituted ("2.5mSM1", Fig. 4).
#pragma once

#include <complex>
#include <map>
#include <string>
#include <vector>

namespace ota::sfg {

/// What a term stands for; decides rendering and whether the transformer is
/// expected to predict its value (device parameters) or not (passives).
enum class TermKind {
  Conductance,  ///< passive conductance (resistor), symbol e.g. "G"
  Capacitance,  ///< passive capacitance, symbol e.g. "C" -> rendered "sC"
  Gm,           ///< transistor transconductance, "gm<dev>"
  Gds,          ///< transistor output conductance, "gds<dev>"
  Cgs,          ///< transistor gate-source cap, "sCgs<dev>"
  Cds,          ///< transistor drain-source cap, "sCds<dev>"
  Unity,        ///< the constant 1 (excitation and output edges)
};

/// True for kinds that multiply s (capacitive terms).
bool is_capacitive(TermKind k);
/// True for the four transistor small-signal parameters.
bool is_device_param(TermKind k);

/// One signed admittance term.
struct Term {
  TermKind kind = TermKind::Unity;
  std::string component;  ///< device or passive component name ("M1", "C", "G")
  double value = 1.0;     ///< magnitude in S or F (1.0 for Unity)
  int sign = +1;

  /// Canonical parameter name, e.g. "gmM1", "CgsM1", "C", "G".
  std::string param_name() const;
  /// Symbolic rendering, e.g. "gmM1", "sCgsM1", "sC".
  std::string symbol() const;
  /// Numeric rendering per Fig. 4: device params get SI values with the
  /// device suffix ("2.5mSM1", "s541aFM1"); passives stay symbolic.
  std::string numeric(int sig_digits) const;
};

/// A sum of terms, optionally inverted: sum, or 1/sum.
struct Admittance {
  std::vector<Term> terms;
  bool inverted = false;

  static Admittance one();
  static Admittance single(Term t);
  static Admittance inverse(std::vector<Term> ts);

  /// Adds a term, merging with an existing term of the same parameter name.
  void add(const Term& t);

  /// Numeric evaluation at complex frequency s = j*2*pi*f.
  std::complex<double> evaluate(std::complex<double> s) const;

  /// Paper-style text: "1/(sC+sCgsM+gdsM)" / "sC+sCgsM+gmM" / "-gmM" / "1".
  std::string render_symbolic() const;
  /// Same with numeric values for device parameters (Fig. 4 output style).
  std::string render_numeric(int sig_digits = 3) const;

  /// Substitutes new values for device parameters; keys are param_name()s
  /// (e.g. "gmM1").  Missing keys keep their current value.
  void substitute(const std::map<std::string, double>& values);

  bool is_unity() const;
};

}  // namespace ota::sfg
