// Driving-point signal-flow graph construction (paper Section III-B).
//
// Follows the paper's four steps on a small-signal view of the netlist:
//   Step 0: bookkeeping — classify nodes as AC ground (DC sources), AC
//           excitations (sources with a nonzero ac value), or floating.
//   Step 1: auxiliary sources — every floating node k gets a current vertex
//           I_k and a voltage vertex V_k joined by the driving-point
//           impedance z_k = 1/(sum of all admittances attached to node k).
//   Step 2: passive branches — every admittance y between floating nodes a,b
//           adds coupling edges V_b -> I_a and V_a -> I_b with weight +y
//           (transistor gds / Cgs / Cds stamp exactly like passives).
//   Step 3: transconductance branches — each MOSFET adds gm edges
//           V_g -> I_d (-gm), V_s -> I_d (+gm), V_g -> I_s (+gm),
//           V_s -> I_s (-gm), with AC-grounded terminals dropped and
//           excitation terminals taken from the excitation vertex.
//
// An Output vertex is attached to the measured node with a unit edge, and
// every excitation (nonzero-ac source) becomes a source vertex.  Mason's rule
// over this graph reproduces the MNA AC transfer exactly (tested).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "device/mos_model.hpp"
#include "sfg/admittance.hpp"

namespace ota::sfg {

enum class VertexKind { Excitation, NodeCurrent, NodeVoltage, Output };

struct Vertex {
  VertexKind kind;
  std::string name;       ///< "Iin", "In1", "Vn1", "Vout"
  circuit::NodeId node;   ///< associated circuit node (-1 for excitations)
};

struct Edge {
  int from;
  int to;
  Admittance weight;
};

/// The DP-SFG of one circuit at one operating point.
class DpSfg {
 public:
  /// Builds the graph.  `devices` supplies each MOSFET's small-signal values
  /// (from spice::small_signal_map); `output_node` is the measured node.
  static DpSfg build(const circuit::Netlist& netlist,
                     const std::map<std::string, device::SmallSignal>& devices,
                     const std::string& output_node);

  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Vertex index by name; throws when unknown.
  int vertex_index(const std::string& name) const;
  /// Index of the Output vertex.
  int output_vertex() const { return output_; }
  /// Indices of all excitation vertices with their drive amplitudes
  /// (the source `ac` values, e.g. +0.5 / -0.5 for a differential pair).
  const std::vector<std::pair<int, double>>& excitations() const {
    return excitations_;
  }

  /// Out-edges of a vertex (indices into edges()).
  const std::vector<int>& out_edges(int v) const {
    return adjacency_[static_cast<size_t>(v)];
  }

  /// Replaces device-parameter values on every edge (used to re-render
  /// sequences for a new design and by the layout-parasitic reuse flow).
  void substitute(const std::map<std::string, double>& values);

  /// Names of all device parameters appearing in the graph ("gmM1", ...),
  /// sorted and deduplicated — the prediction targets of the transformer.
  std::vector<std::string> device_parameters() const;

 private:
  int add_vertex(VertexKind kind, const std::string& name, circuit::NodeId node);
  void add_edge(int from, int to, const Term& t);
  void add_edge_weight(int from, int to, const Admittance& w);

  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
  std::map<std::string, int> by_name_;
  std::vector<std::pair<int, double>> excitations_;
  int output_ = -1;
};

}  // namespace ota::sfg
