// Path and cycle enumeration on the DP-SFG.
//
// The paper (Section III-B) enumerates all elementary cycles with Johnson's
// algorithm (O(V^2 log V + V E) per cycle bound) and all forward paths with
// depth-first search (O(V + E)); it reports path/cycle counts per topology in
// Table I.  Both are implemented here over vertex-index sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "sfg/graph.hpp"

namespace ota::sfg {

/// A walk through the graph as vertex indices.  For cycles the first vertex
/// is the canonical (minimal-index) one and is NOT repeated at the end.
using VertexPath = std::vector<int>;

/// All elementary cycles (Johnson's algorithm).  Deterministic order: sorted
/// by canonical start vertex, then discovery order.
std::vector<VertexPath> enumerate_cycles(const DpSfg& g);

/// All simple paths from `from` to `to` (DFS).
std::vector<VertexPath> enumerate_paths(const DpSfg& g, int from, int to);

/// All forward paths: union over excitations of paths to the output vertex.
std::vector<VertexPath> forward_paths(const DpSfg& g);

/// Bitmask of the vertices a path/cycle touches (graphs here are < 64
/// vertices; checked).
uint64_t vertex_mask(const VertexPath& p);

}  // namespace ota::sfg
