#include "sfg/graph.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace ota::sfg {

using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

namespace {

// Node classification for the small-signal view.
enum class NodeClass { AcGround, Excitation, Floating };

struct NodeInfo {
  NodeClass cls = NodeClass::Floating;
  int excitation_vertex = -1;  // for Excitation nodes
  int i_vertex = -1;           // for Floating nodes
  int v_vertex = -1;
};

}  // namespace

int DpSfg::add_vertex(VertexKind kind, const std::string& name, NodeId node) {
  const int idx = static_cast<int>(vertices_.size());
  vertices_.push_back(Vertex{kind, name, node});
  adjacency_.emplace_back();
  if (!by_name_.emplace(name, idx).second) {
    throw InternalError("DpSfg: duplicate vertex name " + name);
  }
  return idx;
}

void DpSfg::add_edge(int from, int to, const Term& t) {
  // Merge into an existing edge between the same vertex pair (e.g. the
  // coupling capacitance and gm between the same nodes combine, as in the
  // paper's "sC+sCgs+gm" edge).
  for (auto& e : edges_) {
    if (e.from == from && e.to == to && !e.weight.inverted) {
      e.weight.add(t);
      return;
    }
  }
  const int idx = static_cast<int>(edges_.size());
  edges_.push_back(Edge{from, to, Admittance::single(t)});
  adjacency_[static_cast<size_t>(from)].push_back(idx);
}

void DpSfg::add_edge_weight(int from, int to, const Admittance& w) {
  const int idx = static_cast<int>(edges_.size());
  edges_.push_back(Edge{from, to, w});
  adjacency_[static_cast<size_t>(from)].push_back(idx);
}

namespace {
bool by(const DpSfg& g, const std::string& name) {
  for (const auto& v : g.vertices()) {
    if (v.name == name) return true;
  }
  return false;
}
}  // namespace

int DpSfg::vertex_index(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw InvalidArgument("DpSfg: unknown vertex '" + name + "'");
  }
  return it->second;
}

DpSfg DpSfg::build(const Netlist& nl,
                   const std::map<std::string, device::SmallSignal>& devices,
                   const std::string& output_node) {
  DpSfg g;
  const int n_nodes = nl.node_count();
  std::vector<NodeInfo> info(static_cast<size_t>(n_nodes));
  info[0].cls = NodeClass::AcGround;

  // Step 0: classify nodes driven by voltage sources.
  for (const auto& s : nl.vsources()) {
    if (s.pos != kGround && s.neg != kGround) {
      throw InvalidArgument("DpSfg: voltage source between two internal nodes"
                            " is not supported");
    }
    const NodeId node = s.pos != kGround ? s.pos : s.neg;
    if (node == kGround) continue;
    info[static_cast<size_t>(node)].cls =
        s.ac != 0.0 ? NodeClass::Excitation : NodeClass::AcGround;
  }

  // Excitation vertices for AC voltage sources and AC current sources.
  for (const auto& s : nl.vsources()) {
    if (s.ac == 0.0) continue;
    const NodeId node = s.pos != kGround ? s.pos : s.neg;
    const double amplitude = s.pos != kGround ? s.ac : -s.ac;
    const int v = g.add_vertex(VertexKind::Excitation, s.name, node);
    info[static_cast<size_t>(node)].excitation_vertex = v;
    g.excitations_.emplace_back(v, amplitude);
  }

  // Step 1: auxiliary source vertices I_k, V_k for every floating node.
  for (NodeId id = 1; id < n_nodes; ++id) {
    auto& ni = info[static_cast<size_t>(id)];
    if (ni.cls != NodeClass::Floating) continue;
    const std::string& nn = nl.node_name(id);
    ni.i_vertex = g.add_vertex(VertexKind::NodeCurrent, "I" + nn, id);
    ni.v_vertex = g.add_vertex(VertexKind::NodeVoltage, "V" + nn, id);
  }

  // The driving-point impedance terms accumulate per floating node.
  std::vector<std::vector<Term>> z_terms(static_cast<size_t>(n_nodes));

  // One two-terminal admittance: contributes to z at floating endpoints and
  // to coupling edges toward each floating endpoint's current vertex.
  auto stamp_admittance = [&](NodeId a, NodeId b, const Term& t) {
    auto contribute = [&](NodeId node, NodeId other) {
      const auto& ni = info[static_cast<size_t>(node)];
      if (ni.cls != NodeClass::Floating) return;
      z_terms[static_cast<size_t>(node)].push_back(t);
      const auto& no = info[static_cast<size_t>(other)];
      if (no.cls == NodeClass::Floating) {
        g.add_edge(no.v_vertex, ni.i_vertex, t);
      } else if (no.cls == NodeClass::Excitation) {
        g.add_edge(no.excitation_vertex, ni.i_vertex, t);
      }
      // AC-ground neighbors contribute only to z.
    };
    contribute(a, b);
    contribute(b, a);
  };

  // Step 2: passive components.
  for (const auto& r : nl.resistors()) {
    stamp_admittance(r.a, r.b,
                     Term{TermKind::Conductance, r.name, 1.0 / r.resistance, +1});
  }
  for (const auto& c : nl.capacitors()) {
    stamp_admittance(c.a, c.b,
                     Term{TermKind::Capacitance, c.name, c.capacitance, +1});
  }

  // Transistor passive-like elements (gds, Cds between d/s; Cgs between g/s),
  // then Step 3: the gm-controlled branches.
  auto voltage_of = [&](NodeId node) -> int {
    const auto& ni = info[static_cast<size_t>(node)];
    if (ni.cls == NodeClass::Floating) return ni.v_vertex;
    if (ni.cls == NodeClass::Excitation) return ni.excitation_vertex;
    return -1;  // AC ground: contributes nothing
  };

  for (const auto& m : nl.mosfets()) {
    auto it = devices.find(m.name);
    if (it == devices.end()) {
      throw InvalidArgument("DpSfg: no small-signal data for device " + m.name);
    }
    const device::SmallSignal& ss = it->second;
    stamp_admittance(m.drain, m.source, Term{TermKind::Gds, m.name, ss.gds, +1});
    stamp_admittance(m.drain, m.source, Term{TermKind::Cds, m.name, ss.cds, +1});
    stamp_admittance(m.gate, m.source, Term{TermKind::Cgs, m.name, ss.cgs, +1});

    // Step 3: channel current gm*v(g,s) flows drain -> source.  Current into
    // the drain node is -gm*v_g + gm*v_s; into the source node +gm*v_g -
    // gm*v_s.  Self terms become explicit self-loop edges (paper Fig. 2's
    // "-gm" loop), not part of z.
    const int vg = voltage_of(m.gate);
    const int vs = voltage_of(m.source);
    const auto& nd = info[static_cast<size_t>(m.drain)];
    const auto& ns = info[static_cast<size_t>(m.source)];
    if (nd.cls == NodeClass::Floating) {
      if (vg >= 0) g.add_edge(vg, nd.i_vertex, Term{TermKind::Gm, m.name, ss.gm, -1});
      if (vs >= 0) g.add_edge(vs, nd.i_vertex, Term{TermKind::Gm, m.name, ss.gm, +1});
    }
    if (ns.cls == NodeClass::Floating) {
      if (vg >= 0) g.add_edge(vg, ns.i_vertex, Term{TermKind::Gm, m.name, ss.gm, +1});
      if (vs >= 0) g.add_edge(vs, ns.i_vertex, Term{TermKind::Gm, m.name, ss.gm, -1});
    }
  }

  // Step 1 (continued): the z_k edges I_k -> V_k.
  for (NodeId id = 1; id < n_nodes; ++id) {
    const auto& ni = info[static_cast<size_t>(id)];
    if (ni.cls != NodeClass::Floating) continue;
    auto& terms = z_terms[static_cast<size_t>(id)];
    if (terms.empty()) {
      throw InvalidArgument("DpSfg: node '" + nl.node_name(id) +
                            "' has no admittance to any other node");
    }
    // Merge duplicate parameters (e.g. gds appearing from both stamps).
    Admittance z;
    z.inverted = true;
    for (const auto& t : terms) {
      // add() merges by (kind, component); reuse via a temporary.
      z.add(t);
    }
    g.add_edge_weight(ni.i_vertex, ni.v_vertex, z);
  }

  // Current-source excitations: unit edges into the node current vertices.
  for (const auto& s : nl.isources()) {
    if (s.ac == 0.0) continue;
    const int v = g.add_vertex(VertexKind::Excitation, s.name, -1);
    g.excitations_.emplace_back(v, s.ac);
    // Current s.ac flows pos -> neg through the source: it *leaves* pos and
    // *enters* neg.
    const auto& np = info[static_cast<size_t>(s.pos)];
    const auto& nn = info[static_cast<size_t>(s.neg)];
    if (np.cls == NodeClass::Floating) {
      g.add_edge(v, np.i_vertex, Term{TermKind::Unity, "", 1.0, -1});
    }
    if (nn.cls == NodeClass::Floating) {
      g.add_edge(v, nn.i_vertex, Term{TermKind::Unity, "", 1.0, +1});
    }
  }

  // Output vertex with a unit edge from the measured node's voltage vertex.
  const NodeId out_node = nl.find_node(output_node);
  const auto& no = info[static_cast<size_t>(out_node)];
  if (no.cls != NodeClass::Floating) {
    throw InvalidArgument("DpSfg: output node must be a floating node");
  }
  // Paper names the sink "Vout"; fall back when a node's voltage vertex
  // already took that name (e.g. a node literally called "out").
  const std::string out_name = by(g, "Vout") ? "Out" : "Vout";
  g.output_ = g.add_vertex(VertexKind::Output, out_name, out_node);
  g.add_edge(no.v_vertex, g.output_, Term{TermKind::Unity, "", 1.0, +1});

  if (g.excitations_.empty()) {
    throw InvalidArgument("DpSfg: circuit has no AC excitation");
  }
  return g;
}

void DpSfg::substitute(const std::map<std::string, double>& values) {
  for (auto& e : edges_) e.weight.substitute(values);
}

std::vector<std::string> DpSfg::device_parameters() const {
  std::set<std::string> names;
  for (const auto& e : edges_) {
    for (const auto& t : e.weight.terms) {
      if (is_device_param(t.kind)) names.insert(t.param_name());
    }
  }
  return {names.begin(), names.end()};
}

}  // namespace ota::sfg
