#include "sfg/mason.hpp"

#include <numbers>

#include "common/error.hpp"

namespace ota::sfg {

using Cplx = std::complex<double>;

MasonEvaluator::MasonEvaluator(const DpSfg& g) : g_(g) {
  cycles_ = enumerate_cycles(g);
  cycle_masks_.reserve(cycles_.size());
  for (const auto& c : cycles_) cycle_masks_.push_back(vertex_mask(c));
  for (const auto& [src, amplitude] : g.excitations()) {
    (void)amplitude;
    paths_.push_back(enumerate_paths(g, src, g.output_vertex()));
  }
}

Cplx MasonEvaluator::walk_gain(const VertexPath& p, bool closed, Cplx s) const {
  // Multiply edge weights between consecutive vertices (and back to the start
  // for cycles).  Parallel edges between a pair are pre-merged by the builder,
  // so at most one non-inverted edge plus the I->V impedance edge exist; walk
  // along the stored adjacency to find the connecting edge.
  Cplx gain{1.0, 0.0};
  const size_t n = p.size();
  const size_t steps = closed ? n : n - 1;
  for (size_t i = 0; i < steps; ++i) {
    const int from = p[i];
    const int to = p[(i + 1) % n];
    bool found = false;
    for (int ei : g_.out_edges(from)) {
      const Edge& e = g_.edges()[static_cast<size_t>(ei)];
      if (e.to == to) {
        gain *= e.weight.evaluate(s);
        found = true;
        break;
      }
    }
    if (!found) throw InternalError("MasonEvaluator: missing edge along path");
  }
  return gain;
}

Cplx MasonEvaluator::delta(uint64_t excluded,
                           const std::vector<Cplx>& loop_gain) const {
  // Recursive inclusion-exclusion over sets of pairwise non-touching loops:
  // Delta = 1 - sum L_i + sum L_i L_j - ...  Implemented as a DFS over loop
  // indices, carrying the union mask of chosen loops and the signed product.
  const size_t n = cycles_.size();
  Cplx total{1.0, 0.0};
  // Iterative stack of (next index, union mask, signed product).
  struct Frame {
    size_t next;
    uint64_t mask;
    Cplx product;
  };
  std::vector<Frame> stack{{0, 0, Cplx{-1.0, 0.0}}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    for (size_t i = f.next; i < n; ++i) {
      const uint64_t m = cycle_masks_[i];
      if ((m & excluded) != 0 || (m & f.mask) != 0) continue;
      const Cplx p = f.product * loop_gain[i];
      total += p;  // this subset contributes (-1)^k * prod(L)
      stack.push_back(Frame{i + 1, f.mask | m, -p});
    }
  }
  return total;
}

Cplx MasonEvaluator::transfer_from(int excitation_vertex, double f_hz) const {
  const Cplx s{0.0, 2.0 * std::numbers::pi * f_hz};

  std::vector<Cplx> loop_gain(cycles_.size());
  for (size_t i = 0; i < cycles_.size(); ++i) {
    loop_gain[i] = walk_gain(cycles_[i], /*closed=*/true, s);
  }
  const Cplx d = delta(0, loop_gain);

  // Locate this excitation's path list.
  size_t which = paths_.size();
  for (size_t i = 0; i < g_.excitations().size(); ++i) {
    if (g_.excitations()[i].first == excitation_vertex) which = i;
  }
  if (which == paths_.size()) {
    throw InvalidArgument("MasonEvaluator: not an excitation vertex");
  }

  Cplx numerator{0.0, 0.0};
  for (const auto& p : paths_[which]) {
    const Cplx pk = walk_gain(p, /*closed=*/false, s);
    numerator += pk * delta(vertex_mask(p), loop_gain);
  }
  return numerator / d;
}

Cplx MasonEvaluator::transfer(double f_hz) const {
  Cplx total{0.0, 0.0};
  for (const auto& [src, amplitude] : g_.excitations()) {
    total += amplitude * transfer_from(src, f_hz);
  }
  return total;
}

}  // namespace ota::sfg
