#include "sfg/admittance.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ota::sfg {

bool is_capacitive(TermKind k) {
  return k == TermKind::Capacitance || k == TermKind::Cgs || k == TermKind::Cds;
}

bool is_device_param(TermKind k) {
  return k == TermKind::Gm || k == TermKind::Gds || k == TermKind::Cgs ||
         k == TermKind::Cds;
}

std::string Term::param_name() const {
  switch (kind) {
    case TermKind::Conductance:
    case TermKind::Capacitance:
      return component;
    case TermKind::Gm: return "gm" + component;
    case TermKind::Gds: return "gds" + component;
    case TermKind::Cgs: return "Cgs" + component;
    case TermKind::Cds: return "Cds" + component;
    case TermKind::Unity: return "1";
  }
  return "?";
}

std::string Term::symbol() const {
  if (kind == TermKind::Unity) return "1";
  const std::string base = param_name();
  return is_capacitive(kind) ? "s" + base : base;
}

std::string Term::numeric(int sig_digits) const {
  if (!is_device_param(kind)) return symbol();  // passives stay symbolic
  const bool cap = is_capacitive(kind);
  const std::string v = format_si(value, cap ? "F" : "S", sig_digits);
  return (cap ? "s" : "") + v + component;
}

Admittance Admittance::one() {
  Admittance a;
  a.terms.push_back(Term{});  // default Term is Unity, value 1, sign +1
  return a;
}

Admittance Admittance::single(Term t) {
  Admittance a;
  a.terms.push_back(std::move(t));
  return a;
}

Admittance Admittance::inverse(std::vector<Term> ts) {
  Admittance a;
  a.terms = std::move(ts);
  a.inverted = true;
  return a;
}

void Admittance::add(const Term& t) {
  for (auto& existing : terms) {
    if (existing.kind == t.kind && existing.component == t.component) {
      // Same parameter appearing twice on one edge combines algebraically.
      const double combined =
          existing.sign * existing.value + t.sign * t.value;
      existing.sign = combined >= 0.0 ? +1 : -1;
      existing.value = std::abs(combined);
      return;
    }
  }
  terms.push_back(t);
}

std::complex<double> Admittance::evaluate(std::complex<double> s) const {
  std::complex<double> sum{0.0, 0.0};
  for (const auto& t : terms) {
    const std::complex<double> v =
        is_capacitive(t.kind) ? s * t.value : std::complex<double>{t.value, 0.0};
    sum += static_cast<double>(t.sign) * v;
  }
  if (!inverted) return sum;
  if (std::abs(sum) == 0.0) {
    throw InternalError("Admittance: inverting a zero admittance");
  }
  return 1.0 / sum;
}

namespace {

template <typename PieceFn>
std::string render(const std::vector<Term>& terms, bool inverted, PieceFn piece) {
  std::string body;
  for (size_t i = 0; i < terms.size(); ++i) {
    const Term& t = terms[i];
    if (t.sign < 0) {
      body += "-";
    } else if (i > 0) {
      body += "+";
    }
    body += piece(t);
  }
  if (inverted) return "1/(" + body + ")";
  return body;
}

}  // namespace

std::string Admittance::render_symbolic() const {
  return render(terms, inverted, [](const Term& t) { return t.symbol(); });
}

std::string Admittance::render_numeric(int sig_digits) const {
  return render(terms, inverted,
                [sig_digits](const Term& t) { return t.numeric(sig_digits); });
}

void Admittance::substitute(const std::map<std::string, double>& values) {
  for (auto& t : terms) {
    if (!is_device_param(t.kind)) continue;
    auto it = values.find(t.param_name());
    if (it != values.end()) t.value = it->second;
  }
}

bool Admittance::is_unity() const {
  return !inverted && terms.size() == 1 && terms[0].kind == TermKind::Unity &&
         terms[0].sign > 0;
}

}  // namespace ota::sfg
