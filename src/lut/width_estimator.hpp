// Width estimation from transformer-predicted device parameters
// (paper Algorithm 1, plus a ratio-scan fallback).
//
// Algorithm 1 converts one device's predicted {gm, gds, Cds, Cgs} and drain
// current into a width by (1) converting to the width-independent gm/Id
// operating point, (2) locating the Vgs that realizes it in the LUT,
// (3) ratioing each predicted parameter against the per-unit-width LUT
// outputs to get candidate widths w1..w5, and (4) iterating Vds until the
// candidates agree.  The scan fallback covers devices whose Id (or gm) is not
// part of the predicted sequence (e.g. a tail device whose gm does not appear
// in the differential DP-SFG).
#pragma once

#include <optional>

#include "lut/device_lut.hpp"

namespace ota::lut {

/// Predicted parameters for one device.  Unset fields are excluded from the
/// candidate-width consensus.
struct PredictedParams {
  std::optional<double> gm;   ///< [S]
  std::optional<double> gds;  ///< [S]
  std::optional<double> cds;  ///< [F]
  std::optional<double> cgs;  ///< [F]
  std::optional<double> id;   ///< [A]
};

struct WidthEstimatorOptions {
  double alpha = 1e-4;       ///< paper's empirically chosen Vds step factor
  double epsilon = 1e-9;     ///< cost-change convergence tolerance
  int max_iterations = 60;   ///< safety bound on the outer loop
  int vds_scan_points = 121; ///< inner cost minimization grid density
};

struct WidthEstimate {
  double width = 0.0;        ///< estimated W [m]
  double vgs = 0.0;          ///< operating Vgs at the solution
  double vds = 0.0;          ///< operating Vds at the solution
  double cost = 0.0;         ///< residual candidate-width disagreement [m]
  int iterations = 0;
};

/// Paper Algorithm 1.  Requires gm and id (for the gm/Id conversion); throws
/// InvalidArgument otherwise.  Returns nullopt when the requested gm/Id is
/// outside the device's achievable range.
std::optional<WidthEstimate> estimate_width(const DeviceLut& lut,
                                            const PredictedParams& p,
                                            double vdd,
                                            const WidthEstimatorOptions& opt = {});

/// Fallback: joint scan over the (Vgs, Vds) grid minimizing the pairwise
/// disagreement of the candidate widths from whichever parameters are
/// present (needs at least two).  Used when Id or gm is unavailable.
std::optional<WidthEstimate> estimate_width_scan(const DeviceLut& lut,
                                                 const PredictedParams& p,
                                                 const WidthEstimatorOptions& opt = {});

}  // namespace ota::lut
