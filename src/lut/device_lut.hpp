// Precomputed per-unit-width device lookup table (paper Fig. 5, §III-D.1).
//
// The LUT is built by a nested DC sweep of (Vgs, Vds) for a reference-width
// transistor and stores the five outputs {Id, gm, gds, Cds, Cgs} *per unit
// width* — valid because all five scale linearly with W (a tested property of
// the device model, as of the paper's 65 nm devices).  Queries between grid
// points are answered with cubic-spline interpolation, allowing the coarse
// 60 mV grid of the paper to stay small without losing accuracy.
#pragma once

#include <optional>
#include <vector>

#include "device/mos_model.hpp"
#include "linalg/spline.hpp"

namespace ota::lut {

/// The five LUT outputs at one bias point, per meter of width.
struct LutEntry {
  double id = 0.0;   ///< [A/m]
  double gm = 0.0;   ///< [S/m]
  double gds = 0.0;  ///< [S/m]
  double cds = 0.0;  ///< [F/m]
  double cgs = 0.0;  ///< [F/m]
};

/// Grid and characterization settings; defaults follow the paper
/// (0-1.2 V in 60 mV steps, Wref = 700 nm, L = 180 nm).
struct LutOptions {
  double v_min = 0.0;
  double v_max = 1.2;
  double v_step = 0.06;
  double wref = 700e-9;
  double l = 180e-9;
};

/// LUT for one device polarity at one channel length.  Bias values are
/// polarity-normalized (positive Vgs/Vds for both NMOS and PMOS).
class DeviceLut {
 public:
  DeviceLut(const device::MosModel& model, const LutOptions& opt = {});

  /// Spline-interpolated per-unit-width outputs at (vgs, vds), clamped to the
  /// characterized window.
  LutEntry lookup(double vgs, double vds) const;

  /// gm/Id inversion at fixed vds: the Vgs at which gm/Id equals `gmid`
  /// [1/V], or nullopt when the target is outside the achievable range.
  /// gm/Id decreases monotonically with Vgs (weak -> strong inversion).
  std::optional<double> find_vgs_for_gmid(double gmid, double vds) const;

  /// Achievable gm/Id range at a given vds: {min, max}.
  std::pair<double, double> gmid_range(double vds) const;

  const LutOptions& options() const { return opt_; }
  const std::vector<double>& vgs_axis() const { return vgs_; }
  const std::vector<double>& vds_axis() const { return vds_; }

  /// Raw (uninterpolated) grid entry, for tests and serialization.
  LutEntry grid_entry(size_t i_vgs, size_t i_vds) const;

 private:
  LutOptions opt_;
  std::vector<double> vgs_;
  std::vector<double> vds_;
  // One interpolator per output quantity.
  linalg::BicubicSpline s_id_, s_gm_, s_gds_, s_cds_, s_cgs_;
  // Raw grids retained for grid_entry and range queries.
  linalg::MatrixD g_id_, g_gm_, g_gds_, g_cds_, g_cgs_;
};

}  // namespace ota::lut
