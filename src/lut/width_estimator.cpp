#include "lut/width_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace ota::lut {

namespace {

// Candidate widths from ratioing predicted absolute parameters against the
// per-unit-width LUT outputs (Algorithm 1 lines 9-10).
std::vector<double> candidate_widths(const PredictedParams& p, const LutEntry& e) {
  std::vector<double> ws;
  auto push = [&ws](const std::optional<double>& num, double den) {
    if (num && den > 0.0) ws.push_back(*num / den);
  };
  push(p.gm, e.gm);
  push(p.gds, e.gds);
  push(p.cds, e.cds);
  push(p.cgs, e.cgs);
  push(p.id, e.id);
  return ws;
}

// cost(Vds) = sum over pairs |w_n - w_m| (Algorithm 1 line 11).
double pairwise_cost(const std::vector<double>& ws) {
  double c = 0.0;
  for (size_t n = 0; n < ws.size(); ++n) {
    for (size_t m = n + 1; m < ws.size(); ++m) {
      c += std::fabs(ws[n] - ws[m]);
    }
  }
  return c;
}

struct VdsScanResult {
  double vds = 0.0;
  double cost = 0.0;
  double width = 0.0;
};

// Inner minimization over Vds at a fixed Vgs (Algorithm 1 line 12).
VdsScanResult scan_vds(const DeviceLut& lut, const PredictedParams& p,
                       double vgs, int points) {
  const auto& axis = lut.vds_axis();
  VdsScanResult best{axis.front(), 1e300, 0.0};
  const double lo = axis.front(), hi = axis.back();
  for (int i = 0; i < points; ++i) {
    const double vds = lo + (hi - lo) * i / (points - 1);
    const LutEntry e = lut.lookup(vgs, vds);
    const auto ws = candidate_widths(p, e);
    if (ws.size() < 2) continue;
    const double c = pairwise_cost(ws);
    if (c < best.cost) {
      best = VdsScanResult{vds, c, ws.front()};
    }
  }
  return best;
}

}  // namespace

std::optional<WidthEstimate> estimate_width(const DeviceLut& lut,
                                            const PredictedParams& p,
                                            double vdd,
                                            const WidthEstimatorOptions& opt) {
  if (!p.gm || !p.id) {
    throw InvalidArgument("estimate_width: gm and id are required for gm/Id");
  }
  if (*p.id <= 0.0 || *p.gm <= 0.0) {
    throw InvalidArgument("estimate_width: gm and id must be positive");
  }
  const double gmid = *p.gm / *p.id;  // line 4

  double vds_curr = vdd / 2.0;  // line 3
  double mincost_prev = 1e300;
  WidthEstimate result;

  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;
    const double vds_prev = vds_curr;

    // Line 7: Vgs realizing the gm/Id point at the current Vds guess.
    const auto vgs = lut.find_vgs_for_gmid(gmid, vds_curr);
    if (!vgs) return std::nullopt;

    // Lines 8-12: candidate widths as functions of Vds; take the minimum of
    // the pairwise disagreement over the Vds axis.
    const VdsScanResult scan = scan_vds(lut, p, *vgs, opt.vds_scan_points);

    result.vgs = *vgs;
    result.vds = scan.vds;
    result.cost = scan.cost;
    // Line 16: W = w1(Vds) — the gm-derived candidate at the best Vds.
    const LutEntry e = lut.lookup(*vgs, scan.vds);
    result.width = e.gm > 0 ? *p.gm / e.gm : scan.width;

    const double delta = mincost_prev - scan.cost;  // line 13
    if (std::fabs(delta) < opt.epsilon) break;      // line 5 guard
    mincost_prev = scan.cost;

    // Line 14: nudge the Vds guess along the improving direction.
    vds_curr = vds_curr + (delta > 0 ? 1.0 : -1.0) * opt.alpha * vds_prev;
    vds_curr = std::clamp(vds_curr, lut.vds_axis().front(), lut.vds_axis().back());
  }
  return result;
}

std::optional<WidthEstimate> estimate_width_scan(const DeviceLut& lut,
                                                 const PredictedParams& p,
                                                 const WidthEstimatorOptions& opt) {
  int available = 0;
  for (const auto& q : {p.gm, p.gds, p.cds, p.cgs, p.id}) {
    if (q) ++available;
  }
  if (available < 2) {
    throw InvalidArgument("estimate_width_scan: need at least two parameters");
  }

  WidthEstimate best;
  best.cost = 1e300;
  bool found = false;
  const auto& vgs_axis = lut.vgs_axis();
  // Grid over Vgs (axis resolution) with the same inner Vds scan as above;
  // then one refinement pass around the winner at 4x density.
  for (double vgs : vgs_axis) {
    const VdsScanResult scan = scan_vds(lut, p, vgs, opt.vds_scan_points);
    if (scan.cost < best.cost) {
      const LutEntry e = lut.lookup(vgs, scan.vds);
      const auto ws = candidate_widths(p, e);
      if (ws.empty()) continue;
      best.vgs = vgs;
      best.vds = scan.vds;
      best.cost = scan.cost;
      best.width = ws.front();
      found = true;
    }
  }
  if (!found) return std::nullopt;

  const double step = (vgs_axis.back() - vgs_axis.front()) /
                      static_cast<double>(vgs_axis.size() - 1);
  for (double vgs = std::max(vgs_axis.front(), best.vgs - step);
       vgs <= std::min(vgs_axis.back(), best.vgs + step); vgs += step / 8.0) {
    const VdsScanResult scan = scan_vds(lut, p, vgs, opt.vds_scan_points);
    if (scan.cost < best.cost) {
      const LutEntry e = lut.lookup(vgs, scan.vds);
      const auto ws = candidate_widths(p, e);
      if (ws.empty()) continue;
      best.vgs = vgs;
      best.vds = scan.vds;
      best.cost = scan.cost;
      best.width = ws.front();
    }
  }
  best.iterations = 1;
  return best;
}

}  // namespace ota::lut
