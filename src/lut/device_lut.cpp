#include "lut/device_lut.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ota::lut {

DeviceLut::DeviceLut(const device::MosModel& model, const LutOptions& opt)
    : opt_(opt) {
  if (opt.v_step <= 0 || opt.v_max <= opt.v_min) {
    throw InvalidArgument("DeviceLut: bad grid options");
  }
  // Index-based generation avoids floating-point accumulation drifting the
  // last knot past v_max.
  const int count = static_cast<int>(std::round((opt.v_max - opt.v_min) / opt.v_step)) + 1;
  for (int i = 0; i < count; ++i) {
    vgs_.push_back(std::min(opt.v_min + i * opt.v_step, opt.v_max));
  }
  vds_ = vgs_;

  const size_t n = vgs_.size(), m = vds_.size();
  g_id_.reset(n, m);
  g_gm_.reset(n, m);
  g_gds_.reset(n, m);
  g_cds_.reset(n, m);
  g_cgs_.reset(n, m);

  // Nested DC sweep at the reference width; store per-unit-width values.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const device::SmallSignal ss =
          model.evaluate(vgs_[i], vds_[j], opt.wref, opt.l);
      g_id_(i, j) = ss.id / opt.wref;
      g_gm_(i, j) = ss.gm / opt.wref;
      g_gds_(i, j) = ss.gds / opt.wref;
      g_cds_(i, j) = ss.cds / opt.wref;
      g_cgs_(i, j) = ss.cgs / opt.wref;
    }
  }

  s_id_ = linalg::BicubicSpline(vgs_, vds_, g_id_);
  s_gm_ = linalg::BicubicSpline(vgs_, vds_, g_gm_);
  s_gds_ = linalg::BicubicSpline(vgs_, vds_, g_gds_);
  s_cds_ = linalg::BicubicSpline(vgs_, vds_, g_cds_);
  s_cgs_ = linalg::BicubicSpline(vgs_, vds_, g_cgs_);
}

LutEntry DeviceLut::lookup(double vgs, double vds) const {
  LutEntry e;
  e.id = s_id_(vgs, vds);
  e.gm = s_gm_(vgs, vds);
  e.gds = s_gds_(vgs, vds);
  e.cds = s_cds_(vgs, vds);
  e.cgs = s_cgs_(vgs, vds);
  return e;
}

LutEntry DeviceLut::grid_entry(size_t i_vgs, size_t i_vds) const {
  LutEntry e;
  e.id = g_id_(i_vgs, i_vds);
  e.gm = g_gm_(i_vgs, i_vds);
  e.gds = g_gds_(i_vgs, i_vds);
  e.cds = g_cds_(i_vgs, i_vds);
  e.cgs = g_cgs_(i_vgs, i_vds);
  return e;
}

std::pair<double, double> DeviceLut::gmid_range(double vds) const {
  // gm/Id decreases with Vgs, so the extremes sit at the grid ends.  Guard
  // against the near-zero current at the lowest Vgs with a floor.
  const LutEntry lo = lookup(vgs_.front(), vds);
  const LutEntry hi = lookup(vgs_.back(), vds);
  const double max_gmid = lo.id > 0 ? lo.gm / lo.id : 0.0;
  const double min_gmid = hi.id > 0 ? hi.gm / hi.id : 0.0;
  return {min_gmid, max_gmid};
}

std::optional<double> DeviceLut::find_vgs_for_gmid(double gmid, double vds) const {
  if (gmid <= 0) return std::nullopt;
  const auto [lo_gmid, hi_gmid] = gmid_range(vds);
  if (gmid < lo_gmid * (1 - 1e-9) || gmid > hi_gmid * (1 + 1e-9)) {
    return std::nullopt;
  }
  // Bisection on the monotone map Vgs -> gm/Id.
  double lo = vgs_.front(), hi = vgs_.back();
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    const LutEntry e = lookup(mid, vds);
    const double g = e.id > 0 ? e.gm / e.id : 1e30;
    if (g > gmid) {
      lo = mid;  // too weak: move toward stronger inversion
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-9) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace ota::lut
