// Fixed-size thread pool and data-parallel facades.
//
// The execution subsystem behind every embarrassingly-parallel hot path in
// the repository: dataset generation (core/dataset.cpp), campaign evaluation
// (core/metrics.cpp), and the baseline optimizers' population evaluation
// (baselines/).  The design contract those call sites rely on:
//
//  * Work is partitioned statically, results land in caller-indexed slots,
//    and all randomness stays on the calling thread (or in per-item counted
//    streams, see common/rng.hpp) — so results are bit-identical for any
//    thread count, including 1.
//  * Workers share only immutable state; anything mutable (a Topology, a
//    SizingCopilot, an Rng) is copied per worker or per item.
//
// Thread count policy: call sites pass an explicit request (options structs /
// function parameters) or 0 for "auto", which reads the OTA_THREADS
// environment variable and falls back to std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ota::par {

/// std::thread::hardware_concurrency(), never less than 1.
int hardware_threads();

/// Parsed OTA_THREADS environment variable; 0 when unset or invalid.
int env_threads();

/// Effective thread count: `requested` if positive, else OTA_THREADS if set,
/// else hardware_threads().
int resolve_threads(int requested = 0);

/// A fixed-size pool of worker threads with a shared FIFO task queue.
///
/// `ThreadPool(n)` spawns n workers for n >= 2.  With n <= 1 no threads are
/// spawned and every operation runs inline on the calling thread, so a pool
/// is always safe to construct and use unconditionally.
class ThreadPool {
 public:
  explicit ThreadPool(int threads = resolve_threads());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.  Inline pools run it before returning.  The future
  /// carries any exception the task throws.
  std::future<void> submit(std::function<void()> task);

  /// Runs `chunk_fn(begin, end)` over a static partition of [0, n) and
  /// blocks until the whole range is covered.  At most size() chunks are in
  /// flight; each index is visited exactly once.  The first chunk exception
  /// (lowest chunk index) is rethrown on the calling thread after all chunks
  /// finish.  Calls from inside one of this pool's workers run inline
  /// (single chunk), which makes nested submission deadlock-free.
  void parallel_for(size_t n,
                    const std::function<void(size_t, size_t)>& chunk_fn);

  /// As parallel_for, but the callback also receives its 0-based chunk index:
  /// `chunk_fn(begin, end, chunk)`.  At most max(1, size()) distinct chunk
  /// indices exist and no index runs concurrently with itself, so call sites
  /// can hold per-chunk mutable scratch (model replicas, accumulators)
  /// indexed by it.  Inline, nested, and single-item runs use chunk 0.
  void parallel_for_chunked(
      size_t n, const std::function<void(size_t, size_t, size_t)>& chunk_fn);

  /// As above, but never partitions [0, n) into more than `max_chunks`
  /// pieces, regardless of the pool size.  Lets a caller with k units of
  /// per-chunk scratch (k model replicas, say) run on a shared pool that is
  /// wider than k: chunk indices stay < max(1, max_chunks).
  void parallel_for_chunked(
      size_t n, size_t max_chunks,
      const std::function<void(size_t, size_t, size_t)>& chunk_fn);

  /// parallel_for that maps `fn(item, index)` over `in`, writing results in
  /// order into the returned vector.
  template <typename Out, typename In, typename Fn>
  std::vector<Out> parallel_map(const std::vector<In>& in, Fn fn) {
    std::vector<Out> out(in.size());
    parallel_for(in.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = fn(in[i], i);
    });
    return out;
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();
  bool on_worker_thread() const;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide persistent worker pool, constructed lazily on first use
/// (size = resolve_threads(0): OTA_THREADS if set, else hardware concurrency)
/// and kept alive until process exit.  The default execution substrate for
/// every batched subsystem — decode batches (ml), AC sweeps (spice), training
/// shards (ml) — so model replicas and workers survive across calls instead
/// of being spawned per call, and concurrent subsystems share one set of OS
/// threads instead of oversubscribing the host.  Nested parallel_for from one
/// of its own workers degrades to an inline run (see parallel_for), so
/// layered use is deadlock-free.  Call sites that need a specific worker
/// count (determinism sweeps in tests, benches) keep constructing dedicated
/// pools.
ThreadPool& global_pool();

}  // namespace ota::par
