#include "par/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/stats.hpp"

namespace ota::par {

namespace {

// Set for the lifetime of each worker thread; lets parallel_for detect a
// nested call from inside its own pool and degrade to an inline run instead
// of deadlocking on a queue no free worker can drain.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int env_threads() {
  const char* env = std::getenv("OTA_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 1024) return 0;
  return static_cast<int>(v);
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const int env = env_threads();
  return env > 0 ? env : hardware_threads();
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 2) return;  // inline pool
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline pool
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  enqueue([packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::parallel_for(
    size_t n, const std::function<void(size_t, size_t)>& chunk_fn) {
  parallel_for_chunked(
      n, [&chunk_fn](size_t begin, size_t end, size_t) { chunk_fn(begin, end); });
}

void ThreadPool::parallel_for_chunked(
    size_t n, const std::function<void(size_t, size_t, size_t)>& chunk_fn) {
  parallel_for_chunked(n, workers_.empty() ? 1 : workers_.size(), chunk_fn);
}

void ThreadPool::parallel_for_chunked(
    size_t n, size_t max_chunks,
    const std::function<void(size_t, size_t, size_t)>& chunk_fn) {
  if (n == 0) return;
  // Items (not chunks): the item count is a pure function of the workload,
  // so the merged counter is thread-count-deterministic; chunk counts are not.
  STAT_REGION("par.pool.dispatch");
  STAT_COUNTER_ADD("par.pool.items", n);
  if (workers_.empty() || n == 1 || max_chunks <= 1 || on_worker_thread()) {
    chunk_fn(0, n, 0);
    return;
  }

  const size_t n_chunks = std::min({n, max_chunks, workers_.size()});
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  } barrier;
  barrier.remaining = n_chunks;
  barrier.errors.resize(n_chunks);

  for (size_t c = 0; c < n_chunks; ++c) {
    const size_t begin = n * c / n_chunks;
    const size_t end = n * (c + 1) / n_chunks;
    enqueue([&barrier, &chunk_fn, begin, end, c] {
      try {
        chunk_fn(begin, end, c);
      } catch (...) {
        barrier.errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(barrier.mu);
      if (--barrier.remaining == 0) barrier.cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(barrier.mu);
  barrier.cv.wait(lock, [&barrier] { return barrier.remaining == 0; });
  for (const std::exception_ptr& e : barrier.errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& global_pool() {
  // Function-local static: constructed on first use, joined cleanly during
  // static destruction at exit (no leaked threads for the sanitizer gates).
  static ThreadPool pool(resolve_threads(0));
  return pool;
}

}  // namespace ota::par
