// Restricted byte-pair encoding (paper Section III-C).
//
// Standard BPE [Sennrich et al. 2016] greedily merges the most frequent
// adjacent token pair.  The paper restricts it so the transformer can predict
// numeric values digit by digit: "all purely numeric strings are left
// uncombined" — merges between two numeric pieces (digits / '.') are
// forbidden — while identifiers ("gmP1"), units ("mS"), and structural
// fragments merge freely.  Whitespace separates words; merges never cross a
// word boundary.  The paper reports a 3.77x sequence-length compression over
// character-level tokenization with this scheme.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nlp/vocabulary.hpp"

namespace ota::nlp {

/// Character-level tokenization (CLT): one piece per character; the space
/// separator is its own piece.  The baseline the paper compares BPE against.
std::vector<std::string> char_tokens(const std::string& text);

struct BpeOptions {
  int num_merges = 512;         ///< merge operations learned from the corpus
  bool protect_numeric = true;  ///< paper's restriction (false = vanilla BPE)
  int min_pair_count = 2;       ///< stop when the best pair is rarer than this
};

class BpeTokenizer {
 public:
  /// Learns merges from a corpus of sequence lines.
  static BpeTokenizer train(const std::vector<std::string>& corpus,
                            const BpeOptions& opt = {});

  /// Tokenizes text into pieces (no special tokens).
  std::vector<std::string> encode_pieces(const std::string& text) const;

  /// Tokenizes into vocabulary ids, optionally wrapped in <bos> ... <eos>.
  std::vector<TokenId> encode(const std::string& text, bool add_bos_eos = false) const;

  /// Inverse of encode: reconstructs the text (special tokens skipped).
  std::string decode(const std::vector<TokenId>& ids) const;

  const Vocabulary& vocab() const { return vocab_; }
  Vocabulary& vocab() { return vocab_; }
  const std::vector<std::pair<std::string, std::string>>& merges() const {
    return merges_;
  }

  /// CLT token count / BPE token count over a corpus (paper: 3.77x).
  double compression_vs_clt(const std::vector<std::string>& corpus) const;

  /// One-line-per-merge text serialization (plus vocabulary rebuild on load).
  std::string serialize() const;
  static BpeTokenizer deserialize(const std::string& text);

 private:
  std::vector<std::string> word_pieces(const std::string& word) const;

  std::vector<std::pair<std::string, std::string>> merges_;
  Vocabulary vocab_;
  BpeOptions opt_;
};

}  // namespace ota::nlp
