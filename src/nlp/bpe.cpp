#include "nlp/bpe.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace ota::nlp {

namespace {

// One piece of a word during training/encoding.  `atomic` marks characters of
// numeric *values*, which the paper keeps as character-level tokens: they
// never merge with anything.  Digits inside identifiers (the "1" of "P1") are
// not atomic and merge freely.
struct Piece {
  std::string text;
  bool atomic = false;
};

// A word under training: its current piece decomposition and corpus count.
struct Word {
  std::vector<Piece> pieces;
  long count = 0;
};

bool is_upper(char c) { return c >= 'A' && c <= 'Z'; }
bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Splits a word into single-character pieces with value-digit protection.
// A digit is part of an identifier (unprotected) when it directly follows an
// uppercase letter or another identifier digit ("M0", "P1", "M10"); any other
// digit or '.' spells out a numeric value and is atomic.
std::vector<Piece> chars_of(const std::string& word, bool protect) {
  std::vector<Piece> out;
  out.reserve(word.size());
  bool prev_identifier_digit = false;
  for (size_t i = 0; i < word.size(); ++i) {
    const char c = word[i];
    bool atomic = false;
    if (protect && (is_digit(c) || c == '.')) {
      const bool identifier_context =
          is_digit(c) && i > 0 &&
          (is_upper(word[i - 1]) || (is_digit(word[i - 1]) && prev_identifier_digit));
      atomic = !identifier_context;
      prev_identifier_digit = is_digit(c) && !atomic;
    } else {
      prev_identifier_digit = false;
    }
    out.push_back(Piece{std::string(1, c), atomic});
  }
  return out;
}

// Applies one learned merge to a piece sequence (atomic pieces never merge).
void apply_merge(std::vector<Piece>& pieces, const std::string& left,
                 const std::string& right) {
  std::vector<Piece> merged;
  merged.reserve(pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i + 1 < pieces.size() && !pieces[i].atomic && !pieces[i + 1].atomic &&
        pieces[i].text == left && pieces[i + 1].text == right) {
      merged.push_back(Piece{left + right, false});
      ++i;
    } else {
      merged.push_back(pieces[i]);
    }
  }
  pieces = std::move(merged);
}

}  // namespace

std::vector<std::string> char_tokens(const std::string& text) {
  std::vector<std::string> out;
  out.reserve(text.size());
  for (char c : text) out.emplace_back(1, c);
  return out;
}

BpeTokenizer BpeTokenizer::train(const std::vector<std::string>& corpus,
                                 const BpeOptions& opt) {
  BpeTokenizer tok;
  tok.opt_ = opt;

  // Collect unique words with counts; training operates on word types.
  std::map<std::string, long> word_counts;
  for (const auto& line : corpus) {
    for (const auto& w : split(line, " ")) ++word_counts[w];
  }
  std::vector<Word> words;
  words.reserve(word_counts.size());
  for (const auto& [text, count] : word_counts) {
    words.push_back(Word{chars_of(text, opt.protect_numeric), count});
  }

  // Seed vocabulary with every character (plus the space separator) so
  // encoding never produces <unk> on training-like text.
  tok.vocab_.add(" ");
  for (const auto& w : words) {
    for (const auto& p : w.pieces) tok.vocab_.add(p.text);
  }

  for (int merge_round = 0; merge_round < opt.num_merges; ++merge_round) {
    // Count adjacent mergeable pairs across all words.
    std::map<std::pair<std::string, std::string>, long> pair_counts;
    for (const auto& w : words) {
      for (size_t i = 0; i + 1 < w.pieces.size(); ++i) {
        if (w.pieces[i].atomic || w.pieces[i + 1].atomic) continue;
        pair_counts[{w.pieces[i].text, w.pieces[i + 1].text}] += w.count;
      }
    }
    if (pair_counts.empty()) break;

    // Most frequent pair; std::map iteration gives deterministic tie-breaks.
    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < opt.min_pair_count) break;

    const auto [left, right] = best->first;
    tok.merges_.emplace_back(left, right);
    tok.vocab_.add(left + right);
    for (auto& w : words) apply_merge(w.pieces, left, right);
  }
  return tok;
}

std::vector<std::string> BpeTokenizer::word_pieces(const std::string& word) const {
  std::vector<Piece> pieces = chars_of(word, opt_.protect_numeric);
  // Apply merges in learned order (merge priority = training order).
  for (const auto& [left, right] : merges_) {
    if (pieces.size() < 2) break;
    apply_merge(pieces, left, right);
  }
  std::vector<std::string> out;
  out.reserve(pieces.size());
  for (const auto& p : pieces) out.push_back(p.text);
  return out;
}

std::vector<std::string> BpeTokenizer::encode_pieces(const std::string& text) const {
  std::vector<std::string> out;
  const auto words = split(text, " ");
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out.emplace_back(" ");
    const auto pieces = word_pieces(words[i]);
    out.insert(out.end(), pieces.begin(), pieces.end());
  }
  return out;
}

std::vector<TokenId> BpeTokenizer::encode(const std::string& text,
                                          bool add_bos_eos) const {
  std::vector<TokenId> ids;
  if (add_bos_eos) ids.push_back(Vocabulary::kBos);
  for (const auto& p : encode_pieces(text)) {
    ids.push_back(vocab_.id(p));
  }
  if (add_bos_eos) ids.push_back(Vocabulary::kEos);
  return ids;
}

std::string BpeTokenizer::decode(const std::vector<TokenId>& ids) const {
  std::string out;
  for (TokenId id : ids) {
    if (id == Vocabulary::kPad || id == Vocabulary::kBos ||
        id == Vocabulary::kEos || id == Vocabulary::kUnk) {
      continue;
    }
    out += vocab_.piece(id);
  }
  return out;
}

double BpeTokenizer::compression_vs_clt(const std::vector<std::string>& corpus) const {
  long clt = 0, bpe = 0;
  for (const auto& line : corpus) {
    clt += static_cast<long>(char_tokens(line).size());
    bpe += static_cast<long>(encode_pieces(line).size());
  }
  if (bpe == 0) throw InvalidArgument("compression_vs_clt: empty corpus");
  return static_cast<double>(clt) / static_cast<double>(bpe);
}

std::string BpeTokenizer::serialize() const {
  // Header, merges, then the vocabulary in id order: the transformer's
  // embedding rows are indexed by these ids, so the rebuild must be exact.
  std::ostringstream os;
  os << "bpe-v2 " << merges_.size() << " " << (opt_.protect_numeric ? 1 : 0)
     << " " << vocab_.size() << "\n";
  for (const auto& [l, r] : merges_) {
    os << l << "\t" << r << "\n";
  }
  for (size_t id = 4; id < vocab_.size(); ++id) {  // specials are implicit
    os << vocab_.piece(static_cast<TokenId>(id)) << "\n";
  }
  return os.str();
}

BpeTokenizer BpeTokenizer::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  size_t n_merges = 0, n_vocab = 0;
  int protect = 1;
  is >> magic >> n_merges >> protect >> n_vocab;
  if (magic != "bpe-v2") throw InvalidArgument("BpeTokenizer: bad serialization");
  std::string line;
  std::getline(is, line);  // consume header newline
  BpeTokenizer tok;
  tok.opt_.protect_numeric = protect != 0;
  for (size_t i = 0; i < n_merges; ++i) {
    if (!std::getline(is, line)) {
      throw InvalidArgument("BpeTokenizer: truncated merges");
    }
    const auto tab = line.find('\t');
    if (tab == std::string::npos) throw InvalidArgument("BpeTokenizer: bad merge line");
    tok.merges_.emplace_back(line.substr(0, tab), line.substr(tab + 1));
  }
  while (tok.vocab_.size() < n_vocab && std::getline(is, line)) {
    tok.vocab_.add(line);
  }
  if (tok.vocab_.size() != n_vocab) {
    throw InvalidArgument("BpeTokenizer: truncated vocabulary");
  }
  return tok;
}

}  // namespace ota::nlp
