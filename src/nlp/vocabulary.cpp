#include "nlp/vocabulary.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ota::nlp {

Vocabulary::Vocabulary() {
  for (const char* p : {"<pad>", "<bos>", "<eos>", "<unk>"}) {
    add(p);
  }
}

TokenId Vocabulary::add(const std::string& piece) {
  auto it = ids_.find(piece);
  if (it != ids_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(pieces_.size());
  pieces_.push_back(piece);
  ids_.emplace(piece, id);
  return id;
}

TokenId Vocabulary::id(const std::string& piece) const {
  auto it = ids_.find(piece);
  return it == ids_.end() ? kUnk : it->second;
}

bool Vocabulary::contains(const std::string& piece) const {
  return ids_.count(piece) > 0;
}

const std::string& Vocabulary::piece(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= pieces_.size()) {
    throw InvalidArgument("Vocabulary: token id out of range");
  }
  return pieces_[static_cast<size_t>(id)];
}

bool is_numeric_token(const std::string& piece) {
  // Digits and the decimal point count as numeric; the lone "." must be
  // numeric too or BPE would merge "2"+"." and recombine spelled-out values.
  if (piece.empty()) return false;
  for (char c : piece) {
    if (!((c >= '0' && c <= '9') || c == '.')) return false;
  }
  return true;
}

}  // namespace ota::nlp
