// Token vocabulary shared by the tokenizer and the transformer.
//
// Ids 0..3 are reserved for the special tokens <pad>, <bos>, <eos>, <unk>;
// every other id maps to a text piece produced by the tokenizer.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ota::nlp {

using TokenId = int;

class Vocabulary {
 public:
  static constexpr TokenId kPad = 0;
  static constexpr TokenId kBos = 1;
  static constexpr TokenId kEos = 2;
  static constexpr TokenId kUnk = 3;

  Vocabulary();

  /// Id of `piece`, inserting it when new.
  TokenId add(const std::string& piece);
  /// Id of `piece`, or kUnk when absent.
  TokenId id(const std::string& piece) const;
  /// True when the piece is known.
  bool contains(const std::string& piece) const;
  /// Piece text of an id; throws on out-of-range ids.
  const std::string& piece(TokenId id) const;

  size_t size() const { return pieces_.size(); }

 private:
  std::vector<std::string> pieces_;
  std::map<std::string, TokenId> ids_;
};

/// True for tokens made purely of digits and '.', i.e. the numeric tokens the
/// weighted cross-entropy loss up-weights (paper Section III-C).
bool is_numeric_token(const std::string& piece);

}  // namespace ota::nlp
