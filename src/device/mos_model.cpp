#include "device/mos_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ota::device {
namespace {

// Numerically safe ln(1 + exp(x)); linear for large x, exp(x) for small x.
double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

// Logistic sigmoid, the derivative of softplus.
double sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

const char* to_string(Region r) {
  switch (r) {
    case Region::Off: return "off";
    case Region::WeakInversion: return "weak";
    case Region::ModerateInversion: return "moderate";
    case Region::StrongInversion: return "strong";
  }
  return "?";
}

const char* to_string(Conduction c) {
  switch (c) {
    case Conduction::Cutoff: return "cutoff";
    case Conduction::Triode: return "triode";
    case Conduction::Saturation: return "saturation";
  }
  return "?";
}

MosModel::CoreEval MosModel::core(double vgs, double vds, double w, double l) const {
  if (w <= 0.0 || l <= 0.0) throw InvalidArgument("MosModel: non-positive W or L");
  const double phi_t = p_.phi_t;
  const double n = p_.n;

  // Pinch-off voltage and normalized charges (source-referenced EKV).
  const double vp = (vgs - p_.vt0) / n;
  const double uf = vp / (2.0 * phi_t);
  const double ur = (vp - vds) / (2.0 * phi_t);
  const double qf = softplus(uf);
  const double qr = softplus(ur);
  const double i_f = qf * qf;
  const double i_r = qr * qr;

  // Specific current: Ispec = 2 n kp phi_t^2 (W/L).
  const double ispec = 2.0 * n * p_.kp * phi_t * phi_t * (w / l);

  // Smooth channel-length-modulation factor.  softplus makes the factor tend
  // to 1 for Vds <= 0 while matching (1 + lambda Vds) in saturation, keeping
  // the current C-infinity for the Newton solver.
  const double lambda = p_.lambda_l / l;
  const double clm = 1.0 + lambda * p_.phi_t * softplus(vds / phi_t);
  const double dclm_dvds = lambda * sigmoid(vds / phi_t);

  const double i0 = ispec * (i_f - i_r);
  const double id = i0 * clm;

  // d(i_f)/dVgs = 2 qf sigmoid(uf) / (2 n phi_t); similarly for i_r.
  const double dif_dvgs = 2.0 * qf * sigmoid(uf) / (2.0 * n * phi_t);
  const double dir_dvgs = 2.0 * qr * sigmoid(ur) / (2.0 * n * phi_t);
  const double dir_dvds = -2.0 * qr * sigmoid(ur) / (2.0 * phi_t);

  CoreEval e;
  e.id = id;
  e.gm = ispec * (dif_dvgs - dir_dvgs) * clm;
  e.gds = ispec * (-dir_dvds) * clm + i0 * dclm_dvds;
  e.i_f = i_f;
  e.i_r = i_r;
  return e;
}

double MosModel::vdsat(double vgs, double /*l*/) const {
  const double vp = (vgs - p_.vt0) / p_.n;
  const double qf = softplus(vp / (2.0 * p_.phi_t));
  // EKV saturation estimate: Vdsat ~ 2 phi_t sqrt(IC) + 4 phi_t.
  return 2.0 * p_.phi_t * qf + 4.0 * p_.phi_t;
}

DcEval MosModel::dc(double vg, double vd, double vs, double w, double l) const {
  DcEval out;
  if (p_.type == MosType::Nmos) {
    const CoreEval e = core(vg - vs, vd - vs, w, l);
    out.id = e.id;
    out.di_dvg = e.gm;
    out.di_dvd = e.gds;
    out.di_dvs = -(e.gm + e.gds);
  } else {
    // PMOS: evaluate in the source-referenced positive frame (vsg, vsd); the
    // physical current flows source -> drain, i.e. *out of* the drain node is
    // negative, so the current into the drain terminal is -Id(vsg, vsd)...
    // with our "into drain" sign convention the PMOS current into the drain
    // is negative when the device conducts.
    const CoreEval e = core(vs - vg, vs - vd, w, l);
    out.id = -e.id;
    // Chain rule: d(-Id)/dvg = -dId/dvsg * d(vsg)/dvg = +gm, etc.
    out.di_dvg = e.gm;
    out.di_dvd = e.gds;
    out.di_dvs = -(e.gm + e.gds);
  }
  return out;
}

SmallSignal MosModel::evaluate(double vgs, double vds, double w, double l) const {
  const CoreEval e = core(vgs, vds, w, l);

  SmallSignal ss;
  ss.id = std::fabs(e.id);
  ss.gm = std::fabs(e.gm);
  ss.gds = std::max(e.gds, 0.0);
  ss.ic = e.i_f;

  // Gate-source capacitance: channel charge fraction ramps smoothly from 0
  // (off) to 2/3 of the oxide capacitance (strong-inversion saturation), plus
  // the overlap term.  Both terms are proportional to W.
  const double qf = std::sqrt(e.i_f);
  const double channel_frac = qf / (1.0 + qf);
  ss.cgs = (2.0 / 3.0) * p_.cox * w * l * channel_frac + p_.cov * w;

  // Drain junction capacitance with reverse-bias dependence; proportional
  // to W by construction (per-width capacitance parameter).
  const double vrev = std::max(vds, 0.0);
  ss.cds = p_.cj_w * w / std::pow(1.0 + vrev / p_.pb, p_.mj);

  // Region classification by inversion coefficient.
  if (e.i_f < 1e-3) {
    ss.region = Region::Off;
  } else if (e.i_f < 0.1) {
    ss.region = Region::WeakInversion;
  } else if (e.i_f <= 10.0) {
    ss.region = Region::ModerateInversion;
  } else {
    ss.region = Region::StrongInversion;
  }

  if (e.i_f < 1e-3) {
    ss.conduction = Conduction::Cutoff;
  } else if (vds >= vdsat(vgs, l)) {
    ss.conduction = Conduction::Saturation;
  } else {
    ss.conduction = Conduction::Triode;
  }
  return ss;
}

SmallSignal MosModel::small_signal(double vg, double vd, double vs, double w,
                                   double l) const {
  if (p_.type == MosType::Nmos) {
    return evaluate(vg - vs, vd - vs, w, l);
  }
  return evaluate(vs - vg, vs - vd, w, l);
}

}  // namespace ota::device
