// Technology parameter set standing in for the paper's 65 nm node.
//
// The numbers are chosen so that the three OTA topologies land in the
// specification ranges of the paper's Table I (gains of 18-25 dB for the
// single-stage OTAs at L = 180 nm, unity-gain frequencies of tens to hundreds
// of MHz with a 500 fF load), not to match any proprietary PDK.
#pragma once

namespace ota::device {

enum class MosType { Nmos, Pmos };

const char* to_string(MosType t);

/// Compact-model parameters for one polarity.
struct MosParams {
  MosType type;
  double vt0;         ///< threshold voltage magnitude [V]
  double n;           ///< subthreshold slope factor
  double kp;          ///< mobility * Cox [A/V^2]
  double lambda_l;    ///< channel-length-modulation coefficient [V^-1 * m]
  double cox;         ///< gate oxide capacitance per area [F/m^2]
  double cov;         ///< gate overlap capacitance per width [F/m]
  double cj_w;        ///< drain junction capacitance per width [F/m]
  double pb;          ///< junction built-in potential [V]
  double mj;          ///< junction grading coefficient
  double phi_t;       ///< thermal voltage kT/q [V]
};

/// Full technology: supply plus one parameter set per polarity, and the
/// region-classification thresholds used by the data-generation filters.
struct Technology {
  double vdd;            ///< nominal supply [V]
  MosParams nmos;
  MosParams pmos;
  double weak_ic_max;    ///< inversion coefficient below which a device is "weak"
  double strong_ic_min;  ///< inversion coefficient above which a device is "strong"

  /// The 65 nm-like default used throughout the experiments (Vdd = 1.2 V).
  static Technology default65nm();
};

}  // namespace ota::device
