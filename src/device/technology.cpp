#include "device/technology.hpp"

namespace ota::device {

const char* to_string(MosType t) {
  return t == MosType::Nmos ? "NMOS" : "PMOS";
}

Technology Technology::default65nm() {
  Technology t;
  t.vdd = 1.2;

  t.nmos = MosParams{
      .type = MosType::Nmos,
      .vt0 = 0.35,
      .n = 1.30,
      .kp = 300e-6,
      .lambda_l = 0.25e-6,  // lambda = 1.39 V^-1 at L = 180 nm (short channel)
      .cox = 12e-3,         // 12 fF/um^2
      .cov = 0.30e-9,       // 0.3 fF/um
      .cj_w = 0.80e-9,      // 0.8 fF/um
      .pb = 0.8,
      .mj = 0.4,
      .phi_t = 0.02585,
  };

  t.pmos = MosParams{
      .type = MosType::Pmos,
      .vt0 = 0.35,
      .n = 1.35,
      .kp = 110e-6,
      .lambda_l = 0.22e-6,
      .cox = 12e-3,
      .cov = 0.30e-9,
      .cj_w = 0.95e-9,
      .pb = 0.8,
      .mj = 0.4,
      .phi_t = 0.02585,
  };

  // Region thresholds: classical EKV boundaries put moderate inversion at
  // IC in [0.1, 10]; the data-generation filters use these directly.
  t.weak_ic_max = 0.1;
  t.strong_ic_min = 10.0;
  return t;
}

}  // namespace ota::device
