// EKV-style analytical MOSFET compact model.
//
// This model substitutes for the paper's 65 nm foundry PDK (see DESIGN.md,
// "Substitutions").  It provides everything the sizing flow consumes:
//
//   * a drain current that is continuous from weak through strong inversion
//     (the paper requires differential pairs in weak inversion and current
//     mirrors in strong inversion),
//   * channel-length modulation, so gds and therefore achievable gain are
//     realistic for a short-channel node,
//   * bias-dependent capacitances Cgs and Cds,
//   * exact linearity of {Id, gm, gds, Cgs, Cds} in the width W, which is the
//     property the paper's per-unit-width LUT and gm/Id method rely on.
//
// The model is charge-sheet EKV in its simplest source-referenced form: bulk
// is tied to source (as in the paper's OTA schematics) so no body effect term
// is needed.
#pragma once

#include <string>

#include "device/technology.hpp"

namespace ota::device {

/// Operating region of a MOSFET, classified by inversion coefficient and
/// saturation voltage.  The paper's data-generation stage filters designs on
/// these regions (Section IV-A).
enum class Region { Off, WeakInversion, ModerateInversion, StrongInversion };

/// Conduction mode: whether the device has enough Vds to act as a current
/// source (saturation) or is in the ohmic/triode regime.
enum class Conduction { Cutoff, Triode, Saturation };

const char* to_string(Region r);
const char* to_string(Conduction c);

/// Small-signal parameters at an operating point, in absolute units for the
/// given W and L.  These are the five LUT outputs of the paper's Fig. 5 plus
/// bookkeeping used by the region filters.
struct SmallSignal {
  double id = 0.0;    ///< drain current magnitude [A]
  double gm = 0.0;    ///< gate transconductance [S]
  double gds = 0.0;   ///< output conductance [S]
  double cgs = 0.0;   ///< gate-source capacitance [F]
  double cds = 0.0;   ///< drain-source (junction) capacitance [F]
  double ic = 0.0;    ///< inversion coefficient (forward normalized current)
  Region region = Region::Off;
  Conduction conduction = Conduction::Cutoff;
};

/// Drain current and its partial derivatives w.r.t. the three terminal
/// voltages, for Newton-Raphson MNA stamping.  `id` is the signed current
/// flowing into the drain terminal and out of the source terminal.
struct DcEval {
  double id = 0.0;
  double di_dvg = 0.0;
  double di_dvd = 0.0;
  double di_dvs = 0.0;
};

/// Analytical EKV-style model for one device polarity.
class MosModel {
 public:
  explicit MosModel(const MosParams& params) : p_(params) {}

  const MosParams& params() const { return p_; }

  /// Signed drain current + derivatives at absolute terminal voltages
  /// (vg, vd, vs) for a device of width `w` and length `l` (meters).
  DcEval dc(double vg, double vd, double vs, double w, double l) const;

  /// Small-signal parameters at the same operating point.  All quantities are
  /// magnitudes (positive), matching the LUT convention of the paper.
  SmallSignal small_signal(double vg, double vd, double vs, double w, double l) const;

  /// Source-referenced evaluation used by the LUT generator: vgs/vds are the
  /// *polarity-normalized* gate-source and drain-source voltages (positive for
  /// both NMOS and PMOS).  Equivalent to dc()/small_signal() with the PMOS
  /// sign mapping already applied.
  SmallSignal evaluate(double vgs, double vds, double w, double l) const;

  /// Saturation voltage at the given normalized Vgs (EKV estimate).
  double vdsat(double vgs, double l) const;

 private:
  // Normalized forward/reverse charge and current helpers.
  struct CoreEval {
    double id;       // signed, source-referenced [A]
    double gm;       // dId/dVgs [S]
    double gds;      // dId/dVds [S]
    double i_f;      // forward inversion coefficient
    double i_r;      // reverse inversion coefficient
  };
  CoreEval core(double vgs, double vds, double w, double l) const;

  MosParams p_;
};

}  // namespace ota::device
