// Small string helpers shared by the tokenizer and sequence builders.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ota {

/// Splits `text` on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view text, std::string_view delims = " \t\n");

/// Joins `pieces` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True when `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

}  // namespace ota
