#include "common/fault.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"

namespace ota::fault {

namespace detail {
std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("OTA_FAULTS");
  return env != nullptr && *env != '\0';
}()};
}  // namespace detail

namespace {

struct Rule {
  enum class Mode { kOnce, kEvery, kProb };
  Mode mode = Mode::kOnce;
  uint64_t n = 0;     // once / every argument
  double p = 0.0;     // prob argument
  uint64_t seed = 0;  // prob stream seed
  /// Mutable: the hot path counts hits through a const Spec pointer.
  mutable std::atomic<uint64_t> hits{0};
  mutable std::atomic<uint64_t> fired{0};
};

/// A parsed spec.  Rules live in a node-stable map so the hot path can hold
/// references while other threads read concurrently; all mutation after
/// install goes through the per-rule atomics.
struct Spec {
  std::map<std::string, Rule, std::less<>> rules;
};

std::mutex& install_mu() {
  static std::mutex mu;
  return mu;
}

struct State {
  /// The active spec, read lock-free by should_fire.  Null = none installed
  /// yet (the OTA_FAULTS environment may still be pending a lazy parse).
  std::atomic<const Spec*> active{nullptr};
  /// Every spec ever installed.  Replaced specs are kept alive (not leaked:
  /// freed at exit) because a concurrent should_fire may still hold a
  /// pointer into one; installs are rare, so the graveyard stays tiny.
  std::vector<std::unique_ptr<Spec>> all;
  bool env_consumed = false;  ///< OTA_FAULTS already parsed or overridden
};

State& state() {
  static State* s = new State();  // never destroyed: sites may outlive exit order
  return *s;
}

/// Default prob-mode stream seed: FNV-1a of the site name, so distinct sites
/// draw from decorrelated streams without the spec naming seeds explicitly.
uint64_t site_seed(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Uniform double in [0, 1) from the top 53 bits of a SplitMix64 output.
double u01(uint64_t seed) {
  return static_cast<double>(SplitMix64(seed).next() >> 11) * 0x1.0p-53;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view entry, const std::string& why) {
  throw InvalidArgument("fault::install_spec: bad entry '" +
                        std::string(entry) + "': " + why +
                        " (grammar: site:once=N | site:every=N | "
                        "site:prob=P[@seed], entries joined by ';')");
}

uint64_t parse_u64(std::string_view entry, std::string_view text,
                   const std::string& what) {
  if (text.empty()) bad_spec(entry, what + " is empty");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') bad_spec(entry, what + " must be a positive integer");
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

void parse_entry(std::string_view raw, Spec& spec) {
  const std::string_view entry = trim(raw);
  if (entry.empty()) return;
  const size_t colon = entry.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    bad_spec(entry, "expected 'site:mode'");
  }
  const std::string site(trim(entry.substr(0, colon)));
  const std::string_view mode = trim(entry.substr(colon + 1));

  Rule rule;
  if (mode.rfind("once=", 0) == 0) {
    rule.mode = Rule::Mode::kOnce;
    rule.n = parse_u64(entry, mode.substr(5), "once count");
    if (rule.n == 0) bad_spec(entry, "once=N needs N >= 1 (hits are 1-based)");
  } else if (mode.rfind("every=", 0) == 0) {
    rule.mode = Rule::Mode::kEvery;
    rule.n = parse_u64(entry, mode.substr(6), "every period");
    if (rule.n == 0) bad_spec(entry, "every=N needs N >= 1");
  } else if (mode.rfind("prob=", 0) == 0) {
    rule.mode = Rule::Mode::kProb;
    std::string_view arg = mode.substr(5);
    rule.seed = site_seed(site);
    if (const size_t at = arg.find('@'); at != std::string_view::npos) {
      rule.seed = parse_u64(entry, arg.substr(at + 1), "prob seed");
      arg = arg.substr(0, at);
    }
    char* end = nullptr;
    const std::string num(arg);
    rule.p = std::strtod(num.c_str(), &end);
    if (num.empty() || end != num.c_str() + num.size() || rule.p < 0.0 ||
        rule.p > 1.0) {
      bad_spec(entry, "prob=P needs P in [0, 1]");
    }
  } else {
    bad_spec(entry, "unknown mode '" + std::string(mode) + "'");
  }

  auto [it, inserted] = spec.rules.try_emplace(site);
  if (!inserted) bad_spec(entry, "duplicate site '" + site + "'");
  it->second.mode = rule.mode;
  it->second.n = rule.n;
  it->second.p = rule.p;
  it->second.seed = rule.seed;
}

std::unique_ptr<Spec> parse_spec(const std::string& text) {
  auto spec = std::make_unique<Spec>();
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t semi = text.find(';', pos);
    const size_t end = semi == std::string::npos ? text.size() : semi;
    parse_entry(std::string_view(text).substr(pos, end - pos), *spec);
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return spec;
}

/// Publishes `spec` (already parsed) as the active spec.  Caller holds
/// install_mu().
void publish_locked(std::unique_ptr<Spec> spec) {
  State& s = state();
  s.env_consumed = true;
  const bool empty = spec->rules.empty();
  const Spec* raw = spec.get();
  s.all.push_back(std::move(spec));
  s.active.store(empty ? nullptr : raw, std::memory_order_release);
  detail::g_enabled.store(!empty, std::memory_order_release);
}

/// First-hit path when OTA_FAULTS is set but nothing was installed yet:
/// parse the environment exactly once.  A malformed environment spec throws
/// from the faulting site — loud and early beats silently ignoring it.
const Spec* load_env_spec() {
  std::lock_guard<std::mutex> lk(install_mu());
  State& s = state();
  const Spec* active = s.active.load(std::memory_order_acquire);
  if (active || s.env_consumed) return active;
  const char* env = std::getenv("OTA_FAULTS");
  publish_locked(parse_spec(env ? env : ""));
  return s.active.load(std::memory_order_acquire);
}

}  // namespace

std::optional<uint64_t> should_fire(std::string_view site) {
  const Spec* spec = state().active.load(std::memory_order_acquire);
  if (!spec) {
    spec = load_env_spec();
    if (!spec) return std::nullopt;
  }
  const auto it = spec->rules.find(site);
  if (it == spec->rules.end()) return std::nullopt;
  // The decision is a pure function of the hit index claimed here, so the
  // set of firing indices is independent of which thread claims which hit.
  const Rule& rule = it->second;
  const uint64_t hit = rule.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (rule.mode) {
    case Rule::Mode::kOnce:
      fire = hit == rule.n;
      break;
    case Rule::Mode::kEvery:
      fire = hit % rule.n == 0;
      break;
    case Rule::Mode::kProb:
      fire = u01(stream_seed(rule.seed, hit)) < rule.p;
      break;
  }
  if (!fire) return std::nullopt;
  rule.fired.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

std::string fault_message(std::string_view site, uint64_t hit) {
  return "fault injected at '" + std::string(site) + "' (hit " +
         std::to_string(hit) + ")";
}

void install_spec(const std::string& spec) {
  auto parsed = parse_spec(spec);  // throws before touching the active spec
  std::lock_guard<std::mutex> lk(install_mu());
  publish_locked(std::move(parsed));
}

void clear() { install_spec(""); }

std::map<std::string, SiteStats> stats() {
  std::map<std::string, SiteStats> out;
  std::lock_guard<std::mutex> lk(install_mu());
  const Spec* spec = state().active.load(std::memory_order_acquire);
  if (!spec) return out;
  for (const auto& [site, rule] : spec->rules) {
    out[site] = SiteStats{rule.hits.load(std::memory_order_relaxed),
                          rule.fired.load(std::memory_order_relaxed)};
  }
  return out;
}

}  // namespace ota::fault
