// Error types shared across the otasizer library.
//
// All library errors derive from ota::Error so callers can catch one type at
// the API boundary.  Each subsystem throws the most specific subtype.
#pragma once

#include <version>

// The library hard-requires C++20: sfg/mason.cpp, spice/ac.cpp and
// spice/measure.cpp use std::numbers, and several headers rely on other
// C++20 library features.  Fail the very first translation unit with a
// readable message instead of a cryptic "std::numbers has not been declared"
// deep inside a build log.
#if !defined(__cpp_lib_math_constants)
#error "otasizer requires a C++20 toolchain (std::numbers missing); compile with -std=c++20 or newer"
#endif

#include <stdexcept>
#include <string>

namespace ota {

/// Base class of all otasizer exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input (bad netlist, unparsable SI literal, bad config value).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical procedure failed to converge (Newton DC solve, width estimator).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// An asynchronous job was cancelled before completing: discarded unstarted
/// by a drainless queue shutdown, cancelled by its caller, or expired past
/// its deadline.  Waiting on its handle rethrows this instead of blocking
/// forever — a cancelled job is answered, never lost.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// A server refused an admission because its job queue is at capacity (the
/// Reject overflow policy, or a Block-policy wait that hit its timeout).
/// Unlike Cancelled this is thrown from submit() itself: the job was never
/// accepted, so there is no handle to wait on.
class ServerOverloaded : public Error {
 public:
  explicit ServerOverloaded(const std::string& what) : Error(what) {}
};

}  // namespace ota
