// Error types shared across the otasizer library.
//
// All library errors derive from ota::Error so callers can catch one type at
// the API boundary.  Each subsystem throws the most specific subtype.
#pragma once

#include <stdexcept>
#include <string>

namespace ota {

/// Base class of all otasizer exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input (bad netlist, unparsable SI literal, bad config value).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical procedure failed to converge (Newton DC solve, width estimator).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

}  // namespace ota
