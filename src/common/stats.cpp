#include "common/stats.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace ota::stats {

namespace {

/// Upper bound on distinct interned sites.  Fixed so per-thread tables are
/// flat arrays whose slots never move or reallocate while hot paths hold
/// references; the last slot is the shared overflow bucket should the
/// catalogue ever outgrow this (today's catalogue is ~20 sites).
constexpr size_t kMaxSites = 256;

}  // namespace

namespace detail {

struct Site {
  std::string name;
  Kind kind = Kind::kCounter;
  size_t slot = 0;  ///< index into every ThreadTable's slot array
};

namespace {

/// One thread's private accumulation cells.  Only the owning thread writes;
/// the atomics are relaxed purely so a concurrent report/reset on another
/// thread is a defined read/write, never a synchronization point.
struct ThreadTable {
  struct Slot {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> ns{0};
  };
  Slot slots[kMaxSites];
};

struct State {
  std::mutex mu;
  /// Interned sites in interning order; site->slot indexes tables' arrays.
  std::vector<std::unique_ptr<Site>> sites;
  /// All thread tables ever registered.  Owned here, not by the threads:
  /// a worker may exit long before report time and its data must survive.
  std::vector<std::unique_ptr<ThreadTable>> tables;
};

State& state() {
  static State* s = new State();  // never destroyed: at-exit dump reads it
  return *s;
}

/// The calling thread's table, registered with the state on first use.
ThreadTable& thread_table() {
  thread_local ThreadTable* table = [] {
    auto owned = std::make_unique<ThreadTable>();
    ThreadTable* raw = owned.get();
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.tables.push_back(std::move(owned));
    return raw;
  }();
  return *table;
}

Site& intern_locked(State& s, std::string_view name, Kind kind) {
  for (const auto& site : s.sites) {
    if (site->name == name) return *site;
  }
  auto site = std::make_unique<Site>();
  if (s.sites.size() + 1 < kMaxSites) {
    site->name = std::string(name);
    site->kind = kind;
    site->slot = s.sites.size();
  } else {
    // Catalogue overflow: everything past the cap shares the last slot so
    // hot paths stay bounded and exception-free.  Not expected to trigger.
    for (const auto& existing : s.sites) {
      if (existing->slot == kMaxSites - 1) return *existing;
    }
    site->name = "ota.stats.site_overflow";
    site->kind = Kind::kCounter;
    site->slot = kMaxSites - 1;
  }
  s.sites.push_back(std::move(site));
  return *s.sites.back();
}

}  // namespace

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("OTA_STATS");
  if (env == nullptr || *env == '\0' ||
      (env[0] == '0' && env[1] == '\0')) {
    return false;
  }
  if (!(env[0] == '1' && env[1] == '\0')) {
    // Any other value is a dump path: emit the report when the process
    // exits.  The path is leaked so the handler never touches a destroyed
    // string, mirroring the never-destroyed registry state.
    static const std::string* dump_path = new std::string(env);
    std::atexit([] { write_report(*dump_path); });
  }
  return true;
}()};

Site& resolve(SiteHandle& handle, const char* name, Kind kind) {
  if (Site* site = handle.site.load(std::memory_order_acquire)) return *site;
  State& s = state();
  Site* interned = nullptr;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    interned = &intern_locked(s, name, kind);
  }
  // Racing call sites for the same name intern the same Site; publishing
  // either pointer is correct.
  handle.site.store(interned, std::memory_order_release);
  return *interned;
}

void add_count(const Site& site, uint64_t n) {
  thread_table().slots[site.slot].count.fetch_add(n,
                                                  std::memory_order_relaxed);
}

void add_timed(const Site& site, uint64_t ns) {
  auto& slot = thread_table().slots[site.slot];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.ns.fetch_add(ns, std::memory_order_relaxed);
}

}  // namespace detail

void enable() { detail::g_enabled.store(true, std::memory_order_release); }

void disable() { detail::g_enabled.store(false, std::memory_order_release); }

void reset() {
  auto& s = detail::state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& table : s.tables) {
    for (size_t i = 0; i < s.sites.size(); ++i) {
      table->slots[i].count.store(0, std::memory_order_relaxed);
      table->slots[i].ns.store(0, std::memory_order_relaxed);
    }
  }
}

std::map<std::string, SiteTotals> snapshot() {
  std::map<std::string, SiteTotals> out;
  auto& s = detail::state();
  std::lock_guard<std::mutex> lk(s.mu);
  for (const auto& site : s.sites) {
    // Summation over per-thread cells is commutative in uint64, so totals
    // depend only on what ran, not on thread count or interleaving.
    uint64_t count = 0;
    uint64_t ns = 0;
    for (const auto& table : s.tables) {
      count += table->slots[site->slot].count.load(std::memory_order_relaxed);
      ns += table->slots[site->slot].ns.load(std::memory_order_relaxed);
    }
    SiteTotals& totals = out[site->name];  // overflow bucket merges here
    totals.kind = site->kind;
    totals.count += count;
    totals.seconds += static_cast<double>(ns) * 1e-9;
  }
  return out;
}

void report_json(std::ostream& os, const ReportOptions& opt) {
  const auto sites = snapshot();  // std::map: already name-ordered
  os << "{\n  \"enabled\": " << (enabled() ? "true" : "false")
     << ",\n  \"sites\": [";
  bool first = true;
  for (const auto& [name, totals] : sites) {
    os << (first ? "" : ",") << "\n    {\"site\": \"" << name
       << "\", \"kind\": \""
       << (totals.kind == Kind::kRegion ? "region" : "counter")
       << "\", \"count\": " << totals.count;
    if (opt.include_timing && totals.kind == Kind::kRegion) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9f", totals.seconds);
      os << ", \"seconds\": " << buf;
    }
    os << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

std::string report_json(const ReportOptions& opt) {
  std::ostringstream os;
  report_json(os, opt);
  return os.str();
}

bool write_report(const std::string& path, const ReportOptions& opt) {
  std::ofstream os(path);
  if (!os) return false;
  report_json(os, opt);
  return os.good();
}

}  // namespace ota::stats
