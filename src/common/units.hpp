// SI-prefixed engineering notation used throughout the sizing flow.
//
// The DP-SFG sequence language of the paper embeds device parameters as
// SI-prefixed literals such as "2.5mS", "541aF", or "101uS" (Fig. 4).  These
// helpers are the single source of truth for producing and consuming that
// notation, so the tokenizer, the sequence builder, and the tests all agree on
// the exact textual form.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace ota {

/// Formats `value` (in base units) with an SI prefix and `unit` suffix, using
/// `sig_digits` significant digits, e.g. format_si(2.5e-3, "S") == "2.5mS".
/// Zero formats as "0<unit>".  Values outside [1e-18, 1e15) fall back to
/// scientific notation with the unit appended.
std::string format_si(double value, std::string_view unit, int sig_digits = 3);

/// Formats a dimensionless value with `sig_digits` significant digits and no
/// prefix (used for dB gains and ratios in specification strings).
std::string format_plain(double value, int sig_digits = 4);

/// Parses an SI-prefixed literal produced by format_si (or hand-written, e.g.
/// "0.7um", "-1.5mS", "500fF").  Returns the value in base units, or
/// std::nullopt when the text is not a valid SI literal.  `unit`, when
/// non-empty, must match the trailing unit exactly.
std::optional<double> parse_si(std::string_view text, std::string_view unit = "");

/// Returns the multiplier of a single-character SI prefix ('m' -> 1e-3), or
/// std::nullopt when `c` is not a recognized prefix.
std::optional<double> si_prefix_value(char c);

}  // namespace ota
