// Deterministic random number generation.
//
// All stochastic components (data-generation sweep jitter, parameter
// initialization, dropout, baseline optimizers) draw from a seeded Rng so every
// experiment in the repository is reproducible bit-for-bit given its seed.
#pragma once

#include <cstdint>
#include <random>

namespace ota {

/// A seeded pseudo-random source.  Thin wrapper over std::mt19937_64 with the
/// handful of draw shapes the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EED5EEDULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Log-uniform draw in [lo, hi]; natural for width sweeps spanning decades.
  double log_uniform(double lo, double hi) {
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Underlying engine, for std::shuffle and distribution reuse.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ota
