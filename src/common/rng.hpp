// Deterministic random number generation.
//
// All stochastic components (data-generation sweep jitter, parameter
// initialization, dropout, baseline optimizers) draw from a seeded Rng so every
// experiment in the repository is reproducible bit-for-bit given its seed.
//
// Threading contract: Rng is a mutable value type with no internal locking.
// Never share one instance across threads.  Parallel call sites either keep
// the single Rng on the coordinating thread (baseline optimizers: all draws
// happen before work is fanned out) or give every independent work item its
// own counted stream via Rng(seed, stream) — the scheme that makes dataset
// generation bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <random>

namespace ota {

/// SplitMix64 (Steele, Lea & Flood; the java.util.SplittableRandom mixer).
/// Used both as a tiny standalone generator and as the seed deriver for
/// counted Rng streams: it decorrelates consecutive (seed, stream) pairs so
/// stream k and stream k+1 of the same seed share no visible structure.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Seed of counted stream `stream` under master seed `seed`: the SplitMix64
/// output at counter seed + (stream + 1) * golden-gamma, i.e. sampling the
/// canonical SplitMix64 sequence of `seed` at position `stream`.
constexpr uint64_t stream_seed(uint64_t seed, uint64_t stream) {
  SplitMix64 sm(seed + stream * 0x9E3779B97F4A7C15ULL);
  return sm.next();
}

/// A seeded pseudo-random source.  Thin wrapper over std::mt19937_64 with the
/// handful of draw shapes the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EED5EEDULL) : engine_(seed) {}

  /// Counted-stream constructor: Rng(seed, k) is the k-th independent stream
  /// of `seed`.  Per-worker / per-work-item streams built this way make
  /// parallel sampling deterministic regardless of thread count.
  Rng(uint64_t seed, uint64_t stream) : engine_(stream_seed(seed, stream)) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Log-uniform draw in [lo, hi]; natural for width sweeps spanning decades.
  double log_uniform(double lo, double hi) {
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  /// Underlying engine, for std::shuffle and distribution reuse.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ota
