// Runtime telemetry: named region timers and counters, zero-cost when off.
//
// A STAT site is a named measurement point in library code:
//
//   STAT_REGION("ml.scheduler.round");        // scoped timer: count + seconds
//   STAT_COUNTER("serve.campaign.retries");   // count += 1
//   STAT_COUNTER_ADD("par.pool.items", n);    // count += n
//   STAT_SECONDS("serve.campaign.queue_wait", waited);  // externally timed
//
// Disabled (the default), a site costs one relaxed-ish atomic load on
// `enabled()` plus the zero-initialized per-call-site handle — no allocation,
// no clock read, no shared write — cheap enough for the hottest production
// paths, the same discipline as `fault.hpp`'s enable gate.  Enabled, each
// pass adds into a table owned by the CURRENT thread (plain cachelines no
// other thread writes), so hot paths never contend on a shared counter; the
// slots are relaxed atomics only so a concurrent report_json() is a defined
// read.
//
// Determinism contract: report output is a pure function of WHAT ran, never
// of how it was scheduled.  Per-site totals are sums of per-thread cells
// (associative + commutative in uint64), and the report orders sites by
// name — so for a deterministic workload the merged counts are bit-identical
// for any OTA_THREADS.  Wall-clock seconds are inherently nondeterministic;
// ReportOptions::include_timing=false omits them, which is what the
// thread-count-determinism tests compare.
//
// Enabling: OTA_STATS=1 turns collection on at startup; any other non-empty
// non-"0" value additionally registers an at-exit dump of report_json() to
// that path (e.g. `OTA_STATS=stats.json ./bench_campaign_server`).
// Programmatic: stats::enable()/disable()/reset(), and ScopedStats for
// tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace ota::stats {

/// What a site measures: kRegion sites carry count + accumulated seconds,
/// kCounter sites carry a count only.
enum class Kind { kCounter, kRegion };

namespace detail {

/// True iff collection is on (set by enable() or OTA_STATS at static init).
/// Header-visible extern atomic so enabled() inlines to one load.
extern std::atomic<bool> g_enabled;

struct Site;  // interned (name, kind, slot id); lives in the registry

/// One per STAT_* call site, function-local `static constinit` so it is
/// zero-initialized at load time — no static-init guard on the hot path.
/// The site pointer is interned on the first pass that finds stats enabled.
struct SiteHandle {
  std::atomic<Site*> site{nullptr};
};

/// Returns the handle's interned site, interning `name` on first use.
/// Thread-safe; the same name always resolves to the same site.
Site& resolve(SiteHandle& handle, const char* name, Kind kind);

/// count += n into the calling thread's cell for `site`.
void add_count(const Site& site, uint64_t n);

/// count += 1, nanoseconds += ns into the calling thread's cell.
void add_timed(const Site& site, uint64_t ns);

}  // namespace detail

/// The subsystem's hot-path gate: false means no site records anything and
/// the STAT_* macros do no further work.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_acquire);
}

/// Turns collection on/off.  Disabling keeps accumulated data (report_json
/// still sees it); reset() is the eraser.
void enable();
void disable();

/// Zeroes every site's accumulated count/time on every thread table.  Sites
/// stay interned (a reset site reports count 0, it does not vanish).
void reset();

/// Merged per-site totals, keyed by site name.
struct SiteTotals {
  Kind kind = Kind::kCounter;
  uint64_t count = 0;    ///< counter sum, or region entry count
  double seconds = 0.0;  ///< accumulated region time (0 for counters)
};

/// Snapshot of every interned site (all threads merged, name-ordered).
std::map<std::string, SiteTotals> snapshot();

struct ReportOptions {
  /// Include wall-clock "seconds" on region sites.  Set false to get the
  /// schedule-independent report the determinism gates compare.
  bool include_timing = true;
};

/// Emits the merged report as JSON: `{"enabled": ..., "sites": [{"site":
/// ..., "kind": "counter"|"region", "count": N[, "seconds": S]}, ...]}`,
/// sites ordered by name so the output is deterministic for any thread
/// count (modulo timing fields).
void report_json(std::ostream& os, const ReportOptions& opt = {});
std::string report_json(const ReportOptions& opt = {});

/// report_json() to a file; returns false (and leaves a partial file at
/// worst) when the path cannot be opened.
bool write_report(const std::string& path, const ReportOptions& opt = {});

/// Scoped region timer used by STAT_REGION.  Construction is a no-op when
/// stats are disabled; the enabled path stamps steady_clock and the
/// destructor adds the elapsed time into the current thread's cell.  A site
/// observed enabled at entry still records if stats are disabled before
/// exit — the record lands in thread-local cells either way.
class ScopedTimer {
 public:
  ScopedTimer(detail::SiteHandle& handle, const char* name) {
    if (enabled()) {
      site_ = &detail::resolve(handle, name, Kind::kRegion);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (site_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      detail::add_timed(*site_, static_cast<uint64_t>(ns.count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const detail::Site* site_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII enable for tests: enables on construction, restores the previous
/// enabled state and resets all data on destruction so a throwing test
/// cannot leak telemetry state into the next one.
class ScopedStats {
 public:
  ScopedStats() : was_enabled_(enabled()) {
    reset();
    enable();
  }
  ~ScopedStats() {
    if (!was_enabled_) disable();
    reset();
  }
  ScopedStats(const ScopedStats&) = delete;
  ScopedStats& operator=(const ScopedStats&) = delete;

 private:
  bool was_enabled_;
};

}  // namespace ota::stats

#define OTA_STATS_CONCAT_(a, b) a##b
#define OTA_STATS_CONCAT(a, b) OTA_STATS_CONCAT_(a, b)

/// Scoped region timer: times from this statement to the end of the
/// enclosing scope under the given site name.
#define STAT_REGION(site_name) OTA_STAT_REGION_(site_name, __COUNTER__)
#define OTA_STAT_REGION_(site_name, ctr) OTA_STAT_REGION__(site_name, ctr)
#define OTA_STAT_REGION__(site_name, ctr)                                     \
  static constinit ::ota::stats::detail::SiteHandle                           \
      ota_stats_handle_##ctr{};                                               \
  const ::ota::stats::ScopedTimer ota_stats_region_##ctr(                     \
      ota_stats_handle_##ctr, site_name)

/// Adds `n` to a named counter.
#define STAT_COUNTER_ADD(site_name, n)                                        \
  do {                                                                        \
    if (::ota::stats::enabled()) {                                            \
      static constinit ::ota::stats::detail::SiteHandle ota_stats_handle{};   \
      ::ota::stats::detail::add_count(                                        \
          ::ota::stats::detail::resolve(ota_stats_handle, site_name,          \
                                        ::ota::stats::Kind::kCounter),        \
          static_cast<uint64_t>(n));                                          \
    }                                                                         \
  } while (0)

/// Increments a named counter.
#define STAT_COUNTER(site_name) STAT_COUNTER_ADD(site_name, 1)

/// Records an externally measured duration (in seconds) against a region
/// site — for spans whose endpoints live on different threads, e.g. a job's
/// queue wait measured at dequeue time.
#define STAT_SECONDS(site_name, seconds)                                      \
  do {                                                                        \
    if (::ota::stats::enabled()) {                                            \
      static constinit ::ota::stats::detail::SiteHandle ota_stats_handle{};   \
      ::ota::stats::detail::add_timed(                                        \
          ::ota::stats::detail::resolve(ota_stats_handle, site_name,          \
                                        ::ota::stats::Kind::kRegion),         \
          static_cast<uint64_t>((seconds) > 0.0 ? (seconds)*1e9 : 0.0));      \
    }                                                                         \
  } while (0)
