// Deterministic fault injection for robustness testing.
//
// A fault SITE is a named point in library code where an error can be
// injected on demand: `FAULT_SITE("serve.worker.campaign")` throws
// ota::fault::InjectedFault when the active spec says that site fires, and
// `FAULT_SITE_AS("spice.dc.newton", ConvergenceError)` throws the exception
// type the surrounding recovery path actually handles.  With no spec
// installed, a site is one relaxed atomic load and a predicted-not-taken
// branch — cheap enough to leave in the hottest production paths.
//
// Whether a site fires is a pure function of (site, hit index): every pass
// through a site increments its atomic hit counter, and the spec's rule for
// that site decides from the hit index alone.
//
//   once=N       fires exactly at the N-th hit (1-based)
//   every=N      fires at hits N, 2N, 3N, ...
//   prob=P[@S]   fires at hit k iff u01(stream_seed(S, k)) < P — a counted
//                SplitMix64 stream per site, as the parallel RNG contract
//                in common/rng.hpp
//
// Because the decision depends only on the hit index — never on thread
// identity, timing, or interleaving — the SET of firing hit-indices is
// bit-identical for any thread count.  (Which thread observes a given hit
// index is still a race; deterministic tests arrange for hit order to be
// deterministic, e.g. by injecting into serially-ordered work.)
//
// Specs come from the OTA_FAULTS environment variable
// (`site:mode;site:mode;...`, e.g.
// `OTA_FAULTS="spice.dc.newton:every=7;serve.worker.campaign:once=3"`) or
// programmatically via install_spec() / ScopedFaults, which override the
// environment.  Installing a spec resets all hit counters; stats() reports
// per-site hit/fired counts for the active spec.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace ota::fault {

/// The error FAULT_SITE throws when its site fires.  Derives from ota::Error
/// (not from any recoverable subtype) so untyped sites model *permanent*
/// faults; use FAULT_SITE_AS to inject a specific recoverable type instead.
class InjectedFault : public Error {
 public:
  InjectedFault(std::string site, const std::string& what)
      : Error(what), site_(std::move(site)) {}
  /// The site name the fault was injected at, e.g. "serve.worker.campaign".
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

namespace detail {
/// True iff a spec may be active (set by install_spec, or at static
/// initialization when OTA_FAULTS is present in the environment).  Kept in a
/// header-visible extern atomic so enabled() inlines to one load.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The whole fault subsystem's hot-path gate: false means no site can fire
/// and FAULT_SITE does no further work.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_acquire);
}

/// Records one hit at `site` against the active spec and decides whether it
/// fires.  Returns the 1-based hit index when it fires, nullopt otherwise
/// (including when no spec mentions the site).  Thread-safe; the decision is
/// a pure function of (site, returned hit index).
std::optional<uint64_t> should_fire(std::string_view site);

/// The message injected faults carry: names the site and the hit index so a
/// failure surfaced far away (a CampaignResult::error, a test log) is
/// traceable to its injection point.
std::string fault_message(std::string_view site, uint64_t hit);

/// Installs a fault spec (`site:mode;...` — see the file comment for the
/// grammar), replacing any active spec and resetting all hit counters.  An
/// empty spec disables injection.  Programmatic installs override the
/// OTA_FAULTS environment.  Throws InvalidArgument on a malformed spec (the
/// active spec is left unchanged).  Thread-safe, but installing while sites
/// are being hit concurrently leaves hit counts split across the old and new
/// spec — install between workloads for deterministic counting.
void install_spec(const std::string& spec);

/// Disables fault injection (equivalent to install_spec("")).
void clear();

/// Per-site counters of the active spec since it was installed.
struct SiteStats {
  uint64_t hits = 0;   ///< times the site was reached with this spec active
  uint64_t fired = 0;  ///< times it actually threw
};

/// Snapshot of every site named by the active spec (empty when disabled).
std::map<std::string, SiteStats> stats();

/// RAII spec install for tests: installs on construction, clears on
/// destruction so a throwing test cannot leak faults into the next one.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) { install_spec(spec); }
  ~ScopedFaults() { clear(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace ota::fault

/// Injection point throwing ota::fault::InjectedFault (a permanent fault).
#define FAULT_SITE(site_name)                                                  \
  do {                                                                         \
    if (::ota::fault::enabled()) {                                             \
      if (auto _ota_fault_hit = ::ota::fault::should_fire(site_name)) {        \
        throw ::ota::fault::InjectedFault(                                     \
            site_name, ::ota::fault::fault_message(site_name, *_ota_fault_hit)); \
      }                                                                        \
    }                                                                          \
  } while (0)

/// Injection point throwing a caller-chosen exception type (one constructible
/// from std::string), so a site can model the transient error its recovery
/// path really sees — e.g. FAULT_SITE_AS("spice.dc.newton", ConvergenceError).
#define FAULT_SITE_AS(site_name, exception_type)                               \
  do {                                                                         \
    if (::ota::fault::enabled()) {                                             \
      if (auto _ota_fault_hit = ::ota::fault::should_fire(site_name)) {        \
        throw exception_type(                                                  \
            ::ota::fault::fault_message(site_name, *_ota_fault_hit));          \
      }                                                                        \
    }                                                                          \
  } while (0)
