#include "common/strings.hpp"

namespace ota {

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const char* ws = " \t\r\n";
  size_t b = text.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  size_t e = text.find_last_not_of(ws);
  return text.substr(b, e - b + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace ota
