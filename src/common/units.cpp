#include "common/units.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace ota {
namespace {

struct Prefix {
  char symbol;     // '\0' means "no prefix"
  double value;
};

// Ordered from smallest to largest so format_si can scan for the right bucket.
constexpr std::array<Prefix, 13> kPrefixes{{
    {'a', 1e-18},
    {'f', 1e-15},
    {'p', 1e-12},
    {'n', 1e-9},
    {'u', 1e-6},
    {'m', 1e-3},
    {'\0', 1.0},
    {'k', 1e3},
    {'M', 1e6},
    {'G', 1e9},
    {'T', 1e12},
    {'P', 1e15},
    {'E', 1e18},
}};

// Formats `mantissa` with `sig_digits` significant digits, trimming trailing
// zeros and any dangling decimal point ("2.50" -> "2.5", "3.00" -> "3").
std::string format_mantissa(double mantissa, int sig_digits) {
  if (sig_digits < 1) sig_digits = 1;
  // %.*g would switch to scientific for large exponents; the mantissa here is
  // always in [1, 1000) so fixed formatting with a computed precision works.
  double abs_m = std::fabs(mantissa);
  int int_digits = abs_m >= 100.0 ? 3 : abs_m >= 10.0 ? 2 : 1;
  // Round integer digits beyond the significance budget away (217 @ 2 -> 220)
  // so low-sig-digit decoder text really carries only sig_digits of entropy.
  if (int_digits > sig_digits) {
    const double scale = std::pow(10.0, int_digits - sig_digits);
    mantissa = std::round(mantissa / scale) * scale;
    abs_m = std::fabs(mantissa);
    int_digits = abs_m >= 100.0 ? 3 : abs_m >= 10.0 ? 2 : 1;
  }
  int frac_digits = sig_digits - int_digits;
  if (frac_digits < 0) frac_digits = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", frac_digits, mantissa);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace

std::optional<double> si_prefix_value(char c) {
  for (const auto& p : kPrefixes) {
    if (p.symbol == c && p.symbol != '\0') return p.value;
  }
  return std::nullopt;
}

std::string format_si(double value, std::string_view unit, int sig_digits) {
  // Build with append rather than `const char* + std::string&&`: the latter
  // trips a GCC 12 -Wrestrict false positive (PR 105651) under -Werror.
  if (value == 0.0 || std::fabs(value) < 1e-30) {
    std::string out{"0"};
    out.append(unit);
    return out;
  }
  if (!std::isfinite(value)) {
    std::string out{value > 0 ? "inf" : std::isnan(value) ? "nan" : "-inf"};
    out.append(unit);
    return out;
  }
  const bool negative = value < 0;
  double mag = std::fabs(value);

  // Pick the largest prefix whose value does not exceed the magnitude, so the
  // mantissa lands in [1, 1000).  Guard against rounding pushing the mantissa
  // to exactly 1000 (e.g. 999.96 with 3 sig digits).
  for (int pass = 0; pass < 2; ++pass) {
    const Prefix* chosen = &kPrefixes.front();
    for (const auto& p : kPrefixes) {
      if (mag >= p.value * (1.0 - 1e-12)) chosen = &p;
    }
    if (mag < kPrefixes.front().value * 1e-3) {
      break;  // far below atto: fall through to scientific
    }
    // Sub-atto values keep the smallest prefix with a fractional mantissa
    // (e.g. 0.7aF), matching the paper's sequence text.
    double mantissa = mag / chosen->value;
    std::string m = format_mantissa(mantissa, sig_digits);
    if (m == "1000") {
      // Rounded up into the next bucket; bump the magnitude and retry once.
      mag = chosen->value * 1000.0;
      continue;
    }
    std::string out = negative ? "-" : "";
    out += m;
    if (chosen->symbol != '\0') out.push_back(chosen->symbol);
    out += unit;
    return out;
  }

  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", sig_digits - 1, value);
  return std::string{buf} + std::string{unit};
}

std::string format_plain(double value, int sig_digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", sig_digits, value);
  return std::string{buf};
}

std::optional<double> parse_si(std::string_view text, std::string_view unit) {
  if (text.empty()) return std::nullopt;

  // Strip the expected unit suffix if one was requested.
  if (!unit.empty()) {
    if (text.size() <= unit.size() ||
        text.substr(text.size() - unit.size()) != unit) {
      return std::nullopt;
    }
    text.remove_suffix(unit.size());
  }

  // Number part: leading sign, digits, optional fraction, optional exponent.
  size_t i = 0;
  if (text[i] == '+' || text[i] == '-') ++i;
  size_t digits_begin = i;
  while (i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                             text[i] == '.')) {
    ++i;
  }
  if (i == digits_begin) return std::nullopt;
  // Optional exponent (rare in sequence text but accepted).
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    size_t j = i + 1;
    if (j < text.size() && (text[j] == '+' || text[j] == '-')) ++j;
    size_t exp_begin = j;
    while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
    if (j > exp_begin) i = j;
  }

  const std::string num{text.substr(0, i)};
  char* end = nullptr;
  double value = std::strtod(num.c_str(), &end);
  if (end != num.c_str() + num.size()) return std::nullopt;

  std::string_view rest = text.substr(i);
  double mult = 1.0;
  if (!rest.empty()) {
    if (rest.size() != 1) {
      // When no explicit unit was requested, allow a prefix followed by a
      // free-form unit (e.g. "2.5mS" with unit="").
      if (unit.empty()) {
        if (auto p = si_prefix_value(rest.front())) {
          mult = *p;
          return value * mult;
        }
        return std::nullopt;
      }
      return std::nullopt;
    }
    auto p = si_prefix_value(rest.front());
    if (!p) return std::nullopt;
    mult = *p;
  }
  return value * mult;
}

}  // namespace ota
