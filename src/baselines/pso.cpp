#include <algorithm>
#include <chrono>

#include "baselines/baselines.hpp"
#include "par/thread_pool.hpp"

namespace ota::baselines {

// Synchronous PSO: every generation first draws all velocity updates from the
// single calling-thread Rng (against the previous generation's global best),
// then evaluates the moved particles as one parallel batch, then folds the
// personal/global bests back in swarm order.  Deterministic per seed for any
// thread count.
OptResult particle_swarm(SizingProblem& problem, const PsoOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opt.seed);
  const size_t d = problem.dims();
  const int start_sims = problem.simulations();
  par::ThreadPool pool(par::resolve_threads(opt.threads));

  struct Particle {
    std::vector<double> x, v, best_x;
    double best_cost = 1e300;
  };
  const size_t swarm_size = static_cast<size_t>(std::max(opt.swarm_size, 2));
  std::vector<Particle> swarm(swarm_size);

  OptResult res;
  std::vector<std::vector<double>> batch;
  batch.reserve(swarm_size);
  for (auto& p : swarm) {
    p.x.resize(d);
    p.v.resize(d);
    for (size_t i = 0; i < d; ++i) {
      p.x[i] = rng.uniform();
      p.v[i] = rng.uniform(-0.1, 0.1);
    }
    batch.push_back(p.x);
  }
  std::vector<double> costs = problem.evaluate_batch(batch, &pool);
  for (size_t j = 0; j < swarm_size; ++j) {
    swarm[j].best_x = swarm[j].x;
    swarm[j].best_cost = costs[j];
    if (costs[j] < res.best_cost) {
      res.best_cost = costs[j];
      res.best_x = swarm[j].x;
    }
  }

  while (problem.simulations() - start_sims < opt.max_simulations &&
         !SizingProblem::met(res.best_cost)) {
    ++res.iterations;
    const int remaining =
        opt.max_simulations - (problem.simulations() - start_sims);
    const size_t moved =
        std::min(swarm_size, static_cast<size_t>(remaining));
    batch.clear();
    for (size_t j = 0; j < moved; ++j) {
      Particle& p = swarm[j];
      for (size_t i = 0; i < d; ++i) {
        p.v[i] = opt.inertia * p.v[i] +
                 opt.c_personal * rng.uniform() * (p.best_x[i] - p.x[i]) +
                 opt.c_global * rng.uniform() * (res.best_x[i] - p.x[i]);
        p.v[i] = std::clamp(p.v[i], -0.3, 0.3);
        p.x[i] = std::clamp(p.x[i] + p.v[i], 0.0, 1.0);
      }
      batch.push_back(p.x);
    }
    costs = problem.evaluate_batch(batch, &pool);
    for (size_t j = 0; j < moved; ++j) {
      Particle& p = swarm[j];
      if (costs[j] < p.best_cost) {
        p.best_cost = costs[j];
        p.best_x = p.x;
      }
      if (costs[j] < res.best_cost) {
        res.best_cost = costs[j];
        res.best_x = p.x;
      }
    }
  }

  res.success = SizingProblem::met(res.best_cost);
  res.simulations = problem.simulations() - start_sims;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace ota::baselines
