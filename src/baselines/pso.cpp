#include <algorithm>
#include <chrono>

#include "baselines/baselines.hpp"

namespace ota::baselines {

OptResult particle_swarm(SizingProblem& problem, const PsoOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opt.seed);
  const size_t d = problem.dims();
  const int start_sims = problem.simulations();

  struct Particle {
    std::vector<double> x, v, best_x;
    double best_cost = 1e300;
  };
  std::vector<Particle> swarm(static_cast<size_t>(opt.swarm_size));

  OptResult res;
  for (auto& p : swarm) {
    p.x.resize(d);
    p.v.resize(d);
    for (size_t i = 0; i < d; ++i) {
      p.x[i] = rng.uniform();
      p.v[i] = rng.uniform(-0.1, 0.1);
    }
    const double c = problem.evaluate(p.x);
    p.best_x = p.x;
    p.best_cost = c;
    if (c < res.best_cost) {
      res.best_cost = c;
      res.best_x = p.x;
    }
  }

  while (problem.simulations() - start_sims < opt.max_simulations &&
         !SizingProblem::met(res.best_cost)) {
    ++res.iterations;
    for (auto& p : swarm) {
      if (problem.simulations() - start_sims >= opt.max_simulations) break;
      for (size_t i = 0; i < d; ++i) {
        p.v[i] = opt.inertia * p.v[i] +
                 opt.c_personal * rng.uniform() * (p.best_x[i] - p.x[i]) +
                 opt.c_global * rng.uniform() * (res.best_x[i] - p.x[i]);
        p.v[i] = std::clamp(p.v[i], -0.3, 0.3);
        p.x[i] = std::clamp(p.x[i] + p.v[i], 0.0, 1.0);
      }
      const double c = problem.evaluate(p.x);
      if (c < p.best_cost) {
        p.best_cost = c;
        p.best_x = p.x;
      }
      if (c < res.best_cost) {
        res.best_cost = c;
        res.best_x = p.x;
        if (SizingProblem::met(c)) break;
      }
    }
  }

  res.success = SizingProblem::met(res.best_cost);
  res.simulations = problem.simulations() - start_sims;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace ota::baselines
