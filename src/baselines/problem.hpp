// The sizing problem as seen by the Table IX baseline optimizers.
//
// All prior methods the paper compares against (simulated annealing [4], PSO
// [5], Bayesian optimization [21], differential evolution [22]) share the
// same structure: a black-box objective whose every evaluation is a SPICE
// simulation.  SizingProblem wraps one topology + target specification into
// that black box, normalizes widths into the unit cube (log-scaled, matching
// the 0.7-50 um sweep range), and counts simulator invocations — the key
// efficiency metric of Table IX.
#pragma once

#include <vector>

#include "circuit/topologies.hpp"
#include "core/dataset.hpp"
#include "spice/testbench.hpp"

namespace ota::par {
class ThreadPool;
}

namespace ota::baselines {

class SizingProblem {
 public:
  SizingProblem(circuit::Topology topology, const device::Technology& tech,
                core::Specs target, double w_min = 0.7e-6, double w_max = 50e-6);

  /// Number of optimization variables (match groups).
  size_t dims() const { return topo_.match_groups.size(); }

  /// Cost of a point in the normalized unit cube.  Zero means every
  /// specification is met; positive values are summed relative shortfalls.
  /// Every call runs one full simulation (counted).
  double evaluate(const std::vector<double>& x);

  /// Costs of a whole population, one counted simulation per point.  Points
  /// are independent; when `pool` is non-null they are evaluated concurrently
  /// against per-worker Topology copies.  Results are written in input order
  /// and are bit-identical to xs.size() sequential evaluate() calls, for any
  /// pool size.
  std::vector<double> evaluate_batch(const std::vector<std::vector<double>>& xs,
                                     par::ThreadPool* pool = nullptr);

  /// Simulator invocations so far.
  int simulations() const { return simulations_; }

  /// Converts a unit-cube point to physical widths (log-space mapping).
  std::vector<double> to_widths(const std::vector<double>& x) const;

  /// Measured specs at a point (runs one counted simulation).
  core::Specs measure(const std::vector<double>& x);

  const core::Specs& target() const { return target_; }

  /// True when the cost corresponds to all specs met.
  static bool met(double cost) { return cost <= 0.0; }

 private:
  circuit::Topology topo_;
  const device::Technology& tech_;
  core::Specs target_;
  double w_min_, w_max_;
  int simulations_ = 0;
};

/// Shared result record for all baseline optimizers.
struct OptResult {
  std::vector<double> best_x;
  double best_cost = 1e300;
  bool success = false;      ///< best_cost reached zero
  int simulations = 0;       ///< SPICE invocations consumed
  int iterations = 0;        ///< optimizer outer iterations executed
  double seconds = 0.0;
};

}  // namespace ota::baselines
