// Gaussian-process Bayesian optimization with expected improvement, the
// stand-in for WEIBO [Lyu et al. 2018] in Table IX.  RBF kernel, Cholesky-free
// (LU) posterior, EI maximized over random candidates.
#include <algorithm>
#include <chrono>
#include <cmath>

#include "baselines/baselines.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "par/thread_pool.hpp"

namespace ota::baselines {

namespace {

double rbf(const std::vector<double>& a, const std::vector<double>& b,
           double lengthscale, double signal_var) {
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return signal_var * std::exp(-0.5 * d2 / (lengthscale * lengthscale));
}

double norm_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

OptResult bayesian_optimization(SizingProblem& problem, const BoOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opt.seed);
  const size_t d = problem.dims();
  const int start_sims = problem.simulations();
  par::ThreadPool pool(par::resolve_threads(opt.threads));

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  OptResult res;

  auto observe = [&](const std::vector<double>& x) {
    const double y = problem.evaluate(x);
    xs.push_back(x);
    ys.push_back(y);
    if (y < res.best_cost) {
      res.best_cost = y;
      res.best_x = x;
    }
    return y;
  };

  // Space-filling warm start, evaluated as one parallel batch (clamped to
  // the simulation budget).  The batch trades the old sample-by-sample
  // met-early-stop for parallel evaluation; the budget is still respected.
  const int n_initial = std::min(opt.initial_samples, opt.max_simulations);
  for (int i = 0; i < n_initial; ++i) {
    std::vector<double> x(d);
    for (auto& v : x) v = rng.uniform();
    xs.push_back(std::move(x));
  }
  ys = problem.evaluate_batch(xs, &pool);
  for (size_t i = 0; i < xs.size(); ++i) {
    if (ys[i] < res.best_cost) {
      res.best_cost = ys[i];
      res.best_x = xs[i];
    }
  }

  while (problem.simulations() - start_sims < opt.max_simulations &&
         !SizingProblem::met(res.best_cost)) {
    ++res.iterations;
    const size_t n = xs.size();
    // GP posterior precomputation: K^{-1} y and K^{-1} per candidate column.
    linalg::MatrixD k(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        k(i, j) = rbf(xs[i], xs[j], opt.lengthscale, opt.signal_var);
      }
      k(i, i) += opt.noise_var;
    }
    const linalg::LuDecomposition<double> lu(k);
    const std::vector<double> alpha = lu.solve(ys);

    // EI over random candidates: candidate points are drawn sequentially on
    // this thread, their (pure, model-only) EI scores computed in parallel,
    // and the argmax taken in candidate order — same winner for any pool size.
    std::vector<std::vector<double>> cands(
        static_cast<size_t>(std::max(opt.candidates, 1)));
    for (auto& x : cands) {
      x.resize(d);
      for (auto& v : x) v = rng.uniform();
    }
    const std::vector<double> eis =
        pool.parallel_map<double>(cands, [&](const std::vector<double>& x, size_t) {
          std::vector<double> kstar(n);
          for (size_t i = 0; i < n; ++i) {
            kstar[i] = rbf(x, xs[i], opt.lengthscale, opt.signal_var);
          }
          double mu = 0.0;
          for (size_t i = 0; i < n; ++i) mu += kstar[i] * alpha[i];
          const std::vector<double> kinv_kstar = lu.solve(kstar);
          double var = opt.signal_var;
          for (size_t i = 0; i < n; ++i) var -= kstar[i] * kinv_kstar[i];
          const double sigma = std::sqrt(std::max(var, 1e-12));
          const double improve = res.best_cost - mu;
          const double z = improve / sigma;
          return improve * norm_cdf(z) + sigma * norm_pdf(z);
        });
    size_t best_c = 0;
    double best_ei = -1.0;
    for (size_t c = 0; c < cands.size(); ++c) {
      if (eis[c] > best_ei) {
        best_ei = eis[c];
        best_c = c;
      }
    }
    observe(cands[best_c]);
  }

  res.success = SizingProblem::met(res.best_cost);
  res.simulations = problem.simulations() - start_sims;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace ota::baselines
