// The four reimplemented prior-art sizing optimizers of Table IX.
//
// Each optimizer minimizes SizingProblem's spec-shortfall cost with a
// configurable simulation budget and stops early once every specification is
// met.  These are classical implementations (not reproductions of the cited
// systems' code): simulated annealing [Gielen et al. 1990], particle swarm
// [Vural & Yildirim 2012], differential evolution [Liu et al. 2009], and a
// GP-based Bayesian optimizer with expected improvement standing in for
// WEIBO [Lyu et al. 2018].
#pragma once

#include "baselines/problem.hpp"
#include "common/rng.hpp"

namespace ota::baselines {

// The population-based methods (PSO, DE) and BO evaluate their per-iteration
// candidate sets through SizingProblem::evaluate_batch on a thread pool; all
// RNG draws stay on the calling thread, so every optimizer is deterministic
// per seed for any `threads` value (0 = auto: OTA_THREADS env, else hardware
// concurrency).  Simulated annealing is a sequential chain — each move
// depends on the previous accept/reject — and stays single-threaded.

struct SaOptions {
  int max_simulations = 2000;
  double t_initial = 1.0;
  double t_final = 1e-3;
  double step = 0.25;     ///< Gaussian move scale in the unit cube
  uint64_t seed = 1;
};
OptResult simulated_annealing(SizingProblem& problem, const SaOptions& opt = {});

struct PsoOptions {
  int max_simulations = 2000;
  int swarm_size = 20;
  double inertia = 0.72;
  double c_personal = 1.49;
  double c_global = 1.49;
  uint64_t seed = 2;
  int threads = 0;       ///< swarm-evaluation workers (0 = auto)
};
OptResult particle_swarm(SizingProblem& problem, const PsoOptions& opt = {});

struct DeOptions {
  int max_simulations = 2000;
  int population = 20;
  double f = 0.6;        ///< differential weight
  double cr = 0.9;       ///< crossover probability
  uint64_t seed = 3;
  int threads = 0;       ///< trial-evaluation workers (0 = auto)
};
OptResult differential_evolution(SizingProblem& problem, const DeOptions& opt = {});

struct BoOptions {
  int max_simulations = 120;  ///< BO is sample-efficient but per-step costly
  int initial_samples = 10;
  int candidates = 512;       ///< random acquisition candidates per step
  double lengthscale = 0.25;
  double signal_var = 1.0;
  double noise_var = 1e-6;
  uint64_t seed = 4;
  int threads = 0;       ///< init-batch + EI-scan workers (0 = auto)
};
OptResult bayesian_optimization(SizingProblem& problem, const BoOptions& opt = {});

}  // namespace ota::baselines
