#include "baselines/problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "par/thread_pool.hpp"

namespace ota::baselines {

namespace {

// The shared cost kernel of evaluate()/evaluate_batch(): one simulation of
// `topo` at `widths` scored against `target`.
double cost_at(circuit::Topology& topo, const device::Technology& tech,
               const core::Specs& target, const std::vector<double>& widths) {
  spice::EvalResult r;
  try {
    r = spice::evaluate(topo, tech, widths);
  } catch (const ConvergenceError&) {
    return 10.0;  // non-simulatable point: large constant penalty
  }
  // Summed relative shortfalls; specs are minimum requirements.
  double cost = 0.0;
  cost += std::max(0.0, (target.gain_db - r.metrics.gain_db) /
                            std::max(target.gain_db, 1.0));
  cost += std::max(0.0, (target.bw_hz - r.metrics.bw_3db_hz) / target.bw_hz);
  cost += std::max(0.0, (target.ugf_hz - r.metrics.ugf_hz) / target.ugf_hz);
  if (!r.saturation_ok) cost += 0.5;  // bias away from railed designs
  return cost;
}

}  // namespace

SizingProblem::SizingProblem(circuit::Topology topology,
                             const device::Technology& tech, core::Specs target,
                             double w_min, double w_max)
    : topo_(std::move(topology)), tech_(tech), target_(target),
      w_min_(w_min), w_max_(w_max) {}

std::vector<double> SizingProblem::to_widths(const std::vector<double>& x) const {
  if (x.size() != dims()) throw InvalidArgument("SizingProblem: dim mismatch");
  std::vector<double> w(x.size());
  const double lmin = std::log(w_min_), lmax = std::log(w_max_);
  for (size_t i = 0; i < x.size(); ++i) {
    const double t = std::clamp(x[i], 0.0, 1.0);
    w[i] = std::exp(lmin + t * (lmax - lmin));
  }
  return w;
}

double SizingProblem::evaluate(const std::vector<double>& x) {
  ++simulations_;
  return cost_at(topo_, tech_, target_, to_widths(x));
}

std::vector<double> SizingProblem::evaluate_batch(
    const std::vector<std::vector<double>>& xs, par::ThreadPool* pool) {
  simulations_ += static_cast<int>(xs.size());
  std::vector<double> costs(xs.size());
  auto run = [&](size_t begin, size_t end) {
    circuit::Topology worker_topo = topo_;
    for (size_t i = begin; i < end; ++i) {
      costs[i] = cost_at(worker_topo, tech_, target_, to_widths(xs[i]));
    }
  };
  if (pool != nullptr && xs.size() > 1) {
    pool->parallel_for(xs.size(), run);
  } else {
    run(0, xs.size());
  }
  return costs;
}

core::Specs SizingProblem::measure(const std::vector<double>& x) {
  ++simulations_;
  const spice::EvalResult r = spice::evaluate(topo_, tech_, to_widths(x));
  return core::Specs{r.metrics.gain_db, r.metrics.bw_3db_hz, r.metrics.ugf_hz};
}

}  // namespace ota::baselines
