#include "baselines/problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ota::baselines {

SizingProblem::SizingProblem(circuit::Topology topology,
                             const device::Technology& tech, core::Specs target,
                             double w_min, double w_max)
    : topo_(std::move(topology)), tech_(tech), target_(target),
      w_min_(w_min), w_max_(w_max) {}

std::vector<double> SizingProblem::to_widths(const std::vector<double>& x) const {
  if (x.size() != dims()) throw InvalidArgument("SizingProblem: dim mismatch");
  std::vector<double> w(x.size());
  const double lmin = std::log(w_min_), lmax = std::log(w_max_);
  for (size_t i = 0; i < x.size(); ++i) {
    const double t = std::clamp(x[i], 0.0, 1.0);
    w[i] = std::exp(lmin + t * (lmax - lmin));
  }
  return w;
}

double SizingProblem::evaluate(const std::vector<double>& x) {
  ++simulations_;
  spice::EvalResult r;
  try {
    r = spice::evaluate(topo_, tech_, to_widths(x));
  } catch (const ConvergenceError&) {
    return 10.0;  // non-simulatable point: large constant penalty
  }
  // Summed relative shortfalls; specs are minimum requirements.
  double cost = 0.0;
  cost += std::max(0.0, (target_.gain_db - r.metrics.gain_db) /
                            std::max(target_.gain_db, 1.0));
  cost += std::max(0.0, (target_.bw_hz - r.metrics.bw_3db_hz) / target_.bw_hz);
  cost += std::max(0.0, (target_.ugf_hz - r.metrics.ugf_hz) / target_.ugf_hz);
  if (!r.saturation_ok) cost += 0.5;  // bias away from railed designs
  return cost;
}

core::Specs SizingProblem::measure(const std::vector<double>& x) {
  ++simulations_;
  const spice::EvalResult r = spice::evaluate(topo_, tech_, to_widths(x));
  return core::Specs{r.metrics.gain_db, r.metrics.bw_3db_hz, r.metrics.ugf_hz};
}

}  // namespace ota::baselines
