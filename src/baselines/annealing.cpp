#include <algorithm>
#include <chrono>
#include <cmath>

#include "baselines/baselines.hpp"

namespace ota::baselines {

OptResult simulated_annealing(SizingProblem& problem, const SaOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opt.seed);
  const size_t d = problem.dims();
  const int start_sims = problem.simulations();

  std::vector<double> x(d);
  for (auto& v : x) v = rng.uniform();
  double cost = problem.evaluate(x);

  OptResult res;
  res.best_x = x;
  res.best_cost = cost;

  // Geometric cooling sized to the simulation budget.
  const int budget = opt.max_simulations - 1;
  const double alpha =
      budget > 1 ? std::pow(opt.t_final / opt.t_initial, 1.0 / budget) : 1.0;
  double temperature = opt.t_initial;

  while (problem.simulations() - start_sims < opt.max_simulations &&
         !SizingProblem::met(res.best_cost)) {
    ++res.iterations;
    std::vector<double> cand = x;
    for (auto& v : cand) {
      v = std::clamp(v + rng.normal(0.0, opt.step * temperature + 0.02), 0.0, 1.0);
    }
    const double c = problem.evaluate(cand);
    const double delta = c - cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      x = cand;
      cost = c;
    }
    if (c < res.best_cost) {
      res.best_cost = c;
      res.best_x = cand;
    }
    temperature *= alpha;
  }

  res.success = SizingProblem::met(res.best_cost);
  res.simulations = problem.simulations() - start_sims;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace ota::baselines
