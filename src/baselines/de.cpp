#include <algorithm>
#include <chrono>

#include "baselines/baselines.hpp"

namespace ota::baselines {

OptResult differential_evolution(SizingProblem& problem, const DeOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opt.seed);
  const size_t d = problem.dims();
  const size_t np = static_cast<size_t>(std::max(opt.population, 4));
  const int start_sims = problem.simulations();

  std::vector<std::vector<double>> pop(np, std::vector<double>(d));
  std::vector<double> cost(np);
  OptResult res;
  for (size_t i = 0; i < np; ++i) {
    for (auto& v : pop[i]) v = rng.uniform();
    cost[i] = problem.evaluate(pop[i]);
    if (cost[i] < res.best_cost) {
      res.best_cost = cost[i];
      res.best_x = pop[i];
    }
  }

  // Classic DE/rand/1/bin.
  while (problem.simulations() - start_sims < opt.max_simulations &&
         !SizingProblem::met(res.best_cost)) {
    ++res.iterations;
    for (size_t i = 0; i < np; ++i) {
      if (problem.simulations() - start_sims >= opt.max_simulations) break;
      size_t a, b, c;
      do { a = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(np) - 1)); } while (a == i);
      do { b = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(np) - 1)); } while (b == i || b == a);
      do { c = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(np) - 1)); } while (c == i || c == a || c == b);

      std::vector<double> trial = pop[i];
      const size_t forced = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(d) - 1));
      for (size_t j = 0; j < d; ++j) {
        if (j == forced || rng.uniform() < opt.cr) {
          trial[j] = std::clamp(pop[a][j] + opt.f * (pop[b][j] - pop[c][j]), 0.0, 1.0);
        }
      }
      const double tc = problem.evaluate(trial);
      if (tc <= cost[i]) {
        pop[i] = trial;
        cost[i] = tc;
        if (tc < res.best_cost) {
          res.best_cost = tc;
          res.best_x = trial;
          if (SizingProblem::met(tc)) break;
        }
      }
    }
  }

  res.success = SizingProblem::met(res.best_cost);
  res.simulations = problem.simulations() - start_sims;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace ota::baselines
