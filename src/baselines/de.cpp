#include <algorithm>
#include <chrono>

#include "baselines/baselines.hpp"
#include "par/thread_pool.hpp"

namespace ota::baselines {

// Classic DE/rand/1/bin in its synchronous (generational) form: all trial
// vectors of a generation are built from the previous generation's population
// with calling-thread RNG draws, evaluated as one parallel batch, then
// selected in population order.  Deterministic per seed for any thread count.
OptResult differential_evolution(SizingProblem& problem, const DeOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opt.seed);
  const size_t d = problem.dims();
  const size_t np = static_cast<size_t>(std::max(opt.population, 4));
  const int start_sims = problem.simulations();
  par::ThreadPool pool(par::resolve_threads(opt.threads));

  std::vector<std::vector<double>> pop(np, std::vector<double>(d));
  OptResult res;
  for (size_t i = 0; i < np; ++i) {
    for (auto& v : pop[i]) v = rng.uniform();
  }
  std::vector<double> cost = problem.evaluate_batch(pop, &pool);
  for (size_t i = 0; i < np; ++i) {
    if (cost[i] < res.best_cost) {
      res.best_cost = cost[i];
      res.best_x = pop[i];
    }
  }

  std::vector<std::vector<double>> trials;
  trials.reserve(np);
  while (problem.simulations() - start_sims < opt.max_simulations &&
         !SizingProblem::met(res.best_cost)) {
    ++res.iterations;
    const int remaining =
        opt.max_simulations - (problem.simulations() - start_sims);
    const size_t n_trials = std::min(np, static_cast<size_t>(remaining));
    trials.clear();
    for (size_t i = 0; i < n_trials; ++i) {
      size_t a, b, c;
      do { a = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(np) - 1)); } while (a == i);
      do { b = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(np) - 1)); } while (b == i || b == a);
      do { c = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(np) - 1)); } while (c == i || c == a || c == b);

      std::vector<double> trial = pop[i];
      const size_t forced = static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(d) - 1));
      for (size_t j = 0; j < d; ++j) {
        if (j == forced || rng.uniform() < opt.cr) {
          trial[j] = std::clamp(pop[a][j] + opt.f * (pop[b][j] - pop[c][j]), 0.0, 1.0);
        }
      }
      trials.push_back(std::move(trial));
    }
    const std::vector<double> trial_cost = problem.evaluate_batch(trials, &pool);
    for (size_t i = 0; i < n_trials; ++i) {
      if (trial_cost[i] <= cost[i]) {
        pop[i] = trials[i];
        cost[i] = trial_cost[i];
        if (trial_cost[i] < res.best_cost) {
          res.best_cost = trial_cost[i];
          res.best_x = pop[i];
        }
      }
    }
  }

  res.success = SizingProblem::met(res.best_cost);
  res.simulations = problem.simulations() - start_sims;
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace ota::baselines
