#include "ml/adam.hpp"

#include <cmath>

namespace ota::ml {

Adam::Adam(std::vector<Var> params, const AdamOptions& opt)
    : params_(std::move(params)), opt_(opt) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  double total = 0.0;
  if (opt_.grad_clip > 0.0) {
    for (const auto& p : params_) {
      if (!p->grad.same_shape(p->value)) continue;
      for (double g : p->grad.data()) total += g * g;
    }
  }
  step_presquared(total);
}

void Adam::step_presquared(double grad_sq_sum) {
  ++t_;
  // Global-norm gradient clipping across all parameters.
  double scale_factor = 1.0;
  if (opt_.grad_clip > 0.0) {
    const double norm = std::sqrt(grad_sq_sum);
    if (norm > opt_.grad_clip) scale_factor = opt_.grad_clip / norm;
  }

  const double bc1 = 1.0 - std::pow(opt_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opt_.beta2, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Node& p = *params_[i];
    if (!p.grad.same_shape(p.value)) continue;  // parameter unused this step
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t k = 0; k < p.value.size(); ++k) {
      const double g = p.grad.at(k) * scale_factor;
      m.at(k) = opt_.beta1 * m.at(k) + (1.0 - opt_.beta1) * g;
      v.at(k) = opt_.beta2 * v.at(k) + (1.0 - opt_.beta2) * g * g;
      const double mhat = m.at(k) / bc1;
      const double vhat = v.at(k) / bc2;
      p.value.at(k) -= opt_.lr * mhat / (std::sqrt(vhat) + opt_.eps);
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (const auto& p : params_) {
    if (p->grad.same_shape(p->value)) p->grad.zero();
  }
}

void Adam::observe_loss(double loss) {
  if (loss < best_loss_ - 1e-6) {
    best_loss_ = loss;
    stall_ = 0;
    return;
  }
  if (++stall_ >= opt_.patience) {
    opt_.lr = std::max(opt_.lr * opt_.decay_factor, opt_.min_lr);
    stall_ = 0;
  }
}

}  // namespace ota::ml
