// Deterministic data-parallel minibatch training.
//
// The training-side counterpart of the batched inference engine: each
// minibatch's examples are sharded across an ota::par pool and every chunk
// runs forward/backward on its own full model replica, writing the finished
// per-example gradient into a caller-indexed slot.  The slots are then
// reduced into the master model's gradients in fixed example order and Adam
// steps once per batch with the clip norm fused into the reduction.
//
// Determinism contract (property-tested in tests/test_determinism.cpp): the
// loss trajectory and the final weights are bit-identical for any thread
// count, including 1, because
//   * every example draws dropout from its own counted SplitMix64 stream,
//     keyed by a global example index the coordinator assigns;
//   * per-example gradients never share an accumulator — each is produced
//     from a zeroed replica and parked in its own slot;
//   * the slot reduction runs per parameter in ascending example order, and
//     the clip-norm partials are summed in ascending parameter order,
//     independent of how the batch was sharded.
#pragma once

#include <memory>
#include <vector>

#include "ml/adam.hpp"
#include "ml/transformer.hpp"
#include "par/thread_pool.hpp"

namespace ota::ml {

/// One pre-encoded training example.
struct TrainExample {
  std::vector<nlp::TokenId> src, tgt;
  std::vector<double> weights;  ///< one per target token plus <eos>
};

class DataParallelTrainer {
 public:
  /// `model` is the master: Adam updates its parameters and the replicas
  /// re-sync from it after every step.  Both references must outlive the
  /// trainer.  `threads` <= 0 resolves via OTA_THREADS, then hardware.
  /// `max_parallel` (> 0) additionally caps the lane count — callers pass
  /// their batch size so a many-core host never allocates (or re-syncs)
  /// replicas a batch can't occupy.  Work executes on the persistent
  /// process-wide pool (par::global_pool()); the resolved lane count only
  /// bounds how many replicas — and hence chunks — a batch is sharded into,
  /// which by the determinism contract cannot change the results.
  DataParallelTrainer(Transformer& model, Adam& adam, int threads = 0,
                      int max_parallel = 0);

  /// As above on a caller-owned pool (tests that pin a worker count).
  DataParallelTrainer(Transformer& model, Adam& adam, par::ThreadPool& pool,
                      int threads, int max_parallel);

  /// Parallel lanes (model replicas); 1 when everything runs inline.
  int threads() const { return static_cast<int>(replicas_.size()); }

  /// Forward/backward over `batch`, ordered gradient reduction, one
  /// fused-clip Adam step, replica re-sync.  Example i draws dropout from
  /// Rng(dropout_seed, first_stream + i); the caller advances first_stream
  /// by batch.size() so every example in a run owns a unique stream.
  /// Returns the batch's summed loss.  Calls from inside one of the pool's
  /// own workers degrade to a single-lane inline run (same results, no
  /// deadlock).
  double train_batch(const std::vector<const TrainExample*>& batch,
                     uint64_t dropout_seed, uint64_t first_stream);

  /// Dropout-free loss sum over `batch` (the validation pass), parallelized
  /// the same way and summed in example order.
  double eval_sum(const std::vector<const TrainExample*>& batch);

 private:
  void sync_replicas();

  Transformer& master_;
  Adam& adam_;
  par::ThreadPool& pool_;  ///< global_pool() unless a test passed its own
  std::vector<std::unique_ptr<Transformer>> replicas_;
  std::vector<std::vector<Tensor>> slots_;  ///< per-example parameter grads
  std::vector<double> losses_;              ///< per-example losses
};

}  // namespace ota::ml
