// Autograd-free batched inference engine for the trained transformer.
//
// Transformer (transformer.hpp) is the mutable build/train representation:
// every forward constructs a Var graph so gradients can flow.  Greedy decoding
// through it re-runs the full decoder over the whole prefix at every step —
// O(L^2) work per token, O(L^3) per sequence — and allocates a throwaway
// autograd graph each time.  InferenceEngine is the lean evaluation
// representation compiled once from a trained model:
//
//  * weights are snapshotted into plain Tensors, with the per-head Q/K/V
//    projections of each attention site fused into single d_model x d_model
//    GEMMs (one matmul instead of 3*n_heads tiny ones);
//  * encode runs once per request and the cross-attention K/V of every
//    decoder layer are precomputed from the memory;
//  * decoding is incremental through a per-layer KV cache, so each step is
//    one-row work — O(L) per token, O(L^2) per sequence;
//  * greedy_decode_batch decodes many requests concurrently on an ota::par
//    thread pool (requests share only the immutable engine, so results are
//    bit-identical for any thread count).
//
// Numerical contract: the engine's greedy token output is IDENTICAL — token
// for token, bit for bit — to Transformer::greedy_decode.  Every loop here
// replicates the accumulation order (and the zero-skip of the NN GEMM kernel
// in tensor.cpp) of the reference ops, and fusing the head projections keeps
// each output column's dot product unchanged because GEMM columns are
// independent.  tests/test_infer.cpp property-tests this on trained models.
#pragma once

#include <memory>
#include <vector>

#include "ml/precision.hpp"
#include "ml/transformer.hpp"

namespace ota::par {
class ThreadPool;
}

namespace ota::ml {

/// Greedy next-token choice over a (1, vocab) logits row: the lowest index
/// of the maximum value.  The single argmax used by every decode path —
/// greedy_decode, greedy_decode_batch, and the continuous-batching
/// DecodeScheduler — so tie-breaking can never diverge between them.
nlp::TokenId argmax_token(const Tensor& logits);

/// One attention site with the head projections fused column-wise: column
/// block [h*d_head, (h+1)*d_head) of wq/wk/wv is head h's projection.
/// Templated on the tensor type so the double reference snapshot and the
/// float32 fast-tier snapshot share one layout (TT = Tensor or TensorF).
template <typename TT>
struct FusedAttentionWeightsT {
  TT wq, wk, wv;  ///< (d_model, d_model)
  TT wo;          ///< (d_model, d_model)
  TT bo;          ///< (1, d_model)
};
using FusedAttentionWeights = FusedAttentionWeightsT<Tensor>;

template <typename TT>
struct FeedForwardWeightsT {
  TT w_in, b_in;    ///< (d_model, d_ff), (1, d_ff)
  TT w_out, b_out;  ///< (d_ff, d_model), (1, d_model)
};
using FeedForwardWeights = FeedForwardWeightsT<Tensor>;

template <typename TT>
struct LayerNormWeightsT {
  TT gamma, beta;  ///< (1, d_model)
};
using LayerNormWeights = LayerNormWeightsT<Tensor>;

template <typename TT>
struct EncoderLayerWeightsT {
  FusedAttentionWeightsT<TT> self;
  FeedForwardWeightsT<TT> ffn;
  LayerNormWeightsT<TT> norm1, norm2;
};
using EncoderLayerWeights = EncoderLayerWeightsT<Tensor>;

template <typename TT>
struct DecoderLayerWeightsT {
  FusedAttentionWeightsT<TT> self, cross;
  FeedForwardWeightsT<TT> ffn;
  LayerNormWeightsT<TT> norm1, norm2, norm3;
};
using DecoderLayerWeights = DecoderLayerWeightsT<Tensor>;

class InferenceEngine {
 public:
  /// Snapshots the model's weights — the double reference copy plus a
  /// float32 mirror for the fast tier (taken in the same compile, so both
  /// tiers are always available at decode time).  The engine keeps no
  /// reference to the Transformer; retraining or mutating it does not
  /// affect the engine.
  explicit InferenceEngine(const Transformer& model);

  const TransformerConfig& config() const { return cfg_; }

  /// Encoder memory (L, d_model); bit-identical to Transformer::encode at
  /// inference settings.  Throws InvalidArgument for an empty input or one
  /// longer than the positional table.
  Tensor encode(const std::vector<nlp::TokenId>& src) const;

  /// Float32-tier encoder memory: the same pass through the f32 weight
  /// snapshot and SIMD kernels.  Exposed for the kernel-accuracy tests; the
  /// decode paths reach it through Session's precision argument.
  TensorF encode_f32(const std::vector<nlp::TokenId>& src) const;

  /// Greedy decode.  At Precision::kDouble (the default) the output is
  /// token-for-token identical to Transformer::greedy_decode (max_len is
  /// clamped to config().max_len the same way).  Precision::kFloat32
  /// decodes through the f32 snapshot — deterministic run to run, and
  /// token-identical to the double tier on trained models (the agreement
  /// property bench_infer_tier and the test suites gate on).
  std::vector<nlp::TokenId> greedy_decode(
      const std::vector<nlp::TokenId>& src, int64_t max_len,
      Precision precision = Precision::kDouble) const;

  /// Decodes every request independently on a thread pool.  `threads` 0
  /// (the default) runs on the persistent process-wide pool
  /// (par::global_pool(), sized by OTA_THREADS / hardware concurrency at
  /// first use); a positive count spawns a dedicated pool of that size for
  /// the call — the path the determinism-sweep tests rely on.  Results are
  /// positionally aligned with `srcs` and bit-identical for any thread
  /// count, including 1 (at either precision tier).  Throws InvalidArgument
  /// when max_len <= 0 and the batch is non-empty (decoding zero tokens is
  /// always a caller bug).
  std::vector<std::vector<nlp::TokenId>> greedy_decode_batch(
      const std::vector<std::vector<nlp::TokenId>>& srcs, int64_t max_len,
      int threads = 0, Precision precision = Precision::kDouble) const;

  /// As above, on a caller-owned pool (shared-pool call sites and tests).
  std::vector<std::vector<nlp::TokenId>> greedy_decode_batch(
      const std::vector<std::vector<nlp::TokenId>>& srcs, int64_t max_len,
      par::ThreadPool& pool,
      Precision precision = Precision::kDouble) const;

  /// Incremental decoding state for one request: the encoder memory, the
  /// precomputed cross-attention K/V of every decoder layer, and the growing
  /// self-attention KV cache.  step() feeds one token and returns the
  /// next-token logits row.  Exposed for tests (incremental-vs-full logits
  /// agreement) and for callers that need the logits, not just the argmax.
  class Session {
   public:
    /// `precision` selects the numeric tier for this session's whole decode
    /// (encode pass, KV caches, kernels).  The float32 tier's logits are
    /// widened into the double row step() returns, which preserves the
    /// argmax exactly (widening is monotone and tie-preserving), so every
    /// downstream decode loop is tier-agnostic.
    Session(const InferenceEngine& engine, const std::vector<nlp::TokenId>& src,
            Precision precision = Precision::kDouble);

    /// Feeds `token` at the next position and returns the logits (1, vocab)
    /// for the following token.  Throws InvalidArgument once the decoder
    /// length would exceed the positional table.
    const Tensor& step(nlp::TokenId token);

    /// Number of tokens fed so far.
    int64_t length() const { return length_; }

    Precision precision() const { return precision_; }

   private:
    void step_f32(nlp::TokenId token);

    const InferenceEngine& eng_;
    Precision precision_ = Precision::kDouble;
    Tensor memory_;  ///< (L_src, d_model); double tier only
    /// Per decoder layer: cross-attention K/V (L_src, d_model), computed once.
    std::vector<Tensor> cross_k_, cross_v_;
    /// Per decoder layer: self-attention KV cache, row-major (length_ rows of
    /// d_model doubles), appended one row per step.
    std::vector<std::vector<double>> self_k_, self_v_;
    /// Scratch rows reused across steps (hot path: no per-token allocation).
    std::vector<double> x_, row_, ctx_, out_, scores_, ff_;
    /// Float32-tier state, the exact mirror of the double members above.
    /// Only one tier's state is ever allocated per session.
    TensorF memory_f_;
    std::vector<TensorF> cross_kf_, cross_vf_;
    std::vector<std::vector<float>> self_kf_, self_vf_;
    std::vector<float> xf_, rowf_, ctxf_, outf_, scoresf_, fff_, logitsf_;
    Tensor logits_;  ///< (1, vocab); f32 steps widen into it
    int64_t length_ = 0;
  };

 private:
  friend class Session;

  TransformerConfig cfg_;
  int64_t d_head_ = 0;
  Tensor src_embed_, tgt_embed_;  ///< (vocab, d_model)
  Tensor pos_;                    ///< (max_len, d_model) positional table
  std::vector<EncoderLayerWeights> encoder_;
  std::vector<DecoderLayerWeights> decoder_;
  Tensor out_w_;  ///< (d_model, vocab)
  Tensor out_b_;  ///< (1, vocab)

  /// Float32 mirror of the whole snapshot, for Precision::kFloat32 sessions:
  /// half the memory traffic per decode step on the same fused layout.
  TensorF src_embed_f_, tgt_embed_f_, pos_f_;
  std::vector<EncoderLayerWeightsT<TensorF>> encoder_f_;
  std::vector<DecoderLayerWeightsT<TensorF>> decoder_f_;
  TensorF out_w_f_, out_b_f_;
};

}  // namespace ota::ml
