// Transformer building blocks (Vaswani et al., as adapted in the paper):
// linear projections, sinusoidal positional encoding, multi-head attention,
// position-wise feed-forward, and the encoder/decoder blocks with residual
// connections and layer normalization.
#pragma once

#include <string>
#include <vector>

#include "ml/ops.hpp"

namespace ota::ml {

/// Collects trainable parameters for the optimizer and serialization.
class ParameterRegistry {
 public:
  Var track(Var p, const std::string& name);
  const std::vector<Var>& parameters() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<Var> params_;
  std::vector<std::string> names_;
};

/// y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in, int64_t out, Rng& rng, ParameterRegistry& reg,
         const std::string& name);
  Var forward(const Var& x) const;

 private:
  Var w_, b_;
};

/// Fixed sine/cosine positional table added to the (scaled) embeddings.
class PositionalEncoding {
 public:
  PositionalEncoding() = default;
  PositionalEncoding(int64_t max_len, int64_t d_model);
  /// Adds positions 0..L-1 to x (L,d).
  Var forward(const Var& x) const;
  /// The raw (max_len, d_model) table; InferenceEngine reads it directly.
  const Tensor& table() const { return table_; }

 private:
  Tensor table_;
};

/// Multi-head scaled dot-product attention with per-head projections.
class MultiHeadAttention {
 public:
  MultiHeadAttention() = default;
  MultiHeadAttention(int64_t d_model, int64_t n_heads, Rng& rng,
                     ParameterRegistry& reg, const std::string& name);
  /// q from the query sequence, k/v from the key-value sequence; causal
  /// restricts each position to earlier ones (decoder self-attention).
  Var forward(const Var& query, const Var& key_value, bool causal,
              double dropout_p, bool training, Rng& rng) const;

 private:
  struct Head {
    Var wq, wk, wv;
  };
  std::vector<Head> heads_;
  Var wo_, bo_;
  int64_t d_head_ = 0;
};

/// Two-layer position-wise FFN with ReLU and dropout (paper Section II-A).
class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(int64_t d_model, int64_t d_ff, Rng& rng, ParameterRegistry& reg,
              const std::string& name);
  Var forward(const Var& x, double dropout_p, bool training, Rng& rng) const;

 private:
  Linear in_, out_;
};

/// Learned gain/bias pair for one layer-norm site.
class LayerNormParams {
 public:
  LayerNormParams() = default;
  LayerNormParams(int64_t d_model, ParameterRegistry& reg,
                  const std::string& name);
  Var forward(const Var& x) const;

 private:
  Var gamma_, beta_;
};

/// Encoder block: self-attention + FFN, post-norm residuals.
class EncoderLayer {
 public:
  EncoderLayer() = default;
  EncoderLayer(int64_t d_model, int64_t n_heads, int64_t d_ff, Rng& rng,
               ParameterRegistry& reg, const std::string& name);
  Var forward(const Var& x, double dropout_p, bool training, Rng& rng) const;

 private:
  MultiHeadAttention self_attn_;
  FeedForward ffn_;
  LayerNormParams norm1_, norm2_;
};

/// Decoder block: masked self-attention + cross-attention + FFN.
class DecoderLayer {
 public:
  DecoderLayer() = default;
  DecoderLayer(int64_t d_model, int64_t n_heads, int64_t d_ff, Rng& rng,
               ParameterRegistry& reg, const std::string& name);
  Var forward(const Var& x, const Var& memory, double dropout_p, bool training,
              Rng& rng) const;

 private:
  MultiHeadAttention self_attn_, cross_attn_;
  FeedForward ffn_;
  LayerNormParams norm1_, norm2_, norm3_;
};

}  // namespace ota::ml
