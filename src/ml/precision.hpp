// Numeric tier selection for the inference engine's decode path.
//
// kDouble is the bit-identity reference: every kernel replicates the autograd
// ops' accumulation order, so its token streams match Transformer::greedy_decode
// bit for bit.  kFloat32 is the serving tier: the engine decodes through a
// float32 weight snapshot with SIMD row kernels — half the memory traffic of
// the double path on the decode-shape GEMV/attention loops — and is gated on
// token-level agreement with the reference (bench_infer_tier hard-fails on any
// divergence on trained models, rather than silently degrading results).
//
// The tier is a runtime knob threaded through the whole serving stack:
// InferenceEngine decode calls -> ml::DecodeScheduler::Options ->
// core::Predictor::predict_batch / core::SerialPredictionClient ->
// serve::CampaignServer::Options and per-register_topology overrides.
#pragma once

#include "common/error.hpp"

namespace ota::ml {

enum class Precision {
  kDouble = 0,   ///< bit-identity reference tier (training-side tensors)
  kFloat32 = 1,  ///< SIMD serving tier, gated on token agreement
};

inline const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kDouble: return "double";
    case Precision::kFloat32: return "float32";
  }
  return "invalid";
}

/// Door-policy validation for precision knobs that arrive through option
/// structs (where an out-of-range value can be forged with a static_cast):
/// throws InvalidArgument naming the call site, returns the value otherwise.
inline Precision validated_precision(Precision p, const char* where) {
  if (p != Precision::kDouble && p != Precision::kFloat32) {
    throw InvalidArgument(std::string(where) +
                          ": invalid precision tier (expected double or "
                          "float32)");
  }
  return p;
}

}  // namespace ota::ml
