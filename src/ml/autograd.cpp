#include "ml/autograd.hpp"

#include <algorithm>
#include <unordered_set>

namespace ota::ml {

Tensor& Node::ensure_grad() {
  if (!grad.same_shape(value)) {
    grad = Tensor(value.rows(), value.cols());
  }
  return grad;
}

Var parameter(Tensor value) {
  auto n = std::make_shared<Node>(std::move(value));
  n->requires_grad = true;
  return n;
}

Var constant(Tensor value) {
  return std::make_shared<Node>(std::move(value));
}

Var make_node(Tensor value, std::vector<Var> parents,
              std::function<void(Node&)> backward_fn) {
  auto n = std::make_shared<Node>(std::move(value));
  n->requires_grad = std::any_of(parents.begin(), parents.end(),
                                 [](const Var& p) { return p->requires_grad; });
  if (n->requires_grad) {
    n->parents = std::move(parents);
    n->backward_fn = std::move(backward_fn);
  }
  return n;
}

void backward(const Var& root) {
  if (root->value.size() != 1) {
    throw InvalidArgument("backward: root must be a scalar");
  }
  // Topological order by iterative DFS.  backward() runs once per training
  // example, so the visited check is hot: a hash set (vs. a red-black tree)
  // keeps it O(1) per edge.  Only membership is queried — iteration order
  // never leaks into the gradient accumulation order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  visited.reserve(256);
  order.reserve(256);
  std::vector<std::pair<Node*, size_t>> stack{{root.get(), 0}};
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      Node* parent = node->parents[next].get();
      ++next;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // order is child-after-parents; traverse in reverse (root first).
  root->ensure_grad().fill(1.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

}  // namespace ota::ml
