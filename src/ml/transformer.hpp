// The encoder-decoder transformer (paper Section III-C).
//
// Architecture follows Vaswani et al. with the paper's adaptation knobs: the
// embedding width and head count are configurable (the paper uses 720/12 on a
// GPU; the CPU-scale benchmark defaults are smaller), the loss is weighted
// cross-entropy with extra weight on numeric tokens, and decoding is greedy.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ml/layers.hpp"
#include "nlp/vocabulary.hpp"

namespace ota::ml {

struct TransformerConfig {
  int64_t vocab_size = 0;   ///< set from the tokenizer
  int64_t d_model = 64;     ///< paper: 720
  int64_t n_heads = 4;      ///< paper: 12
  int64_t n_layers = 2;     ///< encoder and decoder stack depth (paper: 6)
  int64_t d_ff = 128;       ///< position-wise FFN width
  int64_t max_len = 1024;   ///< positional table size
  double dropout = 0.1;
  uint64_t seed = 1234;
};

class Transformer {
 public:
  explicit Transformer(const TransformerConfig& config);

  const TransformerConfig& config() const { return cfg_; }
  const std::vector<Var>& parameters() const { return reg_.parameters(); }
  /// Registry names aligned with parameters(); InferenceEngine snapshots
  /// weights by these names.
  const std::vector<std::string>& parameter_names() const { return reg_.names(); }
  const PositionalEncoding& positional() const { return pos_; }

  /// Encoder memory for a source token sequence.
  Var encode(const std::vector<nlp::TokenId>& src, bool training, Rng& rng) const;

  /// Decoder logits (L_tgt, vocab) given memory and decoder input tokens.
  Var decode(const Var& memory, const std::vector<nlp::TokenId>& tgt_in,
             bool training, Rng& rng) const;

  /// Teacher-forced training loss for one (src, tgt) pair.  The target is
  /// consumed as  in: <bos> t1..tn   out: t1..tn <eos>, with per-token weights
  /// (numeric tokens get the paper's 1.2x weight by default upstream).
  Var loss(const std::vector<nlp::TokenId>& src,
           const std::vector<nlp::TokenId>& tgt,
           const std::vector<double>& target_weights, Rng& rng,
           bool training = true) const;

  /// Greedy autoregressive decoding until <eos> or max_len.  `max_len` is
  /// clamped to the positional table size (config().max_len) so a generous
  /// token budget can never index past the table; an encoder input longer
  /// than the table still throws (there is no way to shorten it for the
  /// caller).  This Var-based path is the training/reference implementation;
  /// production decoding goes through ml::InferenceEngine (infer.hpp), which
  /// is property-tested to emit bit-identical tokens.
  std::vector<nlp::TokenId> greedy_decode(const std::vector<nlp::TokenId>& src,
                                          int64_t max_len) const;

  /// Overwrites every parameter value with `other`'s (architectures must
  /// match).  The data-parallel trainer re-syncs its per-worker replicas
  /// from the master model through this after each optimizer step.
  void copy_parameters_from(const Transformer& other);

  /// Binary weight serialization (architecture must match on load).
  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Total number of scalar parameters.
  int64_t parameter_count() const;

 private:
  TransformerConfig cfg_;
  ParameterRegistry reg_;
  Var src_embed_, tgt_embed_;
  PositionalEncoding pos_;
  std::vector<EncoderLayer> encoder_;
  std::vector<DecoderLayer> decoder_;
  Var out_w_, out_b_;
  mutable Rng inference_rng_{0};  // dropout disabled at inference; unused draws
};

}  // namespace ota::ml
