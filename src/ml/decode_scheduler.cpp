#include "ml/decode_scheduler.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"
#include "par/thread_pool.hpp"

namespace ota::ml {

using nlp::TokenId;
using nlp::Vocabulary;

namespace {

/// Door policy: a non-positive max_batch admits requests that can never
/// join a batch and hangs every Ticket::wait() forever — refuse it at
/// construction (before any thread or pool is spawned), same as the
/// max_tokens <= 0 check in submit().
DecodeScheduler::Options validated(DecodeScheduler::Options opt) {
  if (opt.max_batch < 1) {
    throw InvalidArgument(
        "DecodeScheduler: max_batch must be positive, got " +
        std::to_string(opt.max_batch) +
        " (a batch that can never admit a request would hang every wait)");
  }
  validated_precision(opt.precision, "DecodeScheduler");
  return opt;
}

}  // namespace

/// One live sequence in the dynamic batch.  Owned by the scheduler thread;
/// pool workers touch exactly one ActiveRequest per round (caller-indexed),
/// so requests never share mutable state.
struct DecodeScheduler::ActiveRequest {
  std::shared_ptr<Ticket> ticket;
  std::unique_ptr<InferenceEngine::Session> session;
  TokenId prev = Vocabulary::kBos;
  int64_t steps_done = 0;
  int64_t budget = 0;  ///< min(max_tokens, cfg.max_len), as greedy_decode
  bool finished = false;
  bool cancelled = false;  ///< finished via cancellation, not tokens/error
};

const std::vector<TokenId>& DecodeScheduler::Ticket::wait() {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [this] { return finished; });
  if (error) {
    // Rethrow a copy constructed on THIS thread, not the stored exception
    // object itself.  rethrow_exception would hand waiters a reference to
    // the scheduler thread's object, whose lifetime is then governed by the
    // libstdc++ exception refcount — synchronization TSan cannot observe
    // (libstdc++ is uninstrumented), so a handler far up the stack would
    // appear to race the scheduler's release of its ticket reference.  The
    // copy happens while this thread still holds the ticket alive, so every
    // access is ordered through the instrumented shared_ptr refcount.
    try {
      std::rethrow_exception(error);
    } catch (const Cancelled& e) {
      throw Cancelled(e.what());
    } catch (const InvalidArgument& e) {
      throw InvalidArgument(e.what());
    } catch (const fault::InjectedFault& e) {
      // Most-derived subtypes first, so the copy preserves the dynamic type:
      // the campaign server classifies a ticket's failure (transient
      // ConvergenceError => retry; InjectedFault carries its site) from
      // exactly what this rethrows.
      throw fault::InjectedFault(e.site(), e.what());
    } catch (const ConvergenceError& e) {
      throw ConvergenceError(e.what());
    } catch (const Error& e) {
      throw Error(e.what());
    }
    // Non-ota exceptions (none today) propagate from the rethrow as-is.
  }
  return tokens;
}

bool DecodeScheduler::Ticket::done() const {
  std::lock_guard<std::mutex> lk(mu);
  return finished;
}

void DecodeScheduler::Ticket::cancel() {
  cancel_flag.store(true, std::memory_order_release);
}

bool DecodeScheduler::Ticket::cancel_requested() const {
  return cancel_flag.load(std::memory_order_acquire) ||
         (sub.cancel && sub.cancel->load(std::memory_order_acquire));
}

bool DecodeScheduler::Ticket::expired(
    std::chrono::steady_clock::time_point now) const {
  return sub.deadline != std::chrono::steady_clock::time_point::max() &&
         now >= sub.deadline;
}

DecodeScheduler::DecodeScheduler(const InferenceEngine& engine)
    : DecodeScheduler(engine, Options()) {}

DecodeScheduler::DecodeScheduler(const InferenceEngine& engine, Options opt)
    : engine_(engine), opt_(validated(opt)),
      own_pool_(opt.threads > 0 ? std::make_unique<par::ThreadPool>(opt.threads)
                                : nullptr),
      pool_(own_pool_ ? *own_pool_ : par::global_pool()) {
  thread_ = std::thread([this] { loop(); });
}

DecodeScheduler::~DecodeScheduler() { shutdown(/*drain=*/true); }

std::shared_ptr<DecodeScheduler::Ticket> DecodeScheduler::submit(
    std::vector<TokenId> src, int64_t max_tokens) {
  return submit(std::move(src), max_tokens, SubmitOptions{});
}

std::shared_ptr<DecodeScheduler::Ticket> DecodeScheduler::submit(
    std::vector<TokenId> src, int64_t max_tokens, SubmitOptions sub) {
  if (max_tokens <= 0) {
    throw InvalidArgument(
        "DecodeScheduler::submit: max_tokens must be positive, got " +
        std::to_string(max_tokens) +
        " (a zero token budget would silently decode nothing)");
  }
  auto ticket = std::make_shared<Ticket>();
  ticket->src = std::move(src);
  ticket->max_tokens = max_tokens;
  ticket->sub = std::move(sub);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      throw InvalidArgument(
          "DecodeScheduler::submit: scheduler is shut down and no longer "
          "accepts requests");
    }
    pending_.push_back(ticket);
    ++stats_.submitted;
  }
  cv_.notify_all();
  return ticket;
}

void DecodeScheduler::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stop_) {
      stop_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
  // Serialize the join so concurrent shutdown()/destructor calls are safe.
  std::lock_guard<std::mutex> jl(join_mu_);
  if (thread_.joinable()) thread_.join();
}

DecodeScheduler::Stats DecodeScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void DecodeScheduler::publish(const std::shared_ptr<Ticket>& ticket) {
  {
    std::lock_guard<std::mutex> lk(ticket->mu);
    ticket->finished = true;
  }
  ticket->cv.notify_all();
}

void DecodeScheduler::loop() {
  std::vector<ActiveRequest> active;
  std::vector<std::shared_ptr<Ticket>> admitted;
  for (;;) {
    try {
      if (!run_round(active, admitted)) return;
    } catch (...) {
      // Round-level containment: a failure escaping the per-ticket handlers
      // inside run_round (batch machinery, an injected round fault) fails
      // the tickets that round was carrying — never the scheduler thread.
      // Requests submitted afterwards decode normally.
      fail_round(active, admitted, std::current_exception());
    }
  }
}

void DecodeScheduler::fail_round(std::vector<ActiveRequest>& active,
                                 std::vector<std::shared_ptr<Ticket>>& admitted,
                                 const std::exception_ptr& err) {
  uint64_t failed = 0, cancelled = 0;
  // Tickets admitted but not yet promoted to sessions (moved-from slots are
  // null; a ticket already resolved by the admission path is done).
  for (auto& t : admitted) {
    if (t && !t->done()) {
      t->error = err;
      ++failed;
      publish(t);
    }
  }
  admitted.clear();
  for (auto& a : active) {
    if (!a.ticket || a.ticket->done()) continue;
    if (!a.ticket->error) {
      a.ticket->error = err;
      ++failed;
    } else if (a.cancelled) {
      ++cancelled;  // the round's cancel sweep marked it before the failure
    } else {
      ++failed;  // a per-session error set pre-publication
    }
    publish(a.ticket);
  }
  active.clear();
  std::lock_guard<std::mutex> lk(mu_);
  stats_.failed += failed;
  stats_.cancelled += cancelled;
}

bool DecodeScheduler::run_round(std::vector<ActiveRequest>& active,
                                std::vector<std::shared_ptr<Ticket>>& admitted) {
  bool cancel_everything = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Only sleep when the batch is empty: with live sessions the loop keeps
    // stepping and just soaks up whatever new arrivals are pending.
    if (active.empty()) {
      cv_.wait(lk, [this] { return stop_ || !pending_.empty(); });
    }
    if (stop_ && !drain_) {
      // Drainless shutdown: answer every queued request right here so no
      // waiter blocks forever; in-flight sessions are answered below.
      for (const auto& t : pending_) {
        t->error = std::make_exception_ptr(
            Cancelled("DecodeScheduler: request cancelled by shutdown"));
        ++stats_.cancelled;
        publish(t);
      }
      pending_.clear();
      cancel_everything = true;
    } else if (stop_ && pending_.empty() && active.empty()) {
      return false;  // drained
    } else {
      // Cancellation sweep over the wait queue: a cancelled or expired
      // request resolves right here and never occupies a batch slot it
      // could not use.
      const auto now = std::chrono::steady_clock::now();
      for (auto it = pending_.begin(); it != pending_.end();) {
        if ((*it)->cancel_requested() || (*it)->expired(now)) {
          (*it)->error = std::make_exception_ptr(Cancelled(
              (*it)->cancel_requested()
                  ? "DecodeScheduler: request cancelled before decoding"
                  : "DecodeScheduler: request deadline exceeded before "
                    "decoding"));
          ++stats_.cancelled;
          publish(*it);
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
      // Continuous admission: arrivals join the running batch up to
      // max_batch; the rest queue until sequences retire.
      while (!pending_.empty() &&
             active.size() + admitted.size() <
                 static_cast<size_t>(opt_.max_batch)) {
        admitted.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
    }
  }
  if (cancel_everything) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& a : active) {
      a.ticket->error = std::make_exception_ptr(
          Cancelled("DecodeScheduler: request cancelled by shutdown"));
      ++stats_.cancelled;
      publish(a.ticket);
    }
    active.clear();
    return false;
  }

  // Session construction (the encode pass) runs outside the queue lock so
  // submitters are never blocked behind it.  A request the engine refuses
  // (empty input, over-long input) fails its ticket here; one cancelled
  // between the sweep above and now resolves without paying the encode.
  for (auto& t : admitted) {
    ActiveRequest a;
    a.ticket = std::move(t);
    if (a.ticket->cancel_requested() ||
        a.ticket->expired(std::chrono::steady_clock::now())) {
      a.ticket->error = std::make_exception_ptr(Cancelled(
          a.ticket->cancel_requested()
              ? "DecodeScheduler: request cancelled before decoding"
              : "DecodeScheduler: request deadline exceeded before "
                "decoding"));
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.cancelled;
      }
      publish(a.ticket);
      continue;
    }
    try {
      FAULT_SITE("ml.session.encode");
      a.session = std::make_unique<InferenceEngine::Session>(
          engine_, a.ticket->src, opt_.precision);
      a.budget = std::min<int64_t>(a.ticket->max_tokens,
                                   engine_.config().max_len);
      active.push_back(std::move(a));
    } catch (...) {
      a.ticket->error = std::current_exception();
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.failed;
      publish(a.ticket);
    }
  }
  admitted.clear();
  if (active.empty()) return true;

  // Mid-flight cancellation: a live sequence whose ticket was cancelled
  // (or whose deadline passed) retires from the dynamic batch before this
  // round steps — its slot frees for the next admission and its waiters
  // wake with Cancelled instead of paying for tokens nobody wants.
  const auto round_now = std::chrono::steady_clock::now();
  size_t retired_by_cancel = 0;
  for (ActiveRequest& a : active) {
    if (a.ticket->cancel_requested() || a.ticket->expired(round_now)) {
      a.ticket->error = std::make_exception_ptr(Cancelled(
          a.ticket->cancel_requested()
              ? "DecodeScheduler: request cancelled mid-decode"
              : "DecodeScheduler: request deadline exceeded mid-decode"));
      a.finished = true;
      a.cancelled = true;
      ++retired_by_cancel;
    }
  }
  const size_t batch = active.size() - retired_by_cancel;

  // Injectable round failure: fires before the step fan-out, with the
  // batch's tickets in flight, so it exercises loop()'s fail_round
  // containment rather than any per-ticket handler.
  FAULT_SITE("ml.scheduler.round");

  // One continuous-batching round: every live session advances one token,
  // fanned out across the pool.  Each worker touches only its own
  // caller-indexed requests, so the per-request token stream is exactly
  // greedy_decode's whatever the interleaving.
  STAT_REGION("ml.scheduler.round");
  STAT_COUNTER_ADD("ml.scheduler.batch_sessions", batch);
  pool_.parallel_for(active.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ActiveRequest& a = active[i];
      if (a.finished) continue;  // cancelled above: do not step it
      try {
        FAULT_SITE("ml.session.step");
        const TokenId best = argmax_token(a.session->step(a.prev));
        ++a.steps_done;
        if (best == Vocabulary::kEos) {
          a.finished = true;
        } else {
          // Pre-publication the ticket's token buffer belongs to the
          // scheduler; waiters read it only after publish().
          a.ticket->tokens.push_back(best);
          a.prev = best;
          if (a.steps_done >= a.budget) a.finished = true;
        }
      } catch (...) {
        a.ticket->error = std::current_exception();
        a.finished = true;
      }
    }
  });

  // Count the round before publishing any ticket: once a waiter's wait()
  // returns, stats() must already include that request.
  uint64_t served = 0, failed = 0, cancelled = 0;
  for (const auto& a : active) {
    if (!a.finished) continue;
    if (a.cancelled) {
      ++cancelled;
    } else {
      (a.ticket->error ? failed : served) += 1;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (batch > 0) {
      // A round is only a round if at least one session stepped; a sweep
      // that merely retired cancelled sequences must not dilute the
      // occupancy figure of merit.
      ++stats_.rounds;
      stats_.session_steps += batch;
      if (opt_.precision == Precision::kFloat32) {
        stats_.tokens_f32 += batch;
      } else {
        stats_.tokens_double += batch;
      }
      stats_.peak_batch = std::max<uint64_t>(stats_.peak_batch, batch);
    }
    stats_.served += served;
    stats_.failed += failed;
    stats_.cancelled += cancelled;
  }

  // Retire finished sequences immediately — their slots free up for the
  // next round's admissions; survivors keep their relative order.
  size_t live = 0;
  for (auto& a : active) {
    if (a.finished) {
      publish(a.ticket);
    } else {
      if (live != static_cast<size_t>(&a - active.data())) {
        active[live] = std::move(a);
      }
      ++live;
    }
  }
  active.resize(live);
  return true;
}

}  // namespace ota::ml
