#include "ml/layers.hpp"

#include <cmath>

namespace ota::ml {

Var ParameterRegistry::track(Var p, const std::string& name) {
  params_.push_back(p);
  names_.push_back(name);
  return p;
}

Linear::Linear(int64_t in, int64_t out, Rng& rng, ParameterRegistry& reg,
               const std::string& name) {
  w_ = reg.track(parameter(Tensor::xavier(in, out, rng)), name + ".w");
  b_ = reg.track(parameter(Tensor(1, out)), name + ".b");
}

Var Linear::forward(const Var& x) const { return add_bias(matmul(x, w_), b_); }

PositionalEncoding::PositionalEncoding(int64_t max_len, int64_t d_model)
    : table_(max_len, d_model) {
  // PE(pos, 2i) = sin(pos / 10000^(2i/d)); PE(pos, 2i+1) = cos(...).
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < d_model; ++i) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * static_cast<double>(i / 2) / static_cast<double>(d_model));
      table_(pos, i) = (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
}

Var PositionalEncoding::forward(const Var& x) const {
  const int64_t len = x->value.rows();
  if (len > table_.rows()) {
    throw InvalidArgument("PositionalEncoding: sequence length " +
                          std::to_string(len) + " exceeds the positional table (max_len " +
                          std::to_string(table_.rows()) + "); re-train with a larger max_len or shorten the input");
  }
  Tensor pos(len, x->value.cols());
  for (int64_t r = 0; r < len; ++r) {
    for (int64_t c = 0; c < pos.cols(); ++c) pos(r, c) = table_(r, c);
  }
  return add(x, constant(std::move(pos)));
}

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int64_t n_heads,
                                       Rng& rng, ParameterRegistry& reg,
                                       const std::string& name) {
  if (d_model % n_heads != 0) {
    throw InvalidArgument("MultiHeadAttention: d_model must divide by heads");
  }
  d_head_ = d_model / n_heads;
  heads_.resize(static_cast<size_t>(n_heads));
  for (int64_t h = 0; h < n_heads; ++h) {
    const std::string hn = name + ".h" + std::to_string(h);
    heads_[static_cast<size_t>(h)].wq =
        reg.track(parameter(Tensor::xavier(d_model, d_head_, rng)), hn + ".wq");
    heads_[static_cast<size_t>(h)].wk =
        reg.track(parameter(Tensor::xavier(d_model, d_head_, rng)), hn + ".wk");
    heads_[static_cast<size_t>(h)].wv =
        reg.track(parameter(Tensor::xavier(d_model, d_head_, rng)), hn + ".wv");
  }
  wo_ = reg.track(parameter(Tensor::xavier(d_model, d_model, rng)), name + ".wo");
  bo_ = reg.track(parameter(Tensor(1, d_model)), name + ".bo");
}

Var MultiHeadAttention::forward(const Var& query, const Var& key_value,
                                bool causal, double dropout_p, bool training,
                                Rng& rng) const {
  std::vector<Var> outputs;
  outputs.reserve(heads_.size());
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(d_head_));
  for (const Head& h : heads_) {
    const Var q = matmul(query, h.wq);
    const Var k = matmul(key_value, h.wk);
    const Var v = matmul(key_value, h.wv);
    Var scores = scale(matmul_nt(q, k), inv_sqrt_dk);
    if (causal) scores = causal_mask(scores);
    Var attn = softmax_rows(scores);
    attn = dropout(attn, dropout_p, training, rng);
    outputs.push_back(matmul(attn, v));
  }
  return add_bias(matmul(concat_cols(outputs), wo_), bo_);
}

FeedForward::FeedForward(int64_t d_model, int64_t d_ff, Rng& rng,
                         ParameterRegistry& reg, const std::string& name)
    : in_(d_model, d_ff, rng, reg, name + ".in"),
      out_(d_ff, d_model, rng, reg, name + ".out") {}

Var FeedForward::forward(const Var& x, double dropout_p, bool training,
                         Rng& rng) const {
  Var h = relu(in_.forward(x));
  h = dropout(h, dropout_p, training, rng);
  h = out_.forward(h);
  return dropout(h, dropout_p, training, rng);
}

LayerNormParams::LayerNormParams(int64_t d_model, ParameterRegistry& reg,
                                 const std::string& name) {
  gamma_ = reg.track(parameter(Tensor(1, d_model, 1.0)), name + ".gamma");
  beta_ = reg.track(parameter(Tensor(1, d_model)), name + ".beta");
}

Var LayerNormParams::forward(const Var& x) const {
  return layer_norm(x, gamma_, beta_);
}

EncoderLayer::EncoderLayer(int64_t d_model, int64_t n_heads, int64_t d_ff,
                           Rng& rng, ParameterRegistry& reg,
                           const std::string& name)
    : self_attn_(d_model, n_heads, rng, reg, name + ".self"),
      ffn_(d_model, d_ff, rng, reg, name + ".ffn"),
      norm1_(d_model, reg, name + ".norm1"),
      norm2_(d_model, reg, name + ".norm2") {}

Var EncoderLayer::forward(const Var& x, double dropout_p, bool training,
                          Rng& rng) const {
  // Post-norm residuals as in the original architecture (paper Fig. 1).
  Var attn = self_attn_.forward(x, x, /*causal=*/false, dropout_p, training, rng);
  Var h = norm1_.forward(add(x, dropout(attn, dropout_p, training, rng)));
  Var ff = ffn_.forward(h, dropout_p, training, rng);
  return norm2_.forward(add(h, ff));
}

DecoderLayer::DecoderLayer(int64_t d_model, int64_t n_heads, int64_t d_ff,
                           Rng& rng, ParameterRegistry& reg,
                           const std::string& name)
    : self_attn_(d_model, n_heads, rng, reg, name + ".self"),
      cross_attn_(d_model, n_heads, rng, reg, name + ".cross"),
      ffn_(d_model, d_ff, rng, reg, name + ".ffn"),
      norm1_(d_model, reg, name + ".norm1"),
      norm2_(d_model, reg, name + ".norm2"),
      norm3_(d_model, reg, name + ".norm3") {}

Var DecoderLayer::forward(const Var& x, const Var& memory, double dropout_p,
                          bool training, Rng& rng) const {
  Var self = self_attn_.forward(x, x, /*causal=*/true, dropout_p, training, rng);
  Var h = norm1_.forward(add(x, dropout(self, dropout_p, training, rng)));
  Var cross = cross_attn_.forward(h, memory, /*causal=*/false, dropout_p, training, rng);
  h = norm2_.forward(add(h, dropout(cross, dropout_p, training, rng)));
  Var ff = ffn_.forward(h, dropout_p, training, rng);
  return norm3_.forward(add(h, ff));
}

}  // namespace ota::ml
