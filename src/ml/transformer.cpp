#include "ml/transformer.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

namespace ota::ml {

using nlp::TokenId;
using nlp::Vocabulary;

Transformer::Transformer(const TransformerConfig& config)
    : cfg_(config), pos_(config.max_len, config.d_model) {
  if (cfg_.vocab_size <= 0) {
    throw InvalidArgument("Transformer: vocab_size must be set");
  }
  Rng rng(cfg_.seed);
  src_embed_ = reg_.track(
      parameter(Tensor::xavier(cfg_.vocab_size, cfg_.d_model, rng)), "src_embed");
  tgt_embed_ = reg_.track(
      parameter(Tensor::xavier(cfg_.vocab_size, cfg_.d_model, rng)), "tgt_embed");
  for (int64_t l = 0; l < cfg_.n_layers; ++l) {
    encoder_.emplace_back(cfg_.d_model, cfg_.n_heads, cfg_.d_ff, rng, reg_,
                          "enc" + std::to_string(l));
  }
  for (int64_t l = 0; l < cfg_.n_layers; ++l) {
    decoder_.emplace_back(cfg_.d_model, cfg_.n_heads, cfg_.d_ff, rng, reg_,
                          "dec" + std::to_string(l));
  }
  out_w_ = reg_.track(
      parameter(Tensor::xavier(cfg_.d_model, cfg_.vocab_size, rng)), "out.w");
  out_b_ = reg_.track(parameter(Tensor(1, cfg_.vocab_size)), "out.b");
}

Var Transformer::encode(const std::vector<TokenId>& src, bool training,
                        Rng& rng) const {
  if (src.empty()) throw InvalidArgument("Transformer::encode: empty input");
  Var x = scale(embedding(src_embed_, src), std::sqrt(static_cast<double>(cfg_.d_model)));
  x = pos_.forward(x);
  x = dropout(x, cfg_.dropout, training, rng);
  for (const auto& layer : encoder_) {
    x = layer.forward(x, cfg_.dropout, training, rng);
  }
  return x;
}

Var Transformer::decode(const Var& memory, const std::vector<TokenId>& tgt_in,
                        bool training, Rng& rng) const {
  if (tgt_in.empty()) throw InvalidArgument("Transformer::decode: empty input");
  Var x = scale(embedding(tgt_embed_, tgt_in), std::sqrt(static_cast<double>(cfg_.d_model)));
  x = pos_.forward(x);
  x = dropout(x, cfg_.dropout, training, rng);
  for (const auto& layer : decoder_) {
    x = layer.forward(x, memory, cfg_.dropout, training, rng);
  }
  return add_bias(matmul(x, out_w_), out_b_);
}

Var Transformer::loss(const std::vector<TokenId>& src,
                      const std::vector<TokenId>& tgt,
                      const std::vector<double>& target_weights, Rng& rng,
                      bool training) const {
  if (tgt.empty()) throw InvalidArgument("Transformer::loss: empty target");
  if (target_weights.size() != tgt.size() + 1) {
    throw InvalidArgument(
        "Transformer::loss: need one weight per target token plus <eos>");
  }
  // Teacher forcing: in = <bos> t1..tn, out = t1..tn <eos>.
  std::vector<TokenId> in{Vocabulary::kBos};
  in.insert(in.end(), tgt.begin(), tgt.end());
  std::vector<TokenId> out = tgt;
  out.push_back(Vocabulary::kEos);

  const Var memory = encode(src, training, rng);
  const Var logits = decode(memory, in, training, rng);
  return cross_entropy(logits, out, target_weights);
}

std::vector<TokenId> Transformer::greedy_decode(const std::vector<TokenId>& src,
                                                int64_t max_len) const {
  const Var memory = encode(src, /*training=*/false, inference_rng_);
  // The decoder input at step s holds s+1 tokens; clamping the step budget to
  // the positional-table size keeps every lookup in range.
  const int64_t steps = std::min(max_len, cfg_.max_len);
  std::vector<TokenId> out{Vocabulary::kBos};
  for (int64_t step = 0; step < steps; ++step) {
    const Var logits = decode(memory, out, /*training=*/false, inference_rng_);
    const int64_t last = logits->value.rows() - 1;
    TokenId best = 0;
    double best_score = -1e300;
    for (int64_t c = 0; c < logits->value.cols(); ++c) {
      if (logits->value(last, c) > best_score) {
        best_score = logits->value(last, c);
        best = static_cast<TokenId>(c);
      }
    }
    if (best == Vocabulary::kEos) break;
    out.push_back(best);
  }
  return {out.begin() + 1, out.end()};  // strip <bos>
}

void Transformer::copy_parameters_from(const Transformer& other) {
  const auto& src = other.reg_.parameters();
  const auto& dst = reg_.parameters();
  if (src.size() != dst.size()) {
    throw InvalidArgument("Transformer::copy_parameters_from: parameter count mismatch");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (!dst[i]->value.same_shape(src[i]->value)) {
      throw InvalidArgument("Transformer::copy_parameters_from: shape mismatch");
    }
    dst[i]->value = src[i]->value;
  }
}

void Transformer::save(std::ostream& os) const {
  const char magic[8] = {'o', 't', 'a', 't', 'f', 'm', 'r', '1'};
  os.write(magic, sizeof magic);
  const int64_t n = static_cast<int64_t>(reg_.parameters().size());
  os.write(reinterpret_cast<const char*>(&n), sizeof n);
  for (const auto& p : reg_.parameters()) {
    const int64_t rows = p->value.rows(), cols = p->value.cols();
    os.write(reinterpret_cast<const char*>(&rows), sizeof rows);
    os.write(reinterpret_cast<const char*>(&cols), sizeof cols);
    os.write(reinterpret_cast<const char*>(p->value.data().data()),
             static_cast<std::streamsize>(sizeof(double) * p->value.data().size()));
  }
}

void Transformer::load(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::string(magic, 8) != "otatfmr1") {
    throw InvalidArgument("Transformer::load: bad file magic");
  }
  int64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof n);
  if (n != static_cast<int64_t>(reg_.parameters().size())) {
    throw InvalidArgument("Transformer::load: parameter count mismatch");
  }
  for (const auto& p : reg_.parameters()) {
    int64_t rows = 0, cols = 0;
    is.read(reinterpret_cast<char*>(&rows), sizeof rows);
    is.read(reinterpret_cast<char*>(&cols), sizeof cols);
    if (rows != p->value.rows() || cols != p->value.cols()) {
      throw InvalidArgument("Transformer::load: shape mismatch");
    }
    is.read(reinterpret_cast<char*>(p->value.data().data()),
            static_cast<std::streamsize>(sizeof(double) * p->value.data().size()));
    if (!is) throw InvalidArgument("Transformer::load: truncated file");
  }
}

int64_t Transformer::parameter_count() const {
  int64_t total = 0;
  for (const auto& p : reg_.parameters()) total += p->value.size();
  return total;
}

}  // namespace ota::ml
