#include "ml/ops.hpp"

#include <cmath>

namespace ota::ml {

namespace {

void check_same_shape(const Var& a, const Var& b, const char* op) {
  if (!a->value.same_shape(b->value)) {
    throw InvalidArgument(std::string(op) + ": shape mismatch");
  }
}

}  // namespace

Var matmul(const Var& a, const Var& b) {
  Tensor out;
  matmul_into(a->value, b->value, out);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    // dL/dA = G * B^T ; dL/dB = A^T * G.
    if (a->requires_grad) matmul_nt_acc(n.grad, b->value, a->ensure_grad());
    if (b->requires_grad) matmul_tn_acc(a->value, n.grad, b->ensure_grad());
  });
}

Var matmul_nt(const Var& a, const Var& b) {
  Tensor out;
  matmul_nt_into(a->value, b->value, out);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    // C = A B^T: dA = G B ; dB = G^T A.
    if (a->requires_grad) matmul_acc(n.grad, b->value, a->ensure_grad());
    if (b->requires_grad) matmul_tn_acc(n.grad, a->value, b->ensure_grad());
  });
}

Var add(const Var& a, const Var& b) {
  check_same_shape(a, b, "add");
  Tensor out = a->value;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) += b->value.at(i);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    for (const Var& p : {a, b}) {
      if (!p->requires_grad) continue;
      Tensor& g = p->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(i);
    }
  });
}

Var add_bias(const Var& a, const Var& bias) {
  if (bias->value.rows() != 1 || bias->value.cols() != a->value.cols()) {
    throw InvalidArgument("add_bias: bias must be (1, cols)");
  }
  Tensor out = a->value;
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) out(r, c) += bias->value(0, c);
  }
  return make_node(std::move(out), {a, bias}, [a, bias](Node& n) {
    if (a->requires_grad) {
      Tensor& g = a->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(i);
    }
    if (bias->requires_grad) {
      Tensor& g = bias->ensure_grad();
      for (int64_t r = 0; r < n.grad.rows(); ++r) {
        for (int64_t c = 0; c < n.grad.cols(); ++c) g(0, c) += n.grad(r, c);
      }
    }
  });
}

Var sub(const Var& a, const Var& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a->value;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) -= b->value.at(i);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    if (a->requires_grad) {
      Tensor& g = a->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(i);
    }
    if (b->requires_grad) {
      Tensor& g = b->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) g.at(i) -= n.grad.at(i);
    }
  });
}

Var mul(const Var& a, const Var& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a->value;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) *= b->value.at(i);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    if (a->requires_grad) {
      Tensor& g = a->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(i) * b->value.at(i);
    }
    if (b->requires_grad) {
      Tensor& g = b->ensure_grad();
      for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(i) * a->value.at(i);
    }
  });
}

Var scale(const Var& a, double c) {
  Tensor out = a->value;
  for (auto& v : out.data()) v *= c;
  return make_node(std::move(out), {a}, [a, c](Node& n) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) g.at(i) += c * n.grad.at(i);
  });
}

Var relu(const Var& a) {
  Tensor out = a->value;
  for (auto& v : out.data()) v = v > 0.0 ? v : 0.0;
  return make_node(std::move(out), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (a->value.at(i) > 0.0) g.at(i) += n.grad.at(i);
    }
  });
}

Var transpose(const Var& a) {
  Tensor out(a->value.cols(), a->value.rows());
  for (int64_t r = 0; r < a->value.rows(); ++r) {
    for (int64_t c = 0; c < a->value.cols(); ++c) out(c, r) = a->value(r, c);
  }
  return make_node(std::move(out), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (int64_t r = 0; r < n.grad.rows(); ++r) {
      for (int64_t c = 0; c < n.grad.cols(); ++c) g(c, r) += n.grad(r, c);
    }
  });
}

Var softmax_rows(const Var& a) {
  Tensor out = a->value;
  for (int64_t r = 0; r < out.rows(); ++r) {
    double mx = -1e300;
    for (int64_t c = 0; c < out.cols(); ++c) mx = std::max(mx, out(r, c));
    double denom = 0.0;
    for (int64_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::exp(out(r, c) - mx);
      denom += out(r, c);
    }
    for (int64_t c = 0; c < out.cols(); ++c) out(r, c) /= denom;
  }
  return make_node(std::move(out), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    // dL/dx_j = s_j * (g_j - sum_k g_k s_k) per row.
    Tensor& g = a->ensure_grad();
    for (int64_t r = 0; r < n.value.rows(); ++r) {
      double dot = 0.0;
      for (int64_t c = 0; c < n.value.cols(); ++c) {
        dot += n.grad(r, c) * n.value(r, c);
      }
      for (int64_t c = 0; c < n.value.cols(); ++c) {
        g(r, c) += n.value(r, c) * (n.grad(r, c) - dot);
      }
    }
  });
}

Var causal_mask(const Var& scores) {
  Tensor out = scores->value;
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = r + 1; c < out.cols(); ++c) out(r, c) = -1e30;
  }
  return make_node(std::move(out), {scores}, [scores](Node& n) {
    if (!scores->requires_grad) return;
    Tensor& g = scores->ensure_grad();
    for (int64_t r = 0; r < n.grad.rows(); ++r) {
      for (int64_t c = 0; c <= std::min(r, n.grad.cols() - 1); ++c) {
        g(r, c) += n.grad(r, c);
      }
    }
  });
}

Var layer_norm(const Var& a, const Var& gamma, const Var& beta, double eps) {
  const int64_t rows = a->value.rows(), cols = a->value.cols();
  if (gamma->value.cols() != cols || beta->value.cols() != cols) {
    throw InvalidArgument("layer_norm: gain/bias width mismatch");
  }
  Tensor out(rows, cols);
  // Keep the per-row statistics for the backward pass.
  auto mean = std::make_shared<std::vector<double>>(static_cast<size_t>(rows));
  auto rstd = std::make_shared<std::vector<double>>(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    double mu = 0.0;
    for (int64_t c = 0; c < cols; ++c) mu += a->value(r, c);
    mu /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double d = a->value(r, c) - mu;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const double rs = 1.0 / std::sqrt(var + eps);
    (*mean)[static_cast<size_t>(r)] = mu;
    (*rstd)[static_cast<size_t>(r)] = rs;
    for (int64_t c = 0; c < cols; ++c) {
      out(r, c) = gamma->value(0, c) * (a->value(r, c) - mu) * rs +
                  beta->value(0, c);
    }
  }
  return make_node(std::move(out), {a, gamma, beta},
                   [a, gamma, beta, mean, rstd](Node& n) {
    const int64_t rows = a->value.rows(), cols = a->value.cols();
    for (int64_t r = 0; r < rows; ++r) {
      const double mu = (*mean)[static_cast<size_t>(r)];
      const double rs = (*rstd)[static_cast<size_t>(r)];
      // xhat and the two reduction terms of the layer-norm backward.
      double sum_gy = 0.0, sum_gy_xhat = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const double xhat = (a->value(r, c) - mu) * rs;
        const double gy = n.grad(r, c) * gamma->value(0, c);
        sum_gy += gy;
        sum_gy_xhat += gy * xhat;
      }
      if (a->requires_grad) {
        Tensor& g = a->ensure_grad();
        const double inv_n = 1.0 / static_cast<double>(cols);
        for (int64_t c = 0; c < cols; ++c) {
          const double xhat = (a->value(r, c) - mu) * rs;
          const double gy = n.grad(r, c) * gamma->value(0, c);
          g(r, c) += rs * (gy - inv_n * sum_gy - inv_n * xhat * sum_gy_xhat);
        }
      }
      if (gamma->requires_grad) {
        Tensor& gg = gamma->ensure_grad();
        for (int64_t c = 0; c < cols; ++c) {
          const double xhat = (a->value(r, c) - mu) * rs;
          gg(0, c) += n.grad(r, c) * xhat;
        }
      }
      if (beta->requires_grad) {
        Tensor& gb = beta->ensure_grad();
        for (int64_t c = 0; c < cols; ++c) gb(0, c) += n.grad(r, c);
      }
    }
  });
}

Var embedding(const Var& table, const std::vector<nlp::TokenId>& ids) {
  const int64_t v = table->value.rows(), d = table->value.cols();
  if (ids.empty()) throw InvalidArgument("embedding: empty id list");
  Tensor out(static_cast<int64_t>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto id = ids[i];
    if (id < 0 || id >= v) throw InvalidArgument("embedding: id out of range");
    for (int64_t c = 0; c < d; ++c) {
      out(static_cast<int64_t>(i), c) = table->value(id, c);
    }
  }
  return make_node(std::move(out), {table}, [table, ids](Node& n) {
    if (!table->requires_grad) return;
    Tensor& g = table->ensure_grad();
    for (size_t i = 0; i < ids.size(); ++i) {
      for (int64_t c = 0; c < n.grad.cols(); ++c) {
        g(ids[i], c) += n.grad(static_cast<int64_t>(i), c);
      }
    }
  });
}

Var concat_cols(const std::vector<Var>& parts) {
  if (parts.empty()) throw InvalidArgument("concat_cols: no inputs");
  const int64_t rows = parts[0]->value.rows();
  int64_t total = 0;
  for (const auto& p : parts) {
    if (p->value.rows() != rows) {
      throw InvalidArgument("concat_cols: row count mismatch");
    }
    total += p->value.cols();
  }
  Tensor out(rows, total);
  int64_t offset = 0;
  for (const auto& p : parts) {
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < p->value.cols(); ++c) {
        out(r, offset + c) = p->value(r, c);
      }
    }
    offset += p->value.cols();
  }
  return make_node(std::move(out), parts, [parts](Node& n) {
    int64_t offset = 0;
    for (const auto& p : parts) {
      if (p->requires_grad) {
        Tensor& g = p->ensure_grad();
        for (int64_t r = 0; r < g.rows(); ++r) {
          for (int64_t c = 0; c < g.cols(); ++c) {
            g(r, c) += n.grad(r, offset + c);
          }
        }
      }
      offset += p->value.cols();
    }
  });
}

Var dropout(const Var& a, double p, bool training, Rng& rng) {
  if (!training || p <= 0.0) return a;
  if (p >= 1.0) throw InvalidArgument("dropout: p must be < 1");
  auto mask = std::make_shared<Tensor>(a->value.rows(), a->value.cols());
  const double keep = 1.0 - p;
  for (int64_t i = 0; i < mask->size(); ++i) {
    mask->at(i) = rng.bernoulli(keep) ? 1.0 / keep : 0.0;
  }
  Tensor out = a->value;
  for (int64_t i = 0; i < out.size(); ++i) out.at(i) *= mask->at(i);
  return make_node(std::move(out), {a}, [a, mask](Node& n) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(i) * mask->at(i);
  });
}

Var sum(const Var& a) {
  Tensor out(1, 1);
  for (double v : a->value.data()) out.at(0) += v;
  return make_node(std::move(out), {a}, [a](Node& n) {
    if (!a->requires_grad) return;
    Tensor& g = a->ensure_grad();
    for (int64_t i = 0; i < g.size(); ++i) g.at(i) += n.grad.at(0);
  });
}

Var cross_entropy(const Var& logits, const std::vector<nlp::TokenId>& targets,
                  const std::vector<double>& weights) {
  const int64_t rows = logits->value.rows(), cols = logits->value.cols();
  if (static_cast<int64_t>(targets.size()) != rows ||
      weights.size() != targets.size()) {
    throw InvalidArgument("cross_entropy: size mismatch");
  }
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  if (total_weight <= 0.0) throw InvalidArgument("cross_entropy: zero weight");

  // Fused log-softmax: store probabilities for the backward pass.
  auto probs = std::make_shared<Tensor>(rows, cols);
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const auto t = targets[static_cast<size_t>(r)];
    if (t < 0 || t >= cols) throw InvalidArgument("cross_entropy: bad target");
    double mx = -1e300;
    for (int64_t c = 0; c < cols; ++c) mx = std::max(mx, logits->value(r, c));
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      (*probs)(r, c) = std::exp(logits->value(r, c) - mx);
      denom += (*probs)(r, c);
    }
    for (int64_t c = 0; c < cols; ++c) (*probs)(r, c) /= denom;
    loss -= weights[static_cast<size_t>(r)] *
            std::log(std::max((*probs)(r, t), 1e-300));
  }
  Tensor out(1, 1);
  out.at(0) = loss / total_weight;

  return make_node(std::move(out), {logits},
                   [logits, targets, weights, probs, total_weight](Node& n) {
    if (!logits->requires_grad) return;
    Tensor& g = logits->ensure_grad();
    const double upstream = n.grad.at(0) / total_weight;
    for (int64_t r = 0; r < g.rows(); ++r) {
      const double w = weights[static_cast<size_t>(r)] * upstream;
      const auto t = targets[static_cast<size_t>(r)];
      for (int64_t c = 0; c < g.cols(); ++c) {
        g(r, c) += w * ((*probs)(r, c) - (c == t ? 1.0 : 0.0));
      }
    }
  });
}

}  // namespace ota::ml
