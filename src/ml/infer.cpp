#include "ml/infer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "par/thread_pool.hpp"

namespace ota::ml {

using nlp::TokenId;
using nlp::Vocabulary;

// Every loop in this file replicates the accumulation order of the reference
// Var ops (ml/ops.cpp) and of the NN GEMM kernel (ml/tensor.cpp) — including
// its skip of zero left-hand values — so that the engine's floating-point
// results are bit-identical to the autograd path's.  Do not "clean up" loop
// orders or hoist terms here without re-running the bit-identity properties
// in tests/test_infer.cpp.
namespace {

/// out = x * W for one row x (length k), matching the NN GEMM kernel:
/// p-outer / j-inner accumulation with the av == 0.0 skip.
void project_row(const double* x, const Tensor& w, double* out) {
  const int64_t k = w.rows(), n = w.cols();
  std::fill(out, out + n, 0.0);
  for (int64_t p = 0; p < k; ++p) {
    const double xv = x[p];
    if (xv == 0.0) continue;
    const double* wrow = w.data().data() + p * n;
    for (int64_t j = 0; j < n; ++j) out[j] += xv * wrow[j];
  }
}

void add_bias_row(double* x, const Tensor& bias) {
  for (int64_t c = 0; c < bias.cols(); ++c) x[c] += bias(0, c);
}

/// In-place softmax over s[0..n), same max/exp/normalize order as
/// softmax_rows in ops.cpp.
void softmax_row(double* s, int64_t n) {
  double mx = -1e300;
  for (int64_t c = 0; c < n; ++c) mx = std::max(mx, s[c]);
  double denom = 0.0;
  for (int64_t c = 0; c < n; ++c) {
    s[c] = std::exp(s[c] - mx);
    denom += s[c];
  }
  for (int64_t c = 0; c < n; ++c) s[c] /= denom;
}

/// In-place row layer-norm, same statistics and output expression as
/// layer_norm in ops.cpp (eps matches its default).
void layer_norm_row(double* x, int64_t n, const LayerNormWeights& w,
                    double eps = 1e-5) {
  double mu = 0.0;
  for (int64_t c = 0; c < n; ++c) mu += x[c];
  mu /= static_cast<double>(n);
  double var = 0.0;
  for (int64_t c = 0; c < n; ++c) {
    const double d = x[c] - mu;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const double rs = 1.0 / std::sqrt(var + eps);
  for (int64_t c = 0; c < n; ++c) {
    x[c] = w.gamma(0, c) * (x[c] - mu) * rs + w.beta(0, c);
  }
}

/// Multi-head scaled-dot attention of one query row against cached keys and
/// values (Lk rows of d_model doubles, head columns fused side by side).
/// Writes the fused context row (pre-W_O) into ctx.
void attend_row(const double* q, const double* keys, const double* values,
                int64_t lk, int64_t d_model, int64_t d_head, double* ctx,
                std::vector<double>& scores) {
  const int64_t n_heads = d_model / d_head;
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(d_head));
  std::fill(ctx, ctx + d_model, 0.0);
  scores.resize(static_cast<size_t>(lk));
  for (int64_t h = 0; h < n_heads; ++h) {
    const int64_t ho = h * d_head;
    for (int64_t j = 0; j < lk; ++j) {
      double acc = 0.0;
      const double* krow = keys + j * d_model + ho;
      for (int64_t p = 0; p < d_head; ++p) acc += q[ho + p] * krow[p];
      scores[static_cast<size_t>(j)] = acc * inv_sqrt_dk;
    }
    softmax_row(scores.data(), lk);
    for (int64_t p = 0; p < lk; ++p) {
      const double a = scores[static_cast<size_t>(p)];
      if (a == 0.0) continue;  // the NN kernel's zero skip
      const double* vrow = values + p * d_model + ho;
      for (int64_t c = 0; c < d_head; ++c) ctx[ho + c] += a * vrow[c];
    }
  }
}

/// Full-sequence multi-head attention (encoder self-attention; decoder
/// self-attention always runs incrementally through Session, so there is no
/// causal variant here).  Queries from `q_src`, keys/values from `kv_src`;
/// returns the attention output (L, d_model) after the fused W_O projection
/// and bias.  Each query row goes through the same attend_row kernel the
/// decoder Session uses — one copy of the bit-identity-critical loop.
Tensor attention_full(const Tensor& q_src, const Tensor& kv_src,
                      const FusedAttentionWeights& w, int64_t d_head) {
  const int64_t lq = q_src.rows(), lk = kv_src.rows(), d_model = w.wq.cols();
  Tensor q, k, v;
  matmul_into(q_src, w.wq, q);
  matmul_into(kv_src, w.wk, k);
  matmul_into(kv_src, w.wv, v);

  Tensor ctx(lq, d_model);
  std::vector<double> scores(static_cast<size_t>(lk));
  for (int64_t i = 0; i < lq; ++i) {
    attend_row(&q(i, 0), k.data().data(), v.data().data(), lk, d_model, d_head,
               &ctx(i, 0), scores);
  }
  Tensor out;
  matmul_into(ctx, w.wo, out);
  for (int64_t r = 0; r < out.rows(); ++r) add_bias_row(&out(r, 0), w.bo);
  return out;
}

/// Position-wise FFN over all rows: relu(x W_in + b_in) W_out + b_out.
Tensor ffn_full(const Tensor& x, const FeedForwardWeights& w) {
  Tensor h;
  matmul_into(x, w.w_in, h);
  for (int64_t r = 0; r < h.rows(); ++r) add_bias_row(&h(r, 0), w.b_in);
  for (double& v : h.data()) v = v > 0.0 ? v : 0.0;
  Tensor out;
  matmul_into(h, w.w_out, out);
  for (int64_t r = 0; r < out.rows(); ++r) add_bias_row(&out(r, 0), w.b_out);
  return out;
}

/// Weight lookup by registry name, so the snapshot survives reordering of
/// the registry as long as names stay stable.
class WeightMap {
 public:
  explicit WeightMap(const Transformer& model) {
    const auto& params = model.parameters();
    const auto& names = model.parameter_names();
    for (size_t i = 0; i < params.size(); ++i) {
      by_name_[names[i]] = &params[i]->value;
    }
  }

  const Tensor& get(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      throw InvalidArgument("InferenceEngine: missing parameter '" + name +
                            "' in the transformer registry");
    }
    return *it->second;
  }

 private:
  std::map<std::string, const Tensor*> by_name_;
};

/// Concatenates the per-head (d_model, d_head) projections of `site` into one
/// (d_model, d_model) matrix, head h occupying columns [h*d_head, ...).
Tensor fuse_heads(const WeightMap& w, const std::string& site,
                  const char* which, int64_t d_model, int64_t d_head) {
  const int64_t n_heads = d_model / d_head;
  Tensor fused(d_model, d_model);
  for (int64_t h = 0; h < n_heads; ++h) {
    const Tensor& head =
        w.get(site + ".h" + std::to_string(h) + "." + which);
    if (head.rows() != d_model || head.cols() != d_head) {
      throw InvalidArgument("InferenceEngine: unexpected head shape at " + site);
    }
    for (int64_t r = 0; r < d_model; ++r) {
      for (int64_t c = 0; c < d_head; ++c) {
        fused(r, h * d_head + c) = head(r, c);
      }
    }
  }
  return fused;
}

FusedAttentionWeights snapshot_attention(const WeightMap& w,
                                         const std::string& site,
                                         int64_t d_model, int64_t d_head) {
  FusedAttentionWeights a;
  a.wq = fuse_heads(w, site, "wq", d_model, d_head);
  a.wk = fuse_heads(w, site, "wk", d_model, d_head);
  a.wv = fuse_heads(w, site, "wv", d_model, d_head);
  a.wo = w.get(site + ".wo");
  a.bo = w.get(site + ".bo");
  return a;
}

FeedForwardWeights snapshot_ffn(const WeightMap& w, const std::string& site) {
  return FeedForwardWeights{w.get(site + ".in.w"), w.get(site + ".in.b"),
                            w.get(site + ".out.w"), w.get(site + ".out.b")};
}

LayerNormWeights snapshot_norm(const WeightMap& w, const std::string& site) {
  return LayerNormWeights{w.get(site + ".gamma"), w.get(site + ".beta")};
}

}  // namespace

InferenceEngine::InferenceEngine(const Transformer& model)
    : cfg_(model.config()), pos_(model.positional().table()) {
  d_head_ = cfg_.d_model / cfg_.n_heads;
  const WeightMap w(model);
  src_embed_ = w.get("src_embed");
  tgt_embed_ = w.get("tgt_embed");
  out_w_ = w.get("out.w");
  out_b_ = w.get("out.b");
  for (int64_t l = 0; l < cfg_.n_layers; ++l) {
    const std::string enc = "enc" + std::to_string(l);
    EncoderLayerWeights e;
    e.self = snapshot_attention(w, enc + ".self", cfg_.d_model, d_head_);
    e.ffn = snapshot_ffn(w, enc + ".ffn");
    e.norm1 = snapshot_norm(w, enc + ".norm1");
    e.norm2 = snapshot_norm(w, enc + ".norm2");
    encoder_.push_back(std::move(e));

    const std::string dec = "dec" + std::to_string(l);
    DecoderLayerWeights d;
    d.self = snapshot_attention(w, dec + ".self", cfg_.d_model, d_head_);
    d.cross = snapshot_attention(w, dec + ".cross", cfg_.d_model, d_head_);
    d.ffn = snapshot_ffn(w, dec + ".ffn");
    d.norm1 = snapshot_norm(w, dec + ".norm1");
    d.norm2 = snapshot_norm(w, dec + ".norm2");
    d.norm3 = snapshot_norm(w, dec + ".norm3");
    decoder_.push_back(std::move(d));
  }
}

Tensor InferenceEngine::encode(const std::vector<TokenId>& src) const {
  if (src.empty()) {
    throw InvalidArgument("InferenceEngine::encode: empty input");
  }
  const int64_t len = static_cast<int64_t>(src.size());
  if (len > cfg_.max_len) {
    throw InvalidArgument(
        "InferenceEngine::encode: input length " + std::to_string(len) +
        " exceeds the positional table (max_len " + std::to_string(cfg_.max_len) +
        "); re-train with a larger max_len or shorten the input");
  }
  const double sqrt_d = std::sqrt(static_cast<double>(cfg_.d_model));
  Tensor x(len, cfg_.d_model);
  for (int64_t i = 0; i < len; ++i) {
    const TokenId id = src[static_cast<size_t>(i)];
    if (id < 0 || id >= src_embed_.rows()) {
      throw InvalidArgument("InferenceEngine::encode: token id out of range");
    }
    for (int64_t c = 0; c < cfg_.d_model; ++c) {
      x(i, c) = src_embed_(id, c) * sqrt_d + pos_(i, c);
    }
  }
  for (const EncoderLayerWeights& layer : encoder_) {
    const Tensor attn = attention_full(x, x, layer.self, d_head_);
    for (int64_t i = 0; i < x.size(); ++i) x.at(i) += attn.at(i);
    for (int64_t r = 0; r < len; ++r) {
      layer_norm_row(&x(r, 0), cfg_.d_model, layer.norm1);
    }
    const Tensor ff = ffn_full(x, layer.ffn);
    for (int64_t i = 0; i < x.size(); ++i) x.at(i) += ff.at(i);
    for (int64_t r = 0; r < len; ++r) {
      layer_norm_row(&x(r, 0), cfg_.d_model, layer.norm2);
    }
  }
  return x;
}

InferenceEngine::Session::Session(const InferenceEngine& engine,
                                  const std::vector<TokenId>& src)
    : eng_(engine), memory_(engine.encode(src)),
      logits_(1, engine.cfg_.vocab_size) {
  const size_t layers = eng_.decoder_.size();
  cross_k_.resize(layers);
  cross_v_.resize(layers);
  self_k_.resize(layers);
  self_v_.resize(layers);
  const size_t d = static_cast<size_t>(engine.cfg_.d_model);
  x_.resize(d);
  row_.resize(d);
  ctx_.resize(d);
  out_.resize(d);
  if (!eng_.decoder_.empty()) {
    ff_.resize(static_cast<size_t>(eng_.decoder_[0].ffn.w_in.cols()));
  }
  for (size_t l = 0; l < layers; ++l) {
    // The reference recomputes K/V from the (fixed) memory every step; the
    // values never change, so computing them once per request is exact.
    matmul_into(memory_, eng_.decoder_[l].cross.wk, cross_k_[l]);
    matmul_into(memory_, eng_.decoder_[l].cross.wv, cross_v_[l]);
  }
}

const Tensor& InferenceEngine::Session::step(TokenId token) {
  const TransformerConfig& cfg = eng_.cfg_;
  if (length_ + 1 > cfg.max_len) {
    throw InvalidArgument(
        "InferenceEngine::Session::step: decoder length " +
        std::to_string(length_ + 1) + " exceeds the positional table (max_len " +
        std::to_string(cfg.max_len) + ")");
  }
  if (token < 0 || token >= eng_.tgt_embed_.rows()) {
    throw InvalidArgument("InferenceEngine::Session::step: token id out of range");
  }
  const int64_t d = cfg.d_model;
  const double sqrt_d = std::sqrt(static_cast<double>(d));
  std::vector<double>& x = x_;
  for (int64_t c = 0; c < d; ++c) {
    x[static_cast<size_t>(c)] =
        eng_.tgt_embed_(token, c) * sqrt_d + eng_.pos_(length_, c);
  }

  std::vector<double>& row = row_;
  std::vector<double>& ctx = ctx_;
  std::vector<double>& out = out_;
  std::vector<double>& scores = scores_;
  std::vector<double>& ff = ff_;
  for (size_t l = 0; l < eng_.decoder_.size(); ++l) {
    const DecoderLayerWeights& layer = eng_.decoder_[l];

    // Masked self-attention: project this position's K/V once, append to the
    // cache, attend the query against every cached position.  The causal mask
    // is implicit — the cache only holds positions <= this one.
    project_row(x.data(), layer.self.wk, row.data());
    self_k_[l].insert(self_k_[l].end(), row.begin(), row.end());
    project_row(x.data(), layer.self.wv, row.data());
    self_v_[l].insert(self_v_[l].end(), row.begin(), row.end());
    project_row(x.data(), layer.self.wq, row.data());
    attend_row(row.data(), self_k_[l].data(), self_v_[l].data(), length_ + 1, d,
               eng_.d_head_, ctx.data(), scores);
    project_row(ctx.data(), layer.self.wo, out.data());
    add_bias_row(out.data(), layer.self.bo);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm1);

    // Cross-attention against the precomputed memory K/V.
    project_row(x.data(), layer.cross.wq, row.data());
    attend_row(row.data(), cross_k_[l].data().data(), cross_v_[l].data().data(),
               memory_.rows(), d, eng_.d_head_, ctx.data(), scores);
    project_row(ctx.data(), layer.cross.wo, out.data());
    add_bias_row(out.data(), layer.cross.bo);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm2);

    // Position-wise FFN.
    ff.resize(static_cast<size_t>(layer.ffn.w_in.cols()));
    project_row(x.data(), layer.ffn.w_in, ff.data());
    add_bias_row(ff.data(), layer.ffn.b_in);
    for (double& v : ff) v = v > 0.0 ? v : 0.0;
    project_row(ff.data(), layer.ffn.w_out, out.data());
    add_bias_row(out.data(), layer.ffn.b_out);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm3);
  }

  project_row(x.data(), eng_.out_w_, &logits_(0, 0));
  add_bias_row(&logits_(0, 0), eng_.out_b_);
  ++length_;
  return logits_;
}

TokenId argmax_token(const Tensor& logits) {
  TokenId best = 0;
  double best_score = -1e300;
  for (int64_t c = 0; c < logits.cols(); ++c) {
    if (logits(0, c) > best_score) {
      best_score = logits(0, c);
      best = static_cast<TokenId>(c);
    }
  }
  return best;
}

std::vector<TokenId> InferenceEngine::greedy_decode(
    const std::vector<TokenId>& src, int64_t max_len) const {
  Session session(*this, src);
  // Same step clamp as Transformer::greedy_decode: the decoder input at step
  // s holds s+1 tokens, so cfg_.max_len steps keep every position in range.
  const int64_t steps = std::min(max_len, cfg_.max_len);
  std::vector<TokenId> out;
  TokenId prev = Vocabulary::kBos;
  for (int64_t step = 0; step < steps; ++step) {
    const TokenId best = argmax_token(session.step(prev));
    if (best == Vocabulary::kEos) break;
    out.push_back(best);
    prev = best;
  }
  return out;
}

std::vector<std::vector<TokenId>> InferenceEngine::greedy_decode_batch(
    const std::vector<std::vector<TokenId>>& srcs, int64_t max_len,
    par::ThreadPool& pool) const {
  std::vector<std::vector<TokenId>> out(srcs.size());
  if (srcs.empty()) return out;
  if (max_len <= 0) {
    throw InvalidArgument(
        "InferenceEngine::greedy_decode_batch: max_tokens must be positive, "
        "got " + std::to_string(max_len) +
        " (a zero token budget would silently decode nothing)");
  }
  // Requests are independent and share only the immutable engine, so the
  // result is bit-identical for any pool size.
  pool.parallel_for(srcs.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = greedy_decode(srcs[i], max_len);
    }
  });
  return out;
}

std::vector<std::vector<TokenId>> InferenceEngine::greedy_decode_batch(
    const std::vector<std::vector<TokenId>>& srcs, int64_t max_len,
    int threads) const {
  if (threads <= 0) {
    // Default path: the persistent process-wide pool, so back-to-back batch
    // calls reuse one set of workers instead of spawning a pool per call.
    return greedy_decode_batch(srcs, max_len, par::global_pool());
  }
  // Explicit worker count: a dedicated pool of that size, never larger than
  // the batch (a batch of one stays inline).
  par::ThreadPool pool(
      std::min(threads, static_cast<int>(std::max<size_t>(srcs.size(), 1))));
  return greedy_decode_batch(srcs, max_len, pool);
}

}  // namespace ota::ml
