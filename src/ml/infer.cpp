#include "ml/infer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <type_traits>

#include "par/thread_pool.hpp"

namespace ota::ml {

using nlp::TokenId;
using nlp::Vocabulary;

// Every loop in this file replicates the accumulation order of the reference
// Var ops (ml/ops.cpp) and of the NN GEMM kernel (ml/tensor.cpp) — including
// its skip of zero left-hand values — so that the engine's floating-point
// results are bit-identical to the autograd path's.  Do not "clean up" loop
// orders or hoist terms here without re-running the bit-identity properties
// in tests/test_infer.cpp.
//
// The row kernels are templated on the scalar/tensor type so the float32
// serving tier runs the exact same loop structure over its narrowed weight
// snapshot.  The double instantiations are the pre-existing reference code:
// per-element accumulation order is unchanged, and the `#pragma omp simd`
// hints sit only on lane-independent loops (each output element still sums
// in the same order), never on reductions (which would permit reassociation
// and break the bit-identity contract).
namespace {

/// Initial max for the softmax row scan.  The double value is the historical
/// -1e300 (not numeric_limits::lowest()) so the reference tier stays
/// byte-for-byte identical to the pre-tier code.
template <typename T>
constexpr T score_floor() {
  if constexpr (std::is_same_v<T, double>) {
    return -1e300;
  } else {
    return -1e30f;
  }
}

/// Ascending-p dot product — the reference accumulation order.  The double
/// overload IS the bit-identity contract; do not unroll it.
inline double dot_row(const double* a, const double* b, int64_t n) {
  double acc = 0.0;
  for (int64_t p = 0; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

/// Float32 overload: four independent accumulator chains so the compiler can
/// keep 4+ multiply-adds in flight (the serial chain is the bottleneck on
/// the attention score loop).  f32 has no bit-identity obligation to the
/// double tier — only run-to-run determinism, which a fixed unroll preserves.
inline float dot_row(const float* a, const float* b, int64_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t p = 0;
  for (; p + 4 <= n; p += 4) {
    s0 += a[p + 0] * b[p + 0];
    s1 += a[p + 1] * b[p + 1];
    s2 += a[p + 2] * b[p + 2];
    s3 += a[p + 3] * b[p + 3];
  }
  for (; p < n; ++p) s0 += a[p] * b[p];
  return (s0 + s1) + (s2 + s3);
}

/// out = x * W for one row x (length k), matching the NN GEMM kernel:
/// p-outer / j-inner accumulation with the av == 0 skip.
template <typename TT, typename T = typename TT::value_type>
void project_row(const T* x, const TT& w, T* out) {
  const int64_t k = w.rows(), n = w.cols();
  std::fill(out, out + n, T(0));
  for (int64_t p = 0; p < k; ++p) {
    const T xv = x[p];
    if (xv == T(0)) continue;
    const T* wrow = w.data().data() + p * n;
#pragma omp simd
    for (int64_t j = 0; j < n; ++j) out[j] += xv * wrow[j];
  }
}

template <typename TT, typename T = typename TT::value_type>
void add_bias_row(T* x, const TT& bias) {
  for (int64_t c = 0; c < bias.cols(); ++c) x[c] += bias(0, c);
}

/// In-place softmax over s[0..n), same max/exp/normalize order as
/// softmax_rows in ops.cpp.
template <typename T>
void softmax_row(T* s, int64_t n) {
  T mx = score_floor<T>();
  for (int64_t c = 0; c < n; ++c) mx = std::max(mx, s[c]);
  T denom = T(0);
  for (int64_t c = 0; c < n; ++c) {
    s[c] = std::exp(s[c] - mx);
    denom += s[c];
  }
  for (int64_t c = 0; c < n; ++c) s[c] /= denom;
}

/// In-place row layer-norm, same statistics and output expression as
/// layer_norm in ops.cpp (eps matches its default).
template <typename TT, typename T = typename TT::value_type>
void layer_norm_row(T* x, int64_t n, const LayerNormWeightsT<TT>& w) {
  T mu = T(0);
  for (int64_t c = 0; c < n; ++c) mu += x[c];
  mu /= static_cast<T>(n);
  T var = T(0);
  for (int64_t c = 0; c < n; ++c) {
    const T d = x[c] - mu;
    var += d * d;
  }
  var /= static_cast<T>(n);
  const T rs = T(1) / std::sqrt(var + static_cast<T>(1e-5));
#pragma omp simd
  for (int64_t c = 0; c < n; ++c) {
    x[c] = w.gamma(0, c) * (x[c] - mu) * rs + w.beta(0, c);
  }
}

/// Multi-head scaled-dot attention of one query row against cached keys and
/// values (Lk rows of d_model scalars, head columns fused side by side).
/// Writes the fused context row (pre-W_O) into ctx.
template <typename T>
void attend_row(const T* q, const T* keys, const T* values, int64_t lk,
                int64_t d_model, int64_t d_head, T* ctx,
                std::vector<T>& scores) {
  const int64_t n_heads = d_model / d_head;
  const T inv_sqrt_dk = T(1) / std::sqrt(static_cast<T>(d_head));
  std::fill(ctx, ctx + d_model, T(0));
  scores.resize(static_cast<size_t>(lk));
  for (int64_t h = 0; h < n_heads; ++h) {
    const int64_t ho = h * d_head;
    for (int64_t j = 0; j < lk; ++j) {
      scores[static_cast<size_t>(j)] =
          dot_row(q + ho, keys + j * d_model + ho, d_head) * inv_sqrt_dk;
    }
    softmax_row(scores.data(), lk);
    for (int64_t p = 0; p < lk; ++p) {
      const T a = scores[static_cast<size_t>(p)];
      if (a == T(0)) continue;  // the NN kernel's zero skip
      const T* vrow = values + p * d_model + ho;
#pragma omp simd
      for (int64_t c = 0; c < d_head; ++c) ctx[ho + c] += a * vrow[c];
    }
  }
}

/// Full-sequence multi-head attention (encoder self-attention; decoder
/// self-attention always runs incrementally through Session, so there is no
/// causal variant here).  Queries from `q_src`, keys/values from `kv_src`;
/// returns the attention output (L, d_model) after the fused W_O projection
/// and bias.  Each query row goes through the same attend_row kernel the
/// decoder Session uses — one copy of the bit-identity-critical loop.
template <typename TT, typename T = typename TT::value_type>
TT attention_full(const TT& q_src, const TT& kv_src,
                  const FusedAttentionWeightsT<TT>& w, int64_t d_head) {
  const int64_t lq = q_src.rows(), lk = kv_src.rows(), d_model = w.wq.cols();
  TT q, k, v;
  matmul_into(q_src, w.wq, q);
  matmul_into(kv_src, w.wk, k);
  matmul_into(kv_src, w.wv, v);

  TT ctx(lq, d_model);
  std::vector<T> scores(static_cast<size_t>(lk));
  for (int64_t i = 0; i < lq; ++i) {
    attend_row(&q(i, 0), k.data().data(), v.data().data(), lk, d_model, d_head,
               &ctx(i, 0), scores);
  }
  TT out;
  matmul_into(ctx, w.wo, out);
  for (int64_t r = 0; r < out.rows(); ++r) add_bias_row(&out(r, 0), w.bo);
  return out;
}

/// Position-wise FFN over all rows: relu(x W_in + b_in) W_out + b_out.
template <typename TT, typename T = typename TT::value_type>
TT ffn_full(const TT& x, const FeedForwardWeightsT<TT>& w) {
  TT h;
  matmul_into(x, w.w_in, h);
  for (int64_t r = 0; r < h.rows(); ++r) add_bias_row(&h(r, 0), w.b_in);
  for (T& v : h.data()) v = v > T(0) ? v : T(0);
  TT out;
  matmul_into(h, w.w_out, out);
  for (int64_t r = 0; r < out.rows(); ++r) add_bias_row(&out(r, 0), w.b_out);
  return out;
}

/// Shared encoder pass: embedding+positional rows, then per-layer
/// self-attention / norm / FFN / norm.  One body for both tiers; the double
/// instantiation is the bit-identity reference, the f32 instantiation runs
/// on the narrowed snapshot with half the memory traffic.
template <typename TT, typename T = typename TT::value_type>
TT encode_impl(const std::vector<TokenId>& src, const TT& embed, const TT& pos,
               const std::vector<EncoderLayerWeightsT<TT>>& layers,
               const TransformerConfig& cfg, int64_t d_head) {
  if (src.empty()) {
    throw InvalidArgument("InferenceEngine::encode: empty input");
  }
  const int64_t len = static_cast<int64_t>(src.size());
  if (len > cfg.max_len) {
    throw InvalidArgument(
        "InferenceEngine::encode: input length " + std::to_string(len) +
        " exceeds the positional table (max_len " + std::to_string(cfg.max_len) +
        "); re-train with a larger max_len or shorten the input");
  }
  const T sqrt_d = std::sqrt(static_cast<T>(cfg.d_model));
  TT x(len, cfg.d_model);
  for (int64_t i = 0; i < len; ++i) {
    const TokenId id = src[static_cast<size_t>(i)];
    if (id < 0 || id >= embed.rows()) {
      throw InvalidArgument("InferenceEngine::encode: token id out of range");
    }
#pragma omp simd
    for (int64_t c = 0; c < cfg.d_model; ++c) {
      x(i, c) = embed(id, c) * sqrt_d + pos(i, c);
    }
  }
  for (const EncoderLayerWeightsT<TT>& layer : layers) {
    const TT attn = attention_full(x, x, layer.self, d_head);
    for (int64_t i = 0; i < x.size(); ++i) x.at(i) += attn.at(i);
    for (int64_t r = 0; r < len; ++r) {
      layer_norm_row(&x(r, 0), cfg.d_model, layer.norm1);
    }
    const TT ff = ffn_full(x, layer.ffn);
    for (int64_t i = 0; i < x.size(); ++i) x.at(i) += ff.at(i);
    for (int64_t r = 0; r < len; ++r) {
      layer_norm_row(&x(r, 0), cfg.d_model, layer.norm2);
    }
  }
  return x;
}

/// Weight lookup by registry name, so the snapshot survives reordering of
/// the registry as long as names stay stable.
class WeightMap {
 public:
  explicit WeightMap(const Transformer& model) {
    const auto& params = model.parameters();
    const auto& names = model.parameter_names();
    for (size_t i = 0; i < params.size(); ++i) {
      by_name_[names[i]] = &params[i]->value;
    }
  }

  const Tensor& get(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      throw InvalidArgument("InferenceEngine: missing parameter '" + name +
                            "' in the transformer registry");
    }
    return *it->second;
  }

 private:
  std::map<std::string, const Tensor*> by_name_;
};

/// Concatenates the per-head (d_model, d_head) projections of `site` into one
/// (d_model, d_model) matrix, head h occupying columns [h*d_head, ...).
Tensor fuse_heads(const WeightMap& w, const std::string& site,
                  const char* which, int64_t d_model, int64_t d_head) {
  const int64_t n_heads = d_model / d_head;
  Tensor fused(d_model, d_model);
  for (int64_t h = 0; h < n_heads; ++h) {
    const Tensor& head =
        w.get(site + ".h" + std::to_string(h) + "." + which);
    if (head.rows() != d_model || head.cols() != d_head) {
      throw InvalidArgument("InferenceEngine: unexpected head shape at " + site);
    }
    for (int64_t r = 0; r < d_model; ++r) {
      for (int64_t c = 0; c < d_head; ++c) {
        fused(r, h * d_head + c) = head(r, c);
      }
    }
  }
  return fused;
}

FusedAttentionWeights snapshot_attention(const WeightMap& w,
                                         const std::string& site,
                                         int64_t d_model, int64_t d_head) {
  FusedAttentionWeights a;
  a.wq = fuse_heads(w, site, "wq", d_model, d_head);
  a.wk = fuse_heads(w, site, "wk", d_model, d_head);
  a.wv = fuse_heads(w, site, "wv", d_model, d_head);
  a.wo = w.get(site + ".wo");
  a.bo = w.get(site + ".bo");
  return a;
}

FeedForwardWeights snapshot_ffn(const WeightMap& w, const std::string& site) {
  return FeedForwardWeights{w.get(site + ".in.w"), w.get(site + ".in.b"),
                            w.get(site + ".out.w"), w.get(site + ".out.b")};
}

LayerNormWeights snapshot_norm(const WeightMap& w, const std::string& site) {
  return LayerNormWeights{w.get(site + ".gamma"), w.get(site + ".beta")};
}

// Round-to-nearest narrowing of a fused double snapshot into the f32 mirror,
// structure by structure.  Taken from the already-fused double tensors so
// both tiers share one layout (and the f32 tier inherits any future fusing
// changes automatically).
FusedAttentionWeightsT<TensorF> narrow(const FusedAttentionWeights& w) {
  return {TensorF::from(w.wq), TensorF::from(w.wk), TensorF::from(w.wv),
          TensorF::from(w.wo), TensorF::from(w.bo)};
}

FeedForwardWeightsT<TensorF> narrow(const FeedForwardWeights& w) {
  return {TensorF::from(w.w_in), TensorF::from(w.b_in),
          TensorF::from(w.w_out), TensorF::from(w.b_out)};
}

LayerNormWeightsT<TensorF> narrow(const LayerNormWeights& w) {
  return {TensorF::from(w.gamma), TensorF::from(w.beta)};
}

EncoderLayerWeightsT<TensorF> narrow(const EncoderLayerWeights& e) {
  return {narrow(e.self), narrow(e.ffn), narrow(e.norm1), narrow(e.norm2)};
}

DecoderLayerWeightsT<TensorF> narrow(const DecoderLayerWeights& d) {
  return {narrow(d.self), narrow(d.cross), narrow(d.ffn),
          narrow(d.norm1), narrow(d.norm2), narrow(d.norm3)};
}

}  // namespace

InferenceEngine::InferenceEngine(const Transformer& model)
    : cfg_(model.config()), pos_(model.positional().table()) {
  d_head_ = cfg_.d_model / cfg_.n_heads;
  const WeightMap w(model);
  src_embed_ = w.get("src_embed");
  tgt_embed_ = w.get("tgt_embed");
  out_w_ = w.get("out.w");
  out_b_ = w.get("out.b");
  for (int64_t l = 0; l < cfg_.n_layers; ++l) {
    const std::string enc = "enc" + std::to_string(l);
    EncoderLayerWeights e;
    e.self = snapshot_attention(w, enc + ".self", cfg_.d_model, d_head_);
    e.ffn = snapshot_ffn(w, enc + ".ffn");
    e.norm1 = snapshot_norm(w, enc + ".norm1");
    e.norm2 = snapshot_norm(w, enc + ".norm2");
    encoder_.push_back(std::move(e));

    const std::string dec = "dec" + std::to_string(l);
    DecoderLayerWeights d;
    d.self = snapshot_attention(w, dec + ".self", cfg_.d_model, d_head_);
    d.cross = snapshot_attention(w, dec + ".cross", cfg_.d_model, d_head_);
    d.ffn = snapshot_ffn(w, dec + ".ffn");
    d.norm1 = snapshot_norm(w, dec + ".norm1");
    d.norm2 = snapshot_norm(w, dec + ".norm2");
    d.norm3 = snapshot_norm(w, dec + ".norm3");
    decoder_.push_back(std::move(d));
  }

  // Float32 mirror, taken in the same compile so both tiers are always
  // available at decode time.  Narrowing happens after head fusing, so the
  // mirrors stay structurally identical to the double snapshot.
  src_embed_f_ = TensorF::from(src_embed_);
  tgt_embed_f_ = TensorF::from(tgt_embed_);
  pos_f_ = TensorF::from(pos_);
  out_w_f_ = TensorF::from(out_w_);
  out_b_f_ = TensorF::from(out_b_);
  encoder_f_.reserve(encoder_.size());
  for (const EncoderLayerWeights& e : encoder_) encoder_f_.push_back(narrow(e));
  decoder_f_.reserve(decoder_.size());
  for (const DecoderLayerWeights& d : decoder_) decoder_f_.push_back(narrow(d));
}

Tensor InferenceEngine::encode(const std::vector<TokenId>& src) const {
  return encode_impl(src, src_embed_, pos_, encoder_, cfg_, d_head_);
}

TensorF InferenceEngine::encode_f32(const std::vector<TokenId>& src) const {
  return encode_impl(src, src_embed_f_, pos_f_, encoder_f_, cfg_, d_head_);
}

InferenceEngine::Session::Session(const InferenceEngine& engine,
                                  const std::vector<TokenId>& src,
                                  Precision precision)
    : eng_(engine),
      precision_(
          validated_precision(precision, "InferenceEngine::Session")),
      logits_(1, engine.cfg_.vocab_size) {
  const size_t layers = eng_.decoder_.size();
  const size_t d = static_cast<size_t>(engine.cfg_.d_model);
  if (precision_ == Precision::kDouble) {
    memory_ = engine.encode(src);
    cross_k_.resize(layers);
    cross_v_.resize(layers);
    self_k_.resize(layers);
    self_v_.resize(layers);
    x_.resize(d);
    row_.resize(d);
    ctx_.resize(d);
    out_.resize(d);
    if (!eng_.decoder_.empty()) {
      ff_.resize(static_cast<size_t>(eng_.decoder_[0].ffn.w_in.cols()));
    }
    for (size_t l = 0; l < layers; ++l) {
      // The reference recomputes K/V from the (fixed) memory every step; the
      // values never change, so computing them once per request is exact.
      matmul_into(memory_, eng_.decoder_[l].cross.wk, cross_k_[l]);
      matmul_into(memory_, eng_.decoder_[l].cross.wv, cross_v_[l]);
    }
  } else {
    memory_f_ = engine.encode_f32(src);
    cross_kf_.resize(layers);
    cross_vf_.resize(layers);
    self_kf_.resize(layers);
    self_vf_.resize(layers);
    xf_.resize(d);
    rowf_.resize(d);
    ctxf_.resize(d);
    outf_.resize(d);
    logitsf_.resize(static_cast<size_t>(engine.cfg_.vocab_size));
    if (!eng_.decoder_f_.empty()) {
      fff_.resize(static_cast<size_t>(eng_.decoder_f_[0].ffn.w_in.cols()));
    }
    for (size_t l = 0; l < layers; ++l) {
      matmul_into(memory_f_, eng_.decoder_f_[l].cross.wk, cross_kf_[l]);
      matmul_into(memory_f_, eng_.decoder_f_[l].cross.wv, cross_vf_[l]);
    }
  }
}

const Tensor& InferenceEngine::Session::step(TokenId token) {
  const TransformerConfig& cfg = eng_.cfg_;
  if (length_ + 1 > cfg.max_len) {
    throw InvalidArgument(
        "InferenceEngine::Session::step: decoder length " +
        std::to_string(length_ + 1) + " exceeds the positional table (max_len " +
        std::to_string(cfg.max_len) + ")");
  }
  if (token < 0 || token >= eng_.tgt_embed_.rows()) {
    throw InvalidArgument("InferenceEngine::Session::step: token id out of range");
  }
  if (precision_ == Precision::kFloat32) {
    step_f32(token);
    ++length_;
    return logits_;
  }
  const int64_t d = cfg.d_model;
  const double sqrt_d = std::sqrt(static_cast<double>(d));
  std::vector<double>& x = x_;
  for (int64_t c = 0; c < d; ++c) {
    x[static_cast<size_t>(c)] =
        eng_.tgt_embed_(token, c) * sqrt_d + eng_.pos_(length_, c);
  }

  std::vector<double>& row = row_;
  std::vector<double>& ctx = ctx_;
  std::vector<double>& out = out_;
  std::vector<double>& scores = scores_;
  std::vector<double>& ff = ff_;
  for (size_t l = 0; l < eng_.decoder_.size(); ++l) {
    const DecoderLayerWeights& layer = eng_.decoder_[l];

    // Masked self-attention: project this position's K/V once, append to the
    // cache, attend the query against every cached position.  The causal mask
    // is implicit — the cache only holds positions <= this one.
    project_row(x.data(), layer.self.wk, row.data());
    self_k_[l].insert(self_k_[l].end(), row.begin(), row.end());
    project_row(x.data(), layer.self.wv, row.data());
    self_v_[l].insert(self_v_[l].end(), row.begin(), row.end());
    project_row(x.data(), layer.self.wq, row.data());
    attend_row(row.data(), self_k_[l].data(), self_v_[l].data(), length_ + 1, d,
               eng_.d_head_, ctx.data(), scores);
    project_row(ctx.data(), layer.self.wo, out.data());
    add_bias_row(out.data(), layer.self.bo);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm1);

    // Cross-attention against the precomputed memory K/V.
    project_row(x.data(), layer.cross.wq, row.data());
    attend_row(row.data(), cross_k_[l].data().data(), cross_v_[l].data().data(),
               memory_.rows(), d, eng_.d_head_, ctx.data(), scores);
    project_row(ctx.data(), layer.cross.wo, out.data());
    add_bias_row(out.data(), layer.cross.bo);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm2);

    // Position-wise FFN.
    ff.resize(static_cast<size_t>(layer.ffn.w_in.cols()));
    project_row(x.data(), layer.ffn.w_in, ff.data());
    add_bias_row(ff.data(), layer.ffn.b_in);
    for (double& v : ff) v = v > 0.0 ? v : 0.0;
    project_row(ff.data(), layer.ffn.w_out, out.data());
    add_bias_row(out.data(), layer.ffn.b_out);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm3);
  }

  project_row(x.data(), eng_.out_w_, &logits_(0, 0));
  add_bias_row(&logits_(0, 0), eng_.out_b_);
  ++length_;
  return logits_;
}

// Float32 mirror of the double step body above: same kernels (templated),
// same order, half the bytes per weight read.  The logits are widened into
// the shared double row at the end — widening is monotone and tie-preserving,
// so argmax over the widened row equals argmax over the float row and every
// downstream decode loop stays tier-agnostic.  length_ is advanced by the
// caller (step()).
void InferenceEngine::Session::step_f32(TokenId token) {
  const TransformerConfig& cfg = eng_.cfg_;
  const int64_t d = cfg.d_model;
  const float sqrt_d = std::sqrt(static_cast<float>(d));
  std::vector<float>& x = xf_;
  for (int64_t c = 0; c < d; ++c) {
    x[static_cast<size_t>(c)] =
        eng_.tgt_embed_f_(token, c) * sqrt_d + eng_.pos_f_(length_, c);
  }

  std::vector<float>& row = rowf_;
  std::vector<float>& ctx = ctxf_;
  std::vector<float>& out = outf_;
  std::vector<float>& scores = scoresf_;
  std::vector<float>& ff = fff_;
  for (size_t l = 0; l < eng_.decoder_f_.size(); ++l) {
    const DecoderLayerWeightsT<TensorF>& layer = eng_.decoder_f_[l];

    project_row(x.data(), layer.self.wk, row.data());
    self_kf_[l].insert(self_kf_[l].end(), row.begin(), row.end());
    project_row(x.data(), layer.self.wv, row.data());
    self_vf_[l].insert(self_vf_[l].end(), row.begin(), row.end());
    project_row(x.data(), layer.self.wq, row.data());
    attend_row(row.data(), self_kf_[l].data(), self_vf_[l].data(), length_ + 1,
               d, eng_.d_head_, ctx.data(), scores);
    project_row(ctx.data(), layer.self.wo, out.data());
    add_bias_row(out.data(), layer.self.bo);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm1);

    project_row(x.data(), layer.cross.wq, row.data());
    attend_row(row.data(), cross_kf_[l].data().data(),
               cross_vf_[l].data().data(), memory_f_.rows(), d, eng_.d_head_,
               ctx.data(), scores);
    project_row(ctx.data(), layer.cross.wo, out.data());
    add_bias_row(out.data(), layer.cross.bo);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm2);

    ff.resize(static_cast<size_t>(layer.ffn.w_in.cols()));
    project_row(x.data(), layer.ffn.w_in, ff.data());
    add_bias_row(ff.data(), layer.ffn.b_in);
    for (float& v : ff) v = v > 0.0f ? v : 0.0f;
    project_row(ff.data(), layer.ffn.w_out, out.data());
    add_bias_row(out.data(), layer.ffn.b_out);
    for (int64_t c = 0; c < d; ++c) x[static_cast<size_t>(c)] += out[static_cast<size_t>(c)];
    layer_norm_row(x.data(), d, layer.norm3);
  }

  project_row(x.data(), eng_.out_w_f_, logitsf_.data());
  add_bias_row(logitsf_.data(), eng_.out_b_f_);
  for (int64_t c = 0; c < cfg.vocab_size; ++c) {
    logits_(0, c) = static_cast<double>(logitsf_[static_cast<size_t>(c)]);
  }
}

TokenId argmax_token(const Tensor& logits) {
  TokenId best = 0;
  double best_score = -1e300;
  for (int64_t c = 0; c < logits.cols(); ++c) {
    if (logits(0, c) > best_score) {
      best_score = logits(0, c);
      best = static_cast<TokenId>(c);
    }
  }
  return best;
}

std::vector<TokenId> InferenceEngine::greedy_decode(
    const std::vector<TokenId>& src, int64_t max_len,
    Precision precision) const {
  Session session(*this, src, precision);
  // Same step clamp as Transformer::greedy_decode: the decoder input at step
  // s holds s+1 tokens, so cfg_.max_len steps keep every position in range.
  const int64_t steps = std::min(max_len, cfg_.max_len);
  std::vector<TokenId> out;
  TokenId prev = Vocabulary::kBos;
  for (int64_t step = 0; step < steps; ++step) {
    const TokenId best = argmax_token(session.step(prev));
    if (best == Vocabulary::kEos) break;
    out.push_back(best);
    prev = best;
  }
  return out;
}

std::vector<std::vector<TokenId>> InferenceEngine::greedy_decode_batch(
    const std::vector<std::vector<TokenId>>& srcs, int64_t max_len,
    par::ThreadPool& pool, Precision precision) const {
  std::vector<std::vector<TokenId>> out(srcs.size());
  if (srcs.empty()) return out;
  if (max_len <= 0) {
    throw InvalidArgument(
        "InferenceEngine::greedy_decode_batch: max_tokens must be positive, "
        "got " + std::to_string(max_len) +
        " (a zero token budget would silently decode nothing)");
  }
  validated_precision(precision, "InferenceEngine::greedy_decode_batch");
  // Requests are independent and share only the immutable engine, so the
  // result is bit-identical for any pool size.
  pool.parallel_for(srcs.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = greedy_decode(srcs[i], max_len, precision);
    }
  });
  return out;
}

std::vector<std::vector<TokenId>> InferenceEngine::greedy_decode_batch(
    const std::vector<std::vector<TokenId>>& srcs, int64_t max_len,
    int threads, Precision precision) const {
  if (threads <= 0) {
    // Default path: the persistent process-wide pool, so back-to-back batch
    // calls reuse one set of workers instead of spawning a pool per call.
    return greedy_decode_batch(srcs, max_len, par::global_pool(), precision);
  }
  // Explicit worker count: a dedicated pool of that size, never larger than
  // the batch (a batch of one stays inline).
  par::ThreadPool pool(
      std::min(threads, static_cast<int>(std::max<size_t>(srcs.size(), 1))));
  return greedy_decode_batch(srcs, max_len, pool, precision);
}

}  // namespace ota::ml
