#include "ml/trainer.hpp"

#include <algorithm>
#include <utility>

namespace ota::ml {

namespace {

int effective_threads(int threads, int max_parallel) {
  const int resolved = par::resolve_threads(threads);
  return max_parallel > 0 ? std::min(resolved, max_parallel) : resolved;
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(Transformer& model, Adam& adam,
                                         int threads, int max_parallel)
    : DataParallelTrainer(model, adam, par::global_pool(), threads,
                          max_parallel) {}

DataParallelTrainer::DataParallelTrainer(Transformer& model, Adam& adam,
                                         par::ThreadPool& pool, int threads,
                                         int max_parallel)
    : master_(model), adam_(adam), pool_(pool) {
  const int n = std::max(1, effective_threads(threads, max_parallel));
  replicas_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    replicas_.push_back(std::make_unique<Transformer>(master_.config()));
  }
  sync_replicas();
}

void DataParallelTrainer::sync_replicas() {
  pool_.parallel_for(replicas_.size(), [this](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      replicas_[r]->copy_parameters_from(master_);
    }
  });
}

double DataParallelTrainer::train_batch(
    const std::vector<const TrainExample*>& batch, uint64_t dropout_seed,
    uint64_t first_stream) {
  const size_t bsz = batch.size();
  if (bsz == 0) return 0.0;
  const auto& params = master_.parameters();
  const size_t np = params.size();
  if (slots_.size() < bsz) slots_.resize(bsz, std::vector<Tensor>(np));
  losses_.assign(bsz, 0.0);

  // Phase 1: forward/backward, one replica per chunk, one slot per example.
  // The chunk count is capped at the lane count so a shared pool wider than
  // the replica set can never hand out a chunk index without a replica.
  pool_.parallel_for_chunked(
      bsz, replicas_.size(), [&](size_t begin, size_t end, size_t chunk) {
        Transformer& rep = *replicas_[chunk];
        const auto& rp = rep.parameters();
        for (size_t i = begin; i < end; ++i) {
          Rng rng(dropout_seed, first_stream + i);
          const TrainExample& ex = *batch[i];
          const Var l = rep.loss(ex.src, ex.tgt, ex.weights, rng);
          losses_[i] = l->value.at(0);
          backward(l);
          // Hand the gradient off by swap, not copy: the replica inherits
          // the slot's stale same-shape tensor (zeroed below) or an empty
          // one (reallocated zeroed by the next ensure_grad), so the next
          // example still starts from zero either way.
          auto& slot = slots_[i];
          for (size_t p = 0; p < np; ++p) {
            std::swap(slot[p], rp[p]->grad);
            if (rp[p]->grad.same_shape(rp[p]->value)) rp[p]->grad.zero();
          }
        }
      });

  // Phase 2: ordered reduction into the master gradients, parameters in
  // parallel (each parameter's sum runs in ascending example order, so the
  // result is independent of the sharding), with the squared clip norm
  // accumulated in the same sweep.
  std::vector<double> sumsq(np, 0.0);
  pool_.parallel_for(np, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      Node& param = *params[p];
      Tensor& g = param.ensure_grad();
      for (size_t i = 0; i < bsz; ++i) {
        const Tensor& s = slots_[i][p];
        if (!s.same_shape(g)) continue;  // parameter unused by this example
        for (int64_t k = 0; k < g.size(); ++k) g.at(k) += s.at(k);
      }
      double acc = 0.0;
      for (int64_t k = 0; k < g.size(); ++k) acc += g.at(k) * g.at(k);
      sumsq[p] = acc;
    }
  });
  double total_sq = 0.0;
  for (double v : sumsq) total_sq += v;  // fixed parameter order

  adam_.step_presquared(total_sq);
  sync_replicas();

  double total = 0.0;
  for (double v : losses_) total += v;  // fixed example order
  return total;
}

double DataParallelTrainer::eval_sum(
    const std::vector<const TrainExample*>& batch) {
  const size_t bsz = batch.size();
  if (bsz == 0) return 0.0;
  losses_.assign(bsz, 0.0);
  pool_.parallel_for_chunked(
      bsz, replicas_.size(), [&](size_t begin, size_t end, size_t chunk) {
        Transformer& rep = *replicas_[chunk];
        Rng rng(0);  // dropout is disabled below; no draws happen
        for (size_t i = begin; i < end; ++i) {
          const TrainExample& ex = *batch[i];
          losses_[i] = rep.loss(ex.src, ex.tgt, ex.weights, rng,
                                /*training=*/false)
                           ->value.at(0);
        }
      });
  double total = 0.0;
  for (double v : losses_) total += v;
  return total;
}

}  // namespace ota::ml
