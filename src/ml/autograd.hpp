// Tape-free reverse-mode autograd over Tensor.
//
// Every operation builds a Node holding its output value, its parents, and a
// closure that routes the output gradient into the parents' gradients.
// backward() runs the closures in reverse topological order.  Ops live in
// ml/ops.hpp; this header is only the graph machinery.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ml/tensor.hpp"

namespace ota::ml {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  Tensor value;
  Tensor grad;                 ///< allocated lazily, same shape as value
  std::vector<Var> parents;
  std::function<void(Node&)> backward_fn;  ///< routes grad into parents
  bool requires_grad = false;

  explicit Node(Tensor v) : value(std::move(v)) {}

  /// Ensures grad exists (zero-filled) and returns it.
  Tensor& ensure_grad();
};

/// Leaf with gradient tracking (model weights).
Var parameter(Tensor value);
/// Leaf without gradient (inputs, masks, positional tables).
Var constant(Tensor value);

/// Runs reverse-mode accumulation from a scalar (1x1) root.
void backward(const Var& root);

/// Internal helper for op implementations: builds a node whose
/// requires_grad is the OR of its parents'.
Var make_node(Tensor value, std::vector<Var> parents,
              std::function<void(Node&)> backward_fn);

}  // namespace ota::ml
