// Adam optimizer (paper Section IV-B: Adam with an adaptive learning rate,
// initial 1e-4) with optional gradient clipping and a plateau-based decay.
#pragma once

#include <vector>

#include "ml/autograd.hpp"

namespace ota::ml {

struct AdamOptions {
  double lr = 1e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double grad_clip = 1.0;   ///< global-norm clip; <= 0 disables
  double decay_factor = 0.5;  ///< multiplied into lr on plateau
  int patience = 2;           ///< epochs without improvement before decay
  double min_lr = 1e-6;
};

class Adam {
 public:
  Adam(std::vector<Var> params, const AdamOptions& opt = {});

  /// Applies one update from the accumulated gradients, then zeroes them.
  /// Computes the global clip norm in a single fused sweep before the update
  /// pass (no per-tensor Tensor::norm calls).
  void step();

  /// As step(), but takes the global gradient sum-of-squares the caller
  /// already produced (the data-parallel trainer folds it into its gradient
  /// reduction), so clipping costs no extra pass over the parameters here.
  void step_presquared(double grad_sq_sum);

  /// Zeroes gradients without stepping.
  void zero_grad();

  /// Plateau-based adaptive learning rate: call once per epoch with the
  /// validation (or training) loss; decays lr after `patience` stalls.
  void observe_loss(double loss);

  double learning_rate() const { return opt_.lr; }
  int64_t steps_taken() const { return t_; }

 private:
  std::vector<Var> params_;
  AdamOptions opt_;
  std::vector<Tensor> m_, v_;
  int64_t t_ = 0;
  double best_loss_ = 1e300;
  int stall_ = 0;
};

}  // namespace ota::ml
