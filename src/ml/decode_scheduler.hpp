// Continuous batching for the KV-cache inference engine.
//
// greedy_decode_batch parallelizes one caller's batch, but a server with many
// concurrent campaigns issues its decodes one request at a time from many
// threads — under that load the engine would decode batches of one and sit
// mostly idle.  DecodeScheduler is the LLM-serving-style answer: callers
// submit() decode requests from any thread and block on a Ticket; a dedicated
// scheduler thread coalesces every outstanding request into one dynamic batch
// and advances the whole batch one token per round on the engine's
// incremental Sessions.  Batching is continuous, at token granularity:
// requests join the running batch as they arrive (up to max_batch) and
// finished sequences retire immediately — no waiting for stragglers, no
// fixed batch boundaries.
//
// Determinism contract (property-tested under the DeterminismTest umbrella):
// a request's result is bit-identical to InferenceEngine::greedy_decode of
// the same (src, max_tokens) — regardless of arrival order, batch
// composition, or pool width.  This falls out of the architecture rather
// than of careful scheduling: each request decodes through its own Session
// (private KV cache, private argmax chain, the exact loop greedy_decode
// runs), and sessions never read each other's state, so WHAT is computed is
// independent of WHEN the scheduler interleaves it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ml/infer.hpp"

namespace ota::ml {

class DecodeScheduler {
 public:
  struct Options {
    /// Cap on concurrently-decoding sessions.  Arrivals beyond it queue and
    /// join the batch as earlier sequences retire.  Must be positive: a
    /// batch that can never admit a request would hang every Ticket::wait()
    /// forever, so the constructor throws InvalidArgument instead.
    int max_batch = 64;
    /// Intra-round fan-out: sessions step in parallel on this many workers.
    /// 0 (default) = the persistent process-wide pool; > 0 = a dedicated
    /// pool of that size owned by the scheduler.
    int threads = 0;
    /// Numeric tier every session decodes at.  kDouble (default) is the
    /// bit-identity reference; kFloat32 decodes through the engine's f32
    /// snapshot — agreement-gated, see ml/precision.hpp.  Validated at
    /// construction (an out-of-range cast is refused at the door).
    Precision precision = Precision::kDouble;
  };

  /// Per-request cancellation context for submit().  Both members are
  /// optional; the scheduler checks them once per round, so a live sequence
  /// retires from the dynamic batch mid-flight (its slot frees for the next
  /// admission) rather than decoding to completion.
  struct SubmitOptions {
    /// External cooperative cancel flag (e.g. a campaign's): when it reads
    /// true the request resolves with ota::Cancelled.
    std::shared_ptr<const std::atomic<bool>> cancel{};
    /// Absolute steady-clock deadline: past it the request resolves with
    /// ota::Cancelled without decoding further.  max() = no deadline.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  /// One-shot handle for a submitted request.  Created by submit(); waiters
  /// and the scheduler thread may touch it concurrently.
  class Ticket {
   public:
    /// Blocks until the request finishes and returns its decoded tokens.
    /// Rethrows the request's error instead (bad input at admission,
    /// common::Cancelled when cancelled, expired, or shut down drainless).
    /// Idempotent: repeated calls return (or rethrow) the same outcome.
    const std::vector<nlp::TokenId>& wait();

    /// True once the outcome (tokens or error) is published.
    bool done() const;

    /// Requests cooperative cancellation from any thread: the scheduler
    /// retires the request at its next round (queued requests never join a
    /// batch, live sequences leave the dynamic batch mid-flight) and wait()
    /// rethrows ota::Cancelled.  Idempotent; a no-op once the ticket has
    /// already resolved — the resolve-exactly-once contract holds either
    /// way (a cancel can lose the race with completion).
    void cancel();

    /// True when cancellation was requested via cancel() or the external
    /// SubmitOptions flag (regardless of whether the ticket resolved yet).
    bool cancel_requested() const;

   private:
    friend class DecodeScheduler;
    /// Deadline check, against a caller-supplied "now" so one clock read
    /// covers a whole scheduler round.
    bool expired(std::chrono::steady_clock::time_point now) const;

    mutable std::mutex mu;
    std::condition_variable cv;
    bool finished = false;
    std::vector<nlp::TokenId> tokens;  ///< written pre-publication by the
                                       ///< scheduler thread only
    std::exception_ptr error;
    std::vector<nlp::TokenId> src;
    int64_t max_tokens = 0;
    std::atomic<bool> cancel_flag{false};  ///< set by cancel()
    SubmitOptions sub;                     ///< external flag + deadline
  };

  /// Spawns the scheduler thread.  `engine` must outlive the scheduler.
  /// Throws InvalidArgument for opt.max_batch < 1 — before any thread is
  /// spawned.  (Two overloads rather than a defaulted Options argument: a
  /// nested struct with member initializers cannot default-construct inside
  /// its own enclosing class definition.)
  explicit DecodeScheduler(const InferenceEngine& engine);
  DecodeScheduler(const InferenceEngine& engine, Options opt);

  /// shutdown(true): outstanding requests finish before the thread exits.
  ~DecodeScheduler();
  DecodeScheduler(const DecodeScheduler&) = delete;
  DecodeScheduler& operator=(const DecodeScheduler&) = delete;

  /// Enqueues one decode request; returns immediately.  Throws
  /// InvalidArgument for max_tokens <= 0 or after shutdown() — a request
  /// that could never be served is refused at the door, not queued.
  /// The second overload attaches a cancellation context: the request
  /// resolves with ota::Cancelled as soon as the scheduler observes the
  /// flag set or the deadline passed (at round granularity), whether it is
  /// still queued or already decoding in the dynamic batch.
  std::shared_ptr<Ticket> submit(std::vector<nlp::TokenId> src,
                                 int64_t max_tokens);
  std::shared_ptr<Ticket> submit(std::vector<nlp::TokenId> src,
                                 int64_t max_tokens, SubmitOptions sub);

  /// Stops accepting submissions and joins the scheduler thread.
  /// drain=true serves every outstanding request first; drain=false answers
  /// every unfinished request with common::Cancelled.  Either way each
  /// request resolves exactly once: none lost, none double-served.
  /// Idempotent; the first call's drain mode wins.
  void shutdown(bool drain = true);

  /// Monotone counters, readable at any time (consistent snapshot).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t served = 0;        ///< tickets resolved with tokens
    uint64_t failed = 0;        ///< tickets resolved with an error
    uint64_t cancelled = 0;     ///< tickets resolved with Cancelled
    uint64_t rounds = 0;        ///< scheduler rounds that stepped >= 1 session
    uint64_t session_steps = 0; ///< total single-session token steps
    uint64_t peak_batch = 0;    ///< widest dynamic batch observed
    /// Per-tier split of session_steps (tokens_double + tokens_f32 ==
    /// session_steps), so serving dashboards can see which tier paid for
    /// the traffic.
    uint64_t tokens_double = 0;
    uint64_t tokens_f32 = 0;
    /// Mean sessions advanced per round — the coalescing figure of merit:
    /// 1.0 means the engine ran serially, > 1 means requests genuinely
    /// shared rounds.
    double mean_batch_occupancy() const {
      return rounds > 0
                 ? static_cast<double>(session_steps) / static_cast<double>(rounds)
                 : 0.0;
    }
  };
  Stats stats() const;

 private:
  struct ActiveRequest;
  void loop();
  /// One scheduler round: sleep/admit/encode/step/retire.  Returns false
  /// when the scheduler should exit (drained, or drainless shutdown).
  /// Failures it does not contain itself (per-session errors resolve only
  /// their own ticket inside) are contained by loop() via fail_round.
  bool run_round(std::vector<ActiveRequest>& active,
                 std::vector<std::shared_ptr<Ticket>>& admitted);
  /// Round-level failure containment: resolves every unresolved ticket the
  /// failed round was carrying as Failed with `err` (cancel-marked ones as
  /// Cancelled) and clears the batch, so one poisoned round can never take
  /// down the scheduler thread — later submissions decode normally.
  void fail_round(std::vector<ActiveRequest>& active,
                  std::vector<std::shared_ptr<Ticket>>& admitted,
                  const std::exception_ptr& err);
  static void publish(const std::shared_ptr<Ticket>& ticket);

  const InferenceEngine& engine_;
  Options opt_;
  std::unique_ptr<par::ThreadPool> own_pool_;  ///< only when opt_.threads > 0
  par::ThreadPool& pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Ticket>> pending_;
  bool stop_ = false;
  bool drain_ = true;
  Stats stats_;

  std::mutex join_mu_;  ///< serializes shutdown()'s join
  std::thread thread_;
};

}  // namespace ota::ml
