#include "ml/tensor.hpp"

#include <cmath>

namespace ota::ml {

Tensor Tensor::xavier(int64_t rows, int64_t cols, Rng& rng) {
  Tensor t(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : t.data()) v = rng.uniform(-bound, bound);
  return t;
}

double Tensor::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

namespace {

enum class Mode { NN, NT, TN };

// One blocked kernel serving all three transpose modes, with an accumulate
// flag.  Loop order ikj keeps the innermost loop contiguous for NN.
template <Mode M, bool Acc>
void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const int64_t m = M == Mode::TN ? a.cols() : a.rows();
  const int64_t k = M == Mode::TN ? a.rows() : a.cols();
  const int64_t n = M == Mode::NT ? b.rows() : b.cols();
  const int64_t bk = M == Mode::NT ? b.cols() : b.rows();
  if (k != bk) throw InvalidArgument("matmul: inner dimension mismatch");
  if constexpr (Acc) {
    if (c.rows() != m || c.cols() != n) {
      throw InvalidArgument("matmul: output shape mismatch");
    }
  } else {
    if (c.rows() != m || c.cols() != n) c = Tensor(m, n);
    c.zero();
  }

  if constexpr (M == Mode::NN) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const double av = a(i, p);
        if (av == 0.0) continue;
        for (int64_t j = 0; j < n; ++j) c(i, j) += av * b(p, j);
      }
    }
  } else if constexpr (M == Mode::NT) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int64_t p = 0; p < k; ++p) acc += a(i, p) * b(j, p);
        c(i, j) += acc;
      }
    }
  } else {  // TN
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t i = 0; i < m; ++i) {
        const double av = a(p, i);
        if (av == 0.0) continue;
        for (int64_t j = 0; j < n; ++j) c(i, j) += av * b(p, j);
      }
    }
  }
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NN, false>(a, b, c);
}
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NT, false>(a, b, c);
}
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::TN, false>(a, b, c);
}
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NN, true>(a, b, c);
}
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NT, true>(a, b, c);
}
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::TN, true>(a, b, c);
}

}  // namespace ota::ml
