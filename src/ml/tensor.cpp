#include "ml/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace ota::ml {

Tensor Tensor::xavier(int64_t rows, int64_t cols, Rng& rng) {
  Tensor t(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : t.data()) v = rng.uniform(-bound, bound);
  return t;
}

double Tensor::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

namespace {

enum class Mode { NN, NT, TN };

// Cache-blocked, register-tiled GEMM kernels.
//
// These serve every GEMM in the repository: the transformer forward pass,
// the autograd backward closures, and the KV-cache inference engine.  The
// shapes are small-to-medium (sequence x d_model, d_model x d_ff,
// sequence x vocab), so the wins come from register tiling and contiguous
// inner loops that -O3 can autovectorize, plus a k-panel block that keeps the
// streamed B slab hot once matrices outgrow L1.
//
// Determinism contract: for a given shape, every C element is accumulated in
// a fixed order that does not depend on threads or any runtime knob — the
// kernels are serial per call and the data-parallel trainer relies on their
// run-to-run bit stability.

constexpr int64_t kPanelK = 256;  ///< k-block: B panel rows kept cache-hot
constexpr int64_t kRowTile = 4;   ///< NN micro-kernel: C rows per step

// C[ib:ie) += A[ib:ie, pb:pe) * B[pb:pe, :) with row-major leading
// dimensions lda/ldb/ldc.  Four C rows move together: each streamed B row is
// reused four times and the j loop is a set of independent lanes the
// compiler vectorizes.  Templated on the scalar so the float32 inference
// tier shares the exact kernel (and its fixed per-element accumulation
// order); the double instantiation is the pre-existing reference code.
template <typename T>
void nn_panel(const T* a, int64_t lda, const T* b, int64_t ldb,
              T* c, int64_t ldc, int64_t ib, int64_t ie, int64_t pb,
              int64_t pe, int64_t n) {
  int64_t i = ib;
  for (; i + kRowTile <= ie; i += kRowTile) {
    const T* a0 = a + (i + 0) * lda;
    const T* a1 = a + (i + 1) * lda;
    const T* a2 = a + (i + 2) * lda;
    const T* a3 = a + (i + 3) * lda;
    T* c0 = c + (i + 0) * ldc;
    T* c1 = c + (i + 1) * ldc;
    T* c2 = c + (i + 2) * ldc;
    T* c3 = c + (i + 3) * ldc;
    for (int64_t p = pb; p < pe; ++p) {
      const T* bp = b + p * ldb;
      const T av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
#pragma omp simd
      for (int64_t j = 0; j < n; ++j) {
        const T bv = bp[j];
        c0[j] += av0 * bv;
        c1[j] += av1 * bv;
        c2[j] += av2 * bv;
        c3[j] += av3 * bv;
      }
    }
  }
  for (; i < ie; ++i) {
    const T* ai = a + i * lda;
    T* ci = c + i * ldc;
    for (int64_t p = pb; p < pe; ++p) {
      const T* bp = b + p * ldb;
      const T av = ai[p];
#pragma omp simd
      for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

// C (m,n) += A (m,k) * B (k,n), both row-major.
template <typename T>
void nn_driver(const T* a, const T* b, T* c, int64_t m,
               int64_t k, int64_t n) {
  for (int64_t pb = 0; pb < k; pb += kPanelK) {
    const int64_t pe = std::min(k, pb + kPanelK);
    nn_panel(a, k, b, n, c, n, 0, m, pb, pe, n);
  }
}

// C (m,n) += A (m,k) * B(n,k)^T.  Both operands are read along contiguous
// rows, so no packing is needed; a 2x4 register tile gives eight independent
// fused-multiply chains per k sweep.  Each C element is a single ascending-p
// dot product — the exact order a naive loop uses.
void nt_driver(const double* a, const double* b, double* c, int64_t m,
               int64_t k, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = a + (i + 0) * k;
    const double* a1 = a + (i + 1) * k;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + (j + 0) * k;
      const double* b1 = b + (j + 1) * k;
      const double* b2 = b + (j + 2) * k;
      const double* b3 = b + (j + 3) * k;
      double s00 = 0.0, s01 = 0.0, s02 = 0.0, s03 = 0.0;
      double s10 = 0.0, s11 = 0.0, s12 = 0.0, s13 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const double av0 = a0[p], av1 = a1[p];
        s00 += av0 * b0[p];
        s01 += av0 * b1[p];
        s02 += av0 * b2[p];
        s03 += av0 * b3[p];
        s10 += av1 * b0[p];
        s11 += av1 * b1[p];
        s12 += av1 * b2[p];
        s13 += av1 * b3[p];
      }
      double* c0 = c + (i + 0) * n + j;
      double* c1 = c + (i + 1) * n + j;
      c0[0] += s00; c0[1] += s01; c0[2] += s02; c0[3] += s03;
      c1[0] += s10; c1[1] += s11; c1[2] += s12; c1[3] += s13;
    }
    for (; j < n; ++j) {
      const double* bj = b + j * k;
      double s0 = 0.0, s1 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        s0 += a0[p] * bj[p];
        s1 += a1[p] * bj[p];
      }
      c[(i + 0) * n + j] += s0;
      c[(i + 1) * n + j] += s1;
    }
  }
  for (; i < m; ++i) {
    const double* ai = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const double* bj = b + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      c[i * n + j] += s;
    }
  }
}

// C (m,n) += A(k,m)^T * B (k,n) as a sequence of rank-1 updates (p outer):
// in this order every access — the A row, the B row, and the streamed C
// update — is contiguous, so nothing needs packing and each C-row update
// vectorizes as independent lanes.  Register-tiling the i loop was measured
// slower here (more concurrent write streams than the single-row form), so
// the row form stays.  Accumulation order per element is ascending p, same
// as a naive loop.
void tn_driver(const double* a, const double* b, double* c, int64_t m,
               int64_t k, int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const double* ap = a + p * m;
    const double* bp = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const double av = ap[i];
      double* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

// One entry point serving all three transpose modes, with an accumulate
// flag.
template <Mode M, bool Acc>
void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const int64_t m = M == Mode::TN ? a.cols() : a.rows();
  const int64_t k = M == Mode::TN ? a.rows() : a.cols();
  const int64_t n = M == Mode::NT ? b.rows() : b.cols();
  const int64_t bk = M == Mode::NT ? b.cols() : b.rows();
  if (k != bk) throw InvalidArgument("matmul: inner dimension mismatch");
  if constexpr (Acc) {
    if (c.rows() != m || c.cols() != n) {
      throw InvalidArgument("matmul: output shape mismatch");
    }
  } else {
    if (c.rows() != m || c.cols() != n) c = Tensor(m, n);
    c.zero();
  }

  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* cd = c.data().data();
  if constexpr (M == Mode::NN) {
    STAT_REGION("ml.gemm.nn");
    nn_driver(ad, bd, cd, m, k, n);
  } else if constexpr (M == Mode::NT) {
    STAT_REGION("ml.gemm.nt");
    nt_driver(ad, bd, cd, m, k, n);
  } else {  // TN
    STAT_REGION("ml.gemm.tn");
    tn_driver(ad, bd, cd, m, k, n);
  }
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NN, false>(a, b, c);
}
void matmul_into(const TensorF& a, const TensorF& b, TensorF& c) {
  if (a.cols() != b.rows()) {
    throw InvalidArgument("matmul: inner dimension mismatch");
  }
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    c = TensorF(a.rows(), b.cols());
  }
  c.zero();
  STAT_REGION("ml.gemm.nn");
  nn_driver(a.data().data(), b.data().data(), c.data().data(), a.rows(),
            a.cols(), b.cols());
}
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NT, false>(a, b, c);
}
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::TN, false>(a, b, c);
}
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NN, true>(a, b, c);
}
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::NT, true>(a, b, c);
}
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  gemm<Mode::TN, true>(a, b, c);
}

}  // namespace ota::ml
