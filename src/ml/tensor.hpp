// Minimal dense tensor for the from-scratch transformer.
//
// The transformer here works on 2-D row-major matrices (sequence length x
// feature) plus 1-D vectors; double precision keeps finite-difference
// gradient checks tight and training deterministic across platforms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ota::ml {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int64_t rows, int64_t cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), init) {
    if (rows <= 0 || cols <= 0) throw InvalidArgument("Tensor: bad shape");
  }

  static Tensor vector(int64_t n, double init = 0.0) { return Tensor(1, n, init); }

  /// Xavier/Glorot uniform initialization for weight matrices.
  static Tensor xavier(int64_t rows, int64_t cols, Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  double at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0); }

  /// Frobenius norm, for gradient clipping.
  double norm() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B (inner dimensions must agree).
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c);
/// C = A * B^T.
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c);
/// C = A^T * B.
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c);
/// C += A * B, C += A * B^T, C += A^T * B (accumulating variants).
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c);

}  // namespace ota::ml
