// Minimal dense tensor for the from-scratch transformer.
//
// The transformer here works on 2-D row-major matrices (sequence length x
// feature) plus 1-D vectors; double precision keeps finite-difference
// gradient checks tight and training deterministic across platforms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ota::ml {

class Tensor {
 public:
  using value_type = double;

  Tensor() = default;
  /// Validates BEFORE sizing the storage: a negative dimension used to reach
  /// the vector constructor as a huge size_t (bad_alloc or worse) before the
  /// shape check ever ran.
  Tensor(int64_t rows, int64_t cols, double init = 0.0)
      : rows_(rows), cols_(cols) {
    if (rows <= 0 || cols <= 0) throw InvalidArgument("Tensor: bad shape");
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), init);
  }

  static Tensor vector(int64_t n, double init = 0.0) { return Tensor(1, n, init); }

  /// Xavier/Glorot uniform initialization for weight matrices.
  static Tensor xavier(int64_t rows, int64_t cols, Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  double at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0); }

  /// Frobenius norm, for gradient clipping.
  double norm() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// Float32 companion of Tensor for the inference engine's fast tier: same
/// row-major 2-D layout, half the bytes per element.  It exists only as a
/// weight/activation snapshot format on the decode path (training and the
/// bit-identity reference stay double), so it carries none of Tensor's
/// training-side helpers.
class TensorF {
 public:
  using value_type = float;

  TensorF() = default;
  TensorF(int64_t rows, int64_t cols, float init = 0.0f)
      : rows_(rows), cols_(cols) {
    if (rows <= 0 || cols <= 0) throw InvalidArgument("TensorF: bad shape");
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), init);
  }

  /// Narrowing snapshot of a double tensor (round-to-nearest per element).
  static TensorF from(const Tensor& t) {
    TensorF f(t.rows(), t.cols());
    for (int64_t i = 0; i < t.size(); ++i) {
      f.data_[static_cast<size_t>(i)] = static_cast<float>(t.at(i));
    }
    return f;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  float& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B (inner dimensions must agree).
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c);
/// Float32 NN GEMM through the same cache-blocked/register-tiled kernel as
/// the double path (templated on the scalar), for the inference engine's
/// fast tier.  Serial per call and run-to-run bit-identical, like the rest.
void matmul_into(const TensorF& a, const TensorF& b, TensorF& c);
/// C = A * B^T.
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c);
/// C = A^T * B.
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c);
/// C += A * B, C += A * B^T, C += A^T * B (accumulating variants).
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c);
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c);

}  // namespace ota::ml
