// Differentiable operations for the transformer.
//
// Each function builds the forward value eagerly and registers a closure that
// propagates gradients to its inputs.  All are verified against central
// finite differences in tests/test_autograd.cpp.
#pragma once

#include <vector>

#include "ml/autograd.hpp"
#include "nlp/vocabulary.hpp"

namespace ota::ml {

Var matmul(const Var& a, const Var& b);      ///< (m,k)x(k,n)
Var matmul_nt(const Var& a, const Var& b);   ///< (m,k)x(n,k)^T -> (m,n)
Var add(const Var& a, const Var& b);         ///< same shape
Var add_bias(const Var& a, const Var& bias); ///< bias (1,n) broadcast over rows
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);         ///< elementwise
Var scale(const Var& a, double c);
Var relu(const Var& a);
Var transpose(const Var& a);

/// Softmax along each row.
Var softmax_rows(const Var& a);
/// Adds -inf (−1e30) above the diagonal before softmax consumers: causal mask.
Var causal_mask(const Var& scores);

/// Row-wise layer normalization with learned gain/bias (1,n).
Var layer_norm(const Var& a, const Var& gamma, const Var& beta,
               double eps = 1e-5);

/// Gathers rows of `table` (V,d) by token id -> (L,d).
Var embedding(const Var& table, const std::vector<nlp::TokenId>& ids);

/// Horizontal concatenation of equal-row tensors (the multi-head join).
Var concat_cols(const std::vector<Var>& parts);

/// Inverted dropout; identity when !training or p == 0.
Var dropout(const Var& a, double p, bool training, Rng& rng);

/// Sum of all elements -> scalar.
Var sum(const Var& a);

/// Mean weighted cross-entropy between rows of `logits` (L,V) and `targets`
/// (length L), with one weight per position (the paper's 20% uplift on
/// numeric tokens).  Softmax is fused for numerical stability.
Var cross_entropy(const Var& logits, const std::vector<nlp::TokenId>& targets,
                  const std::vector<double>& weights);

}  // namespace ota::ml
