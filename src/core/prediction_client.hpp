// Asynchronous Stage-II submission: the seam between the copilot's
// sequential refinement loop and whatever executes its predictions.
//
// The copilot's loop is inherently sequential (each request depends on the
// previous verification), so from one campaign's point of view a prediction
// is submit-then-wait.  What the seam buys is the server case: many
// concurrent campaigns hand their submits to a shared continuous-batching
// scheduler (serve::ScheduledPredictionClient over ml::DecodeScheduler),
// which coalesces them into dynamic batches on one inference engine.  The
// serial client below is the bit-identity reference — the scheduler-backed
// path must produce byte-identical decoder text for every request.
//
// Cancellation rides the same seam: a CancelSignal (cooperative flag +
// absolute deadline) accompanies each submit, so a cancelled campaign's
// in-flight decode can retire from the dynamic batch mid-round instead of
// decoding tokens nobody will read.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/predictor.hpp"
#include "ml/precision.hpp"

namespace ota::core {

/// Cooperative cancellation context for one campaign or prediction: an
/// optional shared flag (e.g. set by serve::CampaignServer::Job::cancel)
/// and an optional absolute deadline.  Value-copied freely; default state
/// means "never cancelled".
struct CancelSignal {
  std::shared_ptr<const std::atomic<bool>> flag{};
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool cancel_requested() const {
    return flag && flag->load(std::memory_order_acquire);
  }
  bool expired() const {
    return deadline != std::chrono::steady_clock::time_point::max() &&
           std::chrono::steady_clock::now() >= deadline;
  }
  /// Stage-boundary checkpoint: throws ota::Cancelled when the flag is set
  /// or the deadline has passed.  `where` names the boundary for the error.
  void check(const char* where) const {
    if (cancel_requested()) {
      throw Cancelled(std::string(where) + ": campaign cancelled by caller");
    }
    if (expired()) {
      throw Cancelled(std::string(where) + ": campaign deadline exceeded");
    }
  }
};

/// Submit an encoder text now, collect the decoded text later.
class PredictionClient {
 public:
  /// One outstanding prediction.
  class Handle {
   public:
    virtual ~Handle() = default;
    /// Blocks until the prediction is available and returns the decoder
    /// text.  Rethrows the request's error (cancellation, refused input).
    virtual std::string wait() = 0;
  };

  virtual ~PredictionClient() = default;

  /// Enqueues one prediction.  Implementations may compute eagerly (the
  /// serial reference) or hand off to a batch scheduler; either way wait()
  /// on the handle yields text bit-identical to
  /// `predictor.predict_batch({encoder_text}, max_tokens, 1).front()`.
  /// `cancel` is a cooperative signal implementations must honor at their
  /// natural granularity: the serial client checks it once at submit time,
  /// the scheduler-backed client threads it into the decode scheduler so an
  /// in-flight decode retires mid-round.  A cancelled request's wait()
  /// rethrows ota::Cancelled.
  virtual std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                         int max_tokens,
                                         const CancelSignal& cancel) = 0;

  /// Convenience overload: no cancellation context.
  std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                 int max_tokens) {
    return submit(encoder_text, max_tokens, CancelSignal{});
  }
};

/// The reference implementation: predicts synchronously on the submitting
/// thread through the serial batch-of-one path — exactly the call the
/// copilot's refinement loop used to make directly.
class SerialPredictionClient : public PredictionClient {
 public:
  /// `precision` selects the numeric tier every submit decodes at
  /// (ml::Precision::kDouble, the default, is the bit-identity reference;
  /// kFloat32 is the SIMD serving tier).  Validated here so a forged enum
  /// value is refused at construction, not at the first prediction.
  explicit SerialPredictionClient(
      const Predictor& model, ml::Precision precision = ml::Precision::kDouble)
      : model_(model),
        precision_(
            ml::validated_precision(precision, "SerialPredictionClient")) {}

  using PredictionClient::submit;
  std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                 int max_tokens,
                                 const CancelSignal& cancel) override {
    class Ready : public Handle {
     public:
      explicit Ready(std::string text) : text_(std::move(text)) {}
      std::string wait() override { return text_; }

     private:
      std::string text_;
    };
    // The prediction runs inline, so submit time IS the only cancellation
    // point; an uncancelled request is computed exactly as before.
    cancel.check("SerialPredictionClient::submit");
    // threads=1 keeps the prediction inline under outer worker threads
    // (campaign fan-out), as the direct call site always did.
    return std::make_unique<Ready>(
        model_
            .predict_batch({encoder_text}, max_tokens, /*threads=*/1,
                           precision_)
            .front());
  }

 private:
  const Predictor& model_;
  ml::Precision precision_;
};

}  // namespace ota::core
