// Asynchronous Stage-II submission: the seam between the copilot's
// sequential refinement loop and whatever executes its predictions.
//
// The copilot's loop is inherently sequential (each request depends on the
// previous verification), so from one campaign's point of view a prediction
// is submit-then-wait.  What the seam buys is the server case: many
// concurrent campaigns hand their submits to a shared continuous-batching
// scheduler (serve::ScheduledPredictionClient over ml::DecodeScheduler),
// which coalesces them into dynamic batches on one inference engine.  The
// serial client below is the bit-identity reference — the scheduler-backed
// path must produce byte-identical decoder text for every request.
#pragma once

#include <memory>
#include <string>

#include "core/predictor.hpp"

namespace ota::core {

/// Submit an encoder text now, collect the decoded text later.
class PredictionClient {
 public:
  /// One outstanding prediction.
  class Handle {
   public:
    virtual ~Handle() = default;
    /// Blocks until the prediction is available and returns the decoder
    /// text.  Rethrows the request's error (cancellation, refused input).
    virtual std::string wait() = 0;
  };

  virtual ~PredictionClient() = default;

  /// Enqueues one prediction.  Implementations may compute eagerly (the
  /// serial reference) or hand off to a batch scheduler; either way wait()
  /// on the handle yields text bit-identical to
  /// `predictor.predict_batch({encoder_text}, max_tokens, 1).front()`.
  virtual std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                         int max_tokens) = 0;
};

/// The reference implementation: predicts synchronously on the submitting
/// thread through the serial batch-of-one path — exactly the call the
/// copilot's refinement loop used to make directly.
class SerialPredictionClient : public PredictionClient {
 public:
  explicit SerialPredictionClient(const Predictor& model) : model_(model) {}

  std::unique_ptr<Handle> submit(const std::string& encoder_text,
                                 int max_tokens) override {
    class Ready : public Handle {
     public:
      explicit Ready(std::string text) : text_(std::move(text)) {}
      std::string wait() override { return text_; }

     private:
      std::string text_;
    };
    // threads=1 keeps the prediction inline under outer worker threads
    // (campaign fan-out), as the direct call site always did.
    return std::make_unique<Ready>(
        model_.predict_batch({encoder_text}, max_tokens, /*threads=*/1)
            .front());
  }

 private:
  const Predictor& model_;
};

}  // namespace ota::core
