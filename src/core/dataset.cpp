#include "core/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "par/thread_pool.hpp"

namespace ota::core {

SpecRange SpecRange::for_topology(const std::string& name) {
  // Windows measured on the default65nm technology; same structure as the
  // paper's Table I (single-stage OTAs around 20 dB with tens-to-hundreds of
  // MHz UGF, the two-stage OTA higher gain with a much lower bandwidth).
  if (name == "5T-OTA") {
    return SpecRange{16.0, 26.0, 2e6, 60e6, 30e6, 900e6};
  }
  if (name == "CM-OTA") {
    return SpecRange{14.0, 26.0, 2e6, 90e6, 20e6, 1200e6};
  }
  if (name == "2S-OTA") {
    return SpecRange{26.0, 48.0, 0.05e6, 8e6, 10e6, 500e6};
  }
  throw InvalidArgument("SpecRange: unknown topology '" + name + "'");
}

namespace {

// For the 2S-OTA the common-source width must roughly balance the
// current-source load or the output node rails out; mirror what a designer's
// sweep script does and derive it from the sampled widths with jitter.
double balanced_cs_width(circuit::Topology& topo,
                         const device::Technology& tech,
                         const std::vector<double>& widths, Rng& rng) {
  // Current density ratio of the second-stage devices at their nominal gate
  // drives: M6 (PMOS at Vsg = vbias_p_delta), M7 (NMOS at the first-stage
  // output level, roughly Vdd - Vsg(M1 diode)).
  circuit::Netlist& nl = topo.netlist;
  const device::MosModel pmos(tech.pmos);
  const device::MosModel nmos(tech.nmos);
  const auto& m6 = nl.mosfet("M6");
  const double vsg6 = tech.vdd - nl.vsource("VBP").dc;
  const double id6 = pmos.evaluate(vsg6, tech.vdd / 2.0, m6.w, m6.l).id;

  // Estimate the first-stage output level from the diode load's density.
  const auto& m1 = nl.mosfet("M1");
  const double i_branch =
      nmos.evaluate(nl.vsource("VB").dc, 0.3, widths[2], m1.l).id / 2.0;
  double vsg1 = 0.55;
  for (int it = 0; it < 30; ++it) {  // fixed-point on the diode equation
    const double id = pmos.evaluate(vsg1, vsg1, widths[0], m1.l).id;
    vsg1 += 0.05 * (i_branch - id) / std::max(i_branch, 1e-9);
    vsg1 = std::clamp(vsg1, 0.3, 1.0);
  }
  const double vgs7 = tech.vdd - vsg1;
  const double id7_per_m = nmos.evaluate(vgs7, tech.vdd / 2.0, 1e-6, m1.l).id / 1e-6;
  if (id7_per_m <= 0.0) return widths[0];
  const double w7 = id6 / id7_per_m;
  // Jitter keeps the dataset from collapsing onto the balance manifold.
  return w7 * rng.log_uniform(0.7, 1.4);
}

// One rejection-sampling attempt.  Attempt `index` draws every jitter from
// its own counted stream Rng(seed, index), so the outcome depends only on
// (options, index) — never on which worker ran it or what ran before.
enum class AttemptKind : uint8_t { Accepted, DcFailure, RegionReject, SpecReject };

struct Attempt {
  AttemptKind kind = AttemptKind::DcFailure;
  Design design;
};

Attempt run_attempt(circuit::Topology& topo, const device::Technology& tech,
                    const SpecRange& range, const DataGenOptions& opt,
                    uint64_t index) {
  Rng rng(opt.seed, index);
  const size_t n_groups = topo.match_groups.size();
  const bool two_stage = topo.name == "2S-OTA";

  std::vector<double> widths(n_groups);
  for (size_t g = 0; g < n_groups; ++g) {
    widths[g] = rng.log_uniform(opt.w_min, opt.w_max);
  }
  if (two_stage) {
    // Groups: load1, dp, tail1, tail2 (M6), cs (M7).
    topo.apply_widths(widths);
    widths[4] = std::clamp(balanced_cs_width(topo, tech, widths, rng),
                           opt.w_min, opt.w_max);
  }

  Attempt a;
  spice::EvalResult r;
  try {
    r = spice::evaluate(topo, tech, widths, opt.measure);
  } catch (const ConvergenceError&) {
    a.kind = AttemptKind::DcFailure;
    return a;
  }
  if ((opt.enforce_saturation && !r.saturation_ok) ||
      (opt.enforce_regions && !r.regions_ok)) {
    a.kind = AttemptKind::RegionReject;
    return a;
  }
  const Specs specs{r.metrics.gain_db, r.metrics.bw_3db_hz, r.metrics.ugf_hz};
  if (opt.enforce_spec_range && !range.contains(specs)) {
    a.kind = AttemptKind::SpecReject;
    return a;
  }
  a.kind = AttemptKind::Accepted;
  a.design = Design{std::move(widths), specs, std::move(r.devices)};
  return a;
}

}  // namespace

Dataset generate_dataset(circuit::Topology& topo,
                         const device::Technology& tech, const SpecRange& range,
                         const DataGenOptions& opt) {
  Dataset ds;
  ds.topology = topo.name;

  const int threads = par::resolve_threads(opt.threads);

  auto fold = [&ds](Attempt& a) {
    ++ds.attempts;
    switch (a.kind) {
      case AttemptKind::Accepted:
        ds.designs.push_back(std::move(a.design));
        break;
      case AttemptKind::DcFailure: ++ds.dc_failures; break;
      case AttemptKind::RegionReject: ++ds.region_rejects; break;
      case AttemptKind::SpecReject: ++ds.spec_rejects; break;
    }
  };

  if (threads <= 1) {
    // Serial fast path: identical per-attempt counted streams and fold
    // order, one Topology copy total, no end-of-run waste.  The copy keeps
    // the caller's topology untouched, as on the parallel path.
    circuit::Topology worker_topo = topo;
    for (int i = 0; i < opt.max_attempts &&
                    static_cast<int>(ds.designs.size()) < opt.target_designs;
         ++i) {
      Attempt a = run_attempt(worker_topo, tech, range, opt,
                              static_cast<uint64_t>(i));
      fold(a);
    }
    return ds;
  }

  par::ThreadPool pool(threads);
  // Attempts are evaluated in fixed-size blocks and folded into the dataset
  // in index order, stopping at the attempt that fills the target.  Block
  // size only trades end-of-run waste against scheduling overhead; it can
  // never change the result.
  const int block = std::max(threads, std::min(32 * threads, 1024));

  std::vector<Attempt> attempts;
  int base = 0;
  while (base < opt.max_attempts &&
         static_cast<int>(ds.designs.size()) < opt.target_designs) {
    const int m = std::min(block, opt.max_attempts - base);
    attempts.assign(static_cast<size_t>(m), Attempt{});
    pool.parallel_for(static_cast<size_t>(m), [&](size_t begin, size_t end) {
      circuit::Topology worker_topo = topo;
      for (size_t i = begin; i < end; ++i) {
        attempts[i] = run_attempt(worker_topo, tech, range, opt,
                                  static_cast<uint64_t>(base) + i);
      }
    });
    for (int i = 0;
         i < m && static_cast<int>(ds.designs.size()) < opt.target_designs;
         ++i) {
      fold(attempts[static_cast<size_t>(i)]);
    }
    base += m;
  }
  return ds;
}

std::pair<std::vector<Design>, std::vector<Design>> train_val_split(
    const std::vector<Design>& designs, double val_fraction, uint64_t seed) {
  if (val_fraction < 0.0 || val_fraction >= 1.0) {
    throw InvalidArgument("train_val_split: bad fraction");
  }
  std::vector<Design> shuffled = designs;
  Rng rng(seed);
  std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
  const size_t n_val = static_cast<size_t>(
      std::llround(val_fraction * static_cast<double>(shuffled.size())));
  std::vector<Design> val(shuffled.begin(), shuffled.begin() + static_cast<long>(n_val));
  std::vector<Design> train(shuffled.begin() + static_cast<long>(n_val), shuffled.end());
  return {std::move(train), std::move(val)};
}

}  // namespace ota::core
