// Stages III and IV: width estimation glue and the verification "copilot"
// loop with specification-margin allocation (paper Sections III-D/E).
//
// Given a specification target, the copilot asks the transformer for device
// parameters, converts them to widths via the gm/Id LUTs (Algorithm 1, with
// the scan fallback for parameters the differential DP-SFG cannot expose),
// verifies the sized circuit with one minispice simulation, and, on a miss,
// tightens the requested specification by the observed shortfall and retries
// — the paper's designer-in-the-loop margin allocation.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/prediction_client.hpp"
#include "core/predictor.hpp"
#include "core/sequence_builder.hpp"
#include "lut/width_estimator.hpp"
#include "spice/measure.hpp"

namespace ota::core {

/// The NMOS/PMOS LUT pair (one per polarity, fixed L per the paper).
struct LutSet {
  lut::DeviceLut nmos;
  lut::DeviceLut pmos;

  static LutSet build(const device::Technology& tech,
                      const lut::LutOptions& opt = {});
};

/// Stage III: converts predicted parameter values into one width per match
/// group.  Groups whose parameters are unusable fall back to the previous
/// width in `fallback_widths`.
std::vector<double> widths_from_params(
    const circuit::Topology& topology, const device::Technology& tech,
    const LutSet& luts, const std::map<std::string, double>& params,
    const std::vector<double>& fallback_widths,
    double w_min = 0.7e-6, double w_max = 50e-6);

struct CopilotOptions {
  int max_iterations = 6;      ///< paper: 1 + 3-5 refinement sims
  double gain_tol_db = 0.4;    ///< allowed dB shortfall on gain
  double rel_tol = 0.05;       ///< allowed relative shortfall on BW / UGF
  double margin_boost = 1.05;  ///< extra tightening beyond the raw shortfall
  int max_decode_tokens = 800;
  /// After this many transformer rounds, remaining iterations refine the best
  /// candidate by constant-density width scaling: multiplying every width by
  /// a common factor keeps all bias voltages (hence the gain) and scales all
  /// currents, gm and UGF/BW linearly — the gm/Id-methodology scaling step.
  int prediction_iterations = 3;
  /// AC measurement configuration for the Stage IV verification simulation
  /// (one batched sweep per candidate).  `measure.threads` stays 1 here
  /// because campaigns shard whole sizing runs across the pool.
  spice::MeasureOptions measure{};
  /// Cooperative cancellation: once the owner sets *cancel, size() throws
  /// ota::Cancelled at the next stage boundary, and any in-flight
  /// scheduler-backed decode retires from the dynamic batch mid-round.
  /// null (default) = not cancellable.  Under a CampaignServer this slot is
  /// owned by the job — use Job::cancel(), not a caller-supplied flag.
  std::shared_ptr<std::atomic<bool>> cancel{};
  /// Absolute steady-clock deadline for the whole campaign; past it size()
  /// throws ota::Cancelled at the next stage boundary (and in-flight
  /// decodes retire the same way).  max() (default) = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

struct SizingOutcome {
  bool success = false;
  int iterations = 0;        ///< transformer inference rounds
  int spice_simulations = 0; ///< verification simulations performed
  Specs target;              ///< the user's requirement
  Specs achieved;            ///< measured specs of the final sizing
  std::vector<double> widths;
  std::map<std::string, double> predicted;  ///< last parameter prediction
  double seconds = 0.0;
};

/// The Stage I-IV inference loop for one topology.
class SizingCopilot {
 public:
  SizingCopilot(circuit::Topology topology, const device::Technology& tech,
                const SequenceBuilder& builder, const Predictor& model,
                const LutSet& luts);

  /// Sizes the OTA for `target` (specs are treated as minimum requirements).
  /// Stage-II predictions run through the serial reference client (an
  /// inline batch of one on the calling thread — the bit-identity baseline).
  SizingOutcome size(const Specs& target, const CopilotOptions& opt = {});

  /// As above, with Stage-II predictions submitted through `stage2` —
  /// under a campaign server this is the continuous-batching scheduler
  /// client, so concurrent campaigns' decodes coalesce on one engine.  The
  /// outcome (everything except the wall-clock `seconds`) is bit-identical
  /// to the serial overload for any scheduler/batch configuration.
  SizingOutcome size(const Specs& target, const CopilotOptions& opt,
                     PredictionClient& stage2);

 private:
  bool meets(const Specs& achieved, const Specs& target,
             const CopilotOptions& opt) const;

  circuit::Topology topo_;
  /// Widths the topology arrived with.  Every size() call starts from these,
  /// not from whatever the previous campaign's verification simulations left
  /// in topo_ — campaigns are hermetic, so a serial loop over one copilot is
  /// bit-identical to a fresh copilot (or server worker) per campaign.
  std::vector<double> nominal_widths_;
  const device::Technology& tech_;
  const SequenceBuilder& builder_;
  const Predictor& model_;
  const LutSet& luts_;
};

}  // namespace ota::core
