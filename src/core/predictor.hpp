// Abstraction over Stage II: anything that maps an encoder sequence to a
// decoder sequence.  The transformer (SizingModel) is the paper's instance;
// NearestNeighborPredictor is a non-learned reference used by tests and the
// ablation benchmarks (how much does the transformer beat a lookup of the
// closest training design?).
#pragma once

#include <string>
#include <vector>

#include "ml/precision.hpp"

namespace ota::core {

class Predictor {
 public:
  virtual ~Predictor() = default;
  /// Decoder-sequence prediction for an encoder sequence.
  virtual std::string predict(const std::string& encoder_text,
                              int max_tokens) const = 0;

  /// Predictions for many encoder sequences, positionally aligned with the
  /// input.  The default is a serial loop over predict(); implementations
  /// with a faster path (SizingModel decodes batches concurrently through
  /// its inference engine) override it.  Contract for overrides: results
  /// must be bit-identical to the serial loop for any `threads` value
  /// (0 = auto: OTA_THREADS env, else hardware concurrency).
  virtual std::vector<std::string> predict_batch(
      const std::vector<std::string>& encoder_texts, int max_tokens,
      int threads = 0) const {
    (void)threads;
    std::vector<std::string> out;
    out.reserve(encoder_texts.size());
    for (const std::string& text : encoder_texts) {
      out.push_back(predict(text, max_tokens));
    }
    return out;
  }

  /// Tier-selecting batch prediction.  Predictors with a numeric fast path
  /// (SizingModel's float32 inference tier) override this; everything else —
  /// notably the non-learned reference predictors, which have no floating
  /// tiers at all — computes the one answer it has and ignores the knob.
  /// Contract for overrides: ml::Precision::kDouble must stay bit-identical
  /// to the 3-arg overload, and kFloat32 output must be deterministic for
  /// any `threads` value.
  virtual std::vector<std::string> predict_batch(
      const std::vector<std::string>& encoder_texts, int max_tokens,
      int threads, ml::Precision precision) const {
    ml::validated_precision(precision, "Predictor::predict_batch");
    return predict_batch(encoder_texts, max_tokens, threads);
  }
};

}  // namespace ota::core
