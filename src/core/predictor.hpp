// Abstraction over Stage II: anything that maps an encoder sequence to a
// decoder sequence.  The transformer (SizingModel) is the paper's instance;
// NearestNeighborPredictor is a non-learned reference used by tests and the
// ablation benchmarks (how much does the transformer beat a lookup of the
// closest training design?).
#pragma once

#include <string>

namespace ota::core {

class Predictor {
 public:
  virtual ~Predictor() = default;
  /// Decoder-sequence prediction for an encoder sequence.
  virtual std::string predict(const std::string& encoder_text,
                              int max_tokens) const = 0;
};

}  // namespace ota::core
