// Circuit-and-spec to sequence mapping (paper Fig. 4, Stage I).
//
// Two representations are provided:
//
//  * FullPaths — the paper's Fig. 4 text: every DP-SFG forward path and cycle
//    rendered symbolically on the encoder side and with numeric device
//    parameters on the decoder side, each line carrying the specification
//    triple.  Faithful but long (the paper itself notes that "other string
//    representations" are possible when path counts grow).
//
//  * Compact — the condensed representation used as the benchmark default:
//    the encoder carries the canonical device-parameter skeleton (derived
//    from the same DP-SFG) plus the specifications; the decoder carries
//    "name value" pairs per match-group representative, extended with the
//    drain currents Algorithm 1 consumes as I_d^in.  One entry per matched
//    group keeps the sequence short enough for CPU-scale training.
//
// Both sides use the SI-literal notation of the paper ("2.5mS", "541aF").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "sfg/sequence.hpp"

namespace ota::core {

enum class SequenceMode { Compact, FullPaths };

/// One parameter slot in the canonical ordering.
struct ParamSlot {
  std::string name;    ///< "gmM1", "CdsM3", "IdM5", ...
  std::string device;  ///< owning device ("M1")
  char unit;           ///< 'S' (conductance), 'F' (capacitance), 'A' (current)
};

class SequenceBuilder {
 public:
  /// `sig_digits` controls the numeric literals of the decoder text.  The
  /// default of 2 keeps every digit learnable: the third significant digit of
  /// a device parameter is below the design-manifold noise floor, and the
  /// +/-2.5% rounding is far inside the copilot's verification tolerance.
  SequenceBuilder(const circuit::Topology& topology,
                  const device::Technology& tech,
                  SequenceMode mode = SequenceMode::Compact,
                  int sig_digits = 2);

  SequenceMode mode() const { return mode_; }
  const std::string& topology_name() const { return topo_name_; }

  /// Encoder-side text for a specification request.  The circuit part is
  /// identical for every design of the topology (it is the symbolic DP-SFG
  /// description); only the appended specification changes.
  std::string encoder_text(const Specs& specs) const;

  /// Decoder-side (target) text with the design's parameter values.
  std::string decoder_text(const Design& design) const;

  /// Parses (possibly imperfect) predicted decoder text into parameter
  /// values keyed by slot name.  Malformed fragments are skipped.
  std::map<std::string, double> parse_decoder(const std::string& text) const;

  /// Canonical parameter slots (compact decoder order).
  const std::vector<ParamSlot>& slots() const { return slots_; }

  /// Representative device name of each match group, in group order.
  const std::vector<std::string>& representatives() const { return reps_; }

  /// The DP-SFG this builder derives its text from.
  const sfg::DpSfg& graph() const { return graph_; }

  /// Formats the specification block ("SPEC 20.1dB 11.4MHz 119MHz").
  std::string spec_text(const Specs& specs) const;

 private:
  std::string render_full_paths(const Design* design) const;

  SequenceMode mode_;
  int sig_digits_;
  std::string topo_name_;
  std::vector<std::string> reps_;
  std::vector<ParamSlot> slots_;
  sfg::DpSfg graph_;
  sfg::PathSet paths_;
  std::vector<std::string> symbolic_lines_;
};

}  // namespace ota::core
