#include "core/metrics.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "linalg/stats.hpp"
#include "par/thread_pool.hpp"

namespace ota::core {

namespace {

double measured_param(const device::SmallSignal& ss, const std::string& param) {
  if (param == "gm") return ss.gm;
  if (param == "gds") return ss.gds;
  if (param == "Cds") return ss.cds;
  if (param == "Cgs") return ss.cgs;
  if (param == "Id") return ss.id;
  throw InvalidArgument("metrics: unknown parameter '" + param + "'");
}

std::string param_key(const std::string& param, const std::string& device) {
  return param + device;
}

// The shared predict-then-parse step of every validation sweep: one batched
// prediction over the first n designs' specs, parsed into parameter maps
// positionally aligned with `validation`.
std::vector<std::map<std::string, double>> predict_params(
    const SequenceBuilder& builder, const Predictor& model,
    const std::vector<Design>& validation, int n, int max_tokens = 800) {
  std::vector<std::string> texts;
  texts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    texts.push_back(builder.encoder_text(validation[static_cast<size_t>(i)].specs));
  }
  const std::vector<std::string> decoded = model.predict_batch(texts, max_tokens);
  std::vector<std::map<std::string, double>> out;
  out.reserve(decoded.size());
  for (const std::string& d : decoded) out.push_back(builder.parse_decoder(d));
  return out;
}

}  // namespace

std::vector<CorrelationRow> correlation_table(
    const circuit::Topology& topo, const SequenceBuilder& builder,
    const Predictor& model, const std::vector<Design>& validation,
    int max_designs) {
  const int n = std::min<int>(max_designs, static_cast<int>(validation.size()));
  if (n < 3) throw InvalidArgument("correlation_table: too few designs");

  // Collect predictions once per design (batched through the model's engine).
  const std::vector<std::map<std::string, double>> predictions =
      predict_params(builder, model, validation, n);

  std::vector<CorrelationRow> rows;
  for (const auto& group : topo.match_groups) {
    const std::string& rep = group.devices.front();
    CorrelationRow row;
    row.devices = group.devices.size() > 1
                      ? group.devices[0] + "/" + group.devices[1]
                      : group.devices[0];
    auto role = topo.device_roles.find(rep);
    row.role = role != topo.device_roles.end() ? role->second : "";

    for (const std::string param : {"gm", "gds", "Cds", "Cgs"}) {
      std::vector<double> pred, meas;
      for (int i = 0; i < n; ++i) {
        const auto& p = predictions[static_cast<size_t>(i)];
        auto it = p.find(param_key(param, rep));
        if (it == p.end()) continue;
        pred.push_back(it->second);
        meas.push_back(measured_param(
            validation[static_cast<size_t>(i)].devices.at(rep), param));
      }
      double r = 0.0;
      if (pred.size() >= 3) r = linalg::pearson(meas, pred);
      if (param == "gm") row.r_gm = r;
      else if (param == "gds") row.r_gds = r;
      else if (param == "Cds") row.r_cds = r;
      else row.r_cgs = r;
      row.samples = std::max(row.samples, static_cast<int>(pred.size()));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

ScatterSeries scatter_series(const SequenceBuilder& builder,
                             const Predictor& model,
                             const std::vector<Design>& validation,
                             const std::string& device,
                             const std::string& param, int max_designs) {
  ScatterSeries s;
  s.device = device;
  s.param = param;
  const int n = std::min<int>(max_designs, static_cast<int>(validation.size()));
  const auto predictions = predict_params(builder, model, validation, n);
  for (int i = 0; i < n; ++i) {
    const Design& d = validation[static_cast<size_t>(i)];
    const auto& pred = predictions[static_cast<size_t>(i)];
    auto it = pred.find(param_key(param, device));
    if (it == pred.end()) continue;
    s.predicted.push_back(it->second);
    s.measured.push_back(measured_param(d.devices.at(device), param));
  }
  return s;
}

RuntimeStats runtime_stats(const SizingCopilot& copilot,
                           const std::vector<Specs>& targets,
                           const CopilotOptions& opt, int threads) {
  // Each target gets a pristine copy of the copilot so its outcome depends
  // only on (copilot state at call time, target) — not on which targets ran
  // before it on the same thread.  That per-target isolation is what makes
  // the aggregate independent of the thread count.
  std::vector<SizingOutcome> outcomes(targets.size());
  par::ThreadPool pool(par::resolve_threads(threads));
  pool.parallel_for(targets.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      SizingCopilot worker = copilot;
      outcomes[i] = worker.size(targets[i], opt);
    }
  });

  RuntimeStats st;
  double single_time = 0.0, multi_time = 0.0, multi_iters = 0.0;
  long sims = 0;
  for (const SizingOutcome& o : outcomes) {
    ++st.total;
    sims += o.spice_simulations;
    if (o.success && o.iterations == 1) {
      ++st.single_iteration;
      single_time += o.seconds;
    } else if (o.success) {
      ++st.multi_iteration;
      multi_time += o.seconds;
      multi_iters += o.iterations;
    } else {
      ++st.failures;
    }
  }
  if (st.single_iteration > 0) st.avg_single_seconds = single_time / st.single_iteration;
  if (st.multi_iteration > 0) {
    st.avg_multi_seconds = multi_time / st.multi_iteration;
    st.avg_multi_iterations = multi_iters / st.multi_iteration;
  }
  if (st.total > 0) {
    st.avg_sims_per_design = static_cast<double>(sims) / st.total;
  }
  return st;
}

std::vector<Specs> targets_from_designs(const std::vector<Design>& designs,
                                        int count, double relax, uint64_t seed) {
  if (designs.empty()) throw InvalidArgument("targets_from_designs: no designs");
  Rng rng(seed);
  std::vector<Specs> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Design& d =
        designs[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(designs.size()) - 1))];
    Specs t = d.specs;
    // Relax each requirement a little below the known-achievable point so the
    // target is unseen yet feasible.
    t.gain_db -= rng.uniform(0.0, relax * 10.0);   // up to ~0.5 dB easier
    t.bw_hz *= 1.0 - rng.uniform(0.0, relax);
    t.ugf_hz *= 1.0 - rng.uniform(0.0, relax);
    out.push_back(t);
  }
  return out;
}

}  // namespace ota::core
