// Data generation (paper Section IV-A).
//
// Reproduces the OCEAN-scripted procedure: sweep transistor widths over
// 0.7-50 um under the topology's matching constraints, simulate each candidate
// with minispice, enforce the operating-region filters (differential pairs
// weak, mirrors strong inversion — expressed as inversion-coefficient bounds
// on each match group), and keep designs whose {gain, BW, UGF} fall in the
// topology's Table I specification window.  Each retained design records the
// per-device small-signal parameters the transformer learns to predict.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/topologies.hpp"
#include "common/rng.hpp"
#include "spice/testbench.hpp"

namespace ota::core {

/// The paper's specification triple.
struct Specs {
  double gain_db = 0.0;
  double bw_hz = 0.0;
  double ugf_hz = 0.0;
};

/// Table I-style specification window.
struct SpecRange {
  double gain_db_min, gain_db_max;
  double bw_hz_min, bw_hz_max;
  double ugf_hz_min, ugf_hz_max;

  bool contains(const Specs& s) const {
    return s.gain_db >= gain_db_min && s.gain_db <= gain_db_max &&
           s.bw_hz >= bw_hz_min && s.bw_hz <= bw_hz_max &&
           s.ugf_hz >= ugf_hz_min && s.ugf_hz <= ugf_hz_max;
  }

  /// The dataset window used for each topology (our technology's analogue of
  /// the paper's Table I rows).
  static SpecRange for_topology(const std::string& name);
};

/// One legal design: widths (one per match group), measured specs, and the
/// captured device parameters.
struct Design {
  std::vector<double> widths;
  Specs specs;
  std::map<std::string, device::SmallSignal> devices;
};

struct DataGenOptions {
  int target_designs = 1000;
  int max_attempts = 200000;
  double w_min = 0.7e-6;   ///< paper sweep lower bound
  double w_max = 50e-6;    ///< paper sweep upper bound
  uint64_t seed = 2024;
  bool enforce_regions = true;     ///< IC-window filters per match group
  bool enforce_saturation = true;  ///< all devices saturated
  bool enforce_spec_range = true;  ///< Table I window filter
  /// Worker threads for the rejection-sampling sweep; 0 = auto (OTA_THREADS
  /// env, else hardware concurrency).  Results are bit-identical for every
  /// value: each attempt index draws from its own counted RNG stream.
  int threads = 0;
  /// AC measurement configuration for every candidate evaluation.  Each
  /// attempt's gain/BW/UGF extraction rides one batched transfer_sweep over
  /// the cached AC engine; `measure.threads` stays 1 here because the
  /// attempts themselves are already sharded across the pool.
  spice::MeasureOptions measure{};
};

struct Dataset {
  std::string topology;
  std::vector<Design> designs;
  int attempts = 0;            ///< candidate evaluations (SPICE cost proxy)
  int dc_failures = 0;
  int region_rejects = 0;
  int spec_rejects = 0;
};

/// Generates a dataset for one topology.  Sampling is log-uniform in each
/// match-group width (the continuous analogue of the paper's nested sweeps);
/// the 2S-OTA's second stage uses a current-balance heuristic for the CS
/// width so the high-gain output node biases into its linear window, as a
/// designer's sweep script would.
///
/// The rejection-sampling sweep is sharded over a thread pool (see
/// DataGenOptions::threads).  Attempt k draws from counted stream
/// Rng(opt.seed, k) and workers evaluate disjoint index blocks against their
/// own Topology copies, so the retained designs, the attempt count, and every
/// reject counter are bit-identical for any thread count: the dataset is
/// always "the first target_designs accepted attempts in index order".
Dataset generate_dataset(circuit::Topology& topology,
                         const device::Technology& tech,
                         const SpecRange& range, const DataGenOptions& opt = {});

/// Splits a dataset into train/validation by shuffling with `seed`
/// (paper: 80:20).
std::pair<std::vector<Design>, std::vector<Design>> train_val_split(
    const std::vector<Design>& designs, double val_fraction, uint64_t seed);

}  // namespace ota::core
