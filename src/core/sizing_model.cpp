#include "core/sizing_model.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ota::core {

using nlp::TokenId;
using nlp::Vocabulary;

namespace {

// Model-file config header, version 2: an explicit field-by-field layout
// behind a magic/version tag.  Version 1 (no tag) dumped the raw
// TransformerConfig struct — indeterminate padding bytes and fragile against
// any struct change; load() still accepts it best-effort.
constexpr char kModelMagicV2[8] = {'o', 't', 'a', 's', 'm', 'd', 'l', '2'};

template <typename T>
void write_field(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool read_field(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(is);
}

bool config_is_plausible(const ml::TransformerConfig& cfg) {
  return cfg.vocab_size > 0 && cfg.vocab_size <= (1 << 24) &&
         cfg.d_model > 0 && cfg.d_model <= (1 << 16) &&
         cfg.n_heads > 0 && cfg.n_heads <= 1024 &&
         cfg.d_model % cfg.n_heads == 0 &&
         cfg.n_layers > 0 && cfg.n_layers <= 1024 &&
         cfg.d_ff > 0 && cfg.d_ff <= (1 << 20) &&
         cfg.max_len > 0 && cfg.max_len <= (1 << 24) &&
         cfg.dropout >= 0.0 && cfg.dropout < 1.0;
}

}  // namespace

std::vector<double> SizingModel::target_weights(const std::vector<TokenId>& tgt,
                                                double numeric_weight) const {
  // One weight per target token plus the trailing <eos>.
  std::vector<double> w;
  w.reserve(tgt.size() + 1);
  for (TokenId id : tgt) {
    const std::string& piece = tokenizer_.vocab().piece(id);
    w.push_back(nlp::is_numeric_token(piece) ? numeric_weight : 1.0);
  }
  w.push_back(1.0);  // <eos>
  return w;
}

TrainHistory SizingModel::train(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const TrainOptions& opt) {
  if (pairs.empty()) throw InvalidArgument("SizingModel::train: no examples");
  // Drop any previous model first: a throw below must leave the object
  // cleanly untrained, never half-trained or serving a stale engine.
  model_.reset();
  engine_.reset();
  opt_ = opt;
  const auto t0 = std::chrono::steady_clock::now();

  // Tokenizer trained over both sides of the corpus.
  std::vector<std::string> corpus;
  corpus.reserve(pairs.size() * 2);
  for (const auto& [e, d] : pairs) {
    corpus.push_back(e);
    corpus.push_back(d);
  }
  tokenizer_ = nlp::BpeTokenizer::train(corpus, {.num_merges = opt.bpe_merges});

  // Pre-encode everything once.
  std::vector<ml::TrainExample> examples;
  examples.reserve(pairs.size());
  for (const auto& [e, d] : pairs) {
    ml::TrainExample ex;
    ex.src = tokenizer_.encode(e);
    ex.tgt = tokenizer_.encode(d);
    ex.weights = target_weights(ex.tgt, opt.numeric_weight);
    examples.push_back(std::move(ex));
  }

  ml::TransformerConfig cfg;
  cfg.vocab_size = static_cast<int64_t>(tokenizer_.vocab().size());
  cfg.d_model = opt.d_model;
  cfg.n_heads = opt.n_heads;
  cfg.n_layers = opt.n_layers;
  cfg.d_ff = opt.d_ff;
  cfg.max_len = opt.max_len;
  cfg.dropout = opt.dropout;
  cfg.seed = opt.seed;
  // Train on a local model and only adopt it (model_/engine_) once training
  // finished; a mid-epoch throw then truly leaves the object untrained.
  auto model = std::make_unique<ml::Transformer>(cfg);

  ml::AdamOptions aopt;
  aopt.lr = opt.lr;
  ml::Adam adam(model->parameters(), aopt);
  // The batch size caps useful parallelism (and thus the replica count): a
  // minibatch can never occupy more workers than it has examples.
  ml::DataParallelTrainer trainer(*model, adam, opt.threads,
                                  std::max(1, opt.batch_size));

  // All coordinator-side randomness (the split and the per-epoch shuffles)
  // stays on this one Rng; dropout draws live on per-example counted streams
  // inside the trainer, so the trajectory cannot depend on the thread count.
  Rng rng(opt.seed ^ 0xBADC0DE);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  const size_t n_val = std::min(
      examples.size() / 2,
      static_cast<size_t>(opt.val_fraction * static_cast<double>(examples.size())));
  const std::vector<size_t> val_idx(order.begin(), order.begin() + static_cast<long>(n_val));
  std::vector<size_t> train_idx(order.begin() + static_cast<long>(n_val), order.end());

  std::vector<const ml::TrainExample*> val_batch;
  val_batch.reserve(val_idx.size());
  for (size_t idx : val_idx) val_batch.push_back(&examples[idx]);

  const uint64_t dropout_seed = opt.seed ^ 0xD20990D5EEDULL;
  uint64_t stream = 0;  // global example counter: one dropout stream each

  TrainHistory hist;
  hist.threads = trainer.threads();
  std::vector<const ml::TrainExample*> batch;
  batch.reserve(static_cast<size_t>(std::max(1, opt.batch_size)));
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    std::shuffle(train_idx.begin(), train_idx.end(), rng.engine());
    double total = 0.0;
    const size_t bsz = static_cast<size_t>(std::max(1, opt.batch_size));
    for (size_t b0 = 0; b0 < train_idx.size(); b0 += bsz) {
      const size_t b1 = std::min(train_idx.size(), b0 + bsz);
      batch.clear();
      for (size_t i = b0; i < b1; ++i) batch.push_back(&examples[train_idx[i]]);
      total += trainer.train_batch(batch, dropout_seed, stream);
      stream += batch.size();
    }
    const double train_loss = total / static_cast<double>(train_idx.size());
    hist.train_loss.push_back(train_loss);

    double vloss = train_loss;
    if (!val_batch.empty()) {
      vloss = trainer.eval_sum(val_batch) / static_cast<double>(val_batch.size());
    }
    hist.val_loss.push_back(vloss);
    adam.observe_loss(vloss);
    if (opt.verbose) {
      std::fprintf(stderr, "[train] epoch %d/%d  train %.4f  val %.4f  lr %.2e\n",
                   epoch + 1, opt.epochs, train_loss, vloss, adam.learning_rate());
    }
  }
  hist.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0).count();
  model_ = std::move(model);
  engine_ = std::make_unique<ml::InferenceEngine>(*model_);
  return hist;
}

std::string SizingModel::predict(const std::string& encoder_text,
                                 int max_tokens) const {
  if (!engine_) throw InvalidArgument("SizingModel::predict: not trained");
  const auto src = tokenizer_.encode(encoder_text);
  const auto out = engine_->greedy_decode(src, max_tokens);
  return tokenizer_.decode(out);
}

std::vector<std::string> SizingModel::predict_batch(
    const std::vector<std::string>& encoder_texts, int max_tokens,
    int threads) const {
  return predict_batch(encoder_texts, max_tokens, threads,
                       ml::Precision::kDouble);
}

std::vector<std::string> SizingModel::predict_batch(
    const std::vector<std::string>& encoder_texts, int max_tokens,
    int threads, ml::Precision precision) const {
  ml::validated_precision(precision, "SizingModel::predict_batch");
  // An empty batch has exactly one correct answer and needs no model for it;
  // returning it up front keeps degenerate sweeps (0 validation designs, a
  // drained campaign queue) from tripping over engine state.
  if (encoder_texts.empty()) return {};
  if (!engine_) throw InvalidArgument("SizingModel::predict_batch: not trained");
  std::vector<std::vector<TokenId>> srcs;
  srcs.reserve(encoder_texts.size());
  for (const std::string& text : encoder_texts) {
    srcs.push_back(tokenizer_.encode(text));
  }
  const auto decoded =
      engine_->greedy_decode_batch(srcs, max_tokens, threads, precision);
  std::vector<std::string> out;
  out.reserve(decoded.size());
  for (const auto& tokens : decoded) out.push_back(tokenizer_.decode(tokens));
  return out;
}

const nlp::BpeTokenizer& SizingModel::tokenizer() const {
  if (!model_) throw InvalidArgument("SizingModel: not trained");
  return tokenizer_;
}

const ml::Transformer& SizingModel::transformer() const {
  if (!model_) throw InvalidArgument("SizingModel: not trained");
  return *model_;
}

const ml::InferenceEngine& SizingModel::engine() const {
  if (!engine_) throw InvalidArgument("SizingModel: not trained");
  return *engine_;
}

void SizingModel::save(const std::string& prefix) const {
  if (!model_) throw InvalidArgument("SizingModel::save: not trained");
  {
    std::ofstream bpe(prefix + ".bpe");
    bpe << tokenizer_.serialize();
  }
  {
    std::ofstream mdl(prefix + ".model", std::ios::binary);
    const auto& cfg = model_->config();
    mdl.write(kModelMagicV2, sizeof kModelMagicV2);
    write_field(mdl, cfg.vocab_size);
    write_field(mdl, cfg.d_model);
    write_field(mdl, cfg.n_heads);
    write_field(mdl, cfg.n_layers);
    write_field(mdl, cfg.d_ff);
    write_field(mdl, cfg.max_len);
    write_field(mdl, cfg.dropout);
    write_field(mdl, cfg.seed);
    model_->save(mdl);
  }
}

bool SizingModel::load(const std::string& prefix) {
  std::ifstream bpe(prefix + ".bpe");
  std::ifstream mdl(prefix + ".model", std::ios::binary);
  if (!bpe || !mdl) return false;
  // As in train(): a throw below (corrupt file) must not leave a previous
  // model's engine paired with a new tokenizer.
  model_.reset();
  engine_.reset();
  std::stringstream ss;
  ss << bpe.rdbuf();
  tokenizer_ = nlp::BpeTokenizer::deserialize(ss.str());

  ml::TransformerConfig cfg;
  char magic[8] = {};
  mdl.read(magic, sizeof magic);
  if (mdl && std::equal(magic, magic + 8, kModelMagicV2)) {
    if (!read_field(mdl, cfg.vocab_size) || !read_field(mdl, cfg.d_model) ||
        !read_field(mdl, cfg.n_heads) || !read_field(mdl, cfg.n_layers) ||
        !read_field(mdl, cfg.d_ff) || !read_field(mdl, cfg.max_len) ||
        !read_field(mdl, cfg.dropout) || !read_field(mdl, cfg.seed)) {
      throw InvalidArgument("SizingModel::load: truncated v2 config header in " +
                            prefix + ".model");
    }
    if (!config_is_plausible(cfg)) {
      throw InvalidArgument("SizingModel::load: corrupt v2 config header in " +
                            prefix + ".model");
    }
  } else {
    // Legacy (untagged) format: the file starts with a raw TransformerConfig
    // struct dump.  Best-effort: re-read it as the struct and sanity-check
    // the fields, since padding bytes and layout were never guaranteed.
    mdl.clear();
    mdl.seekg(0);
    mdl.read(reinterpret_cast<char*>(&cfg), sizeof cfg);
    if (!mdl || !config_is_plausible(cfg)) {
      throw InvalidArgument(
          "SizingModel::load: " + prefix + ".model is neither a v2 model file "
          "(magic 'otasmdl2') nor a readable legacy config; re-train and "
          "re-save the model");
    }
  }
  model_ = std::make_unique<ml::Transformer>(cfg);
  model_->load(mdl);
  engine_ = std::make_unique<ml::InferenceEngine>(*model_);
  return true;
}

}  // namespace ota::core
