#include "core/sizing_model.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ota::core {

using nlp::TokenId;
using nlp::Vocabulary;

std::vector<double> SizingModel::target_weights(const std::vector<TokenId>& tgt,
                                                double numeric_weight) const {
  // One weight per target token plus the trailing <eos>.
  std::vector<double> w;
  w.reserve(tgt.size() + 1);
  for (TokenId id : tgt) {
    const std::string& piece = tokenizer_.vocab().piece(id);
    w.push_back(nlp::is_numeric_token(piece) ? numeric_weight : 1.0);
  }
  w.push_back(1.0);  // <eos>
  return w;
}

TrainHistory SizingModel::train(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    const TrainOptions& opt) {
  if (pairs.empty()) throw InvalidArgument("SizingModel::train: no examples");
  opt_ = opt;
  const auto t0 = std::chrono::steady_clock::now();

  // Tokenizer trained over both sides of the corpus.
  std::vector<std::string> corpus;
  corpus.reserve(pairs.size() * 2);
  for (const auto& [e, d] : pairs) {
    corpus.push_back(e);
    corpus.push_back(d);
  }
  tokenizer_ = nlp::BpeTokenizer::train(corpus, {.num_merges = opt.bpe_merges});

  // Pre-encode everything once.
  struct Example {
    std::vector<TokenId> src, tgt;
    std::vector<double> weights;
  };
  std::vector<Example> examples;
  examples.reserve(pairs.size());
  for (const auto& [e, d] : pairs) {
    Example ex;
    ex.src = tokenizer_.encode(e);
    ex.tgt = tokenizer_.encode(d);
    ex.weights = target_weights(ex.tgt, opt.numeric_weight);
    examples.push_back(std::move(ex));
  }

  ml::TransformerConfig cfg;
  cfg.vocab_size = static_cast<int64_t>(tokenizer_.vocab().size());
  cfg.d_model = opt.d_model;
  cfg.n_heads = opt.n_heads;
  cfg.n_layers = opt.n_layers;
  cfg.d_ff = opt.d_ff;
  cfg.max_len = opt.max_len;
  cfg.dropout = opt.dropout;
  cfg.seed = opt.seed;
  model_ = std::make_unique<ml::Transformer>(cfg);

  ml::AdamOptions aopt;
  aopt.lr = opt.lr;
  ml::Adam adam(model_->parameters(), aopt);

  // Validation split for the adaptive-lr schedule.
  Rng rng(opt.seed ^ 0xBADC0DE);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  const size_t n_val = std::min(
      examples.size() / 2,
      static_cast<size_t>(opt.val_fraction * static_cast<double>(examples.size())));
  const std::vector<size_t> val_idx(order.begin(), order.begin() + static_cast<long>(n_val));
  std::vector<size_t> train_idx(order.begin() + static_cast<long>(n_val), order.end());

  TrainHistory hist;
  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    std::shuffle(train_idx.begin(), train_idx.end(), rng.engine());
    double total = 0.0;
    int in_batch = 0;
    for (size_t idx : train_idx) {
      const Example& ex = examples[idx];
      const ml::Var l = model_->loss(ex.src, ex.tgt, ex.weights, rng);
      total += l->value.at(0);
      ml::backward(l);
      if (++in_batch >= opt.batch_size) {
        adam.step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.step();
    const double train_loss = total / static_cast<double>(train_idx.size());
    hist.train_loss.push_back(train_loss);

    double vloss = train_loss;
    if (!val_idx.empty()) {
      double vtotal = 0.0;
      for (size_t idx : val_idx) {
        const Example& ex = examples[idx];
        vtotal += model_->loss(ex.src, ex.tgt, ex.weights, rng, /*training=*/false)
                      ->value.at(0);
      }
      vloss = vtotal / static_cast<double>(val_idx.size());
    }
    hist.val_loss.push_back(vloss);
    adam.observe_loss(vloss);
    if (opt.verbose) {
      std::fprintf(stderr, "[train] epoch %d/%d  train %.4f  val %.4f  lr %.2e\n",
                   epoch + 1, opt.epochs, train_loss, vloss, adam.learning_rate());
    }
  }
  hist.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0).count();
  return hist;
}

std::string SizingModel::predict(const std::string& encoder_text,
                                 int max_tokens) const {
  if (!model_) throw InvalidArgument("SizingModel::predict: not trained");
  const auto src = tokenizer_.encode(encoder_text);
  const auto out = model_->greedy_decode(src, max_tokens);
  return tokenizer_.decode(out);
}

const nlp::BpeTokenizer& SizingModel::tokenizer() const {
  if (!model_) throw InvalidArgument("SizingModel: not trained");
  return tokenizer_;
}

const ml::Transformer& SizingModel::transformer() const {
  if (!model_) throw InvalidArgument("SizingModel: not trained");
  return *model_;
}

void SizingModel::save(const std::string& prefix) const {
  if (!model_) throw InvalidArgument("SizingModel::save: not trained");
  {
    std::ofstream bpe(prefix + ".bpe");
    bpe << tokenizer_.serialize();
  }
  {
    std::ofstream mdl(prefix + ".model", std::ios::binary);
    const auto& cfg = model_->config();
    mdl.write(reinterpret_cast<const char*>(&cfg), sizeof cfg);
    model_->save(mdl);
  }
}

bool SizingModel::load(const std::string& prefix) {
  std::ifstream bpe(prefix + ".bpe");
  std::ifstream mdl(prefix + ".model", std::ios::binary);
  if (!bpe || !mdl) return false;
  std::stringstream ss;
  ss << bpe.rdbuf();
  tokenizer_ = nlp::BpeTokenizer::deserialize(ss.str());
  ml::TransformerConfig cfg;
  mdl.read(reinterpret_cast<char*>(&cfg), sizeof cfg);
  if (!mdl) return false;
  model_ = std::make_unique<ml::Transformer>(cfg);
  model_->load(mdl);
  return true;
}

}  // namespace ota::core
