// Nearest-neighbor reference predictor.
//
// Answers a specification query with the decoder text of the training design
// whose measured specs are closest (normalized distance on gain [dB] and the
// log of BW/UGF).  No learning involved: this is the "just memorize the
// dataset" baseline the transformer must beat on unseen specifications, and a
// deterministic stand-in for Stage II in copilot tests.
#pragma once

#include <vector>

#include "core/predictor.hpp"
#include "core/sequence_builder.hpp"

namespace ota::core {

class NearestNeighborPredictor : public Predictor {
 public:
  NearestNeighborPredictor(const SequenceBuilder& builder,
                           std::vector<Design> designs);

  std::string predict(const std::string& encoder_text,
                      int max_tokens) const override;

  /// The training design closest to the given specs.
  const Design& nearest(const Specs& specs) const;

 private:
  const SequenceBuilder& builder_;
  std::vector<Design> designs_;
};

/// Extracts the specification triple back out of an encoder sequence
/// ("... SPEC 20.1dB 11.4MHz 119MHz"); throws on malformed text.
Specs parse_encoder_specs(const std::string& encoder_text);

}  // namespace ota::core
