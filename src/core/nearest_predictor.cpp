#include "core/nearest_predictor.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace ota::core {

Specs parse_encoder_specs(const std::string& encoder_text) {
  const auto words = split(encoder_text, " ");
  for (size_t i = 0; i < words.size(); ++i) {
    if (words[i] != "SPEC" || i + 3 >= words.size()) continue;
    const auto gain = parse_si(words[i + 1], "dB");
    const auto bw = parse_si(words[i + 2], "Hz");
    const auto ugf = parse_si(words[i + 3], "Hz");
    if (gain && bw && ugf) return Specs{*gain, *bw, *ugf};
  }
  throw InvalidArgument("parse_encoder_specs: no SPEC block found");
}

NearestNeighborPredictor::NearestNeighborPredictor(
    const SequenceBuilder& builder, std::vector<Design> designs)
    : builder_(builder), designs_(std::move(designs)) {
  if (designs_.empty()) {
    throw InvalidArgument("NearestNeighborPredictor: empty design set");
  }
}

const Design& NearestNeighborPredictor::nearest(const Specs& s) const {
  const Design* best = &designs_.front();
  double best_d = 1e300;
  for (const auto& d : designs_) {
    const double dg = (d.specs.gain_db - s.gain_db) / 10.0;
    const double db = std::log(d.specs.bw_hz / s.bw_hz);
    const double du = std::log(d.specs.ugf_hz / s.ugf_hz);
    const double dist = dg * dg + db * db + du * du;
    if (dist < best_d) {
      best_d = dist;
      best = &d;
    }
  }
  return *best;
}

std::string NearestNeighborPredictor::predict(const std::string& encoder_text,
                                              int /*max_tokens*/) const {
  return builder_.decoder_text(nearest(parse_encoder_specs(encoder_text)));
}

}  // namespace ota::core
