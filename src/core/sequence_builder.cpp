#include "core/sequence_builder.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "spice/dc.hpp"

namespace ota::core {

namespace {

const char* unit_of(char u) {
  switch (u) {
    case 'S': return "S";
    case 'F': return "F";
    case 'A': return "A";
  }
  throw InvalidArgument("SequenceBuilder: unknown unit class");
}

// Looks up a slot's value in a design's captured device parameters.
double slot_value(const ParamSlot& slot, const Design& d) {
  const auto& ss = d.devices.at(slot.device);
  if (starts_with(slot.name, "gm")) return ss.gm;
  if (starts_with(slot.name, "gds")) return ss.gds;
  if (starts_with(slot.name, "Cds")) return ss.cds;
  if (starts_with(slot.name, "Cgs")) return ss.cgs;
  if (starts_with(slot.name, "Id")) return ss.id;
  throw InternalError("SequenceBuilder: unknown slot " + slot.name);
}

}  // namespace

SequenceBuilder::SequenceBuilder(const circuit::Topology& topology,
                                 const device::Technology& tech,
                                 SequenceMode mode, int sig_digits)
    : mode_(mode), sig_digits_(sig_digits), topo_name_(topology.name) {
  // Build the reference DP-SFG at the topology's current widths: the graph
  // *structure* (and therefore the symbolic text) is width-independent.
  circuit::Topology topo = topology;
  const auto dc = spice::solve_dc(topo.netlist, tech);
  const auto devices = spice::small_signal_map(topo.netlist, tech, dc);
  graph_ = sfg::DpSfg::build(topo.netlist, devices, topo.output_node);
  paths_ = sfg::collect_paths(graph_);
  symbolic_lines_ = sfg::render_lines(graph_, paths_, sfg::RenderMode::Symbolic);

  // Canonical slots: per match-group representative, the four DP-SFG device
  // parameters plus the drain current (Algorithm 1's I_d^in).
  for (const auto& g : topo.match_groups) {
    reps_.push_back(g.devices.front());
  }
  for (const auto& rep : reps_) {
    slots_.push_back(ParamSlot{"gm" + rep, rep, 'S'});
    slots_.push_back(ParamSlot{"gds" + rep, rep, 'S'});
    slots_.push_back(ParamSlot{"Cds" + rep, rep, 'F'});
    slots_.push_back(ParamSlot{"Cgs" + rep, rep, 'F'});
    slots_.push_back(ParamSlot{"Id" + rep, rep, 'A'});
  }
}

std::string SequenceBuilder::spec_text(const Specs& s) const {
  // Specification (encoder-side) resolution stays at 3 digits regardless of
  // the decoder's sig_digits: input precision conditions the prediction.
  return "SPEC " + format_plain(s.gain_db, 3) + "dB " +
         format_si(s.bw_hz, "Hz", 3) + " " + format_si(s.ugf_hz, "Hz", 3);
}

std::string SequenceBuilder::encoder_text(const Specs& specs) const {
  if (mode_ == SequenceMode::Compact) {
    std::vector<std::string> words;
    words.reserve(slots_.size() + 4);
    for (const auto& s : slots_) words.push_back(s.name);
    return join(words, " ") + " " + spec_text(specs);
  }
  return join(symbolic_lines_, " | ") + " " + spec_text(specs);
}

std::string SequenceBuilder::decoder_text(const Design& design) const {
  if (mode_ == SequenceMode::Compact) {
    std::vector<std::string> words;
    words.reserve(slots_.size() * 2);
    for (const auto& s : slots_) {
      words.push_back(s.name);
      words.push_back(format_si(slot_value(s, design), unit_of(s.unit), sig_digits_));
    }
    return join(words, " ");
  }
  // FullPaths: substitute this design's values into the graph and re-render.
  sfg::DpSfg g = graph_;
  std::map<std::string, double> values;
  for (const auto& [dev, ss] : design.devices) {
    values["gm" + dev] = ss.gm;
    values["gds" + dev] = ss.gds;
    values["Cds" + dev] = ss.cds;
    values["Cgs" + dev] = ss.cgs;
  }
  g.substitute(values);
  return join(sfg::render_lines(g, paths_, sfg::RenderMode::Numeric, sig_digits_),
              " | ");
}

std::map<std::string, double> SequenceBuilder::parse_decoder(
    const std::string& text) const {
  std::map<std::string, double> out;
  if (mode_ == SequenceMode::Compact) {
    const auto words = split(text, " ");
    for (size_t i = 0; i + 1 < words.size(); ++i) {
      for (const auto& s : slots_) {
        if (words[i] != s.name) continue;
        if (auto v = parse_si(words[i + 1], unit_of(s.unit))) {
          if (*v > 0.0 && out.find(s.name) == out.end()) out[s.name] = *v;
        }
        break;
      }
    }
    return out;
  }

  // FullPaths: align symbolic and predicted numeric fragments.  Fragments are
  // the pieces between structural delimiters; where the symbolic side has a
  // device parameter, the numeric side carries its value.
  auto fragments = [](const std::string& s) {
    std::vector<std::string> f;
    std::string cur;
    for (char c : s) {
      if (c == '+' || c == '-' || c == '(' || c == ')' || c == '/' ||
          c == ' ' || c == '|') {
        if (!cur.empty()) f.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) f.push_back(cur);
    return f;
  };
  const auto sym = fragments(join(symbolic_lines_, " | "));
  const auto num = fragments(text);
  const size_t n = std::min(sym.size(), num.size());
  for (size_t i = 0; i < n; ++i) {
    std::string name = sym[i];
    if (starts_with(name, "sC")) name = name.substr(1);  // "sCgsM1" -> "CgsM1"
    const bool is_param =
        starts_with(name, "gm") || starts_with(name, "gds") ||
        starts_with(name, "Cds") || starts_with(name, "Cgs");
    if (!is_param || name.size() < 3) continue;
    // Numeric fragment: optional 's', SI value with unit, then device name.
    std::string frag = num[i];
    if (!frag.empty() && frag[0] == 's') frag = frag.substr(1);
    // The device suffix is the parameter's own device name.
    const std::string device = starts_with(name, "gm") ? name.substr(2)
                               : name.substr(3);
    if (!ends_with(frag, device)) continue;
    frag = frag.substr(0, frag.size() - device.size());
    const char unit = starts_with(name, "gm") || starts_with(name, "gds") ? 'S' : 'F';
    if (auto v = parse_si(frag, unit_of(unit))) {
      if (*v > 0.0 && out.find(name) == out.end()) out[name] = *v;
    }
  }
  return out;
}

}  // namespace ota::core
