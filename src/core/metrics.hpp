// Evaluation harness shared by the Table II-VIII benchmarks.
#pragma once

#include <string>
#include <vector>

#include "core/copilot.hpp"
#include "core/sequence_builder.hpp"
#include "core/sizing_model.hpp"

namespace ota::core {

/// One row of a Table II/IV/VI-style correlation report: Pearson r between
/// the transformer-predicted and simulation-measured device parameters, per
/// matched device group, across a set of validation designs.
struct CorrelationRow {
  std::string devices;  ///< "M1/M2" or "M5"
  std::string role;     ///< Table II/IV/VI role label
  double r_gm = 0.0;
  double r_gds = 0.0;
  double r_cds = 0.0;
  double r_cgs = 0.0;
  int samples = 0;      ///< designs with a usable prediction for this group
};

/// Predicts parameters for each validation design's specs (one
/// Predictor::predict_batch call over all designs) and correlates them
/// against the design's measured parameters.
std::vector<CorrelationRow> correlation_table(
    const circuit::Topology& topology, const SequenceBuilder& builder,
    const Predictor& model, const std::vector<Design>& validation,
    int max_designs = 100);

/// Paired predicted/measured values of one parameter for one device across
/// validation designs — the scatter data of the paper's Fig. 7.  Shares the
/// batched predict-then-parse path with correlation_table.
struct ScatterSeries {
  std::string device;
  std::string param;  ///< "gm" | "gds" | "Cds" | "Cgs"
  std::vector<double> measured;
  std::vector<double> predicted;
};
ScatterSeries scatter_series(const SequenceBuilder& builder,
                             const Predictor& model,
                             const std::vector<Design>& validation,
                             const std::string& device,
                             const std::string& param, int max_designs = 100);

/// Table VIII-style runtime/success accounting over a set of spec targets.
struct RuntimeStats {
  int total = 0;
  int single_iteration = 0;   ///< solved with one verification simulation
  int multi_iteration = 0;    ///< solved with 2..max iterations
  int failures = 0;
  double avg_single_seconds = 0.0;
  double avg_multi_seconds = 0.0;
  double avg_multi_iterations = 0.0;
  double avg_sims_per_design = 0.0;
};
/// Sizes every target and aggregates the outcome counts in target order.
///
/// Targets are independent: each one is sized by a fresh copy of `copilot`
/// (its own Topology scratch state), and independent targets are evaluated
/// concurrently on a thread pool (`threads` 0 = auto: OTA_THREADS env, else
/// hardware concurrency).  All counting fields of the result are therefore
/// bit-identical for any thread count; only the wall-clock averages
/// (avg_*_seconds) vary run to run.
RuntimeStats runtime_stats(const SizingCopilot& copilot,
                           const std::vector<Specs>& targets,
                           const CopilotOptions& opt = {}, int threads = 0);

/// Derives unseen-but-achievable spec targets from validation designs by
/// relaxing each measured spec slightly (the "100 unique designs per
/// topology with distinct specifications" protocol of Section IV-C).
std::vector<Specs> targets_from_designs(const std::vector<Design>& designs,
                                        int count, double relax = 0.05,
                                        uint64_t seed = 99);

}  // namespace ota::core
