#include "core/copilot.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"

namespace ota::core {

LutSet LutSet::build(const device::Technology& tech, const lut::LutOptions& opt) {
  return LutSet{lut::DeviceLut(device::MosModel(tech.nmos), opt),
                lut::DeviceLut(device::MosModel(tech.pmos), opt)};
}

std::vector<double> widths_from_params(
    const circuit::Topology& topo, const device::Technology& tech,
    const LutSet& luts, const std::map<std::string, double>& params,
    const std::vector<double>& fallback_widths, double w_min, double w_max) {
  if (fallback_widths.size() != topo.match_groups.size()) {
    throw InvalidArgument("widths_from_params: fallback width count mismatch");
  }
  std::vector<double> widths = fallback_widths;
  for (size_t g = 0; g < topo.match_groups.size(); ++g) {
    const std::string& rep = topo.match_groups[g].devices.front();
    const auto& mos = topo.netlist.mosfet(rep);
    const lut::DeviceLut& lut =
        mos.type == device::MosType::Nmos ? luts.nmos : luts.pmos;

    lut::PredictedParams p;
    auto take = [&params](const std::string& key) -> std::optional<double> {
      auto it = params.find(key);
      if (it == params.end() || it->second <= 0.0) return std::nullopt;
      return it->second;
    };
    p.gm = take("gm" + rep);
    p.gds = take("gds" + rep);
    p.cds = take("Cds" + rep);
    p.cgs = take("Cgs" + rep);
    p.id = take("Id" + rep);

    std::optional<lut::WidthEstimate> est;
    try {
      if (p.gm && p.id) {
        est = lut::estimate_width(lut, p, tech.vdd);  // Algorithm 1
      } else {
        int available = (p.gm ? 1 : 0) + (p.gds ? 1 : 0) + (p.cds ? 1 : 0) +
                        (p.cgs ? 1 : 0) + (p.id ? 1 : 0);
        if (available >= 2) est = lut::estimate_width_scan(lut, p);
      }
    } catch (const Error&) {
      est.reset();
    }
    if (est && est->width > 0.0) {
      widths[g] = std::clamp(est->width, w_min, w_max);
    }
  }
  return widths;
}

SizingCopilot::SizingCopilot(circuit::Topology topology,
                             const device::Technology& tech,
                             const SequenceBuilder& builder,
                             const Predictor& model, const LutSet& luts)
    : topo_(std::move(topology)), nominal_widths_(topo_.widths()),
      tech_(tech), builder_(builder), model_(model), luts_(luts) {}

bool SizingCopilot::meets(const Specs& achieved, const Specs& target,
                          const CopilotOptions& opt) const {
  return achieved.gain_db >= target.gain_db - opt.gain_tol_db &&
         achieved.bw_hz >= target.bw_hz * (1.0 - opt.rel_tol) &&
         achieved.ugf_hz >= target.ugf_hz * (1.0 - opt.rel_tol);
}

SizingOutcome SizingCopilot::size(const Specs& target,
                                  const CopilotOptions& opt) {
  SerialPredictionClient serial(model_);
  return size(target, opt, serial);
}

SizingOutcome SizingCopilot::size(const Specs& target,
                                  const CopilotOptions& opt,
                                  PredictionClient& stage2) {
  const auto t0 = std::chrono::steady_clock::now();
  // One cancellation context for the whole campaign: checked at every stage
  // boundary below, and handed to each Stage-II submit so a scheduler-backed
  // decode can retire from its dynamic batch mid-round.  Throwing Cancelled
  // (rather than returning a partial outcome) keeps the contract simple: a
  // cancelled campaign has no result, and its owner resolves it exactly once.
  const CancelSignal cxl{opt.cancel, opt.deadline};
  SizingOutcome out;
  out.target = target;

  Specs request = target;  // tightened on each miss (margin allocation)
  // Start from the nominal widths, not topo_.widths(): evaluate() mutates the
  // netlist, so the live topology still holds the previous campaign's final
  // sizing.  Campaigns must not see each other through the copilot.
  std::vector<double> widths = nominal_widths_;

  // Best candidate so far (by worst frequency-spec shortfall) for the
  // constant-density refinement rounds.
  std::vector<double> best_widths;
  Specs best_achieved{};
  double best_shortfall = 1e300;

  for (int it = 0; it < opt.max_iterations; ++it) {
    // Stage boundary: a cancelled (or deadline-expired) campaign stops
    // before predicting, not after paying for a decode nobody will read.
    cxl.check("SizingCopilot::size (Stage II boundary)");
    out.iterations = it + 1;

    if (it < opt.prediction_iterations || best_widths.empty()) {
      // Stage II: predict device parameters for the requested specs.  The
      // refinement loop is sequential (each request depends on the previous
      // verification), so from this campaign's view it is submit-then-wait;
      // under a server the submit lands in the shared continuous-batching
      // scheduler where it coalesces with other campaigns' decodes.
      //
      // Injectable transient failure: unlike a Stage-IV ConvergenceError
      // (absorbed below as a hard miss), one thrown here escapes size() —
      // the path the campaign server's bounded retry policy recovers.
      FAULT_SITE_AS("core.predict.submit", ConvergenceError);
      std::string predicted_text;
      {
        STAT_REGION("core.copilot.stage2_predict");
        predicted_text =
            stage2
                .submit(builder_.encoder_text(request), opt.max_decode_tokens,
                        cxl)
                ->wait();
      }
      out.predicted = builder_.parse_decoder(predicted_text);
      // Stage III: parameters -> widths via the LUTs.
      widths = widths_from_params(topo_, tech_, luts_, out.predicted, widths);
    } else {
      // Constant-density refinement: scale every width by the largest
      // remaining UGF/BW shortfall of the best verified candidate.  Bias
      // voltages (and the gain) are invariant under this transform; currents,
      // gm and both frequency specs scale with the factor.
      double factor = 1.0;
      if (best_achieved.ugf_hz > 0.0) {
        factor = std::max(factor, target.ugf_hz / best_achieved.ugf_hz);
      }
      if (best_achieved.bw_hz > 0.0) {
        factor = std::max(factor, target.bw_hz / best_achieved.bw_hz);
      }
      factor = std::clamp(factor * opt.margin_boost, 0.25, 4.0);
      widths = best_widths;
      for (double& w : widths) w = std::clamp(w * factor, 0.7e-6, 50e-6);
    }
    out.widths = widths;

    // Stage boundary: last exit before the verification simulation.
    cxl.check("SizingCopilot::size (Stage IV boundary)");

    // Stage IV: one SPICE verification.
    spice::EvalResult r;
    try {
      STAT_REGION("core.copilot.stage4_verify");
      r = spice::evaluate(topo_, tech_, widths, opt.measure);
      ++out.spice_simulations;
    } catch (const ConvergenceError&) {
      ++out.spice_simulations;
      // Treat as a hard miss; tighten mildly and retry.
      request.gain_db += 0.5;
      continue;
    }
    out.achieved = Specs{r.metrics.gain_db, r.metrics.bw_3db_hz, r.metrics.ugf_hz};

    if (meets(out.achieved, target, opt)) {
      out.success = true;
      break;
    }

    const double shortfall = std::max(
        {0.0,
         out.achieved.ugf_hz > 0 ? 1.0 - out.achieved.ugf_hz / target.ugf_hz : 1.0,
         out.achieved.bw_hz > 0 ? 1.0 - out.achieved.bw_hz / target.bw_hz : 1.0,
         (target.gain_db - out.achieved.gain_db) / 20.0});
    if (shortfall < best_shortfall) {
      best_shortfall = shortfall;
      best_widths = widths;
      best_achieved = out.achieved;
    }

    // Margin allocation: tighten each violated spec by its shortfall (plus a
    // small boost), as the paper's example (a 10% gain miss requests 10%
    // tighter gain) prescribes.
    if (out.achieved.gain_db < target.gain_db) {
      request.gain_db += (target.gain_db - out.achieved.gain_db) * opt.margin_boost;
    }
    if (out.achieved.bw_hz < target.bw_hz && out.achieved.bw_hz > 0.0) {
      request.bw_hz *= std::pow(target.bw_hz / out.achieved.bw_hz, 1.0) *
                       opt.margin_boost;
    }
    if (out.achieved.ugf_hz < target.ugf_hz && out.achieved.ugf_hz > 0.0) {
      request.ugf_hz *= (target.ugf_hz / out.achieved.ugf_hz) * opt.margin_boost;
    }
  }

  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
  return out;
}

}  // namespace ota::core
