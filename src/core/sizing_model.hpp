// Stage II: the trained tokenizer + transformer pair (paper Section III-C).
//
// Wraps BPE training, weighted-cross-entropy training of the encoder-decoder
// transformer (numeric tokens get the paper's 20% uplift), greedy prediction,
// and on-disk persistence so benchmark binaries can share one trained model.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/predictor.hpp"
#include "ml/adam.hpp"
#include "ml/infer.hpp"
#include "ml/trainer.hpp"
#include "ml/transformer.hpp"
#include "nlp/bpe.hpp"

namespace ota::core {

struct TrainOptions {
  int epochs = 12;
  int batch_size = 8;          ///< minibatch sharded across the worker pool
  int threads = 0;             ///< 0 = auto (OTA_THREADS, then hardware),
                               ///< capped at batch_size.  A pure performance
                               ///< knob: the trajectory and final weights are
                               ///< bit-identical for any value (see
                               ///< ml/trainer.hpp).
  double lr = 1e-3;            ///< paper starts at 1e-4 at GPU scale
  double numeric_weight = 1.2; ///< paper: +20% on numeric tokens
  double val_fraction = 0.1;   ///< held out for the plateau lr schedule
  int bpe_merges = 512;
  int64_t d_model = 48;        ///< paper: 720
  int64_t n_heads = 4;         ///< paper: 12
  int64_t n_layers = 2;
  int64_t d_ff = 96;
  int64_t max_len = 2048;
  double dropout = 0.05;
  uint64_t seed = 7;
  bool verbose = false;        ///< per-epoch loss to stderr
};

struct TrainHistory {
  std::vector<double> train_loss;  ///< per epoch
  std::vector<double> val_loss;
  double seconds = 0.0;            ///< wall-clock training time
  int threads = 1;                 ///< worker count the trainer resolved
};

/// A text-to-text sizing model over (encoder sequence, decoder sequence)
/// pairs produced by SequenceBuilder.
class SizingModel : public Predictor {
 public:
  /// Trains tokenizer + transformer from scratch on the given pairs.
  /// Minibatches are data-parallel over opt.threads workers through
  /// ml::DataParallelTrainer; the loss trajectory and final weights are
  /// bit-identical for any thread count at a fixed seed.
  TrainHistory train(const std::vector<std::pair<std::string, std::string>>& pairs,
                     const TrainOptions& opt);

  /// Greedy prediction of the decoder text for an encoder text.  Decodes
  /// through the compiled inference engine (KV cache, no autograd graph);
  /// output is bit-identical to the Var-based Transformer::greedy_decode.
  std::string predict(const std::string& encoder_text,
                      int max_tokens = 800) const override;

  /// Batched greedy prediction: all requests decode concurrently through the
  /// engine (bit-identical for any thread count, including the serial loop).
  std::vector<std::string> predict_batch(
      const std::vector<std::string>& encoder_texts, int max_tokens = 800,
      int threads = 0) const override;

  /// Tier-selecting overload: kDouble is the bit-identity path above;
  /// kFloat32 decodes through the engine's float32 snapshot (deterministic
  /// for any thread count, agreement-gated against the double tier).
  std::vector<std::string> predict_batch(
      const std::vector<std::string>& encoder_texts, int max_tokens,
      int threads, ml::Precision precision) const override;

  bool trained() const { return model_ != nullptr && engine_ != nullptr; }
  const nlp::BpeTokenizer& tokenizer() const;
  const ml::Transformer& transformer() const;
  /// The autograd-free evaluation representation, recompiled after every
  /// train()/load().
  const ml::InferenceEngine& engine() const;

  /// Persists tokenizer + weights to `<prefix>.bpe` / `<prefix>.model`.
  /// The model file carries an explicit field-by-field config header
  /// (version tag "otasmdl2"); see load() for the legacy format.
  void save(const std::string& prefix) const;
  /// Loads a previously saved model; returns false when files are missing.
  /// Reads the versioned header, falling back to a best-effort parse of the
  /// legacy raw-struct header (pre-version files written on the same
  /// platform); throws InvalidArgument when neither format fits.
  bool load(const std::string& prefix);

 private:
  std::vector<double> target_weights(const std::vector<nlp::TokenId>& tgt,
                                     double numeric_weight) const;

  nlp::BpeTokenizer tokenizer_;
  std::unique_ptr<ml::Transformer> model_;
  std::unique_ptr<ml::InferenceEngine> engine_;
  TrainOptions opt_;
};

}  // namespace ota::core
