#include "linalg/stats.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ota::linalg {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw InvalidArgument("mean: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw InvalidArgument("pearson: size mismatch");
  if (xs.size() < 2) throw InvalidArgument("pearson: need at least two points");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double rmse(const std::vector<double>& pred, const std::vector<double>& ref) {
  if (pred.size() != ref.size()) throw InvalidArgument("rmse: size mismatch");
  if (pred.empty()) throw InvalidArgument("rmse: empty sample");
  double acc = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - ref[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pred.size()));
}

double mape(const std::vector<double>& pred, const std::vector<double>& ref) {
  if (pred.size() != ref.size()) throw InvalidArgument("mape: size mismatch");
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (ref[i] == 0.0) continue;
    acc += std::fabs((pred[i] - ref[i]) / ref[i]);
    ++n;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

}  // namespace ota::linalg
