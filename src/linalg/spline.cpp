#include "linalg/spline.hpp"

#include <algorithm>
#include <cmath>

namespace ota::linalg {

CubicSpline1D::CubicSpline1D(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  const size_t n = x_.size();
  if (n < 2) throw InvalidArgument("CubicSpline1D: need at least two points");
  if (y_.size() != n) throw InvalidArgument("CubicSpline1D: x/y size mismatch");
  for (size_t i = 1; i < n; ++i) {
    if (!(x_[i] > x_[i - 1])) {
      throw InvalidArgument("CubicSpline1D: x must be strictly increasing");
    }
  }

  // Solve the tridiagonal system for natural boundary conditions (m_0 = m_{n-1}
  // = 0) with the Thomas algorithm.
  m_.assign(n, 0.0);
  if (n == 2) return;  // linear interpolation; second derivatives stay zero

  std::vector<double> h(n - 1);
  for (size_t i = 0; i + 1 < n; ++i) h[i] = x_[i + 1] - x_[i];

  std::vector<double> diag(n - 2), rhs(n - 2), upper(n - 2);
  for (size_t i = 1; i + 1 < n; ++i) {
    diag[i - 1] = 2.0 * (h[i - 1] + h[i]);
    rhs[i - 1] = 6.0 * ((y_[i + 1] - y_[i]) / h[i] - (y_[i] - y_[i - 1]) / h[i - 1]);
    upper[i - 1] = h[i];
  }
  // Forward sweep.
  for (size_t i = 1; i < diag.size(); ++i) {
    const double w = h[i] / diag[i - 1];
    diag[i] -= w * upper[i - 1];
    rhs[i] -= w * rhs[i - 1];
  }
  // Back substitution into the interior second derivatives.
  for (size_t ii = diag.size(); ii-- > 0;) {
    double acc = rhs[ii];
    if (ii + 1 < diag.size()) acc -= upper[ii] * m_[ii + 2];
    m_[ii + 1] = acc / diag[ii];
  }
}

size_t CubicSpline1D::segment(double x) const {
  // Rightmost segment whose left knot is <= x; clamp to valid segment range.
  auto it = std::upper_bound(x_.begin(), x_.end(), x);
  if (it == x_.begin()) return 0;
  size_t idx = static_cast<size_t>(it - x_.begin()) - 1;
  return std::min(idx, x_.size() - 2);
}

double CubicSpline1D::operator()(double x) const {
  if (x_.empty()) throw InternalError("CubicSpline1D: evaluating empty spline");
  const size_t i = segment(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * m_[i] + (b * b * b - b) * m_[i + 1]) * h * h / 6.0;
}

double CubicSpline1D::derivative(double x) const {
  if (x_.empty()) throw InternalError("CubicSpline1D: evaluating empty spline");
  const size_t i = segment(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h +
         ((3.0 * b * b - 1.0) * m_[i + 1] - (3.0 * a * a - 1.0) * m_[i]) * h / 6.0;
}

BicubicSpline::BicubicSpline(std::vector<double> x, std::vector<double> y,
                             Matrix<double> z)
    : x_(std::move(x)), y_(std::move(y)) {
  if (z.rows() != x_.size() || z.cols() != y_.size()) {
    throw InvalidArgument("BicubicSpline: grid size mismatch");
  }
  row_splines_.reserve(x_.size());
  for (size_t i = 0; i < x_.size(); ++i) {
    std::vector<double> row(y_.size());
    for (size_t j = 0; j < y_.size(); ++j) row[j] = z(i, j);
    row_splines_.emplace_back(y_, std::move(row));
  }
}

double BicubicSpline::operator()(double x, double y) const {
  if (x_.empty()) throw InternalError("BicubicSpline: evaluating empty spline");
  x = std::clamp(x, x_.front(), x_.back());
  y = std::clamp(y, y_.front(), y_.back());
  std::vector<double> column(x_.size());
  for (size_t i = 0; i < x_.size(); ++i) column[i] = row_splines_[i](y);
  return CubicSpline1D(x_, std::move(column))(x);
}

}  // namespace ota::linalg
