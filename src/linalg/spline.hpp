// Cubic-spline interpolation for the precomputed device LUTs.
//
// The paper stores LUT samples on a coarse 60 mV grid and relies on cubic
// spline interpolation for intermediate bias points (Section III-D.1).
// CubicSpline1D implements the classical natural cubic spline; BicubicSpline
// applies it as a tensor product over a rectangular (Vgs, Vds) grid.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ota::linalg {

/// Natural cubic spline through (x_i, y_i) with strictly increasing x.
class CubicSpline1D {
 public:
  CubicSpline1D() = default;

  /// Builds the spline; requires at least two points and strictly increasing x.
  CubicSpline1D(std::vector<double> x, std::vector<double> y);

  /// Evaluates the spline at `x`.  Outside the knot range the boundary cubic
  /// is extrapolated (callers clamp when extrapolation is not wanted).
  double operator()(double x) const;

  /// First derivative of the spline at `x`.
  double derivative(double x) const;

  const std::vector<double>& knots() const { return x_; }
  bool empty() const { return x_.empty(); }

 private:
  size_t segment(double x) const;

  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> m_;  // second derivatives at the knots
};

/// Tensor-product cubic spline over a rectangular grid: z = f(x, y).
/// Construction precomputes one spline per grid row; evaluation splines the
/// row values at the query x, then splines those results along y.
class BicubicSpline {
 public:
  BicubicSpline() = default;

  /// `z(i, j)` is the sample at (x[i], y[j]).  Both axes strictly increasing.
  BicubicSpline(std::vector<double> x, std::vector<double> y, Matrix<double> z);

  /// Interpolated value at (x, y), clamped to the grid's bounding box.
  double operator()(double x, double y) const;

  const std::vector<double>& x_knots() const { return x_; }
  const std::vector<double>& y_knots() const { return y_; }
  bool empty() const { return x_.empty(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  // One spline along y for each grid x; the final pass splines along x.
  std::vector<CubicSpline1D> row_splines_;
};

}  // namespace ota::linalg
