// Statistics used by the evaluation harness.
//
// Tables II/IV/VI of the paper report Pearson correlation coefficients between
// transformer-predicted and SPICE-measured device parameters; the benchmark
// harness reuses these helpers for every topology.
#pragma once

#include <cstddef>
#include <vector>

namespace ota::linalg {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Pearson correlation coefficient r of two equally sized samples.
/// Returns 0 when either sample is constant (correlation undefined).
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Root-mean-square error between predictions and references.
double rmse(const std::vector<double>& pred, const std::vector<double>& ref);

/// Mean absolute percentage error (references of zero are skipped).
double mape(const std::vector<double>& pred, const std::vector<double>& ref);

}  // namespace ota::linalg
