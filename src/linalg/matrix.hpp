// Dense row-major matrix over a numeric scalar.
//
// The circuits in this repository have at most a few dozen MNA unknowns, so a
// simple dense representation is both adequate and the fastest option at this
// size.  The same template instantiates for double (DC Newton iterations) and
// std::complex<double> (AC sweeps).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace ota::linalg {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  T& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Resizes and zero-fills; existing contents are discarded.
  void reset(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;

/// Matrix-vector product y = A x.
template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
  if (a.cols() != x.size()) throw InvalidArgument("matvec: dimension mismatch");
  std::vector<T> y(a.rows(), T{});
  for (size_t r = 0; r < a.rows(); ++r) {
    T acc{};
    for (size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace ota::linalg
