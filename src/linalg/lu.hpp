// LU factorization with partial pivoting and linear solves.
//
// Header-only template so the same code serves the real-valued Newton DC
// Jacobian and the complex-valued AC system matrix.
#pragma once

#include <cmath>
#include <complex>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ota::linalg {

namespace detail {
inline double magnitude(double x) { return std::fabs(x); }
inline double magnitude(const std::complex<double>& x) { return std::abs(x); }
}  // namespace detail

/// In-place LU decomposition of a square matrix with partial pivoting.
/// Solve multiple right-hand sides against one factorization.
template <typename T>
class LuDecomposition {
 public:
  /// Factors `a`; throws ConvergenceError when the matrix is numerically
  /// singular (pivot below `singular_tol` times the largest initial pivot).
  explicit LuDecomposition(Matrix<T> a, double singular_tol = 1e-14)
      : lu_(std::move(a)), perm_(lu_.rows()) {
    const size_t n = lu_.rows();
    if (lu_.cols() != n) throw InvalidArgument("LU: matrix must be square");
    std::iota(perm_.begin(), perm_.end(), size_t{0});

    double max_entry = 0.0;
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c)
        max_entry = std::max(max_entry, detail::magnitude(lu_(r, c)));
    if (max_entry == 0.0) throw ConvergenceError("LU: zero matrix");

    for (size_t k = 0; k < n; ++k) {
      // Partial pivot: pick the row with the largest magnitude in column k.
      size_t pivot_row = k;
      double pivot_mag = detail::magnitude(lu_(k, k));
      for (size_t r = k + 1; r < n; ++r) {
        double m = detail::magnitude(lu_(r, k));
        if (m > pivot_mag) {
          pivot_mag = m;
          pivot_row = r;
        }
      }
      if (pivot_mag < singular_tol * max_entry) {
        throw ConvergenceError("LU: matrix is numerically singular");
      }
      if (pivot_row != k) {
        for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
        std::swap(perm_[k], perm_[pivot_row]);
      }
      const T pivot = lu_(k, k);
      for (size_t r = k + 1; r < n; ++r) {
        const T factor = lu_(r, k) / pivot;
        lu_(r, k) = factor;
        for (size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }

  /// Solves A x = b for the matrix given at construction.
  std::vector<T> solve(const std::vector<T>& b) const {
    const size_t n = lu_.rows();
    if (b.size() != n) throw InvalidArgument("LU solve: rhs size mismatch");
    std::vector<T> x(n);
    // Forward substitution on the permuted RHS (L has implicit unit diagonal).
    for (size_t r = 0; r < n; ++r) {
      T acc = b[perm_[r]];
      for (size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
      x[r] = acc;
    }
    // Back substitution through U.
    for (size_t ri = n; ri-- > 0;) {
      T acc = x[ri];
      for (size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
      x[ri] = acc / lu_(ri, ri);
    }
    return x;
  }

 private:
  Matrix<T> lu_;
  std::vector<size_t> perm_;
};

/// One-shot convenience: solves A x = b.
template <typename T>
std::vector<T> solve(Matrix<T> a, const std::vector<T>& b) {
  return LuDecomposition<T>(std::move(a)).solve(b);
}

}  // namespace ota::linalg
