// LU factorization with partial pivoting and linear solves.
//
// Header-only template so the same code serves the real-valued Newton DC
// Jacobian and the complex-valued AC system matrix.
#pragma once

#include <cmath>
#include <complex>
#include <numeric>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"
#include "linalg/matrix.hpp"

namespace ota::linalg {

namespace detail {
inline double magnitude(double x) { return std::fabs(x); }
inline double magnitude(const std::complex<double>& x) { return std::abs(x); }
}  // namespace detail

/// In-place LU decomposition of a square matrix with partial pivoting.
/// Solve multiple right-hand sides against one factorization.
///
/// A decomposition is reusable storage: `factor()` re-factors a new matrix
/// into the existing buffers (no allocation when the size is unchanged), and
/// the `solve_into` overloads write into caller-owned output buffers — the
/// combination the AC sweep engine uses to solve thousands of frequency
/// points without a single per-point allocation.
template <typename T>
class LuDecomposition {
 public:
  /// An empty decomposition; call factor() before solving.
  LuDecomposition() = default;

  /// Factors `a`; throws ConvergenceError when the matrix is numerically
  /// singular (pivot below `singular_tol` times the largest initial pivot).
  explicit LuDecomposition(Matrix<T> a, double singular_tol = 1e-14)
      : lu_(std::move(a)) {
    factor_in_place(singular_tol);
  }

  /// Re-factors `a`, reusing this decomposition's storage.  Copying the
  /// input costs O(n^2) against the O(n^3) factorization and leaves the
  /// caller's matrix intact for the next assembly pass.
  void factor(const Matrix<T>& a, double singular_tol = 1e-14) {
    lu_ = a;
    factor_in_place(singular_tol);
  }

  /// As factor(), but exchanges buffers with `a` instead of copying: on
  /// return `a` holds the previous decomposition's storage (unspecified
  /// contents, correctly sized scratch after the first round trip).  For
  /// hot loops that fully reassemble the matrix every iteration — the AC
  /// sweep's per-frequency phase — this makes re-factoring allocation- and
  /// copy-free.
  void factor_swap(Matrix<T>& a, double singular_tol = 1e-14) {
    std::swap(lu_, a);
    factor_in_place(singular_tol);
  }

  /// Solves A x = b for the matrix given at construction.
  std::vector<T> solve(const std::vector<T>& b) const {
    std::vector<T> x;
    solve_into(b, x);
    return x;
  }

  /// As solve(), writing into `x` (resized to n; must not alias `b`).
  void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
    STAT_REGION("linalg.lu.solve");
    const size_t n = lu_.rows();
    if (b.size() != n) throw InvalidArgument("LU solve: rhs size mismatch");
    x.resize(n);
    // Forward substitution on the permuted RHS (L has implicit unit diagonal).
    for (size_t r = 0; r < n; ++r) {
      T acc = b[perm_[r]];
      for (size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
      x[r] = acc;
    }
    // Back substitution through U.
    for (size_t ri = n; ri-- > 0;) {
      T acc = x[ri];
      for (size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
      x[ri] = acc / lu_(ri, ri);
    }
  }

  /// Multi-RHS solve: A X = B where B bundles k right-hand sides as the
  /// columns of an n x k matrix.  Column j of the result is bit-identical to
  /// solve() on column j: the substitution visits the same elements in the
  /// same order, only interleaved across columns for cache locality.
  Matrix<T> solve(const Matrix<T>& b) const {
    Matrix<T> x;
    solve_into(b, x);
    return x;
  }

  /// As the multi-RHS solve(), writing into `x` (resized to n x k; must not
  /// alias `b`).
  void solve_into(const Matrix<T>& b, Matrix<T>& x) const {
    STAT_REGION("linalg.lu.solve");
    const size_t n = lu_.rows();
    const size_t k = b.cols();
    if (b.rows() != n) throw InvalidArgument("LU solve: rhs rows mismatch");
    if (x.rows() != n || x.cols() != k) x.reset(n, k);
    for (size_t r = 0; r < n; ++r) {
      for (size_t j = 0; j < k; ++j) x(r, j) = b(perm_[r], j);
      for (size_t c = 0; c < r; ++c) {
        const T l = lu_(r, c);
        for (size_t j = 0; j < k; ++j) x(r, j) -= l * x(c, j);
      }
    }
    for (size_t ri = n; ri-- > 0;) {
      for (size_t c = ri + 1; c < n; ++c) {
        const T u = lu_(ri, c);
        for (size_t j = 0; j < k; ++j) x(ri, j) -= u * x(c, j);
      }
      const T d = lu_(ri, ri);
      for (size_t j = 0; j < k; ++j) x(ri, j) = x(ri, j) / d;
    }
  }

 private:
  void factor_in_place(double singular_tol) {
    // Injectable singularity: lets robustness tests exercise every caller's
    // ConvergenceError recovery path (gmin ladder, AC sweep, copilot retry)
    // without having to construct a numerically singular system.
    FAULT_SITE_AS("linalg.lu.factor", ConvergenceError);
    STAT_REGION("linalg.lu.factor");
    const size_t n = lu_.rows();
    if (lu_.cols() != n) throw InvalidArgument("LU: matrix must be square");
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), size_t{0});

    double max_entry = 0.0;
    for (size_t r = 0; r < n; ++r)
      for (size_t c = 0; c < n; ++c)
        max_entry = std::max(max_entry, detail::magnitude(lu_(r, c)));
    if (max_entry == 0.0) throw ConvergenceError("LU: zero matrix");

    for (size_t k = 0; k < n; ++k) {
      // Partial pivot: pick the row with the largest magnitude in column k.
      size_t pivot_row = k;
      double pivot_mag = detail::magnitude(lu_(k, k));
      for (size_t r = k + 1; r < n; ++r) {
        double m = detail::magnitude(lu_(r, k));
        if (m > pivot_mag) {
          pivot_mag = m;
          pivot_row = r;
        }
      }
      if (pivot_mag < singular_tol * max_entry) {
        throw ConvergenceError("LU: matrix is numerically singular");
      }
      if (pivot_row != k) {
        for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
        std::swap(perm_[k], perm_[pivot_row]);
      }
      const T pivot = lu_(k, k);
      for (size_t r = k + 1; r < n; ++r) {
        const T factor = lu_(r, k) / pivot;
        lu_(r, k) = factor;
        for (size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }

  Matrix<T> lu_;
  std::vector<size_t> perm_;
};

/// One-shot convenience: solves A x = b.
template <typename T>
std::vector<T> solve(Matrix<T> a, const std::vector<T>& b) {
  return LuDecomposition<T>(std::move(a)).solve(b);
}

}  // namespace ota::linalg
