// Example: the paper's Fig. 2 running example.
//
// Builds the active-inductor circuit, derives its driving-point signal-flow
// graph, prints the forward paths and cycles in both the symbolic and the
// numeric notation of Fig. 4, checks Mason's gain formula against the MNA AC
// analysis, and shows the inductive input impedance the circuit synthesizes.
//
//   ./examples/active_inductor
#include <complex>
#include <cstdio>

#include "circuit/topologies.hpp"
#include "sfg/mason.hpp"
#include "sfg/sequence.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"

int main() {
  using namespace ota;

  const auto tech = device::Technology::default65nm();
  const auto ai = circuit::make_active_inductor(tech);

  // Operating point and small-signal device parameters.
  const auto dc = spice::solve_dc(ai.netlist, tech);
  const auto devices = spice::small_signal_map(ai.netlist, tech, dc);
  std::printf("Operating point: V(n1) = %.3f V, V(n2) = %.3f V\n",
              dc.voltage(ai.netlist, "n1"), dc.voltage(ai.netlist, "n2"));
  const auto& m = devices.at("M");
  std::printf("Transistor M: gm = %.3e S, gds = %.3e S, Cgs = %.3e F, Cds = %.3e F\n\n",
              m.gm, m.gds, m.cgs, m.cds);

  // DP-SFG (paper Fig. 2b) and its sequence text (paper Fig. 4 style).
  const auto g = sfg::DpSfg::build(ai.netlist, devices, ai.output_node);
  const auto paths = sfg::collect_paths(g);
  std::printf("DP-SFG: %zu vertices, %zu edges, %zu forward paths, %zu cycles\n\n",
              g.vertices().size(), g.edges().size(), paths.forward.size(),
              paths.cycles.size());

  std::printf("Symbolic sequences (encoder side):\n");
  for (const auto& line : sfg::render_lines(g, paths, sfg::RenderMode::Symbolic)) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\nNumeric sequences (decoder side):\n");
  for (const auto& line : sfg::render_lines(g, paths, sfg::RenderMode::Numeric)) {
    std::printf("  %s\n", line.c_str());
  }

  // Mason's rule must agree with the MNA solve: the SFG is a faithful
  // description of the circuit.
  const sfg::MasonEvaluator mason(g);
  const spice::AcAnalysis ac(ai.netlist, tech, dc);
  std::printf("\n%-12s %-28s %-28s\n", "freq", "MNA Vout/Iin [ohm]", "Mason Vout/Iin [ohm]");
  for (double f : {1e3, 1e6, 1e8, 1e9, 1e10}) {
    const auto h_ref = ac.transfer(f, ai.output_node);
    const auto h_sfg = mason.transfer(f);
    std::printf("%-12.3g %-13.4f %+.4fj %-13.4f %+.4fj\n", f, h_ref.real(),
                h_ref.imag(), h_sfg.real(), h_sfg.imag());
  }

  // The synthesized impedance looks inductive over a band: |Z| rises with
  // frequency while the phase is positive.
  std::printf("\nInput impedance (inductive region where phase > 0):\n");
  std::printf("%-12s %-14s %-10s\n", "freq", "|Z| [ohm]", "phase [deg]");
  for (double f = 1e6; f <= 1e10; f *= 10.0) {
    const auto z = -ac.transfer(f, ai.output_node);  // Iin pulls out of n1
    std::printf("%-12.3g %-14.2f %-10.2f\n", f, std::abs(z),
                std::arg(z) * 180.0 / 3.14159265358979);
  }
  return 0;
}
