// Quickstart: size a five-transistor OTA for a gain/BW/UGF specification.
//
// Walks the full flow of the paper on a small scale:
//   1. generate a training dataset by sweeping widths under matching
//      constraints and region/spec filters (Stage 0 / Section IV-A),
//   2. map designs to DP-SFG-derived sequences and train the transformer
//      with restricted BPE and weighted cross-entropy (Stages I-II),
//   3. ask the trained model for device parameters for an unseen spec and
//      translate them to widths with the gm/Id LUTs (Stage III),
//   4. verify with one simulation and, if needed, let the copilot tighten the
//      request (Stage IV).
//
//   ./examples/quickstart            (about a minute on a laptop core)
//
// Set OTA_QUICKSTART_TINY=1 to shrink the dataset and model to smoke-test
// scale (seconds); the `smoke_quickstart` CTest entry runs in that mode and
// only checks that the full flow executes, not that the tiny model hits spec.
#include <cstdio>
#include <cstdlib>

#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/sizing_model.hpp"

int main() {
  using namespace ota;
  using namespace ota::core;

  const char* tiny_env = std::getenv("OTA_QUICKSTART_TINY");
  const bool tiny = tiny_env != nullptr && tiny_env[0] != '\0' &&
                    tiny_env[0] != '0';

  const auto tech = device::Technology::default65nm();
  auto topo = circuit::make_5t_ota(tech);

  // 1. Dataset.
  std::printf("[1/4] generating dataset (width sweeps + filters)...\n");
  DataGenOptions gopt;
  gopt.target_designs = tiny ? 60 : 400;
  auto ds = generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), gopt);
  std::printf("      %zu legal designs from %d simulated candidates\n",
              ds.designs.size(), ds.attempts);

  // 2. Sequences + transformer.
  std::printf("[2/4] training the transformer (CPU-scale configuration)...\n");
  const SequenceBuilder builder(topo, tech);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& d : ds.designs) {
    pairs.emplace_back(builder.encoder_text(d.specs), builder.decoder_text(d));
  }
  SizingModel model;
  TrainOptions topt;
  topt.epochs = tiny ? 2 : 10;
  topt.d_model = tiny ? 32 : 48;
  topt.lr = 2e-3;
  const TrainHistory hist = model.train(pairs, topt);
  std::printf("      %d epochs in %.1f s; loss %.3f -> %.3f; vocab %zu, %lld parameters\n",
              topt.epochs, hist.seconds, hist.train_loss.front(),
              hist.train_loss.back(), model.tokenizer().vocab().size(),
              static_cast<long long>(model.transformer().parameter_count()));

  // 3+4. Size for an unseen specification with the copilot.
  std::printf("[3/4] sizing for an unseen specification...\n");
  const Specs target{20.5, 8e6, 90e6};
  const LutSet luts = LutSet::build(tech);
  SizingCopilot copilot(topo, tech, builder, model, luts);
  const SizingOutcome o = copilot.size(target);

  std::printf("[4/4] result: %s after %d iteration(s), %d verification sim(s)\n",
              o.success ? "SPECS MET" : "not met", o.iterations,
              o.spice_simulations);
  std::printf("      target   : gain %.2f dB, BW %.2f MHz, UGF %.1f MHz\n",
              o.target.gain_db, o.target.bw_hz / 1e6, o.target.ugf_hz / 1e6);
  std::printf("      achieved : gain %.2f dB, BW %.2f MHz, UGF %.1f MHz\n",
              o.achieved.gain_db, o.achieved.bw_hz / 1e6, o.achieved.ugf_hz / 1e6);
  std::printf("      widths   : load %.2f um, DP %.2f um, tail %.2f um\n",
              o.widths[0] * 1e6, o.widths[1] * 1e6, o.widths[2] * 1e6);
  // In tiny (smoke-test) mode the model is far too small to reliably hit
  // spec; completing the whole flow without throwing is the pass criterion.
  return (tiny || o.success) ? 0 : 1;
}
