// Example: a sizing campaign across all three OTA topologies of the paper
// (Fig. 6), exercising the copilot loop (Stages III-IV) with the
// nearest-neighbor predictor so the whole campaign finishes in seconds.
// Swap in a trained SizingModel (see quickstart.cpp or the bench binaries)
// for the transformer-backed flow.
//
// Dataset generation and the per-target copilot runs fan out over the
// ota::par thread pool (OTA_THREADS, default: hardware concurrency); the
// campaign's results are bit-identical for any thread count.
//
//   ./examples/multi_topology_campaign
//   OTA_THREADS=8 ./examples/multi_topology_campaign
#include <cstdio>
#include <cstdlib>

#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/nearest_predictor.hpp"
#include "par/thread_pool.hpp"

int main() {
  using namespace ota;
  using namespace ota::core;

  const auto tech = device::Technology::default65nm();
  const LutSet luts = LutSet::build(tech);

  std::printf("campaign workers: %d (OTA_THREADS=%s)\n\n",
              par::resolve_threads(),
              std::getenv("OTA_THREADS") ? std::getenv("OTA_THREADS") : "unset");
  std::printf("%-8s %-9s %-8s %-10s %-10s %-9s\n", "topology", "#designs",
              "targets", "met", "avg sims", "avg time");
  for (const char* name : {"5T-OTA", "CM-OTA", "2S-OTA"}) {
    auto topo = circuit::make_topology(name, tech);
    DataGenOptions gopt;
    gopt.target_designs = 250;
    gopt.max_attempts = 60000;
    auto ds = generate_dataset(topo, tech, SpecRange::for_topology(name), gopt);

    const SequenceBuilder builder(topo, tech);
    const NearestNeighborPredictor predictor(builder, ds.designs);
    SizingCopilot copilot(topo, tech, builder, predictor, luts);

    const auto targets = targets_from_designs(ds.designs, 25, 0.06, 17);
    const RuntimeStats st = runtime_stats(copilot, targets);
    const double avg_time =
        (st.avg_single_seconds * st.single_iteration +
         st.avg_multi_seconds * st.multi_iteration) /
        std::max(1, st.single_iteration + st.multi_iteration);
    std::printf("%-8s %-9zu %-8d %-10d %-10.2f %-9.3fs\n", name,
                ds.designs.size(), st.total,
                st.single_iteration + st.multi_iteration,
                st.avg_sims_per_design, avg_time);
  }
  std::printf("\nEach 'met' design consumed a handful of verification\n"
              "simulations instead of an optimizer's hundreds (Table IX).\n");
  return 0;
}
