// Example: the layout-loop story of the paper's introduction.
//
// "After sizing, a layout engine updates parasitics, updating the parasitic
//  values in the DP-SFG. Our model, trained on a range of values, can then be
//  re-invoked without further SPICE simulations."
//
// This example sizes a 5T-OTA, annotates layout-extracted parasitic
// capacitance at the output and mirror nodes, observes the degraded
// bandwidth, and re-invokes the same predictor with a tightened request to
// recover the specification — no retraining, only verification simulations.
//
//   ./examples/layout_parasitic_reinvoke
#include <cstdio>

#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/nearest_predictor.hpp"

int main() {
  using namespace ota;
  using namespace ota::core;

  const auto tech = device::Technology::default65nm();
  auto topo = circuit::make_5t_ota(tech);
  const LutSet luts = LutSet::build(tech);

  DataGenOptions gopt;
  gopt.target_designs = 300;
  auto ds = generate_dataset(topo, tech, SpecRange::for_topology("5T-OTA"), gopt);
  const SequenceBuilder builder(topo, tech);
  const NearestNeighborPredictor predictor(builder, ds.designs);

  // Pre-layout sizing.
  const Specs target{20.0, 9e6, 100e6};
  SizingCopilot copilot(topo, tech, builder, predictor, luts);
  SizingOutcome pre = copilot.size(target);
  std::printf("pre-layout : %s  gain %.2f dB  BW %.2f MHz  UGF %.1f MHz\n",
              pre.success ? "met" : "MISS", pre.achieved.gain_db,
              pre.achieved.bw_hz / 1e6, pre.achieved.ugf_hz / 1e6);

  // "Layout extraction": parasitic wiring capacitance on the signal nodes.
  auto extracted = circuit::make_5t_ota(tech);
  extracted.netlist.add_capacitor("CPAR_OUT", "vout", "0", 150e-15);
  extracted.netlist.add_capacitor("CPAR_N1", "n1", "0", 60e-15);

  auto post = spice::evaluate(extracted, tech, pre.widths);
  std::printf("post-layout: widths unchanged  gain %.2f dB  BW %.2f MHz  UGF %.1f MHz\n",
              post.metrics.gain_db, post.metrics.bw_3db_hz / 1e6,
              post.metrics.ugf_hz / 1e6);

  const bool degraded = post.metrics.bw_3db_hz < target.bw_hz ||
                        post.metrics.ugf_hz < target.ugf_hz;
  std::printf("parasitics %s the spec\n", degraded ? "broke" : "did not break");

  // Re-invoke the same model against the extracted netlist: the copilot's
  // verification now sees the parasitics, so margin allocation compensates.
  SizingCopilot relayout(extracted, tech, builder, predictor, luts);
  SizingOutcome fixed = relayout.size(target);
  std::printf("re-invoked : %s after %d iteration(s), %d sim(s)  "
              "gain %.2f dB  BW %.2f MHz  UGF %.1f MHz\n",
              fixed.success ? "met" : "MISS", fixed.iterations,
              fixed.spice_simulations, fixed.achieved.gain_db,
              fixed.achieved.bw_hz / 1e6, fixed.achieved.ugf_hz / 1e6);
  std::printf("widths     : load %.2f um  DP %.2f um  tail %.2f um\n",
              fixed.widths[0] * 1e6, fixed.widths[1] * 1e6,
              fixed.widths[2] * 1e6);
  return fixed.success ? 0 : 1;
}
