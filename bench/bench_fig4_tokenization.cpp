// Fig. 4 / Section III-C — tokenization of DP-SFG sequences.
//
// Builds the full-path sequence corpus for all three OTA topologies, trains
// the restricted BPE, and reports the sequence-length compression relative to
// character-level tokenization.  The paper reports 3.77x on its corpus.
#include <cstdio>

#include "core/dataset.hpp"
#include "core/sequence_builder.hpp"
#include "nlp/bpe.hpp"
#include "spice/dc.hpp"

int main() {
  using namespace ota;
  const auto tech = device::Technology::default65nm();

  // Corpus: symbolic and numeric full-path sequences per topology, over a
  // spread of designs so numeric literals cover many values.
  std::vector<std::string> corpus;
  for (const char* name : {"5T-OTA", "CM-OTA", "2S-OTA"}) {
    auto topo = circuit::make_topology(name, tech);
    core::DataGenOptions gopt;
    gopt.target_designs = 30;
    gopt.max_attempts = 20000;
    auto ds = core::generate_dataset(topo, tech,
                                     core::SpecRange::for_topology(name), gopt);
    const core::SequenceBuilder full(topo, tech, core::SequenceMode::FullPaths);
    for (const auto& d : ds.designs) {
      corpus.push_back(full.encoder_text(d.specs));
      corpus.push_back(full.decoder_text(d));
    }
    std::printf("%s: %zu designs -> %zu corpus lines\n", name,
                ds.designs.size(), corpus.size());
  }

  const auto restricted = nlp::BpeTokenizer::train(corpus, {.num_merges = 1024});
  const auto vanilla = nlp::BpeTokenizer::train(
      corpus, {.num_merges = 1024, .protect_numeric = false});

  long clt_tokens = 0, bpe_tokens = 0, vanilla_tokens = 0;
  for (const auto& line : corpus) {
    clt_tokens += static_cast<long>(nlp::char_tokens(line).size());
    bpe_tokens += static_cast<long>(restricted.encode_pieces(line).size());
    vanilla_tokens += static_cast<long>(vanilla.encode_pieces(line).size());
  }

  std::printf("\n=== Fig. 4 / Sec. III-C: tokenization ===\n");
  std::printf("%-28s %12s %14s\n", "tokenizer", "tokens", "compression");
  std::printf("%-28s %12ld %14s\n", "character-level (CLT)", clt_tokens, "1.00x");
  std::printf("%-28s %12ld %13.2fx\n", "restricted BPE (ours)", bpe_tokens,
              static_cast<double>(clt_tokens) / bpe_tokens);
  std::printf("%-28s %12ld %13.2fx\n", "unrestricted BPE", vanilla_tokens,
              static_cast<double>(clt_tokens) / vanilla_tokens);
  std::printf("(paper reports 3.77x for restricted BPE on its corpus)\n");
  std::printf("vocabulary: %zu pieces, %zu merges\n", restricted.vocab().size(),
              restricted.merges().size());

  // The worked example of Section III-C.
  const std::string sample = "32 2.5mSP1 -16 1/(567uSM0+s0.7aFM0+s541aFP1+2.5mSP1)";
  std::printf("\nSample: %s\n", sample.c_str());
  std::printf("CLT : %zu tokens\n", nlp::char_tokens(sample).size());
  const auto pieces = restricted.encode_pieces(sample);
  std::printf("BPE : %zu tokens:", pieces.size());
  for (const auto& p : pieces) std::printf(" [%s]", p.c_str());
  std::printf("\n");
  return 0;
}
