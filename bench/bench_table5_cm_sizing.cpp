// Table V — target vs optimized specifications, CM-OTA.
#include "common.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  auto& ctx = context("CM-OTA");
  core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, ctx.model,
                              luts());
  const auto targets = core::targets_from_designs(ctx.val, 3, 0.05, 1501);
  std::vector<core::SizingOutcome> rows;
  for (const auto& t : targets) rows.push_back(copilot.size(t));
  print_sizing_table("=== Table V: CM-OTA target vs optimized ===", rows);
  std::printf("\n(paper Table V: gains 20.83->21.99, 21.55->23.25, 23.8->24.3 dB;\n"
              " optimized exceeds target on every spec)\n");
  return 0;
}
