// Shared infrastructure for the experiment benchmarks.
//
// Every bench binary regenerates its datasets deterministically (seconds) and
// shares one trained transformer per topology through an on-disk cache
// (OTA_CACHE_DIR, default ./ota_bench_cache), so running the whole bench
// directory trains each model exactly once.
//
// Scale control: OTA_SCALE=tiny|small|paper (default small).
//   tiny  — smoke-test scale, minutes for everything, weak accuracy
//   small — CPU-scale defaults used for the committed EXPERIMENTS.md numbers
//   paper — the paper's dataset/model scale (GPU-sized; hours on CPU)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/nearest_predictor.hpp"
#include "core/sizing_model.hpp"

namespace ota::benchsupport {

struct Scale {
  std::string name;
  int designs = 900;        ///< dataset size per topology
  int epochs = 14;
  int64_t d_model = 64;
  int64_t n_heads = 4;
  int64_t n_layers = 2;
  int64_t d_ff = 128;
  double lr = 2e-3;
  int eval_designs = 50;    ///< validation predictions per correlation table
  int sizing_targets = 20;  ///< Table VIII targets per topology

  static Scale from_env() {
    const char* env = std::getenv("OTA_SCALE");
    const std::string s = env ? env : "small";
    Scale sc;
    sc.name = s;
    if (s == "tiny") {
      sc.designs = 250;
      sc.epochs = 6;
      sc.d_model = 32;
      sc.d_ff = 64;
      sc.eval_designs = 20;
      sc.sizing_targets = 8;
    } else if (s == "paper") {
      sc.designs = 17000;
      sc.epochs = 40;
      sc.d_model = 720;
      sc.n_heads = 12;
      sc.n_layers = 6;
      sc.d_ff = 2048;
      sc.lr = 1e-4;
      sc.eval_designs = 100;
      sc.sizing_targets = 100;
    }
    return sc;
  }
};

/// Order-preserving JSON object builder for the BENCH_*.json snapshots.
/// Every bench used to hand-roll its own writer blob; this is the one shared
/// emitter.  Scalars render in insertion order; nested arrays of objects
/// (the per-thread "runs" sweeps) render one object per line.
class JsonObject {
 public:
  JsonObject& str(const std::string& key, const std::string& value) {
    return raw(key, "\"" + value + "\"");
  }
  JsonObject& boolean(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonObject& num(const std::string& key, T value) {
    return raw(key, std::to_string(value));
  }
  /// Doubles take an explicit printf format so each bench keeps the
  /// precision its numbers warrant (%.3f seconds, %.0f rates, ...).
  JsonObject& num(const std::string& key, double value,
                  const char* fmt = "%.6g") {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, value);
    return raw(key, buf);
  }
  JsonObject& array(const std::string& key, std::vector<JsonObject> items) {
    fields_.emplace_back(key, Value{"", std::move(items), true});
    return *this;
  }

  std::string render() const {
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      const auto& [key, value] = fields_[i];
      out += "  \"" + key + "\": ";
      if (value.is_array) {
        out += "[\n";
        for (size_t j = 0; j < value.items.size(); ++j) {
          out += "    " + value.items[j].render_inline();
          if (j + 1 < value.items.size()) out += ",";
          out += "\n";
        }
        out += "  ]";
      } else {
        out += value.scalar;
      }
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    return out + "}\n";
  }

 private:
  struct Value {
    std::string scalar;
    std::vector<JsonObject> items;
    bool is_array = false;
  };

  JsonObject& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, Value{std::move(rendered), {}, false});
    return *this;
  }

  std::string render_inline() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += "\"" + fields_[i].first + "\": " + fields_[i].second.scalar;
      if (i + 1 < fields_.size()) out += ", ";
    }
    return out + "}";
  }

  std::vector<std::pair<std::string, Value>> fields_;
};

/// Writes `obj` to $OTA_BENCH_JSON (or `default_path` when unset) and logs
/// the destination.  Returns false after printing a FAIL line when the file
/// cannot be opened, so benches can propagate it into their exit code.
inline bool write_bench_json(const std::string& default_path,
                             const JsonObject& obj) {
  const char* env = std::getenv("OTA_BENCH_JSON");
  const std::string path = env && *env ? env : default_path;
  std::ofstream js(path);
  if (!js) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n", path.c_str());
    return false;
  }
  js << obj.render();
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

inline const device::Technology& tech() {
  static const device::Technology t = device::Technology::default65nm();
  return t;
}

inline const core::LutSet& luts() {
  static const core::LutSet l = core::LutSet::build(tech());
  return l;
}

inline std::string cache_dir() {
  const char* env = std::getenv("OTA_CACHE_DIR");
  std::string dir = env ? env : "ota_bench_cache";
  std::system(("mkdir -p '" + dir + "'").c_str());
  return dir;
}

/// Everything the experiment tables need for one topology.
struct TopologyContext {
  circuit::Topology topology;
  core::Dataset dataset;
  std::vector<core::Design> train;
  std::vector<core::Design> val;
  std::unique_ptr<core::SequenceBuilder> builder;
  core::SizingModel model;
  double training_seconds = 0.0;  ///< fresh run or cached metadata

  TopologyContext(const std::string& name, const Scale& sc)
      : topology(circuit::make_topology(name, tech())) {
    core::DataGenOptions gopt;
    gopt.target_designs = sc.designs;
    gopt.max_attempts = sc.designs * 200;
    gopt.seed = 2024;
    dataset = core::generate_dataset(topology, tech(),
                                     core::SpecRange::for_topology(name), gopt);
    auto split = core::train_val_split(dataset.designs, 0.2, 42);
    train = std::move(split.first);
    val = std::move(split.second);
    builder = std::make_unique<core::SequenceBuilder>(topology, tech());

    const std::string prefix = cache_dir() + "/" + name + "-" + sc.name;
    // A corrupt cache entry (e.g. a run killed mid-save) throws from load();
    // treat it exactly like a cache miss and retrain over it.
    bool cached = false;
    try {
      cached = model.load(prefix);
    } catch (const Error& e) {
      std::fprintf(stderr, "[bench] discarding unreadable cached model %s (%s)\n",
                   prefix.c_str(), e.what());
    }
    if (cached) {
      std::ifstream meta(prefix + ".meta");
      if (meta) meta >> training_seconds;
      std::fprintf(stderr, "[bench] loaded cached model %s (trained in %.0fs)\n",
                   prefix.c_str(), training_seconds);
      return;
    }
    std::fprintf(stderr, "[bench] training %s model at scale '%s' (%zu designs)...\n",
                 name.c_str(), sc.name.c_str(), train.size());
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const auto& d : train) {
      pairs.emplace_back(builder->encoder_text(d.specs), builder->decoder_text(d));
    }
    core::TrainOptions topt;
    topt.epochs = sc.epochs;
    topt.d_model = sc.d_model;
    topt.n_heads = sc.n_heads;
    topt.n_layers = sc.n_layers;
    topt.d_ff = sc.d_ff;
    topt.lr = sc.lr;
    topt.verbose = true;
    const core::TrainHistory hist = model.train(pairs, topt);
    training_seconds = hist.seconds;
    model.save(prefix);
    std::ofstream meta(prefix + ".meta");
    meta << training_seconds << "\n";
  }
};

/// Process-wide context cache.
inline TopologyContext& context(const std::string& name) {
  static std::map<std::string, std::unique_ptr<TopologyContext>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, std::make_unique<TopologyContext>(
                                  name, Scale::from_env())).first;
  }
  return *it->second;
}

/// Prints the per-device correlation rows in the paper's Table II/IV/VI form.
inline void print_correlation_table(const std::string& title,
                                    const std::vector<core::CorrelationRow>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-8s %-22s %8s %8s %8s %8s %8s\n", "Devices", "Role", "gm",
              "gds", "Cds", "Cgs", "samples");
  for (const auto& r : rows) {
    std::printf("%-8s %-22s %8.3f %8.3f %8.3f %8.3f %8d\n", r.devices.c_str(),
                r.role.c_str(), r.r_gm, r.r_gds, r.r_cds, r.r_cgs, r.samples);
  }
}

/// Prints a target-vs-optimized table in the paper's Table III/V/VII form.
inline void print_sizing_table(const std::string& title,
                               const std::vector<core::SizingOutcome>& rows,
                               double bw_unit = 1e6,
                               const char* bw_label = "MHz") {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-22s %-22s %-24s %s\n", "Gain(dB) tgt->opt",
              (std::string("UGF(MHz) tgt->opt")).c_str(),
              (std::string("BW(") + bw_label + ") tgt->opt").c_str(), "sims");
  for (const auto& o : rows) {
    std::printf("%8.2f -> %-10.2f %8.2f -> %-10.2f %9.3f -> %-11.3f %d%s\n",
                o.target.gain_db, o.achieved.gain_db, o.target.ugf_hz / 1e6,
                o.achieved.ugf_hz / 1e6, o.target.bw_hz / bw_unit,
                o.achieved.bw_hz / bw_unit, o.spice_simulations,
                o.success ? "" : "  (miss)");
  }
}

}  // namespace ota::benchsupport
