// Ablation — transformer vs nearest-neighbor lookup.
//
// The transformer must beat (or at least match) a predictor that simply
// returns the closest training design's parameters, otherwise the learning
// stage adds nothing.  Compares correlation quality and copilot success on
// the same unseen validation specs.
#include "common.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  const Scale sc = Scale::from_env();
  auto& ctx = context("5T-OTA");

  const core::NearestNeighborPredictor nn(*ctx.builder, ctx.train);

  std::printf("=== Ablation: transformer vs nearest-neighbor (5T-OTA) ===\n");
  for (const auto& [label, predictor] :
       std::vector<std::pair<std::string, const core::Predictor*>>{
           {"transformer", &ctx.model}, {"nearest-neighbor", &nn}}) {
    const auto rows = core::correlation_table(ctx.topology, *ctx.builder,
                                              *predictor, ctx.val,
                                              sc.eval_designs);
    double avg = 0.0;
    int cnt = 0;
    for (const auto& r : rows) {
      avg += r.r_gm + r.r_gds + r.r_cds + r.r_cgs;
      cnt += 4;
    }
    core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, *predictor,
                                luts());
    const auto targets =
        core::targets_from_designs(ctx.val, sc.sizing_targets, 0.05, 2101);
    const auto st = core::runtime_stats(copilot, targets);
    std::printf("%-18s avg corr %.3f | solved %d/%d (1-iter %d) | avg sims %.2f\n",
                label.c_str(), avg / cnt,
                st.single_iteration + st.multi_iteration, st.total,
                st.single_iteration, st.avg_sims_per_design);
  }
  std::printf("\n(the nearest-neighbor row is an upper reference on dense\n"
              " in-range specs; the transformer generalizes between designs\n"
              " and is what the paper deploys)\n");
  return 0;
}
