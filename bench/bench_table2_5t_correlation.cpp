// Table II — correlation of predicted vs simulated device parameters, 5T-OTA.
#include "common.hpp"

int main() {
  using namespace ota::benchsupport;
  auto& ctx = context("5T-OTA");
  const auto rows = ota::core::correlation_table(
      ctx.topology, *ctx.builder, ctx.model, ctx.val,
      Scale::from_env().eval_designs);
  print_correlation_table(
      "=== Table II: 5T-OTA correlation (predicted vs simulated) ===", rows);
  std::printf("\n(paper: 0.96-0.999 across all parameters at GPU scale;\n"
              " see EXPERIMENTS.md for the CPU-scale discussion)\n");
  return 0;
}
