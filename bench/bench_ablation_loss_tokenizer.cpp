// Ablation — the paper's two training-recipe choices (Section III-C):
//   1. weighted cross-entropy (+20% on numeric tokens) vs unweighted,
//   2. restricted BPE vs character-level tokenization (CLT).
//
// Trains small models under each setting on the same 5T dataset and compares
// validation loss, sequence length, and training wall time.
#include "common.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;

  const auto& technology = tech();
  auto topo = circuit::make_5t_ota(technology);
  core::DataGenOptions gopt;
  gopt.target_designs = 300;
  gopt.max_attempts = 60000;
  auto ds = core::generate_dataset(topo, technology,
                                   core::SpecRange::for_topology("5T-OTA"), gopt);
  const core::SequenceBuilder builder(topo, technology);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& d : ds.designs) {
    pairs.emplace_back(builder.encoder_text(d.specs), builder.decoder_text(d));
  }

  std::printf("=== Ablation: loss weighting and tokenization (5T-OTA, %zu designs) ===\n",
              ds.designs.size());
  std::printf("%-28s %-10s %-10s %-12s %-10s\n", "setting", "val loss",
              "dec toks", "train time", "vocab");

  auto run = [&](const std::string& label, double numeric_weight, int merges) {
    core::SizingModel model;
    core::TrainOptions topt;
    topt.epochs = 6;
    topt.d_model = 32;
    topt.d_ff = 64;
    topt.lr = 2e-3;
    topt.numeric_weight = numeric_weight;
    topt.bpe_merges = merges;
    const auto hist = model.train(pairs, topt);
    std::printf("%-28s %-10.4f %-10zu %-11.1fs %-10zu\n", label.c_str(),
                hist.val_loss.back(),
                model.tokenizer().encode(pairs[0].second).size(), hist.seconds,
                model.tokenizer().vocab().size());
  };

  run("BPE + weighted CE (paper)", 1.2, 512);
  run("BPE + unweighted CE", 1.0, 512);
  run("CLT + weighted CE", 1.2, 0);  // zero merges = character level

  std::printf("\n(paper: the 20%% numeric-token weight was the optimum of its\n"
              " sweep, and BPE gave 3.77x shorter sequences than CLT, which is\n"
              " the dominant training-cost lever — visible in the time column)\n");
  return 0;
}
