// Table VIII — runtime analysis of training and inference.
//
// Per topology: one-time training duration, single-iteration vs
// multi-iteration success over unseen targets, average wall time, and the
// average number of verification simulations (the paper's headline: >90% of
// designs sized with one simulation).
//
// Also measures the decode engine itself: greedy tokens/sec through the
// autograd-free KV-cache InferenceEngine (the production path) vs the
// Var-based Transformer::greedy_decode (the training/reference path), on
// identical requests.  The two must emit identical tokens; the bench exits
// nonzero if they diverge or if the cached path falls below a noise-tolerant
// 2x speedup floor, which is what the CI smoke step asserts.
// OTA_TABLE8_SMOKE=1 runs only this comparison (one topology, no sizing
// campaign).
#include <algorithm>
#include <chrono>
#include <cstring>

#include "common.hpp"
#include "ml/infer.hpp"
#include "par/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Decode throughput of one path over a fixed request list; returns
/// tokens/sec and appends every emitted token stream for cross-checking.
template <typename DecodeFn>
double tokens_per_second(const std::vector<std::vector<ota::nlp::TokenId>>& srcs,
                         DecodeFn decode,
                         std::vector<std::vector<ota::nlp::TokenId>>& outs) {
  const auto t0 = Clock::now();
  long tokens = 0;
  for (const auto& src : srcs) {
    outs.push_back(decode(src));
    tokens += static_cast<long>(outs.back().size());
  }
  const double dt = seconds_since(t0);
  return dt > 0.0 ? static_cast<double>(tokens) / dt : 0.0;
}

/// Cached-vs-naive decode comparison on one topology's trained model.
/// Returns 0 on success, 1 when tokens diverge or the cached path is slower.
int decode_engine_comparison(ota::benchsupport::TopologyContext& ctx,
                             int requests, int max_tokens) {
  using namespace ota;
  const auto& tokenizer = ctx.model.tokenizer();
  const ml::Transformer& reference = ctx.model.transformer();
  const ml::InferenceEngine& engine = ctx.model.engine();

  std::vector<std::vector<nlp::TokenId>> srcs;
  for (int i = 0; i < requests && i < static_cast<int>(ctx.val.size()); ++i) {
    srcs.push_back(tokenizer.encode(
        ctx.builder->encoder_text(ctx.val[static_cast<size_t>(i)].specs)));
  }

  std::vector<std::vector<nlp::TokenId>> naive_out, cached_out;
  const double naive_tps = tokens_per_second(
      srcs,
      [&](const std::vector<nlp::TokenId>& s) {
        return reference.greedy_decode(s, max_tokens);
      },
      naive_out);
  const double cached_tps = tokens_per_second(
      srcs,
      [&](const std::vector<nlp::TokenId>& s) {
        return engine.greedy_decode(s, max_tokens);
      },
      cached_out);

  // Batched decode across the whole request list (the campaign-sweep shape).
  const auto t0 = Clock::now();
  const auto batch_out = engine.greedy_decode_batch(srcs, max_tokens);
  const double batch_dt = seconds_since(t0);
  long batch_tokens = 0;
  for (const auto& o : batch_out) batch_tokens += static_cast<long>(o.size());
  const double batch_tps =
      batch_dt > 0.0 ? static_cast<double>(batch_tokens) / batch_dt : 0.0;

  std::printf("\nDecode engine (%zu requests, <=%d tokens each):\n",
              srcs.size(), max_tokens);
  std::printf("  naive  (Var graph, full-prefix recompute): %10.1f tok/s\n",
              naive_tps);
  std::printf("  cached (KV cache, fused QKV, no autograd): %10.1f tok/s  (%.1fx)\n",
              cached_tps, naive_tps > 0.0 ? cached_tps / naive_tps : 0.0);
  std::printf("  batched over %d workers:                   %10.1f tok/s\n",
              std::min(par::resolve_threads(), static_cast<int>(srcs.size())),
              batch_tps);

  // A comparison that decoded nothing asserts nothing — refuse to pass.
  long naive_tokens = 0;
  for (const auto& o : naive_out) naive_tokens += static_cast<long>(o.size());
  if (srcs.empty() || naive_tokens == 0) {
    std::fprintf(stderr, "FAIL: decode comparison measured zero tokens "
                 "(%zu requests)\n", srcs.size());
    return 1;
  }
  if (cached_out != naive_out || batch_out != naive_out) {
    std::fprintf(stderr, "FAIL: engine tokens diverge from the reference path\n");
    return 1;
  }
  // The refactor's headline property is a >=5x speedup (observed: ~40-75x).
  // The exit-code gate sits at 2x: far above anything a working Var-graph
  // path can reach, far below what the KV cache delivers, and slack enough
  // that a scheduler stall during the short cached measurement window on a
  // shared CI runner cannot flake the build.
  constexpr double kRequiredSpeedup = 2.0;
  if (cached_tps < kRequiredSpeedup * naive_tps) {
    std::fprintf(stderr,
                 "FAIL: cached decode (%.1f tok/s) below %.0fx the naive path "
                 "(%.1f tok/s)\n",
                 cached_tps, kRequiredSpeedup, naive_tps);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  const Scale sc = Scale::from_env();
  const char* smoke_env = std::getenv("OTA_TABLE8_SMOKE");
  const bool smoke = smoke_env && std::strcmp(smoke_env, "0") != 0;

  std::printf("=== Table VIII: runtime analysis (scale '%s', %d campaign "
              "workers)%s ===\n",
              sc.name.c_str(), par::resolve_threads(),
              smoke ? " [smoke: decode comparison only]" : "");

  if (smoke) {
    auto& ctx = context("5T-OTA");
    return decode_engine_comparison(ctx, /*requests=*/4, /*max_tokens=*/200);
  }

  std::printf("%-8s %-10s | %-14s %-9s | %-14s %-9s %-7s | %-8s %-6s\n",
              "Topology", "training", "1-iter solved", "avg time",
              "multi solved", "avg time", "iters", "avg sims", "fail");

  for (const char* name : {"5T-OTA", "CM-OTA", "2S-OTA"}) {
    auto& ctx = context(name);
    core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, ctx.model,
                                luts());
    const auto targets =
        core::targets_from_designs(ctx.val, sc.sizing_targets, 0.05, 1801);
    const core::RuntimeStats st = core::runtime_stats(copilot, targets);
    std::printf("%-8s %9.1fs | %6d/%-7d %8.2fs | %7d/%-6d %8.2fs %-7.1f | %-8.2f %-6d\n",
                name, ctx.training_seconds, st.single_iteration, st.total,
                st.avg_single_seconds, st.multi_iteration, st.total,
                st.avg_multi_seconds, st.avg_multi_iterations,
                st.avg_sims_per_design, st.failures);
  }

  int rc = decode_engine_comparison(context("5T-OTA"), /*requests=*/8,
                                    /*max_tokens=*/800);

  std::printf("\n(paper Table VIII: 8.5h/22h/11h training on an L40S GPU;\n"
              " 95/98/90 of 100 designs in one iteration at 36-46s each,\n"
              " remainder in 3-5 iterations; our absolute times reflect the\n"
              " CPU-scale model and minispice substitution)\n");
  return rc;
}
