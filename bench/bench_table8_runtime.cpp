// Table VIII — runtime analysis of training and inference.
//
// Per topology: one-time training duration, single-iteration vs
// multi-iteration success over unseen targets, average wall time, and the
// average number of verification simulations (the paper's headline: >90% of
// designs sized with one simulation).
#include "common.hpp"
#include "par/thread_pool.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  const Scale sc = Scale::from_env();

  std::printf("=== Table VIII: runtime analysis (scale '%s', %d campaign "
              "workers) ===\n",
              sc.name.c_str(), par::resolve_threads());
  std::printf("%-8s %-10s | %-14s %-9s | %-14s %-9s %-7s | %-8s %-6s\n",
              "Topology", "training", "1-iter solved", "avg time",
              "multi solved", "avg time", "iters", "avg sims", "fail");

  for (const char* name : {"5T-OTA", "CM-OTA", "2S-OTA"}) {
    auto& ctx = context(name);
    core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, ctx.model,
                                luts());
    const auto targets =
        core::targets_from_designs(ctx.val, sc.sizing_targets, 0.05, 1801);
    const core::RuntimeStats st = core::runtime_stats(copilot, targets);
    std::printf("%-8s %9.1fs | %6d/%-7d %8.2fs | %7d/%-6d %8.2fs %-7.1f | %-8.2f %-6d\n",
                name, ctx.training_seconds, st.single_iteration, st.total,
                st.avg_single_seconds, st.multi_iteration, st.total,
                st.avg_multi_seconds, st.avg_multi_iterations,
                st.avg_sims_per_design, st.failures);
  }
  std::printf("\n(paper Table VIII: 8.5h/22h/11h training on an L40S GPU;\n"
              " 95/98/90 of 100 designs in one iteration at 36-46s each,\n"
              " remainder in 3-5 iterations; our absolute times reflect the\n"
              " CPU-scale model and minispice substitution)\n");
  return 0;
}
