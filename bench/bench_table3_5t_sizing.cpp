// Table III — target vs optimized specifications, 5T-OTA.
#include "common.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  auto& ctx = context("5T-OTA");
  core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, ctx.model,
                              luts());
  const auto targets = core::targets_from_designs(ctx.val, 3, 0.05, 1301);
  std::vector<core::SizingOutcome> rows;
  for (const auto& t : targets) rows.push_back(copilot.size(t));
  print_sizing_table("=== Table III: 5T-OTA target vs optimized ===", rows);
  std::printf("\n(paper Table III rows, for shape comparison: gain 20.13->20.6,\n"
              " 21.23->21.37, 22.78->22.79 dB with UGF/BW also met)\n");
  return 0;
}
