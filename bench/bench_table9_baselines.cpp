// Table IX — comparison with prior sizing approaches.
//
// Sizes the 5T-OTA for the same unseen targets with simulated annealing,
// PSO, differential evolution, GP-EI Bayesian optimization (WEIBO-like), and
// the transformer+LUT flow, reporting the metric the paper's qualitative
// table is built on: in-loop SPICE dependency, accuracy, and runtime.
#include "baselines/baselines.hpp"
#include "common.hpp"
#include "par/thread_pool.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  const Scale sc = Scale::from_env();
  auto& ctx = context("5T-OTA");

  const int n_targets = std::min(8, sc.sizing_targets);
  const auto targets = core::targets_from_designs(ctx.val, n_targets, 0.05, 1901);

  struct Row {
    std::string method;
    int solved = 0;
    double sims = 0.0;
    double seconds = 0.0;
  };
  std::vector<Row> rows;

  auto run = [&](const std::string& name, auto&& solve) {
    Row row;
    row.method = name;
    for (const auto& t : targets) {
      baselines::SizingProblem problem(circuit::make_5t_ota(tech()), tech(), t);
      const baselines::OptResult r = solve(problem);
      row.solved += r.success ? 1 : 0;
      row.sims += r.simulations;
      row.seconds += r.seconds;
    }
    row.sims /= targets.size();
    row.seconds /= targets.size();
    rows.push_back(row);
  };

  run("SA [4]", [](baselines::SizingProblem& p) {
    baselines::SaOptions o;
    o.max_simulations = 1500;
    return baselines::simulated_annealing(p, o);
  });
  run("PSO [5]", [](baselines::SizingProblem& p) {
    baselines::PsoOptions o;
    o.max_simulations = 1500;
    return baselines::particle_swarm(p, o);
  });
  run("DE [22]", [](baselines::SizingProblem& p) {
    baselines::DeOptions o;
    o.max_simulations = 1500;
    return baselines::differential_evolution(p, o);
  });
  run("WEIBO-like BO [21]", [](baselines::SizingProblem& p) {
    baselines::BoOptions o;
    o.max_simulations = 100;
    return baselines::bayesian_optimization(p, o);
  });

  // Ours: transformer + LUT copilot.
  {
    Row row;
    row.method = "Transformer+LUT (ours)";
    core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, ctx.model,
                                luts());
    for (const auto& t : targets) {
      const core::SizingOutcome o = copilot.size(t);
      row.solved += o.success ? 1 : 0;
      row.sims += o.spice_simulations;
      row.seconds += o.seconds;
    }
    row.sims /= targets.size();
    row.seconds /= targets.size();
    rows.push_back(row);
  }

  std::printf("=== Table IX: comparison with prior approaches (5T-OTA, %d targets, "
              "%d population-eval workers) ===\n",
              n_targets, par::resolve_threads());
  std::printf("%-24s %-10s %-16s %-12s\n", "Method", "solved",
              "avg SPICE sims", "avg runtime");
  for (const auto& r : rows) {
    std::printf("%-24s %4d/%-5d %-16.1f %9.2fs\n", r.method.c_str(), r.solved,
                n_targets, r.sims, r.seconds);
  }
  std::printf("\n(paper Table IX is qualitative: SA/PSO/DE 'very high' SPICE\n"
              " dependency, BO 'high', ours 'very low' — the simulation counts\n"
              " above regenerate that ordering quantitatively; GCN-RL [11] is\n"
              " cited qualitatively in the paper and not reimplemented here)\n");
  return 0;
}
