// Algorithm 1 — width estimation from predicted parameters.
//
// Accuracy of the width round trip across bias and width, an ablation of the
// Vds step factor alpha (the paper's empirically chosen 1e-4), and
// micro-benchmarks of both the gm/Id form and the scan fallback.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "lut/width_estimator.hpp"

namespace {

using namespace ota;

struct Fixture {
  device::Technology tech = device::Technology::default65nm();
  device::MosModel nmos{tech.nmos};
  lut::DeviceLut lut{nmos};

  lut::PredictedParams params(double vgs, double vds, double w) const {
    const auto ss = nmos.evaluate(vgs, vds, w, 180e-9);
    lut::PredictedParams p;
    p.gm = ss.gm;
    p.gds = ss.gds;
    p.cds = ss.cds;
    p.cgs = ss.cgs;
    p.id = ss.id;
    return p;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Algorithm1(benchmark::State& state) {
  auto& f = fixture();
  const auto p = f.params(0.55, 0.7, 8e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut::estimate_width(f.lut, p, f.tech.vdd));
  }
}
BENCHMARK(BM_Algorithm1);

void BM_ScanFallback(benchmark::State& state) {
  auto& f = fixture();
  auto p = f.params(0.55, 0.7, 8e-6);
  p.id.reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut::estimate_width_scan(f.lut, p));
  }
}
BENCHMARK(BM_ScanFallback);

}  // namespace

int main(int argc, char** argv) {
  using namespace ota;
  auto& f = fixture();

  std::printf("=== Algorithm 1: width estimation accuracy ===\n");
  std::printf("%-8s %-8s %-12s %-12s %-10s %-6s\n", "Vgs", "W[um]", "West[um]",
              "rel err", "Vds err", "iters");
  double worst = 0.0;
  for (double vgs : {0.40, 0.50, 0.65, 0.85}) {
    for (double w : {0.7e-6, 5e-6, 50e-6}) {
      const auto est = lut::estimate_width(f.lut, f.params(vgs, 0.73, w), f.tech.vdd);
      const double err = est ? std::fabs(est->width - w) / w : 1.0;
      worst = std::max(worst, err);
      std::printf("%-8.2f %-8.2f %-12.3f %-11.2f%% %-10.3f %-6d\n", vgs, w * 1e6,
                  est ? est->width * 1e6 : 0.0, err * 100,
                  est ? std::fabs(est->vds - 0.73) : -1.0,
                  est ? est->iterations : 0);
    }
  }
  std::printf("worst relative width error: %.2f%%\n", worst * 100);

  std::printf("\nAblation: Vds step factor alpha (paper: 1e-4)\n");
  std::printf("%-10s %-12s %-10s\n", "alpha", "rel err", "iterations");
  for (double alpha : {1e-2, 1e-3, 1e-4, 1e-5}) {
    lut::WidthEstimatorOptions opt;
    opt.alpha = alpha;
    const auto est =
        lut::estimate_width(f.lut, f.params(0.55, 0.9, 10e-6), f.tech.vdd, opt);
    std::printf("%-10.0e %-11.3f%% %-10d\n", alpha,
                est ? std::fabs(est->width - 10e-6) / 10e-6 * 100 : 100.0,
                est ? est->iterations : 0);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
