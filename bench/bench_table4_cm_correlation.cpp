// Table IV — correlation of predicted vs simulated device parameters, CM-OTA.
#include "common.hpp"

int main() {
  using namespace ota::benchsupport;
  auto& ctx = context("CM-OTA");
  const auto rows = ota::core::correlation_table(
      ctx.topology, *ctx.builder, ctx.model, ctx.val,
      Scale::from_env().eval_designs);
  print_correlation_table(
      "=== Table IV: CM-OTA correlation (predicted vs simulated) ===", rows);
  std::printf("\n(paper: 0.60-0.91 across parameters — the CM-OTA is the\n"
              " hardest of the three in the paper as well)\n");
  return 0;
}
