// Fig. 7 — scatter of predicted vs simulation-measured gm and gds (5T-OTA).
//
// Prints the paired series (the paper's scatter plots) in columns plus the
// 45-degree-line statistics: correlation, slope, and mean absolute error.
#include <cmath>

#include "common.hpp"
#include "linalg/stats.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  auto& ctx = context("5T-OTA");
  const int n = std::min(30, Scale::from_env().eval_designs);

  std::printf("=== Fig. 7: predicted vs simulated scatter (5T-OTA) ===\n");
  for (const std::string param : {"gm", "gds"}) {
    for (const std::string device : {"M1", "M3", "M5"}) {
      const auto s = core::scatter_series(*ctx.builder, ctx.model, ctx.val,
                                          device, param, n);
      if (s.measured.size() < 3) {
        std::printf("%s of %s: insufficient predictions\n", param.c_str(),
                    device.c_str());
        continue;
      }
      const double r = linalg::pearson(s.measured, s.predicted);
      // Least-squares slope through the origin: 1.0 means the 45-degree line.
      double num = 0.0, den = 0.0, mae = 0.0;
      for (size_t i = 0; i < s.measured.size(); ++i) {
        num += s.measured[i] * s.predicted[i];
        den += s.measured[i] * s.measured[i];
        mae += std::fabs(s.predicted[i] - s.measured[i]) /
               std::max(s.measured[i], 1e-18);
      }
      std::printf("%-4s of %-3s: n=%-3zu r=%-7.3f slope=%-7.3f mean|rel err|=%5.1f%%\n",
                  param.c_str(), device.c_str(), s.measured.size(), r,
                  num / den, 100.0 * mae / s.measured.size());
    }
  }

  // A few raw pairs of the gm-of-M3 series (the DP device of Fig. 7a).
  const auto s = core::scatter_series(*ctx.builder, ctx.model, ctx.val, "M3",
                                      "gm", 10);
  std::printf("\nsample pairs, gm of M3 (desired -> predicted) [mS]:\n");
  for (size_t i = 0; i < s.measured.size(); ++i) {
    std::printf("  %.3f -> %.3f\n", s.measured[i] * 1e3, s.predicted[i] * 1e3);
  }
  return 0;
}
