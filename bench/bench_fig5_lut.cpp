// Fig. 5 / Section III-D.1 — precomputed LUT generation and accuracy.
//
// Reports LUT build cost (the "one-time characterization"), interpolation
// accuracy versus the analytic device model at off-grid bias points, and an
// ablation of the paper's cubic-spline choice against nearest-grid lookup.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "lut/device_lut.hpp"

namespace {

using namespace ota;

void BM_LutBuild(benchmark::State& state) {
  const auto tech = device::Technology::default65nm();
  const device::MosModel nmos(tech.nmos);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut::DeviceLut(nmos));
  }
}
BENCHMARK(BM_LutBuild);

void BM_LutLookup(benchmark::State& state) {
  const auto tech = device::Technology::default65nm();
  const lut::DeviceLut l{device::MosModel(tech.nmos)};
  double v = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l.lookup(v, 1.2 - v));
    v = 0.3 + std::fmod(v * 1.61803, 0.8);
  }
}
BENCHMARK(BM_LutLookup);

void BM_GmIdInversion(benchmark::State& state) {
  const auto tech = device::Technology::default65nm();
  const lut::DeviceLut l{device::MosModel(tech.nmos)};
  double g = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l.find_vgs_for_gmid(g, 0.6));
    g = 5.0 + std::fmod(g * 1.61803, 20.0);
  }
}
BENCHMARK(BM_GmIdInversion);

}  // namespace

int main(int argc, char** argv) {
  using namespace ota;
  const auto tech = device::Technology::default65nm();
  const device::MosModel nmos(tech.nmos);
  const lut::DeviceLut l{nmos};

  std::printf("=== Fig. 5: LUT generation & accuracy ===\n");
  std::printf("grid: %zu x %zu (0..1.2V, 60mV step), Wref=700nm, L=180nm\n",
              l.vgs_axis().size(), l.vds_axis().size());

  // Accuracy of spline interpolation vs direct model, and vs nearest-grid.
  double worst_spline = 0.0, worst_nearest = 0.0;
  const double step = l.options().v_step;
  for (double vgs = 0.35; vgs <= 1.15; vgs += 0.0137) {
    for (double vds = 0.2; vds <= 1.15; vds += 0.0119) {
      const auto ref = nmos.evaluate(vgs, vds, l.options().wref, l.options().l);
      const double ref_gm = ref.gm / l.options().wref;
      if (ref_gm < 1e-3) continue;
      const double spline = l.lookup(vgs, vds).gm;
      const size_t gi = static_cast<size_t>(std::round(vgs / step));
      const size_t gj = static_cast<size_t>(std::round(vds / step));
      const double nearest = l.grid_entry(gi, gj).gm;
      worst_spline = std::max(worst_spline, std::fabs(spline - ref_gm) / ref_gm);
      worst_nearest = std::max(worst_nearest, std::fabs(nearest - ref_gm) / ref_gm);
    }
  }
  std::printf("%-34s %10s\n", "interpolation", "max rel err (gm)");
  std::printf("%-34s %9.3f%%\n", "cubic spline (paper's choice)", worst_spline * 100);
  std::printf("%-34s %9.3f%%\n", "nearest grid point (ablation)", worst_nearest * 100);

  std::printf("\nSample LUT rows (per-um width):\n");
  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s %-12s\n", "Vgs", "Vds", "Id[A/um]",
              "gm[S/um]", "gds[S/um]", "Cds[F/um]", "Cgs[F/um]");
  for (double vgs : {0.36, 0.48, 0.60, 0.84}) {
    const auto e = l.lookup(vgs, 0.6);
    std::printf("%-8.2f %-8.2f %-12.3e %-12.3e %-12.3e %-12.3e %-12.3e\n", vgs,
                0.6, e.id * 1e-6, e.gm * 1e-6, e.gds * 1e-6, e.cds * 1e-6,
                e.cgs * 1e-6);
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
