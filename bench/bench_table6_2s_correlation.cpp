// Table VI — correlation of predicted vs simulated device parameters, 2S-OTA.
#include "common.hpp"

int main() {
  using namespace ota::benchsupport;
  auto& ctx = context("2S-OTA");
  const auto rows = ota::core::correlation_table(
      ctx.topology, *ctx.builder, ctx.model, ctx.val,
      Scale::from_env().eval_designs);
  print_correlation_table(
      "=== Table VI: 2S-OTA correlation (predicted vs simulated) ===", rows);
  std::printf("\n(paper: 0.785-0.989 across parameters at GPU scale)\n");
  return 0;
}
