// Fault storm: end-to-end failure recovery for the serving path.
//
// Drives the campaign server through deterministic fault injection
// (ota::fault) with a storm spec spanning three layers — serve (worker
// pickup), core (Stage-II predict submit), ml (a mid-decode session step) —
// under concurrent load, then a degradation spec in the numerics (spice
// Newton rungs + LU factorization) that the gmin ladder and Stage-IV hard-miss
// handling must absorb without a single campaign failing.
//
// Gates, enforced through the exit code:
//
//  * storm accounting (always, incl. smoke) — every submitted job resolves
//    exactly once: served + failed == submitted, cancelled == 0.  The three
//    once-faults each fire exactly once (the storm really spanned serve, core
//    and ml), the two permanent faults fail exactly their own campaign
//    (failed == 2), and the transient ConvergenceError is retried within
//    budget (retried == 1) — with the retry recovering unless a later fault
//    lands on the re-run (recovered <= 1);
//  * storm bit-identity (always) — every campaign the storm did NOT touch is
//    bit-identical to the fault-free serial copilot, per index;
//  * post-storm health (always) — after fault::clear() the SAME server
//    serves a probe campaign bit-identically: no worker died, no state leaked;
//  * degradation determinism (always) — with `spice.dc.newton:every=7;
//    linalg.lu.factor:every=101` installed, a serial copilot pass and a
//    1-worker server pass produce bit-identical outcomes, zero failed
//    campaigns (the ladder + hard-miss paths absorb everything), and
//    identical per-site hit/fired counters — the firing stream is a pure
//    function of the hit index, not of which thread got there.
//
// OTA_FAULT_SMOKE=1 shrinks the dataset/model and campaign count; the
// Release CI job runs that mode.  Results are written as JSON (path from
// OTA_BENCH_JSON, default BENCH_fault.json) for scripts/bench_snapshot.sh.
//
// OTA_CHAOS_ROUNDS=N (the nightly chaos job) appends a fourth pass: N rounds
// of a randomized `prob=` spec across all seven fault sites at once
// (OTA_CHAOS_PROB, default 0.02; per-round deterministic seeds derived from
// OTA_CHAOS_SEED), gated on exactly-once accounting per round and a
// fault-free bit-identical probe after the last round.
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/fault.hpp"
#include "core/dataset.hpp"
#include "serve/campaign_server.hpp"

namespace {

bool same_outcome(const ota::core::SizingOutcome& a,
                  const ota::core::SizingOutcome& b) {
  return a.success == b.success && a.iterations == b.iterations &&
         a.spice_simulations == b.spice_simulations && a.widths == b.widths &&
         a.predicted == b.predicted &&
         a.achieved.gain_db == b.achieved.gain_db &&
         a.achieved.bw_hz == b.achieved.bw_hz &&
         a.achieved.ugf_hz == b.achieved.ugf_hz;
}

// The storm: one permanent fault at worker pickup (serve layer), one
// transient ConvergenceError at the Stage-II predict submit (core layer,
// recovered by the server's bounded retry), one permanent fault inside a
// decode step (ml layer, surfaced through the scheduler ticket).
constexpr const char* kStormSpec =
    "serve.worker.campaign:once=2;"
    "core.predict.submit:once=5;"
    "ml.session.step:once=29";

// The degradation spec: numerics-layer faults the recovery ladders absorb.
constexpr const char* kDegradeSpec =
    "spice.dc.newton:every=7;linalg.lu.factor:every=101";

}  // namespace

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  using Clock = std::chrono::steady_clock;
  const char* smoke_env = std::getenv("OTA_FAULT_SMOKE");
  const bool smoke = smoke_env && std::strcmp(smoke_env, "0") != 0;
  const Scale sc = Scale::from_env();

  std::printf("=== Fault storm: deterministic fault injection across the "
              "serving path (scale '%s'%s) ===\n",
              sc.name.c_str(), smoke ? ", smoke" : "");
  fault::clear();  // the reference passes below must be fault-free

  // One deterministic dataset + model shared by every pass.
  auto topo = circuit::make_topology("5T-OTA", tech());
  core::DataGenOptions gopt;
  gopt.target_designs = smoke ? 60 : 200;
  gopt.max_attempts = gopt.target_designs * 200;
  gopt.seed = 2024;
  const core::Dataset ds = core::generate_dataset(
      topo, tech(), core::SpecRange::for_topology("5T-OTA"), gopt);
  const core::SequenceBuilder builder(topo, tech());
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(ds.designs.size());
  for (const auto& d : ds.designs) {
    pairs.emplace_back(builder.encoder_text(d.specs), builder.decoder_text(d));
  }

  core::TrainOptions topt;
  topt.seed = 17;
  if (smoke) {
    topt.epochs = 2;
    topt.d_model = 32;
    topt.d_ff = 64;
    topt.bpe_merges = 128;
  } else {
    topt.epochs = 4;
    topt.d_model = sc.d_model;
    topt.n_heads = sc.n_heads;
    topt.n_layers = sc.n_layers;
    topt.d_ff = sc.d_ff;
  }
  auto model = std::make_shared<core::SizingModel>();
  std::fprintf(stderr, "[bench] training the shared 5T-OTA model...\n");
  model->train(pairs, topt);
  const auto lut_set =
      std::make_shared<const core::LutSet>(benchsupport::luts());

  const int n_campaigns = smoke ? 12 : 24;
  const auto targets = core::targets_from_designs(ds.designs, n_campaigns, 0.06, 17);
  core::CopilotOptions copt;
  copt.max_iterations = 3;
  copt.max_decode_tokens = smoke ? 96 : 192;

  // Pass 1: fault-free serial reference — the bit-identity baseline for
  // every survivor in the storm and for the post-storm probe.
  std::fprintf(stderr, "[bench] fault-free serial reference (%d campaigns)...\n",
               n_campaigns);
  std::vector<core::SizingOutcome> reference;
  {
    core::SizingCopilot copilot(topo, tech(), builder, *model, *lut_set);
    for (const auto& t : targets) reference.push_back(copilot.size(t, copt));
  }

  // Pass 2: the storm.  8 workers, retry budget 2, the three-layer spec.
  std::fprintf(stderr, "[bench] storm pass (spec '%s')...\n", kStormSpec);
  serve::CampaignServer::Options sopt;
  sopt.workers = 8;
  sopt.max_retries = 2;
  serve::CampaignServer server(sopt);
  server.register_topology("5T-OTA", topo, tech(), model, lut_set);

  fault::install_spec(kStormSpec);
  std::vector<std::shared_ptr<serve::CampaignServer::Job>> jobs;
  const auto storm_t0 = Clock::now();
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, copt}));

  bool survivors_identical = true;
  uint64_t storm_served = 0, storm_failed = 0, storm_cancelled = 0;
  int total_job_retries = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const serve::CampaignResult& res = jobs[i]->wait();  // resolves exactly once
    total_job_retries += res.retries;
    switch (res.status) {
      case serve::CampaignStatus::Served:
        ++storm_served;
        if (!same_outcome(res.outcome, reference[i])) {
          survivors_identical = false;
          std::fprintf(stderr, "DIVERGED: surviving campaign %zu\n", i);
        }
        break;
      case serve::CampaignStatus::Failed:
        ++storm_failed;
        std::fprintf(stderr, "[bench] campaign %zu failed (expected): %s\n", i,
                     res.error.c_str());
        break;
      case serve::CampaignStatus::Cancelled:
        ++storm_cancelled;
        break;
    }
  }
  const double storm_seconds =
      std::chrono::duration<double>(Clock::now() - storm_t0).count();
  const auto storm_site_stats = fault::stats();
  fault::clear();

  // Every once-fault must have fired exactly once — the storm really did
  // span the serve, core and ml layers.
  bool storm_spanned_layers = true;
  for (const char* site : {"serve.worker.campaign", "core.predict.submit",
                           "ml.session.step"}) {
    const auto it = storm_site_stats.find(site);
    const uint64_t fired = it == storm_site_stats.end() ? 0 : it->second.fired;
    std::printf("storm site %-24s hits %6llu  fired %llu\n", site,
                static_cast<unsigned long long>(
                    it == storm_site_stats.end() ? 0 : it->second.hits),
                static_cast<unsigned long long>(fired));
    if (fired != 1) storm_spanned_layers = false;
  }

  // Post-storm health: the same server, faults cleared, serves a probe
  // campaign bit-identically.  No worker died, no poisoned state survived.
  auto probe = server.submit({"5T-OTA", targets[0], copt});
  const serve::CampaignResult& probe_res = probe->wait();
  const bool post_storm_healthy =
      probe_res.status == serve::CampaignStatus::Served &&
      same_outcome(probe_res.outcome, reference[0]);
  const auto stats = server.stats();
  server.shutdown();

  const bool storm_accounted =
      stats.submitted == static_cast<uint64_t>(n_campaigns) + 1 &&
      storm_cancelled == 0 && stats.cancelled == 0 &&
      storm_served + storm_failed == static_cast<uint64_t>(n_campaigns) &&
      storm_failed == 2 && stats.failed == 2 &&
      stats.retried == 1 && total_job_retries == 1 && stats.recovered <= 1;

  std::printf("storm: %d campaigns + 1 probe -> %llu served, %llu failed, "
              "%llu cancelled; retried %llu, recovered %llu (%.2fs)\n",
              n_campaigns, static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.retried),
              static_cast<unsigned long long>(stats.recovered), storm_seconds);
  std::printf("survivors: %s; post-storm probe: %s\n",
              survivors_identical ? "bit-identical to serial copilot"
                                  : "DIVERGED",
              post_storm_healthy ? "served bit-identically" : "UNHEALTHY");

  // Pass 3: degradation — numerics faults the recovery ladders absorb.  The
  // same spec drives a serial copilot and a 1-worker server; outcomes and
  // per-site counters must agree exactly (1 worker => identical hit order).
  const int n_degrade = smoke ? 6 : 10;
  std::fprintf(stderr, "[bench] degradation pass (spec '%s', %d campaigns)...\n",
               kDegradeSpec, n_degrade);
  std::vector<core::SizingOutcome> degrade_serial;
  fault::install_spec(kDegradeSpec);
  {
    core::SizingCopilot copilot(topo, tech(), builder, *model, *lut_set);
    for (int i = 0; i < n_degrade; ++i) {
      degrade_serial.push_back(copilot.size(targets[static_cast<size_t>(i)], copt));
    }
  }
  const auto degrade_serial_stats = fault::stats();
  fault::clear();

  serve::CampaignServer::Options dopt_server;
  dopt_server.workers = 1;  // sequential pickups: hit order matches serial
  serve::CampaignServer degrade_server(dopt_server);
  degrade_server.register_topology("5T-OTA", topo, tech(), model, lut_set);
  fault::install_spec(kDegradeSpec);  // fresh counters, same stream
  std::vector<std::shared_ptr<serve::CampaignServer::Job>> degrade_jobs;
  for (int i = 0; i < n_degrade; ++i) {
    degrade_jobs.push_back(
        degrade_server.submit({"5T-OTA", targets[static_cast<size_t>(i)], copt}));
  }
  bool degrade_identical = true;
  uint64_t degrade_failed = 0;
  for (size_t i = 0; i < degrade_jobs.size(); ++i) {
    const serve::CampaignResult& res = degrade_jobs[i]->wait();
    if (res.status != serve::CampaignStatus::Served) {
      ++degrade_failed;
      std::fprintf(stderr, "FAIL: degraded campaign %zu not served: %s\n", i,
                   res.error.c_str());
    } else if (!same_outcome(res.outcome, degrade_serial[i])) {
      degrade_identical = false;
      std::fprintf(stderr, "DIVERGED: degraded campaign %zu\n", i);
    }
  }
  const auto degrade_server_stats = fault::stats();
  fault::clear();
  degrade_server.shutdown();

  bool degrade_counters_match = true;
  for (const char* site : {"spice.dc.newton", "linalg.lu.factor"}) {
    const auto a = degrade_serial_stats.find(site);
    const auto b = degrade_server_stats.find(site);
    const uint64_t a_hits = a == degrade_serial_stats.end() ? 0 : a->second.hits;
    const uint64_t a_fired = a == degrade_serial_stats.end() ? 0 : a->second.fired;
    const uint64_t b_hits = b == degrade_server_stats.end() ? 0 : b->second.hits;
    const uint64_t b_fired = b == degrade_server_stats.end() ? 0 : b->second.fired;
    std::printf("degrade site %-18s serial %llu/%llu  server %llu/%llu "
                "(fired/hits)\n", site,
                static_cast<unsigned long long>(a_fired),
                static_cast<unsigned long long>(a_hits),
                static_cast<unsigned long long>(b_fired),
                static_cast<unsigned long long>(b_hits));
    if (a_hits != b_hits || a_fired != b_fired || a_fired == 0) {
      degrade_counters_match = false;
    }
  }
  const bool degrade_absorbed = degrade_failed == 0 && degrade_identical;
  std::printf("degradation: %llu/%d failed, outcomes %s, counters %s\n",
              static_cast<unsigned long long>(degrade_failed), n_degrade,
              degrade_identical ? "bit-identical" : "DIVERGED",
              degrade_counters_match ? "matched" : "MISMATCHED");

  // Pass 4 (opt-in, the nightly chaos schedule): many rounds of a randomized
  // prob= spec across every fault site at once, against one long-lived
  // server.  Per-round seeds keep each round's firing set deterministic and
  // reproducible from (OTA_CHAOS_SEED, round); the gate is exactly-once
  // accounting every round plus a fault-free bit-identical probe at the end
  // — chaos may fail campaigns, it may never lose or double-count one, and
  // the server must come out of hours of it still serving correct answers.
  const int chaos_rounds = [] {
    const char* env = std::getenv("OTA_CHAOS_ROUNDS");
    return env && *env ? std::atoi(env) : 0;
  }();
  const double chaos_prob = [] {
    const char* env = std::getenv("OTA_CHAOS_PROB");
    return env && *env ? std::atof(env) : 0.02;
  }();
  const uint64_t chaos_seed = [] {
    const char* env = std::getenv("OTA_CHAOS_SEED");
    return env && *env ? std::strtoull(env, nullptr, 10) : uint64_t{2025};
  }();
  uint64_t chaos_served = 0, chaos_failed = 0, chaos_cancelled = 0;
  bool chaos_probe_healthy = true;
  bool chaos_accounted = true;
  constexpr int kChaosPerRound = 4;
  if (chaos_rounds > 0) {
    constexpr const char* kChaosSites[] = {
        "linalg.lu.factor",   "spice.dc.newton",      "ml.session.encode",
        "ml.session.step",    "ml.scheduler.round",   "core.predict.submit",
        "serve.worker.campaign"};
    std::fprintf(stderr,
                 "[bench] chaos schedule: %d rounds x %d campaigns, prob "
                 "%.3g over %zu sites, seed %llu...\n",
                 chaos_rounds, kChaosPerRound, chaos_prob,
                 sizeof kChaosSites / sizeof kChaosSites[0],
                 static_cast<unsigned long long>(chaos_seed));
    serve::CampaignServer::Options chopt;
    chopt.workers = 4;
    chopt.max_retries = 2;
    serve::CampaignServer chaos_server(chopt);
    chaos_server.register_topology("5T-OTA", topo, tech(), model, lut_set);
    for (int r = 0; r < chaos_rounds; ++r) {
      std::string spec;
      size_t site_idx = 0;
      for (const char* site : kChaosSites) {
        char entry[128];
        std::snprintf(entry, sizeof entry, "%s%s:prob=%g@%llu",
                      spec.empty() ? "" : ";", site, chaos_prob,
                      static_cast<unsigned long long>(
                          chaos_seed + static_cast<uint64_t>(r) * 7919 +
                          site_idx * 131));
        spec += entry;
        ++site_idx;
      }
      fault::install_spec(spec);
      std::vector<std::shared_ptr<serve::CampaignServer::Job>> round_jobs;
      for (int i = 0; i < kChaosPerRound; ++i) {
        const size_t target_idx = static_cast<size_t>(
            (r * kChaosPerRound + i) % n_campaigns);
        round_jobs.push_back(
            chaos_server.submit({"5T-OTA", targets[target_idx], copt}));
      }
      for (auto& job : round_jobs) {
        switch (job->wait().status) {
          case serve::CampaignStatus::Served: ++chaos_served; break;
          case serve::CampaignStatus::Failed: ++chaos_failed; break;
          case serve::CampaignStatus::Cancelled: ++chaos_cancelled; break;
        }
      }
      fault::clear();
    }
    // Faults cleared: the same server must still serve bit-identically.
    auto chaos_probe = chaos_server.submit({"5T-OTA", targets[0], copt});
    const serve::CampaignResult& cres = chaos_probe->wait();
    chaos_probe_healthy = cres.status == serve::CampaignStatus::Served &&
                          same_outcome(cres.outcome, reference[0]);
    const auto cstats = chaos_server.stats();
    chaos_server.shutdown();
    const uint64_t expected =
        static_cast<uint64_t>(chaos_rounds) * kChaosPerRound + 1;
    chaos_accounted =
        cstats.submitted == expected && chaos_cancelled == 0 &&
        cstats.served + cstats.failed + cstats.cancelled == cstats.submitted;
    std::printf("chaos: %d rounds x %d -> %llu served, %llu failed, %llu "
                "cancelled; probe %s\n",
                chaos_rounds, kChaosPerRound,
                static_cast<unsigned long long>(chaos_served),
                static_cast<unsigned long long>(chaos_failed),
                static_cast<unsigned long long>(chaos_cancelled),
                chaos_probe_healthy ? "healthy" : "UNHEALTHY");
  }

  JsonObject out;
  out.str("bench", "fault_storm")
      .str("scale", sc.name)
      .boolean("smoke", smoke)
      .str("storm_spec", kStormSpec)
      .num("campaigns", n_campaigns)
      .num("storm_seconds", storm_seconds, "%.3f")
      .num("served", stats.served)
      .num("failed", stats.failed)
      .num("retried", stats.retried)
      .num("recovered", stats.recovered)
      .boolean("survivors_bit_identical", survivors_identical)
      .boolean("post_storm_healthy", post_storm_healthy)
      .num("degrade_campaigns", n_degrade)
      .num("degrade_failed", degrade_failed)
      .boolean("degrade_bit_identical", degrade_identical)
      .boolean("degrade_counters_match", degrade_counters_match);
  if (chaos_rounds > 0) {
    out.num("chaos_rounds", chaos_rounds)
        .num("chaos_campaigns_per_round", kChaosPerRound)
        .num("chaos_prob", chaos_prob, "%g")
        .num("chaos_served", chaos_served)
        .num("chaos_failed", chaos_failed)
        .num("chaos_cancelled", chaos_cancelled)
        .boolean("chaos_accounted", chaos_accounted)
        .boolean("chaos_probe_healthy", chaos_probe_healthy);
  }
  write_bench_json("BENCH_fault.json", out);

  int rc = 0;
  if (!storm_spanned_layers) {
    std::fprintf(stderr, "FAIL: a storm fault did not fire exactly once\n");
    rc = 1;
  }
  if (!storm_accounted) {
    std::fprintf(stderr, "FAIL: storm accounting broke exactly-once "
                 "(submitted %llu, served %llu, failed %llu, cancelled %llu, "
                 "retried %llu)\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.served),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.cancelled),
                 static_cast<unsigned long long>(stats.retried));
    rc = 1;
  }
  if (!survivors_identical) {
    std::fprintf(stderr, "FAIL: a surviving campaign diverged from the serial "
                 "copilot\n");
    rc = 1;
  }
  if (!post_storm_healthy) {
    std::fprintf(stderr, "FAIL: the server did not serve bit-identically "
                 "after the storm cleared\n");
    rc = 1;
  }
  if (!degrade_absorbed) {
    std::fprintf(stderr, "FAIL: the numerics recovery ladders let a degraded "
                 "campaign fail or diverge\n");
    rc = 1;
  }
  if (!degrade_counters_match) {
    std::fprintf(stderr, "FAIL: per-site fault counters diverged between the "
                 "serial and server degradation passes\n");
    rc = 1;
  }
  if (chaos_rounds > 0 && !chaos_accounted) {
    std::fprintf(stderr, "FAIL: chaos accounting broke exactly-once\n");
    rc = 1;
  }
  if (chaos_rounds > 0 && !chaos_probe_healthy) {
    std::fprintf(stderr, "FAIL: the server did not serve bit-identically "
                 "after the chaos schedule\n");
    rc = 1;
  }
  return rc;
}
