// Fig. 2 — the active-inductor DP-SFG running example.
//
// Reports the graph structure and the Mason-vs-MNA agreement the DP-SFG
// methodology rests on, plus micro-benchmarks for graph construction, path
// enumeration, and Mason evaluation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuit/topologies.hpp"
#include "sfg/mason.hpp"
#include "sfg/sequence.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"

namespace {

using namespace ota;

struct Fixture {
  device::Technology tech = device::Technology::default65nm();
  circuit::ActiveInductor ai = circuit::make_active_inductor(tech);
  spice::DcSolution dc = spice::solve_dc(ai.netlist, tech);
  std::map<std::string, device::SmallSignal> devices =
      spice::small_signal_map(ai.netlist, tech, dc);
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_BuildDpSfg(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sfg::DpSfg::build(f.ai.netlist, f.devices, f.ai.output_node));
  }
}
BENCHMARK(BM_BuildDpSfg);

void BM_EnumeratePathsAndCycles(benchmark::State& state) {
  auto& f = fixture();
  const auto g = sfg::DpSfg::build(f.ai.netlist, f.devices, f.ai.output_node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfg::collect_paths(g));
  }
}
BENCHMARK(BM_EnumeratePathsAndCycles);

void BM_MasonTransfer(benchmark::State& state) {
  auto& f = fixture();
  const auto g = sfg::DpSfg::build(f.ai.netlist, f.devices, f.ai.output_node);
  const sfg::MasonEvaluator mason(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mason.transfer(1e8));
  }
}
BENCHMARK(BM_MasonTransfer);

void BM_MnaAcSolve(benchmark::State& state) {
  auto& f = fixture();
  const spice::AcAnalysis ac(f.ai.netlist, f.tech, f.dc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.transfer(1e8, f.ai.output_node));
  }
}
BENCHMARK(BM_MnaAcSolve);

}  // namespace

int main(int argc, char** argv) {
  using namespace ota;
  auto& f = fixture();
  const auto g = sfg::DpSfg::build(f.ai.netlist, f.devices, f.ai.output_node);
  const auto paths = sfg::collect_paths(g);
  std::printf("=== Fig. 2: active-inductor DP-SFG ===\n");
  std::printf("vertices=%zu edges=%zu forward_paths=%zu cycles=%zu\n",
              g.vertices().size(), g.edges().size(), paths.forward.size(),
              paths.cycles.size());
  for (const auto& line : sfg::render_lines(g, paths, sfg::RenderMode::Symbolic)) {
    std::printf("  %s\n", line.c_str());
  }
  const sfg::MasonEvaluator mason(g);
  const spice::AcAnalysis ac(f.ai.netlist, f.tech, f.dc);
  double worst = 0.0;
  for (double fr = 1.0; fr <= 1e11; fr *= 10.0) {
    const auto a = ac.transfer(fr, f.ai.output_node);
    const auto b = mason.transfer(fr);
    worst = std::max(worst, std::abs(a - b) / std::abs(a));
  }
  std::printf("max |Mason - MNA| relative error over 1 Hz..100 GHz: %.2e\n\n",
              worst);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
