// Training-throughput sweep for the data-parallel trainer.
//
// Trains the same SizingModel on the same 5T-OTA corpus at 1/2/4/8 worker
// threads and reports examples/sec per worker count.  Two hard gates, both
// enforced through the exit code:
//
//  * determinism — every run's per-epoch loss trajectory and final weights
//    must be bit-identical to the serial run's (the DataParallelTrainer
//    contract: thread count is a pure performance knob);
//  * throughput — the 4-thread run must clear 2x the serial examples/sec
//    (skipped in smoke mode, where CI runners make timing untrustworthy).
//
// OTA_TRAIN_SMOKE=1 shrinks the corpus/model and sweeps {1, 4} only; the
// Release CI job runs that mode.  Results are also written as JSON (path
// from OTA_BENCH_JSON, default BENCH_train.json) so scripts/bench_snapshot.sh
// can archive the perf trajectory.
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/dataset.hpp"
#include "core/sequence_builder.hpp"
#include "par/thread_pool.hpp"

namespace {

struct Run {
  int threads = 0;
  double seconds = 0.0;
  double examples_per_sec = 0.0;
  double speedup = 1.0;
};

}  // namespace

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  const char* smoke_env = std::getenv("OTA_TRAIN_SMOKE");
  const bool smoke = smoke_env && std::strcmp(smoke_env, "0") != 0;
  const Scale sc = Scale::from_env();

  std::printf("=== Training runtime: data-parallel SizingModel::train "
              "(scale '%s'%s) ===\n",
              sc.name.c_str(), smoke ? ", smoke" : "");

  // One deterministic corpus shared by every run.
  auto topo = circuit::make_topology("5T-OTA", tech());
  core::DataGenOptions gopt;
  gopt.target_designs = smoke ? 60 : 200;
  gopt.max_attempts = gopt.target_designs * 200;
  gopt.seed = 2024;
  const core::Dataset ds = core::generate_dataset(
      topo, tech(), core::SpecRange::for_topology("5T-OTA"), gopt);
  const core::SequenceBuilder builder(topo, tech());
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(ds.designs.size());
  for (const auto& d : ds.designs) {
    pairs.emplace_back(builder.encoder_text(d.specs), builder.decoder_text(d));
  }

  core::TrainOptions topt;
  topt.seed = 17;
  if (smoke) {
    topt.epochs = 2;
    topt.d_model = 32;
    topt.d_ff = 64;
    topt.bpe_merges = 128;
  } else {
    topt.epochs = 4;
    topt.d_model = sc.d_model;
    topt.n_heads = sc.n_heads;
    topt.n_layers = sc.n_layers;
    topt.d_ff = sc.d_ff;
  }
  const double trained_examples =
      static_cast<double>(topt.epochs) *
      (1.0 - topt.val_fraction) * static_cast<double>(pairs.size());

  const std::vector<int> sweep = smoke ? std::vector<int>{1, 4}
                                       : std::vector<int>{1, 2, 4, 8};
  std::vector<Run> runs;
  std::vector<std::vector<double>> serial_weights;
  std::vector<double> serial_train_loss, serial_val_loss;
  bool bit_identical = true;

  std::printf("%8s %10s %14s %9s  %s\n", "threads", "seconds", "examples/s",
              "speedup", "trajectory");
  for (int t : sweep) {
    core::TrainOptions opt = topt;
    opt.threads = t;
    core::SizingModel model;
    const core::TrainHistory hist = model.train(pairs, opt);

    Run run;
    run.threads = t;
    run.seconds = hist.seconds;
    run.examples_per_sec =
        hist.seconds > 0.0 ? trained_examples / hist.seconds : 0.0;

    bool identical = true;
    if (runs.empty()) {
      for (const auto& p : model.transformer().parameters()) {
        serial_weights.push_back(p->value.data());
      }
      serial_train_loss = hist.train_loss;
      serial_val_loss = hist.val_loss;
    } else {
      run.speedup = run.examples_per_sec / runs[0].examples_per_sec;
      identical = hist.train_loss == serial_train_loss &&
                  hist.val_loss == serial_val_loss;
      const auto& params = model.transformer().parameters();
      identical = identical && params.size() == serial_weights.size();
      for (size_t i = 0; identical && i < params.size(); ++i) {
        identical = params[i]->value.data() == serial_weights[i];
      }
      bit_identical = bit_identical && identical;
    }
    std::printf("%8d %9.2fs %14.1f %8.2fx  %s\n", t, run.seconds,
                run.examples_per_sec, run.speedup,
                runs.empty() ? "(reference)"
                             : (identical ? "bit-identical" : "DIVERGED"));
    runs.push_back(run);
  }

  std::vector<benchsupport::JsonObject> run_rows;
  for (const auto& r : runs) {
    run_rows.push_back(benchsupport::JsonObject()
                           .num("threads", r.threads)
                           .num("seconds", r.seconds, "%.3f")
                           .num("examples_per_sec", r.examples_per_sec, "%.2f")
                           .num("speedup", r.speedup, "%.3f"));
  }
  write_bench_json("BENCH_train.json",
                   benchsupport::JsonObject()
                       .str("bench", "train_runtime")
                       .str("scale", sc.name)
                       .boolean("smoke", smoke)
                       .num("corpus_pairs", pairs.size())
                       .num("epochs", topt.epochs)
                       .num("batch_size", topt.batch_size)
                       .boolean("bit_identical", bit_identical)
                       .array("runs", std::move(run_rows)));

  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: parallel training diverged from the serial "
                 "trajectory\n");
    return 1;
  }
  if (!smoke && par::hardware_threads() >= 4) {
    // The exit-code gate sits at 2x for the 4-thread run: the sweep above
    // typically lands near-linear until the batch size caps the parallelism,
    // so 2x leaves room for scheduler noise without letting a serialization
    // regression through.  On hosts with fewer than 4 hardware threads a
    // speedup is physically impossible — the sweep still runs (the
    // bit-identity gate above is what matters there) but the timing floor
    // is not enforced.
    constexpr double kRequiredSpeedup = 2.0;
    for (const Run& run : runs) {
      if (run.threads >= 4 && run.speedup < kRequiredSpeedup) {
        std::fprintf(stderr,
                     "FAIL: %d-thread training speedup %.2fx below the %.0fx "
                     "floor\n",
                     run.threads, run.speedup, kRequiredSpeedup);
        return 1;
      }
    }
  } else if (!smoke) {
    std::printf("(only %d hardware thread(s): throughput floor not enforced)\n",
                par::hardware_threads());
  }
  return 0;
}
