// Inference precision tiers: double reference vs the float32 SIMD tier.
//
// Trains one deterministic 5T-OTA sizing model, then decodes the same probe
// batch through both of the engine's numeric tiers and reports tokens/sec
// for each.  The float32 tier exists to halve decode memory traffic (same
// fused weight layout, half the bytes per element, SIMD row kernels); this
// bench is its gatekeeper:
//
//  * agreement (always, incl. smoke) — the float32 tier's token streams
//    must be IDENTICAL, token for token, to the double tier's on the
//    trained model.  Any divergence is a hard failure: the fast tier is
//    only allowed to exist while it is observationally equivalent.
//  * determinism (always, incl. smoke) — each tier decoded twice must be
//    bit-identical run to run.
//  * speedup (not in smoke) — the float32 tier must clear 1.3x the double
//    tier's tokens/sec on this host.  Smoke mode (OTA_INFER_TIER_SMOKE=1,
//    the Release CI job) still measures and reports the ratio but only
//    gates agreement/determinism: a tiny smoke model fits whole in cache,
//    so the memory-traffic half of the win is not representative there.
//
// Results are written as JSON (path from OTA_BENCH_JSON, default
// BENCH_infer.json) for scripts/bench_snapshot.sh.
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/dataset.hpp"
#include "ml/infer.hpp"
#include "ml/precision.hpp"

namespace {

/// Steps actually executed for one greedy decode: one per emitted token,
/// plus the step that produced EOS when the budget did not run out first.
int64_t steps_of(const std::vector<std::vector<ota::nlp::TokenId>>& outs,
                 int64_t budget) {
  int64_t steps = 0;
  for (const auto& o : outs) {
    const int64_t len = static_cast<int64_t>(o.size());
    steps += len < budget ? len + 1 : len;
  }
  return steps;
}

}  // namespace

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  using Clock = std::chrono::steady_clock;
  const char* smoke_env = std::getenv("OTA_INFER_TIER_SMOKE");
  const bool smoke = smoke_env && std::strcmp(smoke_env, "0") != 0;
  const Scale sc = Scale::from_env();

  std::printf("=== Inference tiers: double reference vs float32 SIMD "
              "(scale '%s'%s) ===\n",
              sc.name.c_str(), smoke ? ", smoke" : "");

  // One deterministic dataset + model; the probe targets come from the same
  // distribution the model trained on, so the decodes are realistic decoder
  // sequences, not noise.
  auto topo = circuit::make_topology("5T-OTA", tech());
  core::DataGenOptions gopt;
  gopt.target_designs = smoke ? 60 : 200;
  gopt.max_attempts = gopt.target_designs * 200;
  gopt.seed = 2024;
  const core::Dataset ds = core::generate_dataset(
      topo, tech(), core::SpecRange::for_topology("5T-OTA"), gopt);
  const core::SequenceBuilder builder(topo, tech());
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(ds.designs.size());
  for (const auto& d : ds.designs) {
    pairs.emplace_back(builder.encoder_text(d.specs), builder.decoder_text(d));
  }

  core::TrainOptions topt;
  topt.seed = 17;
  if (smoke) {
    topt.epochs = 2;
    topt.d_model = 32;
    topt.d_ff = 64;
    topt.bpe_merges = 128;
  } else {
    topt.epochs = 4;
    topt.d_model = sc.d_model;
    topt.n_heads = sc.n_heads;
    topt.n_layers = sc.n_layers;
    topt.d_ff = sc.d_ff;
  }
  core::SizingModel model;
  std::fprintf(stderr, "[bench] training the 5T-OTA model...\n");
  model.train(pairs, topt);
  const ml::InferenceEngine& engine = model.engine();

  const int n_probes = smoke ? 8 : 16;
  const int64_t max_tokens = smoke ? 96 : 256;
  const auto targets = core::targets_from_designs(ds.designs, n_probes, 0.06, 17);
  std::vector<std::vector<nlp::TokenId>> srcs;
  srcs.reserve(targets.size());
  for (const auto& t : targets) {
    srcs.push_back(model.tokenizer().encode(builder.encoder_text(t)));
  }

  // Gate 1: token agreement.  The double pass is the reference; the float32
  // pass must reproduce its streams exactly.  Both decoded serially
  // (threads=1) so the comparison is pure kernel numerics.
  const auto ref = engine.greedy_decode_batch(srcs, max_tokens, 1,
                                              ml::Precision::kDouble);
  const auto f32 = engine.greedy_decode_batch(srcs, max_tokens, 1,
                                              ml::Precision::kFloat32);
  bool agree = ref.size() == f32.size();
  size_t first_diverged = srcs.size();
  for (size_t i = 0; agree && i < ref.size(); ++i) {
    if (ref[i] != f32[i]) {
      agree = false;
      first_diverged = i;
    }
  }

  // Gate 2: run-to-run determinism of each tier.
  const bool deterministic =
      engine.greedy_decode_batch(srcs, max_tokens, 1,
                                 ml::Precision::kDouble) == ref &&
      engine.greedy_decode_batch(srcs, max_tokens, 1,
                                 ml::Precision::kFloat32) == f32;

  // Throughput: repeated serial passes over the batch; the agreement gate
  // means both tiers execute the same number of session steps, so the rate
  // ratio is a pure per-token cost ratio.
  const int64_t steps = steps_of(ref, max_tokens);
  const int repeats = smoke ? 2 : 5;
  const auto time_tier = [&](ml::Precision tier) {
    (void)engine.greedy_decode_batch(srcs, max_tokens, 1, tier);  // warm-up
    const auto t0 = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      (void)engine.greedy_decode_batch(srcs, max_tokens, 1, tier);
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const double double_seconds = time_tier(ml::Precision::kDouble);
  const double f32_seconds = time_tier(ml::Precision::kFloat32);
  const double tokens_total = static_cast<double>(steps * repeats);
  const double double_rate =
      double_seconds > 0.0 ? tokens_total / double_seconds : 0.0;
  const double f32_rate = f32_seconds > 0.0 ? tokens_total / f32_seconds : 0.0;
  const double speedup = double_rate > 0.0 ? f32_rate / double_rate : 0.0;

  std::printf("%10s %10s %12s %9s\n", "tier", "seconds", "tokens/s", "speedup");
  std::printf("%10s %9.3fs %12.0f %9s\n", "double", double_seconds,
              double_rate, "1.00x");
  std::printf("%10s %9.3fs %12.0f %8.2fx\n", "float32", f32_seconds, f32_rate,
              speedup);
  std::printf("agreement: %s over %d probes (%lld decode steps/pass)\n",
              agree ? "token-identical" : "DIVERGED", n_probes,
              static_cast<long long>(steps));
  std::printf("determinism: %s\n",
              deterministic ? "bit-identical run to run" : "NON-DETERMINISTIC");

  write_bench_json("BENCH_infer.json",
                   JsonObject()
                       .str("bench", "infer_tier")
                       .str("scale", sc.name)
                       .boolean("smoke", smoke)
                       .num("probes", n_probes)
                       .num("max_tokens", max_tokens)
                       .num("decode_steps_per_pass", steps)
                       .num("repeats", repeats)
                       .num("double_seconds", double_seconds, "%.4f")
                       .num("f32_seconds", f32_seconds, "%.4f")
                       .num("double_tokens_per_sec", double_rate, "%.1f")
                       .num("f32_tokens_per_sec", f32_rate, "%.1f")
                       .num("f32_speedup", speedup, "%.3f")
                       .boolean("token_agreement", agree)
                       .boolean("deterministic", deterministic));

  if (!agree) {
    std::fprintf(stderr,
                 "FAIL: float32 tier diverged from the double reference "
                 "(first at probe %zu) — the fast tier may not ship while it "
                 "changes answers\n",
                 first_diverged);
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: a tier is not bit-identical run to run\n");
    return 1;
  }
  if (!smoke) {
    constexpr double kRequiredSpeedup = 1.3;
    if (speedup < kRequiredSpeedup) {
      std::fprintf(stderr,
                   "FAIL: float32 tier %.2fx below the %.1fx tokens/sec floor "
                   "over the double tier\n",
                   speedup, kRequiredSpeedup);
      return 1;
    }
  }
  return 0;
}
