// AC sweep throughput: batched engine vs the naive per-point path.
//
// Sweeps one sized 5T-OTA over a log-frequency grid three ways and gates the
// result through the exit code:
//
//  * naive reference — re-stamps the full complex MNA matrix from the netlist
//    and re-factors it at every point (the pre-batched AcAnalysis::solve, kept
//    here verbatim as the honest baseline);
//  * batched, 1..N threads — AcAnalysis::transfer_sweep over the cached
//    structural phase, fanned across the ota::par pool.
//
// Hard gates: every batched run must be bit-identical to the 1-thread batched
// run AND to a per-point solve() loop (thread count and batching are pure
// performance knobs); the batched path must agree with the naive reference to
// 1e-9 relative; and outside smoke mode on a >=4-hw-thread host the best
// batched run must clear 2x the naive points/sec.
//
// OTA_AC_SMOKE=1 shrinks the grid and sweeps {1, 4} threads only (the
// Release CI job runs that mode).  Results are written as JSON (path from
// OTA_BENCH_JSON, default BENCH_ac.json) so scripts/bench_snapshot.sh can
// archive the perf trajectory.
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "circuit/topologies.hpp"
#include "common.hpp"
#include "linalg/lu.hpp"
#include "par/thread_pool.hpp"
#include "spice/ac.hpp"

namespace {

using Cplx = std::complex<double>;
using ota::circuit::kGround;

// The pre-batched per-point path: stamp the complex MNA system from the
// netlist and factor it, once per frequency.  Kept byte-for-byte equivalent
// to the old AcAnalysis::solve so the speedup figure measures exactly what
// the batched engine removed (per-point stamping, name lookups, allocation).
Cplx naive_transfer(const ota::circuit::Netlist& nl,
                    const std::map<std::string, ota::device::SmallSignal>& devs,
                    double f_hz, ota::circuit::NodeId out_node) {
  const int n_nodes = nl.node_count();
  const int n_vsrc = static_cast<int>(nl.vsources().size());
  const int size = n_nodes - 1 + n_vsrc;
  const double omega = 2.0 * std::numbers::pi * f_hz;
  const Cplx jw{0.0, omega};

  ota::linalg::MatrixC y(static_cast<size_t>(size), static_cast<size_t>(size));
  std::vector<Cplx> rhs(static_cast<size_t>(size), Cplx{});

  auto vi = [&](ota::circuit::NodeId id) { return static_cast<size_t>(id - 1); };
  auto stamp_y = [&](ota::circuit::NodeId a, ota::circuit::NodeId b, Cplx g) {
    if (a != kGround) y(vi(a), vi(a)) += g;
    if (b != kGround) y(vi(b), vi(b)) += g;
    if (a != kGround && b != kGround) {
      y(vi(a), vi(b)) -= g;
      y(vi(b), vi(a)) -= g;
    }
  };
  auto stamp_vccs = [&](ota::circuit::NodeId out_from, ota::circuit::NodeId out_to,
                        ota::circuit::NodeId cp, ota::circuit::NodeId cn,
                        double g) {
    if (out_from != kGround && cp != kGround) y(vi(out_from), vi(cp)) += g;
    if (out_from != kGround && cn != kGround) y(vi(out_from), vi(cn)) -= g;
    if (out_to != kGround && cp != kGround) y(vi(out_to), vi(cp)) -= g;
    if (out_to != kGround && cn != kGround) y(vi(out_to), vi(cn)) += g;
  };

  for (const auto& r : nl.resistors()) {
    stamp_y(r.a, r.b, Cplx{1.0 / r.resistance, 0.0});
  }
  for (const auto& c : nl.capacitors()) {
    stamp_y(c.a, c.b, jw * c.capacitance);
  }
  for (const auto& m : nl.mosfets()) {
    const auto& ss = devs.at(m.name);
    stamp_vccs(m.drain, m.source, m.gate, m.source, ss.gm);
    stamp_y(m.drain, m.source, Cplx{ss.gds, 0.0});
    stamp_y(m.gate, m.source, jw * ss.cgs);
    stamp_y(m.drain, m.source, jw * ss.cds);
  }
  for (const auto& s : nl.isources()) {
    if (s.pos != kGround) rhs[vi(s.pos)] -= s.ac;
    if (s.neg != kGround) rhs[vi(s.neg)] += s.ac;
  }
  const auto& vsrcs = nl.vsources();
  for (int k = 0; k < n_vsrc; ++k) {
    const auto& s = vsrcs[static_cast<size_t>(k)];
    const size_t row = static_cast<size_t>(n_nodes - 1 + k);
    if (s.pos != kGround) {
      y(vi(s.pos), row) += 1.0;
      y(row, vi(s.pos)) += 1.0;
    }
    if (s.neg != kGround) {
      y(vi(s.neg), row) -= 1.0;
      y(row, vi(s.neg)) -= 1.0;
    }
    rhs[row] = s.ac;
  }

  const std::vector<Cplx> x =
      ota::linalg::LuDecomposition<Cplx>(std::move(y)).solve(rhs);
  return x[vi(out_node)];
}

struct Run {
  int threads = 0;
  double seconds = 0.0;
  double points_per_sec = 0.0;
  double speedup_vs_naive = 1.0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool identical(const std::vector<Cplx>& a, const std::vector<Cplx>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].real() != b[i].real() || a[i].imag() != b[i].imag()) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  const char* smoke_env = std::getenv("OTA_AC_SMOKE");
  const bool smoke = smoke_env && std::strcmp(smoke_env, "0") != 0;
  const Scale sc = Scale::from_env();

  int points = 4096;
  if (smoke) {
    points = 512;
  } else if (sc.name == "tiny") {
    points = 1024;
  } else if (sc.name == "paper") {
    points = 32768;
  }

  std::printf("=== AC sweep runtime: batched AcAnalysis vs naive per-point "
              "(scale '%s'%s, %d points) ===\n",
              sc.name.c_str(), smoke ? ", smoke" : "", points);

  auto topo = circuit::make_5t_ota(tech());
  topo.apply_widths({4e-6, 12e-6, 6e-6});
  const spice::DcSolution dc = spice::solve_dc(topo.netlist, tech());
  const spice::AcAnalysis ac(topo.netlist, tech(), dc);
  const circuit::NodeId out_node = topo.netlist.find_node(topo.output_node);

  std::vector<double> freqs;
  freqs.reserve(static_cast<size_t>(points));
  const double ratio = std::pow(1e12 / 1.0, 1.0 / (points - 1));
  double f = 1.0;
  for (int i = 0; i < points; ++i, f *= ratio) freqs.push_back(f);

  // Naive reference: full restamp + factor per point.
  std::vector<Cplx> naive(freqs.size());
  double t0 = now_seconds();
  for (size_t i = 0; i < freqs.size(); ++i) {
    naive[i] = naive_transfer(topo.netlist, ac.devices(), freqs[i], out_node);
  }
  const double naive_seconds = now_seconds() - t0;
  const double naive_pps =
      naive_seconds > 0.0 ? static_cast<double>(points) / naive_seconds : 0.0;
  std::printf("%8s %10s %14s %9s  (system size %d)\n", "path", "seconds",
              "points/s", "speedup", ac.system_size());
  std::printf("%8s %9.3fs %14.0f %8.2fx\n", "naive", naive_seconds, naive_pps,
              1.0);

  // Per-point loop on the batched path (solve() is a sweep of one) — the
  // reference every sweep below must match bit-for-bit.
  std::vector<Cplx> loop(freqs.size());
  for (size_t i = 0; i < freqs.size(); ++i) {
    loop[i] = ac.transfer(freqs[i], topo.output_node);
  }

  const std::vector<int> sweep_threads =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  std::vector<Run> runs;
  std::vector<Cplx> serial;
  bool bit_identical = true;
  for (int t : sweep_threads) {
    t0 = now_seconds();
    const std::vector<Cplx> h = ac.transfer_sweep(freqs, topo.output_node, t);
    Run run;
    run.threads = t;
    run.seconds = now_seconds() - t0;
    run.points_per_sec =
        run.seconds > 0.0 ? static_cast<double>(points) / run.seconds : 0.0;
    run.speedup_vs_naive =
        naive_pps > 0.0 ? run.points_per_sec / naive_pps : 0.0;

    bool ok = identical(h, loop);
    if (runs.empty()) {
      serial = h;
    } else {
      ok = ok && identical(h, serial);
    }
    bit_identical = bit_identical && ok;
    std::printf("%5d th %9.3fs %14.0f %8.2fx  %s\n", t, run.seconds,
                run.points_per_sec, run.speedup_vs_naive,
                ok ? "bit-identical" : "DIVERGED");
    runs.push_back(run);
  }

  // Accuracy vs the naive stamps: the cached path sums capacitances before
  // scaling by omega, so agreement is to rounding, not bit-exact.
  double max_rel_err = 0.0;
  for (size_t i = 0; i < freqs.size(); ++i) {
    const double denom = std::max(std::abs(naive[i]), 1e-30);
    max_rel_err = std::max(max_rel_err, std::abs(serial[i] - naive[i]) / denom);
  }
  std::printf("max |batched - naive| / |naive| = %.3g\n", max_rel_err);

  std::vector<JsonObject> run_rows;
  for (const auto& r : runs) {
    run_rows.push_back(JsonObject()
                           .num("threads", r.threads)
                           .num("seconds", r.seconds, "%.4f")
                           .num("points_per_sec", r.points_per_sec, "%.0f")
                           .num("speedup_vs_naive", r.speedup_vs_naive,
                                "%.3f"));
  }
  if (!write_bench_json("BENCH_ac.json",
                        JsonObject()
                            .str("bench", "ac_sweep")
                            .str("scale", sc.name)
                            .boolean("smoke", smoke)
                            .num("points", points)
                            .num("system_size", ac.system_size())
                            .num("naive_points_per_sec",
                                 static_cast<long long>(naive_pps))
                            .num("max_rel_err_vs_naive", max_rel_err)
                            .boolean("bit_identical", bit_identical)
                            .array("runs", std::move(run_rows)))) {
    return 1;
  }

  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: batched sweep diverged from the per-point "
                 "reference (thread count / batching must be pure performance "
                 "knobs)\n");
    return 1;
  }
  if (max_rel_err > 1e-9) {
    std::fprintf(stderr, "FAIL: batched sweep disagrees with the naive stamps "
                 "beyond 1e-9 relative (%.3g)\n", max_rel_err);
    return 1;
  }
  if (!smoke && par::hardware_threads() >= 4) {
    // The floor sits at 2x for the best batched run: the cached numeric
    // phase alone typically clears it single-threaded, and the pool fan-out
    // stacks on top, so 2x leaves headroom for scheduler noise while still
    // catching a structural-caching regression.  Hosts with fewer than 4
    // hardware threads skip the floor (the bit-identity gates above are the
    // evidence there).
    constexpr double kRequiredSpeedup = 2.0;
    double best = 0.0;
    for (const Run& run : runs) best = std::max(best, run.speedup_vs_naive);
    if (best < kRequiredSpeedup) {
      std::fprintf(stderr,
                   "FAIL: best batched sweep speedup %.2fx below the %.0fx "
                   "floor over the naive per-point path\n",
                   best, kRequiredSpeedup);
      return 1;
    }
  } else if (!smoke) {
    std::printf("(only %d hardware thread(s): throughput floor not enforced)\n",
                par::hardware_threads());
  }
  return 0;
}
