// Table I — dataset information per topology.
//
// Regenerates the paper's dataset summary: the specification ranges actually
// covered by the legal designs, the number of DP-SFG forward paths and
// cycles, plus the rejection-sampling yield of the generation procedure.
// A trailing threads-vs-throughput sweep regenerates the 5T-OTA dataset at
// 1/2/4/8 worker threads (ota::par pool), reporting wall time, throughput,
// and the bit-identity of every run against the single-threaded reference.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "par/thread_pool.hpp"
#include "sfg/sequence.hpp"
#include "spice/dc.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;

  std::printf("=== Table I: dataset information (scale '%s') ===\n",
              Scale::from_env().name.c_str());
  std::printf("%-8s %-9s %-14s %-16s %-16s %-8s %-7s %-8s\n", "Topology",
              "#designs", "Gain(dB)", "3dB BW (MHz)", "UGF (MHz)", "#fwd",
              "#cycles", "yield");

  for (const char* name : {"5T-OTA", "CM-OTA", "2S-OTA"}) {
    auto& ctx = context(name);
    const auto& designs = ctx.dataset.designs;

    double g0 = 1e9, g1 = -1e9, b0 = 1e18, b1 = -1e18, u0 = 1e18, u1 = -1e18;
    for (const auto& d : designs) {
      g0 = std::min(g0, d.specs.gain_db);
      g1 = std::max(g1, d.specs.gain_db);
      b0 = std::min(b0, d.specs.bw_hz);
      b1 = std::max(b1, d.specs.bw_hz);
      u0 = std::min(u0, d.specs.ugf_hz);
      u1 = std::max(u1, d.specs.ugf_hz);
    }

    const auto paths = sfg::collect_paths(ctx.builder->graph());
    char gain[32], bw[32], ugf[32];
    std::snprintf(gain, sizeof gain, "%.0f - %.0f", g0, g1);
    std::snprintf(bw, sizeof bw, "%.2f - %.1f", b0 / 1e6, b1 / 1e6);
    std::snprintf(ugf, sizeof ugf, "%.0f - %.0f", u0 / 1e6, u1 / 1e6);
    std::printf("%-8s %-9zu %-14s %-16s %-16s %-8zu %-7zu %6.1f%%\n", name,
                designs.size(), gain, bw, ugf, paths.forward.size(),
                paths.cycles.size(),
                100.0 * static_cast<double>(designs.size()) /
                    std::max(1, ctx.dataset.attempts));
  }
  std::printf("\n(paper Table I: 5T 18-23dB/7-54MHz/80-871MHz 9fwd 4cyc;\n"
              " CM 19-25dB/17.5-86MHz/57-1185MHz 26fwd 5cyc;\n"
              " 2S 28-54dB/0.01-0.32MHz/1.8-370MHz 2fwd 11cyc)\n");

  // --- generate_dataset threads-vs-throughput sweep (5T-OTA) ---
  const auto tech = device::Technology::default65nm();
  core::DataGenOptions gopt;
  gopt.target_designs = std::min(Scale::from_env().designs, 300);
  gopt.max_attempts = gopt.target_designs * 200;
  gopt.seed = 2024;

  std::printf("\n=== generate_dataset threads sweep (5T-OTA, %d designs; "
              "%d hardware threads) ===\n",
              gopt.target_designs, par::hardware_threads());
  std::printf("%-8s %-10s %-12s %-9s %-13s\n", "threads", "seconds",
              "designs/s", "speedup", "bit-identical");
  core::Dataset reference;
  double t1 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    auto topo = circuit::make_5t_ota(tech);
    gopt.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const core::Dataset ds = core::generate_dataset(
        topo, tech, core::SpecRange::for_topology("5T-OTA"), gopt);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0).count();
    bool identical = true;
    if (threads == 1) {
      reference = ds;
      t1 = secs;
    } else {
      identical = ds.designs.size() == reference.designs.size() &&
                  ds.attempts == reference.attempts;
      for (size_t i = 0; identical && i < ds.designs.size(); ++i) {
        identical = ds.designs[i].widths == reference.designs[i].widths;
      }
    }
    std::printf("%-8d %-10.2f %-12.1f %-9.2f %-13s\n", threads, secs,
                static_cast<double>(ds.designs.size()) / std::max(secs, 1e-9),
                t1 / std::max(secs, 1e-9), identical ? "yes" : "NO");
  }
  return 0;
}
