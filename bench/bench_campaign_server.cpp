// Sizing-as-a-service throughput: the campaign server vs one-at-a-time.
//
// Runs the same batch of sizing campaigns twice over one trained 5T-OTA
// model — first serially through SizingCopilot::size (the paper's
// one-campaign-at-a-time loop), then concurrently through serve::CampaignServer,
// where every live campaign's Stage-II decodes coalesce in the continuous
// -batching DecodeScheduler.  Reported: campaigns/sec for both paths, p50/p99
// campaign latency under load, and the mean decode-batch occupancy.
//
// Four gates, enforced through the exit code:
//
//  * bit-identity (always) — every server campaign outcome must match the
//    serial copilot's bit-for-bit (everything except wall-clock seconds);
//  * occupancy (always, incl. smoke) — with >= 8 concurrent campaigns the
//    mean decode batch must exceed 1.5 sessions/round: outstanding requests
//    queue behind the engine regardless of core count, so coalescing is
//    observable even on a 1-core CI runner;
//  * throughput (>= 4 hardware threads, not in smoke) — the server must
//    clear 2x the serial campaigns/sec;
//  * overload (always, incl. smoke) — a concurrent burst of 4x
//    max_queue_depth submissions against the Reject policy, with every 5th
//    admitted job cancelled, must account for every attempt exactly once
//    (rejected + served + cancelled == attempts, failed == 0) while the
//    queue never exceeds its cap (peak_queue_depth <= max_queue_depth).
//
// OTA_CAMPAIGN_SMOKE=1 shrinks the dataset/model and campaign count; the
// Release CI job runs that mode.  Results are written as JSON (path from
// OTA_BENCH_JSON, default BENCH_campaign.json) for scripts/bench_snapshot.sh.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/dataset.hpp"
#include "par/thread_pool.hpp"
#include "serve/campaign_server.hpp"

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

bool same_outcome(const ota::core::SizingOutcome& a,
                  const ota::core::SizingOutcome& b) {
  return a.success == b.success && a.iterations == b.iterations &&
         a.spice_simulations == b.spice_simulations && a.widths == b.widths &&
         a.predicted == b.predicted &&
         a.achieved.gain_db == b.achieved.gain_db &&
         a.achieved.bw_hz == b.achieved.bw_hz &&
         a.achieved.ugf_hz == b.achieved.ugf_hz;
}

}  // namespace

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  using Clock = std::chrono::steady_clock;
  const char* smoke_env = std::getenv("OTA_CAMPAIGN_SMOKE");
  const bool smoke = smoke_env && std::strcmp(smoke_env, "0") != 0;
  const Scale sc = Scale::from_env();

  std::printf("=== Campaign server: continuous decode batching across "
              "concurrent sizing campaigns (scale '%s'%s) ===\n",
              sc.name.c_str(), smoke ? ", smoke" : "");

  // One deterministic dataset + model shared by both paths.
  auto topo = circuit::make_topology("5T-OTA", tech());
  core::DataGenOptions gopt;
  gopt.target_designs = smoke ? 60 : 200;
  gopt.max_attempts = gopt.target_designs * 200;
  gopt.seed = 2024;
  const core::Dataset ds = core::generate_dataset(
      topo, tech(), core::SpecRange::for_topology("5T-OTA"), gopt);
  const core::SequenceBuilder builder(topo, tech());
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(ds.designs.size());
  for (const auto& d : ds.designs) {
    pairs.emplace_back(builder.encoder_text(d.specs), builder.decoder_text(d));
  }

  core::TrainOptions topt;
  topt.seed = 17;
  if (smoke) {
    topt.epochs = 2;
    topt.d_model = 32;
    topt.d_ff = 64;
    topt.bpe_merges = 128;
  } else {
    topt.epochs = 4;
    topt.d_model = sc.d_model;
    topt.n_heads = sc.n_heads;
    topt.n_layers = sc.n_layers;
    topt.d_ff = sc.d_ff;
  }
  auto model = std::make_shared<core::SizingModel>();
  std::fprintf(stderr, "[bench] training the shared 5T-OTA model...\n");
  model->train(pairs, topt);
  const auto lut_set =
      std::make_shared<const core::LutSet>(benchsupport::luts());

  const int n_campaigns = smoke ? 16 : 32;
  const int n_workers = 8;
  const auto targets = core::targets_from_designs(ds.designs, n_campaigns, 0.06, 17);
  core::CopilotOptions copt;
  copt.max_iterations = smoke ? 3 : 6;
  copt.max_decode_tokens = smoke ? 128 : 400;

  // Path 1: the serial reference — one campaign at a time, the copilot's
  // own loop, nothing shared.  Also the bit-identity baseline.
  std::fprintf(stderr, "[bench] serial pass (%d campaigns)...\n", n_campaigns);
  std::vector<core::SizingOutcome> reference;
  const auto serial_t0 = Clock::now();
  {
    core::SizingCopilot copilot(topo, tech(), builder, *model, *lut_set);
    for (const auto& t : targets) reference.push_back(copilot.size(t, copt));
  }
  const double serial_seconds =
      std::chrono::duration<double>(Clock::now() - serial_t0).count();

  // Path 2: the campaign server — all campaigns submitted up front, their
  // Stage-II decodes coalescing in the shared scheduler.
  std::fprintf(stderr, "[bench] server pass (%d workers)...\n", n_workers);
  serve::CampaignServer::Options sopt;
  sopt.workers = n_workers;
  serve::CampaignServer server(sopt);
  server.register_topology("5T-OTA", topo, tech(), model, lut_set);

  std::vector<std::shared_ptr<serve::CampaignServer::Job>> jobs;
  const auto server_t0 = Clock::now();
  for (const auto& t : targets) jobs.push_back(server.submit({"5T-OTA", t, copt}));
  bool bit_identical = true;
  std::vector<double> latencies;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const serve::CampaignResult& res = jobs[i]->wait();
    if (res.status != serve::CampaignStatus::Served ||
        !same_outcome(res.outcome, reference[i])) {
      bit_identical = false;
      std::fprintf(stderr, "DIVERGED: campaign %zu (%s)\n", i,
                   res.status == serve::CampaignStatus::Served
                       ? "outcome mismatch" : res.error.c_str());
    }
    latencies.push_back(res.total_seconds);
  }
  const double server_seconds =
      std::chrono::duration<double>(Clock::now() - server_t0).count();
  const auto stats = server.stats();
  server.shutdown();

  // Path 3: overload — admission control under a burst.  A fresh bounded
  // server (Reject policy) takes 4x its queue depth from 4 concurrent
  // submitter threads; every 5th admitted job is cancelled.  The server must
  // bound the queue (never deeper than the cap) and account for every
  // attempt exactly once: rejected at the door, served, or cancelled.
  const int overload_depth = smoke ? 4 : 8;
  const int overload_attempts = 4 * overload_depth;
  std::fprintf(stderr, "[bench] overload pass (%d attempts, queue cap %d)...\n",
               overload_attempts, overload_depth);
  serve::CampaignServer::Options oopt;
  oopt.workers = 4;
  oopt.max_decode_batch = 4;
  oopt.max_queue_depth = overload_depth;
  oopt.overflow = serve::OverflowPolicy::Reject;
  serve::CampaignServer overload_server(oopt);
  overload_server.register_topology("5T-OTA", topo, tech(), model, lut_set);

  core::CopilotOptions cheap;  // short campaigns: the burst is the subject
  cheap.max_iterations = 2;
  cheap.max_decode_tokens = 64;

  std::atomic<int> overload_rejected{0};
  std::mutex jobs_mu;
  std::vector<std::shared_ptr<serve::CampaignServer::Job>> overload_jobs;
  {
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&, s] {
        for (int i = s; i < overload_attempts; i += 4) {
          try {
            auto job = overload_server.submit(
                {"5T-OTA", targets[static_cast<size_t>(i) % targets.size()],
                 cheap});
            std::lock_guard<std::mutex> lk(jobs_mu);
            overload_jobs.push_back(std::move(job));
          } catch (const ServerOverloaded&) {
            overload_rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : submitters) t.join();
  }
  for (size_t i = 0; i < overload_jobs.size(); i += 5) overload_jobs[i]->cancel();

  uint64_t overload_served = 0, overload_cancelled = 0, overload_failed = 0;
  for (const auto& job : overload_jobs) {
    switch (job->wait().status) {
      case serve::CampaignStatus::Served: ++overload_served; break;
      case serve::CampaignStatus::Cancelled: ++overload_cancelled; break;
      case serve::CampaignStatus::Failed: ++overload_failed; break;
    }
  }
  const auto ostats = overload_server.stats();
  overload_server.shutdown();
  const bool overload_accounted =
      overload_failed == 0 &&
      static_cast<size_t>(overload_rejected.load()) + overload_jobs.size() ==
          static_cast<size_t>(overload_attempts) &&
      overload_served + overload_cancelled == overload_jobs.size() &&
      ostats.rejected == static_cast<uint64_t>(overload_rejected.load());
  const bool overload_bounded =
      ostats.peak_queue_depth <= static_cast<uint64_t>(overload_depth);

  const double serial_rate =
      serial_seconds > 0.0 ? n_campaigns / serial_seconds : 0.0;
  const double server_rate =
      server_seconds > 0.0 ? n_campaigns / server_seconds : 0.0;
  const double speedup = serial_rate > 0.0 ? server_rate / serial_rate : 0.0;
  const double occupancy = stats.decode.mean_batch_occupancy();
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  std::printf("%12s %10s %14s %9s\n", "path", "seconds", "campaigns/s", "speedup");
  std::printf("%12s %9.2fs %14.2f %9s\n", "serial", serial_seconds, serial_rate, "1.00x");
  std::printf("%12s %9.2fs %14.2f %8.2fx\n", "server", server_seconds,
              server_rate, speedup);
  std::printf("\ncampaign latency under load: p50 %.3fs  p99 %.3fs\n", p50, p99);
  std::printf("decode batching: occupancy %.2f sessions/round, peak batch %llu, "
              "%llu rounds, %llu decode requests\n",
              occupancy, static_cast<unsigned long long>(stats.decode.peak_batch),
              static_cast<unsigned long long>(stats.decode.rounds),
              static_cast<unsigned long long>(stats.decode.served));
  std::printf("results: %s\n", bit_identical ? "bit-identical to serial copilot"
                                             : "DIVERGED");
  std::printf("overload: %d attempts -> %d rejected, %llu served, "
              "%llu cancelled, %llu failed; peak queue %llu (cap %d)\n",
              overload_attempts, overload_rejected.load(),
              static_cast<unsigned long long>(overload_served),
              static_cast<unsigned long long>(overload_cancelled),
              static_cast<unsigned long long>(overload_failed),
              static_cast<unsigned long long>(ostats.peak_queue_depth),
              overload_depth);

  write_bench_json("BENCH_campaign.json",
                   JsonObject()
                       .str("bench", "campaign_server")
                       .str("scale", sc.name)
                       .boolean("smoke", smoke)
                       .num("campaigns", n_campaigns)
                       .num("workers", n_workers)
                       .num("serial_seconds", serial_seconds, "%.3f")
                       .num("server_seconds", server_seconds, "%.3f")
                       .num("campaigns_per_sec_serial", serial_rate, "%.3f")
                       .num("campaigns_per_sec_server", server_rate, "%.3f")
                       .num("speedup", speedup, "%.3f")
                       .num("latency_p50_s", p50, "%.4f")
                       .num("latency_p99_s", p99, "%.4f")
                       .num("decode_occupancy", occupancy, "%.3f")
                       .num("decode_peak_batch", stats.decode.peak_batch)
                       .num("overload_attempts", overload_attempts)
                       .num("overload_rejected", overload_rejected.load())
                       .num("overload_served", overload_served)
                       .num("overload_cancelled", overload_cancelled)
                       .num("overload_peak_queue_depth",
                            ostats.peak_queue_depth)
                       .num("overload_queue_cap", overload_depth)
                       .boolean("bit_identical", bit_identical));

  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: server campaigns diverged from the serial "
                 "copilot path\n");
    return 1;
  }
  if (!overload_accounted) {
    std::fprintf(stderr, "FAIL: overload burst not accounted exactly once "
                 "(%d attempts vs %d rejected + %zu admitted; %llu served + "
                 "%llu cancelled + %llu failed)\n",
                 overload_attempts, overload_rejected.load(),
                 overload_jobs.size(),
                 static_cast<unsigned long long>(overload_served),
                 static_cast<unsigned long long>(overload_cancelled),
                 static_cast<unsigned long long>(overload_failed));
    return 1;
  }
  if (!overload_bounded) {
    std::fprintf(stderr, "FAIL: queue grew to %llu, past its cap of %d\n",
                 static_cast<unsigned long long>(ostats.peak_queue_depth),
                 overload_depth);
    return 1;
  }
  // The occupancy gate holds on any host: with 8 workers submitting and one
  // engine serving, outstanding decodes pile up behind the scheduler and
  // must share rounds — queueing, not parallel hardware, is what's measured.
  constexpr double kRequiredOccupancy = 1.5;
  if (n_campaigns >= 8 && occupancy <= kRequiredOccupancy) {
    std::fprintf(stderr, "FAIL: mean decode batch occupancy %.2f below the "
                 "%.1f floor with %d concurrent campaigns\n",
                 occupancy, kRequiredOccupancy, n_campaigns);
    return 1;
  }
  if (!smoke && par::hardware_threads() >= 4) {
    constexpr double kRequiredSpeedup = 2.0;
    if (speedup < kRequiredSpeedup) {
      std::fprintf(stderr, "FAIL: server throughput %.2fx below the %.0fx "
                   "floor over one-at-a-time\n", speedup, kRequiredSpeedup);
      return 1;
    }
  } else if (!smoke) {
    std::printf("(only %d hardware thread(s): throughput floor not enforced)\n",
                par::hardware_threads());
  }
  return 0;
}
