// Table VII — target vs optimized specifications, 2S-OTA (BW in kHz as in
// the paper's table).
#include "common.hpp"

int main() {
  using namespace ota;
  using namespace ota::benchsupport;
  auto& ctx = context("2S-OTA");
  core::SizingCopilot copilot(ctx.topology, tech(), *ctx.builder, ctx.model,
                              luts());
  const auto targets = core::targets_from_designs(ctx.val, 3, 0.05, 1701);
  std::vector<core::SizingOutcome> rows;
  for (const auto& t : targets) rows.push_back(copilot.size(t));
  print_sizing_table("=== Table VII: 2S-OTA target vs optimized ===", rows,
                     /*bw_unit=*/1e3, "kHz");
  std::printf("\n(paper Table VII: gains 43.6->45.61, 47.17->47.93, 55.19->46.04 dB;\n"
              " note the paper's own third row misses its gain target)\n");
  return 0;
}
